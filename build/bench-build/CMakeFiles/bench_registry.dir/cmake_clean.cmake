file(REMOVE_RECURSE
  "../bench/bench_registry"
  "../bench/bench_registry.pdb"
  "CMakeFiles/bench_registry.dir/bench_registry.cpp.o"
  "CMakeFiles/bench_registry.dir/bench_registry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
