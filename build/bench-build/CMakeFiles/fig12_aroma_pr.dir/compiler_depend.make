# Empty compiler generated dependencies file for fig12_aroma_pr.
# This may be replaced when dependencies are built.
