file(REMOVE_RECURSE
  "../bench/fig12_aroma_pr"
  "../bench/fig12_aroma_pr.pdb"
  "CMakeFiles/fig12_aroma_pr.dir/fig12_aroma_pr.cpp.o"
  "CMakeFiles/fig12_aroma_pr.dir/fig12_aroma_pr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_aroma_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
