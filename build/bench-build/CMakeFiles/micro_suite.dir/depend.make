# Empty dependencies file for micro_suite.
# This may be replaced when dependencies are built.
