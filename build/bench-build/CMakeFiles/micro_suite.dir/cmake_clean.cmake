file(REMOVE_RECURSE
  "../bench/micro_suite"
  "../bench/micro_suite.pdb"
  "CMakeFiles/micro_suite.dir/micro_suite.cpp.o"
  "CMakeFiles/micro_suite.dir/micro_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
