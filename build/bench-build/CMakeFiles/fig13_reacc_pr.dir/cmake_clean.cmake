file(REMOVE_RECURSE
  "../bench/fig13_reacc_pr"
  "../bench/fig13_reacc_pr.pdb"
  "CMakeFiles/fig13_reacc_pr.dir/fig13_reacc_pr.cpp.o"
  "CMakeFiles/fig13_reacc_pr.dir/fig13_reacc_pr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_reacc_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
