# Empty dependencies file for fig13_reacc_pr.
# This may be replaced when dependencies are built.
