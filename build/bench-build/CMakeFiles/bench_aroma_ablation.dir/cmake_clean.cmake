file(REMOVE_RECURSE
  "../bench/bench_aroma_ablation"
  "../bench/bench_aroma_ablation.pdb"
  "CMakeFiles/bench_aroma_ablation.dir/bench_aroma_ablation.cpp.o"
  "CMakeFiles/bench_aroma_ablation.dir/bench_aroma_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aroma_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
