file(REMOVE_RECURSE
  "../bench/bench_mappings"
  "../bench/bench_mappings.pdb"
  "CMakeFiles/bench_mappings.dir/bench_mappings.cpp.o"
  "CMakeFiles/bench_mappings.dir/bench_mappings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
