# Empty dependencies file for bench_mappings.
# This may be replaced when dependencies are built.
