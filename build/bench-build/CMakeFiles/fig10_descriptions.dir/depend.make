# Empty dependencies file for fig10_descriptions.
# This may be replaced when dependencies are built.
