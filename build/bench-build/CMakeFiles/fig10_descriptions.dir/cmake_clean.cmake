file(REMOVE_RECURSE
  "../bench/fig10_descriptions"
  "../bench/fig10_descriptions.pdb"
  "CMakeFiles/fig10_descriptions.dir/fig10_descriptions.cpp.o"
  "CMakeFiles/fig10_descriptions.dir/fig10_descriptions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_descriptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
