file(REMOVE_RECURSE
  "../bench/bench_lsh"
  "../bench/bench_lsh.pdb"
  "CMakeFiles/bench_lsh.dir/bench_lsh.cpp.o"
  "CMakeFiles/bench_lsh.dir/bench_lsh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
