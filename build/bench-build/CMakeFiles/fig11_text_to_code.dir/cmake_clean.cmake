file(REMOVE_RECURSE
  "../bench/fig11_text_to_code"
  "../bench/fig11_text_to_code.pdb"
  "CMakeFiles/fig11_text_to_code.dir/fig11_text_to_code.cpp.o"
  "CMakeFiles/fig11_text_to_code.dir/fig11_text_to_code.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_text_to_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
