# Empty dependencies file for fig11_text_to_code.
# This may be replaced when dependencies are built.
