# Empty compiler generated dependencies file for anomaly_pipeline.
# This may be replaced when dependencies are built.
