file(REMOVE_RECURSE
  "CMakeFiles/wordcount_stream.dir/wordcount_stream.cpp.o"
  "CMakeFiles/wordcount_stream.dir/wordcount_stream.cpp.o.d"
  "wordcount_stream"
  "wordcount_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
