# Empty dependencies file for wordcount_stream.
# This may be replaced when dependencies are built.
