file(REMOVE_RECURSE
  "CMakeFiles/laminar_cli.dir/laminar_cli.cpp.o"
  "CMakeFiles/laminar_cli.dir/laminar_cli.cpp.o.d"
  "laminar_cli"
  "laminar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
