# Empty dependencies file for laminar_cli.
# This may be replaced when dependencies are built.
