# Empty dependencies file for code_search_demo.
# This may be replaced when dependencies are built.
