file(REMOVE_RECURSE
  "CMakeFiles/code_search_demo.dir/code_search_demo.cpp.o"
  "CMakeFiles/code_search_demo.dir/code_search_demo.cpp.o.d"
  "code_search_demo"
  "code_search_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_search_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
