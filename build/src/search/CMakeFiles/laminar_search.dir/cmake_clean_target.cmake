file(REMOVE_RECURSE
  "liblaminar_search.a"
)
