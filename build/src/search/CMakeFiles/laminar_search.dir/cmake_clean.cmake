file(REMOVE_RECURSE
  "CMakeFiles/laminar_search.dir/metrics.cpp.o"
  "CMakeFiles/laminar_search.dir/metrics.cpp.o.d"
  "CMakeFiles/laminar_search.dir/search_service.cpp.o"
  "CMakeFiles/laminar_search.dir/search_service.cpp.o.d"
  "liblaminar_search.a"
  "liblaminar_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
