
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/metrics.cpp" "src/search/CMakeFiles/laminar_search.dir/metrics.cpp.o" "gcc" "src/search/CMakeFiles/laminar_search.dir/metrics.cpp.o.d"
  "/root/repo/src/search/search_service.cpp" "src/search/CMakeFiles/laminar_search.dir/search_service.cpp.o" "gcc" "src/search/CMakeFiles/laminar_search.dir/search_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/registry/CMakeFiles/laminar_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/laminar_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/spt/CMakeFiles/laminar_spt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
