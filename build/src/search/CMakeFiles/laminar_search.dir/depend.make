# Empty dependencies file for laminar_search.
# This may be replaced when dependencies are built.
