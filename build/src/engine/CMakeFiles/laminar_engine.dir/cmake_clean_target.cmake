file(REMOVE_RECURSE
  "liblaminar_engine.a"
)
