file(REMOVE_RECURSE
  "CMakeFiles/laminar_engine.dir/autoimport.cpp.o"
  "CMakeFiles/laminar_engine.dir/autoimport.cpp.o.d"
  "CMakeFiles/laminar_engine.dir/engine.cpp.o"
  "CMakeFiles/laminar_engine.dir/engine.cpp.o.d"
  "CMakeFiles/laminar_engine.dir/resource_cache.cpp.o"
  "CMakeFiles/laminar_engine.dir/resource_cache.cpp.o.d"
  "CMakeFiles/laminar_engine.dir/workflow_spec.cpp.o"
  "CMakeFiles/laminar_engine.dir/workflow_spec.cpp.o.d"
  "liblaminar_engine.a"
  "liblaminar_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
