# Empty compiler generated dependencies file for laminar_engine.
# This may be replaced when dependencies are built.
