
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/autoimport.cpp" "src/engine/CMakeFiles/laminar_engine.dir/autoimport.cpp.o" "gcc" "src/engine/CMakeFiles/laminar_engine.dir/autoimport.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/laminar_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/laminar_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/resource_cache.cpp" "src/engine/CMakeFiles/laminar_engine.dir/resource_cache.cpp.o" "gcc" "src/engine/CMakeFiles/laminar_engine.dir/resource_cache.cpp.o.d"
  "/root/repo/src/engine/workflow_spec.cpp" "src/engine/CMakeFiles/laminar_engine.dir/workflow_spec.cpp.o" "gcc" "src/engine/CMakeFiles/laminar_engine.dir/workflow_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/laminar_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/laminar_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
