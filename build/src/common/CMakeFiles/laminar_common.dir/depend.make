# Empty dependencies file for laminar_common.
# This may be replaced when dependencies are built.
