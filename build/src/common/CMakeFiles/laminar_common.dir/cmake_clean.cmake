file(REMOVE_RECURSE
  "CMakeFiles/laminar_common.dir/json.cpp.o"
  "CMakeFiles/laminar_common.dir/json.cpp.o.d"
  "CMakeFiles/laminar_common.dir/log.cpp.o"
  "CMakeFiles/laminar_common.dir/log.cpp.o.d"
  "CMakeFiles/laminar_common.dir/status.cpp.o"
  "CMakeFiles/laminar_common.dir/status.cpp.o.d"
  "CMakeFiles/laminar_common.dir/strings.cpp.o"
  "CMakeFiles/laminar_common.dir/strings.cpp.o.d"
  "CMakeFiles/laminar_common.dir/value.cpp.o"
  "CMakeFiles/laminar_common.dir/value.cpp.o.d"
  "liblaminar_common.a"
  "liblaminar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
