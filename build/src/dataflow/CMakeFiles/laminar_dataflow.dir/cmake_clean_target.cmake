file(REMOVE_RECURSE
  "liblaminar_dataflow.a"
)
