# Empty dependencies file for laminar_dataflow.
# This may be replaced when dependencies are built.
