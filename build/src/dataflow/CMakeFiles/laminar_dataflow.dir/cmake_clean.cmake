file(REMOVE_RECURSE
  "CMakeFiles/laminar_dataflow.dir/dynamic_mapping.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/dynamic_mapping.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/graph.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/graph.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/mapping.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/mapping.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/multi_mapping.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/multi_mapping.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/pe.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/pe.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/pe_library.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/pe_library.cpp.o.d"
  "CMakeFiles/laminar_dataflow.dir/sequential_mapping.cpp.o"
  "CMakeFiles/laminar_dataflow.dir/sequential_mapping.cpp.o.d"
  "liblaminar_dataflow.a"
  "liblaminar_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
