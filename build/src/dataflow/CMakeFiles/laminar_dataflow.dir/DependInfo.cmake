
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/dynamic_mapping.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/dynamic_mapping.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/dynamic_mapping.cpp.o.d"
  "/root/repo/src/dataflow/graph.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/graph.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/graph.cpp.o.d"
  "/root/repo/src/dataflow/mapping.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/mapping.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/mapping.cpp.o.d"
  "/root/repo/src/dataflow/multi_mapping.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/multi_mapping.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/multi_mapping.cpp.o.d"
  "/root/repo/src/dataflow/pe.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/pe.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/pe.cpp.o.d"
  "/root/repo/src/dataflow/pe_library.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/pe_library.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/pe_library.cpp.o.d"
  "/root/repo/src/dataflow/sequential_mapping.cpp" "src/dataflow/CMakeFiles/laminar_dataflow.dir/sequential_mapping.cpp.o" "gcc" "src/dataflow/CMakeFiles/laminar_dataflow.dir/sequential_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/laminar_broker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
