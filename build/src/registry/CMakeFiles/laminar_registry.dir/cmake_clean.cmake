file(REMOVE_RECURSE
  "CMakeFiles/laminar_registry.dir/database.cpp.o"
  "CMakeFiles/laminar_registry.dir/database.cpp.o.d"
  "CMakeFiles/laminar_registry.dir/repository.cpp.o"
  "CMakeFiles/laminar_registry.dir/repository.cpp.o.d"
  "CMakeFiles/laminar_registry.dir/schema.cpp.o"
  "CMakeFiles/laminar_registry.dir/schema.cpp.o.d"
  "CMakeFiles/laminar_registry.dir/table.cpp.o"
  "CMakeFiles/laminar_registry.dir/table.cpp.o.d"
  "liblaminar_registry.a"
  "liblaminar_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
