file(REMOVE_RECURSE
  "liblaminar_registry.a"
)
