
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registry/database.cpp" "src/registry/CMakeFiles/laminar_registry.dir/database.cpp.o" "gcc" "src/registry/CMakeFiles/laminar_registry.dir/database.cpp.o.d"
  "/root/repo/src/registry/repository.cpp" "src/registry/CMakeFiles/laminar_registry.dir/repository.cpp.o" "gcc" "src/registry/CMakeFiles/laminar_registry.dir/repository.cpp.o.d"
  "/root/repo/src/registry/schema.cpp" "src/registry/CMakeFiles/laminar_registry.dir/schema.cpp.o" "gcc" "src/registry/CMakeFiles/laminar_registry.dir/schema.cpp.o.d"
  "/root/repo/src/registry/table.cpp" "src/registry/CMakeFiles/laminar_registry.dir/table.cpp.o" "gcc" "src/registry/CMakeFiles/laminar_registry.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
