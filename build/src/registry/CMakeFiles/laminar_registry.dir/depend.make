# Empty dependencies file for laminar_registry.
# This may be replaced when dependencies are built.
