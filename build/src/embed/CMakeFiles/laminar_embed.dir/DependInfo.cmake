
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/codet5_sim.cpp" "src/embed/CMakeFiles/laminar_embed.dir/codet5_sim.cpp.o" "gcc" "src/embed/CMakeFiles/laminar_embed.dir/codet5_sim.cpp.o.d"
  "/root/repo/src/embed/embedding.cpp" "src/embed/CMakeFiles/laminar_embed.dir/embedding.cpp.o" "gcc" "src/embed/CMakeFiles/laminar_embed.dir/embedding.cpp.o.d"
  "/root/repo/src/embed/hashed_encoder.cpp" "src/embed/CMakeFiles/laminar_embed.dir/hashed_encoder.cpp.o" "gcc" "src/embed/CMakeFiles/laminar_embed.dir/hashed_encoder.cpp.o.d"
  "/root/repo/src/embed/reacc_sim.cpp" "src/embed/CMakeFiles/laminar_embed.dir/reacc_sim.cpp.o" "gcc" "src/embed/CMakeFiles/laminar_embed.dir/reacc_sim.cpp.o.d"
  "/root/repo/src/embed/unixcoder_sim.cpp" "src/embed/CMakeFiles/laminar_embed.dir/unixcoder_sim.cpp.o" "gcc" "src/embed/CMakeFiles/laminar_embed.dir/unixcoder_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
