file(REMOVE_RECURSE
  "liblaminar_embed.a"
)
