# Empty compiler generated dependencies file for laminar_embed.
# This may be replaced when dependencies are built.
