file(REMOVE_RECURSE
  "CMakeFiles/laminar_embed.dir/codet5_sim.cpp.o"
  "CMakeFiles/laminar_embed.dir/codet5_sim.cpp.o.d"
  "CMakeFiles/laminar_embed.dir/embedding.cpp.o"
  "CMakeFiles/laminar_embed.dir/embedding.cpp.o.d"
  "CMakeFiles/laminar_embed.dir/hashed_encoder.cpp.o"
  "CMakeFiles/laminar_embed.dir/hashed_encoder.cpp.o.d"
  "CMakeFiles/laminar_embed.dir/reacc_sim.cpp.o"
  "CMakeFiles/laminar_embed.dir/reacc_sim.cpp.o.d"
  "CMakeFiles/laminar_embed.dir/unixcoder_sim.cpp.o"
  "CMakeFiles/laminar_embed.dir/unixcoder_sim.cpp.o.d"
  "liblaminar_embed.a"
  "liblaminar_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
