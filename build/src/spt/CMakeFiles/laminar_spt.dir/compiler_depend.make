# Empty compiler generated dependencies file for laminar_spt.
# This may be replaced when dependencies are built.
