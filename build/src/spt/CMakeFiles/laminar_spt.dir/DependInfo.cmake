
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spt/cluster.cpp" "src/spt/CMakeFiles/laminar_spt.dir/cluster.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/cluster.cpp.o.d"
  "/root/repo/src/spt/features.cpp" "src/spt/CMakeFiles/laminar_spt.dir/features.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/features.cpp.o.d"
  "/root/repo/src/spt/index.cpp" "src/spt/CMakeFiles/laminar_spt.dir/index.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/index.cpp.o.d"
  "/root/repo/src/spt/lsh_index.cpp" "src/spt/CMakeFiles/laminar_spt.dir/lsh_index.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/lsh_index.cpp.o.d"
  "/root/repo/src/spt/recommend.cpp" "src/spt/CMakeFiles/laminar_spt.dir/recommend.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/recommend.cpp.o.d"
  "/root/repo/src/spt/rerank.cpp" "src/spt/CMakeFiles/laminar_spt.dir/rerank.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/rerank.cpp.o.d"
  "/root/repo/src/spt/spt.cpp" "src/spt/CMakeFiles/laminar_spt.dir/spt.cpp.o" "gcc" "src/spt/CMakeFiles/laminar_spt.dir/spt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
