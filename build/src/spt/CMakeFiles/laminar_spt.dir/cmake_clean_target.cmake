file(REMOVE_RECURSE
  "liblaminar_spt.a"
)
