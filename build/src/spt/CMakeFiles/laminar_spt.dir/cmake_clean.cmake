file(REMOVE_RECURSE
  "CMakeFiles/laminar_spt.dir/cluster.cpp.o"
  "CMakeFiles/laminar_spt.dir/cluster.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/features.cpp.o"
  "CMakeFiles/laminar_spt.dir/features.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/index.cpp.o"
  "CMakeFiles/laminar_spt.dir/index.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/lsh_index.cpp.o"
  "CMakeFiles/laminar_spt.dir/lsh_index.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/recommend.cpp.o"
  "CMakeFiles/laminar_spt.dir/recommend.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/rerank.cpp.o"
  "CMakeFiles/laminar_spt.dir/rerank.cpp.o.d"
  "CMakeFiles/laminar_spt.dir/spt.cpp.o"
  "CMakeFiles/laminar_spt.dir/spt.cpp.o.d"
  "liblaminar_spt.a"
  "liblaminar_spt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_spt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
