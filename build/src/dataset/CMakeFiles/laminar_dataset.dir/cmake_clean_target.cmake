file(REMOVE_RECURSE
  "liblaminar_dataset.a"
)
