file(REMOVE_RECURSE
  "CMakeFiles/laminar_dataset.dir/families.cpp.o"
  "CMakeFiles/laminar_dataset.dir/families.cpp.o.d"
  "CMakeFiles/laminar_dataset.dir/generator.cpp.o"
  "CMakeFiles/laminar_dataset.dir/generator.cpp.o.d"
  "liblaminar_dataset.a"
  "liblaminar_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
