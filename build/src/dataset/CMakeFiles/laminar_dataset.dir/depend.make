# Empty dependencies file for laminar_dataset.
# This may be replaced when dependencies are built.
