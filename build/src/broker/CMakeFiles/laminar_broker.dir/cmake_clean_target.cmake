file(REMOVE_RECURSE
  "liblaminar_broker.a"
)
