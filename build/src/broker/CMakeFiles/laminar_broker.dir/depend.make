# Empty dependencies file for laminar_broker.
# This may be replaced when dependencies are built.
