file(REMOVE_RECURSE
  "CMakeFiles/laminar_broker.dir/broker.cpp.o"
  "CMakeFiles/laminar_broker.dir/broker.cpp.o.d"
  "liblaminar_broker.a"
  "liblaminar_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
