# Empty dependencies file for laminar_server.
# This may be replaced when dependencies are built.
