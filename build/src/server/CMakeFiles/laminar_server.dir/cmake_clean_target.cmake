file(REMOVE_RECURSE
  "liblaminar_server.a"
)
