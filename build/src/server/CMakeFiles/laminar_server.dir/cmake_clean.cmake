file(REMOVE_RECURSE
  "CMakeFiles/laminar_server.dir/server.cpp.o"
  "CMakeFiles/laminar_server.dir/server.cpp.o.d"
  "liblaminar_server.a"
  "liblaminar_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
