file(REMOVE_RECURSE
  "liblaminar_client.a"
)
