file(REMOVE_RECURSE
  "CMakeFiles/laminar_client.dir/cli.cpp.o"
  "CMakeFiles/laminar_client.dir/cli.cpp.o.d"
  "CMakeFiles/laminar_client.dir/client.cpp.o"
  "CMakeFiles/laminar_client.dir/client.cpp.o.d"
  "CMakeFiles/laminar_client.dir/connect.cpp.o"
  "CMakeFiles/laminar_client.dir/connect.cpp.o.d"
  "CMakeFiles/laminar_client.dir/demo_workflows.cpp.o"
  "CMakeFiles/laminar_client.dir/demo_workflows.cpp.o.d"
  "liblaminar_client.a"
  "liblaminar_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
