# Empty dependencies file for laminar_client.
# This may be replaced when dependencies are built.
