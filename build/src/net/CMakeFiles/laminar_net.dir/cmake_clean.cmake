file(REMOVE_RECURSE
  "CMakeFiles/laminar_net.dir/bytestream.cpp.o"
  "CMakeFiles/laminar_net.dir/bytestream.cpp.o.d"
  "CMakeFiles/laminar_net.dir/http.cpp.o"
  "CMakeFiles/laminar_net.dir/http.cpp.o.d"
  "CMakeFiles/laminar_net.dir/multipart.cpp.o"
  "CMakeFiles/laminar_net.dir/multipart.cpp.o.d"
  "liblaminar_net.a"
  "liblaminar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
