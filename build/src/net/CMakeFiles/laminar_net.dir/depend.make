# Empty dependencies file for laminar_net.
# This may be replaced when dependencies are built.
