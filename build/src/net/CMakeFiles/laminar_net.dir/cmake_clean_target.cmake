file(REMOVE_RECURSE
  "liblaminar_net.a"
)
