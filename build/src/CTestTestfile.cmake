# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("pycode")
subdirs("spt")
subdirs("embed")
subdirs("broker")
subdirs("dataflow")
subdirs("registry")
subdirs("net")
subdirs("engine")
subdirs("search")
subdirs("dataset")
subdirs("server")
subdirs("client")
