
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pycode/ast.cpp" "src/pycode/CMakeFiles/laminar_pycode.dir/ast.cpp.o" "gcc" "src/pycode/CMakeFiles/laminar_pycode.dir/ast.cpp.o.d"
  "/root/repo/src/pycode/lexer.cpp" "src/pycode/CMakeFiles/laminar_pycode.dir/lexer.cpp.o" "gcc" "src/pycode/CMakeFiles/laminar_pycode.dir/lexer.cpp.o.d"
  "/root/repo/src/pycode/parser.cpp" "src/pycode/CMakeFiles/laminar_pycode.dir/parser.cpp.o" "gcc" "src/pycode/CMakeFiles/laminar_pycode.dir/parser.cpp.o.d"
  "/root/repo/src/pycode/token.cpp" "src/pycode/CMakeFiles/laminar_pycode.dir/token.cpp.o" "gcc" "src/pycode/CMakeFiles/laminar_pycode.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
