file(REMOVE_RECURSE
  "CMakeFiles/laminar_pycode.dir/ast.cpp.o"
  "CMakeFiles/laminar_pycode.dir/ast.cpp.o.d"
  "CMakeFiles/laminar_pycode.dir/lexer.cpp.o"
  "CMakeFiles/laminar_pycode.dir/lexer.cpp.o.d"
  "CMakeFiles/laminar_pycode.dir/parser.cpp.o"
  "CMakeFiles/laminar_pycode.dir/parser.cpp.o.d"
  "CMakeFiles/laminar_pycode.dir/token.cpp.o"
  "CMakeFiles/laminar_pycode.dir/token.cpp.o.d"
  "liblaminar_pycode.a"
  "liblaminar_pycode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_pycode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
