# Empty compiler generated dependencies file for laminar_pycode.
# This may be replaced when dependencies are built.
