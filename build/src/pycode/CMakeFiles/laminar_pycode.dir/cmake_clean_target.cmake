file(REMOVE_RECURSE
  "liblaminar_pycode.a"
)
