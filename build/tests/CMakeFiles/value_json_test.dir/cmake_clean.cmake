file(REMOVE_RECURSE
  "CMakeFiles/value_json_test.dir/value_json_test.cpp.o"
  "CMakeFiles/value_json_test.dir/value_json_test.cpp.o.d"
  "value_json_test"
  "value_json_test.pdb"
  "value_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
