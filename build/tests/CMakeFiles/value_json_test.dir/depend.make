# Empty dependencies file for value_json_test.
# This may be replaced when dependencies are built.
