# Empty compiler generated dependencies file for client_integration_test.
# This may be replaced when dependencies are built.
