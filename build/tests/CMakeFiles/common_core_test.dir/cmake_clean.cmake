file(REMOVE_RECURSE
  "CMakeFiles/common_core_test.dir/common_core_test.cpp.o"
  "CMakeFiles/common_core_test.dir/common_core_test.cpp.o.d"
  "common_core_test"
  "common_core_test.pdb"
  "common_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
