# Empty dependencies file for common_core_test.
# This may be replaced when dependencies are built.
