# Empty dependencies file for log_clock_test.
# This may be replaced when dependencies are built.
