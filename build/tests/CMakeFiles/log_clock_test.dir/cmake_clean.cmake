file(REMOVE_RECURSE
  "CMakeFiles/log_clock_test.dir/log_clock_test.cpp.o"
  "CMakeFiles/log_clock_test.dir/log_clock_test.cpp.o.d"
  "log_clock_test"
  "log_clock_test.pdb"
  "log_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
