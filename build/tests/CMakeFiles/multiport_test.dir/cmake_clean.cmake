file(REMOVE_RECURSE
  "CMakeFiles/multiport_test.dir/multiport_test.cpp.o"
  "CMakeFiles/multiport_test.dir/multiport_test.cpp.o.d"
  "multiport_test"
  "multiport_test.pdb"
  "multiport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
