# Empty dependencies file for multiport_test.
# This may be replaced when dependencies are built.
