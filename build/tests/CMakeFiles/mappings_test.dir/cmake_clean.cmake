file(REMOVE_RECURSE
  "CMakeFiles/mappings_test.dir/mappings_test.cpp.o"
  "CMakeFiles/mappings_test.dir/mappings_test.cpp.o.d"
  "mappings_test"
  "mappings_test.pdb"
  "mappings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mappings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
