# Empty compiler generated dependencies file for mappings_test.
# This may be replaced when dependencies are built.
