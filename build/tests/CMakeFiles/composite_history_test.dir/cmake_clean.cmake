file(REMOVE_RECURSE
  "CMakeFiles/composite_history_test.dir/composite_history_test.cpp.o"
  "CMakeFiles/composite_history_test.dir/composite_history_test.cpp.o.d"
  "composite_history_test"
  "composite_history_test.pdb"
  "composite_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
