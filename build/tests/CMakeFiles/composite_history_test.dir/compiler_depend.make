# Empty compiler generated dependencies file for composite_history_test.
# This may be replaced when dependencies are built.
