
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aroma_test.cpp" "tests/CMakeFiles/aroma_test.dir/aroma_test.cpp.o" "gcc" "tests/CMakeFiles/aroma_test.dir/aroma_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spt/CMakeFiles/laminar_spt.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/laminar_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
