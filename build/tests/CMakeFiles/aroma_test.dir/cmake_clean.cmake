file(REMOVE_RECURSE
  "CMakeFiles/aroma_test.dir/aroma_test.cpp.o"
  "CMakeFiles/aroma_test.dir/aroma_test.cpp.o.d"
  "aroma_test"
  "aroma_test.pdb"
  "aroma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aroma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
