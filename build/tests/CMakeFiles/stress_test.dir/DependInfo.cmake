
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/stress_test.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/stress_test.dir/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/laminar_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/laminar_server.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/laminar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/laminar_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/laminar_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/laminar_search.dir/DependInfo.cmake"
  "/root/repo/build/src/spt/CMakeFiles/laminar_spt.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/laminar_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/laminar_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/pycode/CMakeFiles/laminar_pycode.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/laminar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
