// Domain example: real-time sensor anomaly detection — the workflow behind
// the paper's Fig. 8 search results (SensorProducer -> NormalizeData ->
// AnomalyDetection -> Alerting), run with the dynamic (Redis-style) mapping
// and true streaming: alerts print the moment they are detected, while the
// stream is still being processed.
#include <cstdio>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "common/clock.hpp"

using namespace laminar;

int main() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 50;  // show a realistic serverless cold start
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarClient& cli = *laminar.client;

  const client::DemoWorkflow* demo = client::FindDemoWorkflow("anomaly_wf");
  Result<client::WorkflowInfo> wf =
      cli.RegisterWorkflow(demo->name, demo->spec, demo->pes, demo->code);
  if (!wf.ok()) {
    std::printf("register failed: %s\n", wf.status().ToString().c_str());
    return 1;
  }
  std::printf("registered %s (id %lld) with %zu PEs\n", demo->name.c_str(),
              static_cast<long long>(wf->id), wf->pe_ids.size());

  std::printf("\n-- streaming 2000 sensor readings through the dynamic "
              "mapping --\n");
  Stopwatch watch;
  int alerts = 0;
  client::RunOutcome outcome = cli.RunDynamic(
      wf->id, Value(2000), [&](const std::string& line) {
        ++alerts;
        if (alerts <= 10) {
          std::printf("[%7.1f ms] %s\n", watch.ElapsedMillis(), line.c_str());
        }
      });
  if (!outcome.status.ok()) {
    std::printf("run failed: %s\n", outcome.status.ToString().c_str());
    return 1;
  }
  std::printf("... %d alerts total; first alert after %.1f ms, run took "
              "%.1f ms; cold start: %s; peak workers: %lld\n",
              alerts, outcome.first_line_ms, outcome.total_ms,
              outcome.stats.GetBool("coldStart") ? "yes" : "no",
              static_cast<long long>(outcome.stats.GetInt("peakWorkers")));

  std::printf("\n-- the Fig. 8 query --\n");
  auto hits = cli.SearchRegistrySemantic(
      "a pe that is able to detect anomalies", "pe", 5);
  if (hits.ok()) {
    std::printf("%-6s %-22s %-52s %s\n", "peId", "peName", "description",
                "cosine_similarity");
    for (const client::SearchHit& hit : hits.value()) {
      std::printf("%-6lld %-22s %-52s %.6f\n",
                  static_cast<long long>(hit.id), hit.name.c_str(),
                  hit.description.substr(0, 50).c_str(), hit.score);
    }
  }
  return 0;
}
