// The interactive Laminar CLI (paper Fig. 5): spins up an in-process server
// and drops into the command loop. Try:
//
//   (laminar) help
//   (laminar) register_workflow isprime_wf.py
//   (laminar) run isprime_wf -i 10 --multi 9
//   (laminar) semantic_search pe "a pe that is able to detect anomalies"
//   (laminar) code_recommendation pe "random.randint(1, 1000)"
//   (laminar) quit
//
// Non-interactive use: pipe commands on stdin, e.g.
//   printf 'register_workflow isprime_wf.py\nrun isprime_wf -i 10\nquit\n' \
//     | ./laminar_cli
#include <iostream>

#include "client/cli.hpp"
#include "client/connect.hpp"

using namespace laminar;

int main() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarCli cli(*laminar.client);
  cli.RunLoop(std::cin, std::cout);
  std::cout << "bye\n";
  return 0;
}
