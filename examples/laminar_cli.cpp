// The interactive Laminar CLI (paper Fig. 5): by default spins up an
// in-process server and drops into the command loop; with --connect it
// dials a remote laminar_serve over TCP instead, making client and server
// separate OS processes. Try:
//
//   (laminar) help
//   (laminar) register_workflow isprime_wf.py
//   (laminar) run isprime_wf -i 10 --multi 9
//   (laminar) semantic_search pe "a pe that is able to detect anomalies"
//   (laminar) code_recommendation pe "random.randint(1, 1000)"
//   (laminar) quit
//
// Non-interactive use: pipe commands on stdin, e.g.
//   printf 'register_workflow isprime_wf.py\nrun isprime_wf -i 10\nquit\n' \
//     | ./laminar_cli
//
// Over TCP (server started separately with laminar_serve --port 8477):
//   ./laminar_cli --connect 127.0.0.1:8477
//
// With --metrics, the Prometheus exposition of everything the session did
// is dumped to stdout after the command loop exits (scripting-friendly:
// pipe commands in, scrape the counters out). Over TCP the scrape comes
// from the remote server's registry.
#include <cstring>
#include <iostream>

#include "client/cli.hpp"
#include "client/connect.hpp"

using namespace laminar;

int main(int argc, char** argv) {
  bool dump_metrics = false;
  std::string connect_to;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_to = argv[++i];
    } else {
      std::cerr << "usage: laminar_cli [--connect HOST:PORT] [--metrics]\n"
                << "  --connect HOST:PORT  use a remote laminar_serve over "
                   "TCP instead of an in-process server\n"
                << "  --metrics  print a Prometheus /metrics scrape on exit\n";
      return 2;
    }
  }

  if (!connect_to.empty()) {
    Result<client::TcpClient> remote = client::ConnectTcp(connect_to);
    if (!remote.ok()) {
      std::cerr << "laminar_cli: " << remote.status().ToString() << "\n";
      return 1;
    }
    client::LaminarCli cli(*remote->client);
    cli.RunLoop(std::cin, std::cout);
    if (dump_metrics) {
      auto metrics = remote->client->GetMetrics();
      if (metrics.ok()) std::cout << "\n" << metrics.value();
    }
    std::cout << "bye\n";
    return 0;
  }

  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarCli cli(*laminar.client);
  cli.RunLoop(std::cin, std::cout);
  if (dump_metrics) {
    auto metrics = laminar.client->GetMetrics();
    if (metrics.ok()) std::cout << "\n" << metrics.value();
  }
  std::cout << "bye\n";
  return 0;
}
