// The interactive Laminar CLI (paper Fig. 5): spins up an in-process server
// and drops into the command loop. Try:
//
//   (laminar) help
//   (laminar) register_workflow isprime_wf.py
//   (laminar) run isprime_wf -i 10 --multi 9
//   (laminar) semantic_search pe "a pe that is able to detect anomalies"
//   (laminar) code_recommendation pe "random.randint(1, 1000)"
//   (laminar) quit
//
// Non-interactive use: pipe commands on stdin, e.g.
//   printf 'register_workflow isprime_wf.py\nrun isprime_wf -i 10\nquit\n' \
//     | ./laminar_cli
//
// With --metrics, the Prometheus exposition of everything the session did
// is dumped to stdout after the command loop exits (scripting-friendly:
// pipe commands in, scrape the counters out).
#include <cstring>
#include <iostream>

#include "client/cli.hpp"
#include "client/connect.hpp"

using namespace laminar;

int main(int argc, char** argv) {
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else {
      std::cerr << "usage: laminar_cli [--metrics]\n"
                << "  --metrics  print a Prometheus /metrics scrape on exit\n";
      return 2;
    }
  }
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarCli cli(*laminar.client);
  cli.RunLoop(std::cin, std::cout);
  if (dump_metrics) {
    auto metrics = laminar.client->GetMetrics();
    if (metrics.ok()) std::cout << "\n" << metrics.value();
  }
  std::cout << "bye\n";
  return 0;
}
