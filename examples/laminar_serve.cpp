// laminar_serve: the Laminar server as a standalone process behind the epoll
// TCP transport — the first time client and server run in separate OS
// processes (ROADMAP item 2).
//
//   laminar_serve --port 8477
//   laminar_serve --port 0                 # ephemeral; prints the bound port
//   laminar_serve --port 8477 --snapshot /var/lib/laminar/snap.json \
//                 --wal /var/lib/laminar/wal.log
//
// On startup it prints exactly one line to stdout:
//   laminar_serve listening on <bind>:<port>
// (scripts and tests parse the port out of it), then serves until SIGINT /
// SIGTERM or stdin EOF when --stdin-eof is given.
//
// Connect with laminar_cli --connect <host>:<port>, or programmatically via
// client::ConnectTcp().
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client/connect.hpp"

using namespace laminar;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--max-connections N]\n"
      "          [--backlog N] [--handler-threads N] [--ingest-threads N]\n"
      "          [--snapshot PATH --wal PATH] [--wal-fsync MODE]\n"
      "          [--wal-fsync-interval-ms N] [--replica-of HOST:PORT]\n"
      "          [--max-replica-lag-ms N] [--rps N] [--cold-start-ms N]\n"
      "          [--quantize] [--rerank-overfetch X] [--stdin-eof]\n"
      "  --port N            TCP port (0 = ephemeral, printed on stdout; "
      "default 8477)\n"
      "  --bind ADDR         bind address (default 127.0.0.1)\n"
      "  --max-connections N open-connection cap (default 256)\n"
      "  --backlog N         kernel accept backlog (default 64)\n"
      "  --handler-threads N per-connection handler pool cap (default 8)\n"
      "  --ingest-threads N  server ingest pool size (default 4)\n"
      "  --snapshot PATH     registry snapshot for recovery + saves\n"
      "  --wal PATH          write-ahead log (enables crash recovery and\n"
      "                      makes this node a replication leader)\n"
      "  --wal-fsync MODE    WAL durability: none|interval|per_record\n"
      "                      (default none)\n"
      "  --wal-fsync-interval-ms N  flush cadence for --wal-fsync interval\n"
      "                      (default 50)\n"
      "  --replica-of H:P    run as a read-only follower of that leader\n"
      "  --max-replica-lag-ms N  follower refuses reads with 503 unless it\n"
      "                      confirmed catch-up within N ms (default 0 =\n"
      "                      always serve)\n"
      "  --rps N             per-tenant request rate cap (token bucket;\n"
      "                      default 0 = unlimited)\n"
      "  --cold-start-ms N   simulated engine cold start (default 0)\n"
      "  --quantize          keep an SQ8 int8 mirror of every vector index\n"
      "                      and generate candidates through it (4x less\n"
      "                      memory streamed; returned scores unchanged)\n"
      "  --rerank-overfetch X  exact-rerank over-fetch factor with\n"
      "                      --quantize (default 4.0; higher = better\n"
      "                      recall, slower)\n"
      "  --stdin-eof         also exit when stdin reaches EOF\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  net::TcpListenerConfig listener;
  listener.port = 8477;
  bool stdin_eof = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      listener.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--bind") == 0) {
      listener.bind_address = next();
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      listener.max_connections = static_cast<size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      listener.backlog = std::atoi(next());
    } else if (std::strcmp(argv[i], "--handler-threads") == 0) {
      listener.max_handler_threads = static_cast<size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--ingest-threads") == 0) {
      config.ingest_threads = static_cast<size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      config.snapshot_path = next();
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      config.wal_path = next();
    } else if (std::strcmp(argv[i], "--wal-fsync") == 0) {
      config.wal_fsync = next();
    } else if (std::strcmp(argv[i], "--wal-fsync-interval-ms") == 0) {
      config.wal_fsync_interval_ms = std::atoi(next());
    } else if (std::strcmp(argv[i], "--replica-of") == 0) {
      config.replica_of = next();
    } else if (std::strcmp(argv[i], "--max-replica-lag-ms") == 0) {
      config.max_replica_lag_ms = std::atoi(next());
    } else if (std::strcmp(argv[i], "--rps") == 0) {
      // Models fixed per-node serving capacity (bench_replication spawns
      // each node with the same cap, so aggregate admitted QPS scales with
      // node count even on one physical machine).
      config.tenant_quotas.requests_per_sec = std::atof(next());
      config.tenant_quotas.burst = config.tenant_quotas.requests_per_sec;
    } else if (std::strcmp(argv[i], "--cold-start-ms") == 0) {
      config.engine.cold_start_ms = std::atof(next());
    } else if (std::strcmp(argv[i], "--quantize") == 0) {
      config.search.vector_index.quantize = true;
    } else if (std::strcmp(argv[i], "--rerank-overfetch") == 0) {
      config.search.vector_index.rerank_overfetch = std::atof(next());
    } else if (std::strcmp(argv[i], "--stdin-eof") == 0) {
      stdin_eof = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  Result<client::TcpLaminarServer> serving =
      client::ServeTcp(std::move(config), listener);
  if (!serving.ok()) {
    std::fprintf(stderr, "laminar_serve: %s\n",
                 serving.status().ToString().c_str());
    return 1;
  }
  std::printf("laminar_serve listening on %s:%u\n",
              listener.bind_address.c_str(),
              static_cast<unsigned>(serving->port()));
  std::fflush(stdout);

  if (stdin_eof) {
    // Parent-process lifetime coupling: drain stdin on this thread and shut
    // down when it closes (the transport tests run the server this way so a
    // killed test never leaks a listener).
    int c;
    while ((c = std::getchar()) != EOF) {
    }
  } else {
    int sig = 0;
    sigwait(&sigs, &sig);
  }
  serving->listener->Stop();
  // stderr, not stdout: the parent may have closed the stdout pipe already
  // (it only parses the banner), and stdout must stay machine-parseable.
  std::fprintf(stderr, "laminar_serve: shut down\n");
  return 0;
}
