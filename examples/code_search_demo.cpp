// Domain example: the code search & recommendation workflow of §V-§VI on a
// populated registry — literal search, semantic text-to-code search, ReACC
// (llm) clone search, and Aroma (spt) structural recommendation from a
// *partial* snippet, shown side by side.
#include <cstdio>

#include "client/connect.hpp"
#include "dataset/generator.hpp"

using namespace laminar;

int main() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarClient& cli = *laminar.client;

  // Populate the registry with a slice of the CodeSearchNet-PE corpus.
  dataset::DatasetConfig corpus;
  corpus.families = 16;
  corpus.variants_per_family = 4;
  corpus.docstring_probability = 1.0;
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(corpus);
  for (const dataset::PeExample& ex : ds.examples()) {
    Result<client::PeInfo> pe = cli.RegisterPe(ex.pe_code, ex.name);
    if (!pe.ok()) {
      std::printf("register %s failed: %s\n", ex.name.c_str(),
                  pe.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("registered %zu PEs from %zu semantic families\n\n", ds.size(),
              ds.family_count());

  std::printf("== literal_search pe 'median' ==\n");
  auto literal = cli.SearchRegistryLiteral("median", "pe", 3);
  for (const client::SearchHit& hit : literal.value()) {
    std::printf("  [%lld] %-24s %s\n", static_cast<long long>(hit.id),
                hit.name.c_str(), hit.description.substr(0, 56).c_str());
  }

  std::printf("\n== semantic_search pe 'flag outlier readings in sensor "
              "data' ==\n");
  auto semantic =
      cli.SearchRegistrySemantic("flag outlier readings in sensor data",
                                 "pe", 3);
  for (const client::SearchHit& hit : semantic.value()) {
    std::printf("  [%lld] %-24s %.4f  %s\n", static_cast<long long>(hit.id),
                hit.name.c_str(), hit.score,
                hit.description.substr(0, 48).c_str());
  }

  // A developer starts typing a new PE: half a binary search.
  std::string partial_snippet =
      "class MySearch(IterativePE):\n"
      "    def _process(self, data):\n"
      "        lo = 0\n"
      "        hi = len(data[0]) - 1\n"
      "        while lo <= hi:\n";
  std::printf("\n== code_recommendation pe <partial binary search> "
              "(--embedding_type spt) ==\n");
  auto spt = cli.CodeRecommendation(partial_snippet, "pe", "spt", 3);
  for (const client::SearchHit& hit : spt.value()) {
    std::printf("  [%lld] %-24s score %.1f\n",
                static_cast<long long>(hit.id), hit.name.c_str(), hit.score);
    if (!hit.similar_code.empty()) {
      std::printf("    recommended lines:\n");
      size_t start = 0;
      int shown = 0;
      while (start < hit.similar_code.size() && shown < 4) {
        size_t end = hit.similar_code.find('\n', start);
        if (end == std::string::npos) end = hit.similar_code.size();
        std::printf("    | %s\n",
                    hit.similar_code.substr(start, end - start).c_str());
        start = end + 1;
        ++shown;
      }
    }
  }

  std::printf("\n== the same snippet with --embedding_type llm (ReACC "
              "baseline) ==\n");
  auto llm = cli.CodeRecommendation(partial_snippet, "pe", "llm", 3);
  for (const client::SearchHit& hit : llm.value()) {
    std::printf("  [%lld] %-24s cosine %.4f\n",
                static_cast<long long>(hit.id), hit.name.c_str(), hit.score);
  }

  std::printf("\nnote: the spt path finds the binary-search family from "
              "structure alone; the llm path must rely on verbatim token "
              "overlap with the partial snippet.\n");
  return 0;
}
