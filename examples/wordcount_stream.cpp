#include <set>
// Domain example: classic streaming word count with a stateful PE and
// group-by routing — the workload pattern dispel4py's groupings exist for.
// Runs the same abstract graph under all three mappings and shows that the
// counts agree, plus the multi mapping's static partition (paper Fig. 5b
// style) with -v output.
#include <cstdio>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"

using namespace laminar;

int main() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarClient& cli = *laminar.client;

  const client::DemoWorkflow* demo = client::FindDemoWorkflow("wordcount_wf");
  Result<client::WorkflowInfo> wf =
      cli.RegisterWorkflow(demo->name, demo->spec, demo->pes, demo->code);
  if (!wf.ok()) {
    std::printf("register failed: %s\n", wf.status().ToString().c_str());
    return 1;
  }

  std::printf("== run (sequential) ==\n");
  client::RunOutcome seq = cli.Run(wf->id, Value(9));
  for (const std::string& line : seq.lines) std::printf("%s\n", line.c_str());

  std::printf("\n== run_multiprocess with verbose partition output ==\n");
  client::RunOutcome multi = cli.RunSpec(demo->spec, "multi", Value(9),
                                         /*processes=*/8, nullptr, {},
                                         /*verbose=*/true);
  for (const std::string& line : multi.lines) {
    std::printf("%s\n", line.c_str());
  }

  std::printf("\n== run_dynamic ==\n");
  client::RunOutcome dyn = cli.RunDynamic(wf->id, Value(9));
  for (const std::string& line : dyn.lines) std::printf("%s\n", line.c_str());

  // The word counts (non-diagnostic lines) must agree across mappings.
  auto counts_only = [](const std::vector<std::string>& lines) {
    std::multiset<std::string> out;
    for (const std::string& line : lines) {
      if (line.find(": ") != std::string::npos &&
          line.find("Partition") == std::string::npos &&
          line.find("rank") == std::string::npos) {
        out.insert(line);
      }
    }
    return out;
  };
  bool agree = counts_only(seq.lines) == counts_only(multi.lines) &&
               counts_only(seq.lines) == counts_only(dyn.lines);
  std::printf("\ncounts agree across all three mappings: %s\n",
              agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
