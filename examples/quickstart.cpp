// Quickstart: the paper's isprime_wf end to end.
//
// Spins up an in-process Laminar server, registers the isprime workflow
// (NumberProducer -> IsPrime -> PrintPrime, Listing 1 / Fig. 5), runs it
// sequentially, in parallel with the multiprocessing mapping, and with the
// dynamic (Redis-style) mapping — Listings 2/3: `client.run_dynamic(graph,
// input=5)` — then shows a semantic search over what was registered.
#include <cstdio>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"

using namespace laminar;

int main() {
  // Server with instant cold starts for a snappy demo.
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarClient& cli = *laminar.client;

  std::printf("== register user & login ==\n");
  if (Result<int64_t> uid = cli.Register("demo", "hunter2"); uid.ok()) {
    std::printf("registered user id %lld\n", static_cast<long long>(*uid));
  }
  if (Status st = cli.Login("demo", "hunter2"); !st.ok()) {
    std::printf("login failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n== register isprime_wf ==\n");
  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Result<client::WorkflowInfo> wf =
      cli.RegisterWorkflow(demo->name, demo->spec, demo->pes, demo->code);
  if (!wf.ok()) {
    std::printf("register failed: %s\n", wf.status().ToString().c_str());
    return 1;
  }
  std::printf("workflow id %lld with %zu PEs\n",
              static_cast<long long>(wf->id), wf->pe_ids.size());

  std::printf("\n== run (sequential, input=10) ==\n");
  client::RunOutcome seq = cli.Run(wf->id, Value(10));
  for (const std::string& line : seq.lines) std::printf("%s\n", line.c_str());
  std::printf("-> %lld tuples in %.2f ms\n",
              static_cast<long long>(seq.stats.GetInt("tuples")),
              seq.stats.GetDouble("runMs"));

  std::printf("\n== run_multiprocess (9 processes) ==\n");
  client::RunOutcome multi = cli.RunMultiprocess(wf->id, Value(10), 9);
  for (const std::string& line : multi.lines) std::printf("%s\n", line.c_str());

  std::printf("\n== run_dynamic (Listing 3: one call, no tuning) ==\n");
  client::RunOutcome dyn = cli.RunDynamic(wf->id, Value(5));
  for (const std::string& line : dyn.lines) std::printf("%s\n", line.c_str());
  std::printf("-> peak workers: %lld\n",
              static_cast<long long>(dyn.stats.GetInt("peakWorkers")));

  std::printf("\n== semantic search: 'a pe that checks prime numbers' ==\n");
  auto hits = cli.SearchRegistrySemantic("a pe that checks prime numbers");
  if (hits.ok()) {
    for (const client::SearchHit& hit : hits.value()) {
      std::printf("  [%lld] %-16s %.4f  %s\n",
                  static_cast<long long>(hit.id), hit.name.c_str(), hit.score,
                  hit.description.substr(0, 60).c_str());
    }
  }

  std::printf("\n== code recommendation for 'random.randint(1, 1000)' ==\n");
  auto recs = cli.CodeRecommendation("random.randint(1, 1000)", "pe", "spt");
  if (recs.ok()) {
    for (const client::SearchHit& hit : recs.value()) {
      std::printf("  [%lld] %-16s score %.1f\n",
                  static_cast<long long>(hit.id), hit.name.c_str(), hit.score);
    }
  }
  std::printf("\nquickstart done.\n");
  return 0;
}
