#include <algorithm>
// Tests for code completion (AromaEngine::Complete and its exposure through
// the search service, server endpoint, client API and CLI).
#include <gtest/gtest.h>

#include <sstream>

#include "client/cli.hpp"
#include "client/connect.hpp"
#include "dataset/generator.hpp"
#include "spt/recommend.hpp"

namespace laminar {
namespace {

constexpr const char* kFullSnippet =
    "class RunningTotal(IterativePE):\n"
    "    def __init__(self):\n"
    "        IterativePE.__init__(self)\n"
    "    def _process(self, values):\n"
    "        sums = []\n"
    "        acc = 0\n"
    "        for v in values:\n"
    "            acc = acc + v\n"
    "            sums.append(acc)\n"
    "        return sums\n";

TEST(AromaComplete, ContinuesAPrefix) {
  spt::AromaEngine engine;
  ASSERT_TRUE(engine.AddSnippet(1, kFullSnippet).ok());
  // The user has typed the first half.
  std::string prefix =
      "class MyTotal(IterativePE):\n"
      "    def _process(self, values):\n"
      "        sums = []\n"
      "        acc = 0\n";
  Result<std::vector<spt::Completion>> completions = engine.Complete(prefix);
  ASSERT_TRUE(completions.ok());
  ASSERT_FALSE(completions->empty());
  const spt::Completion& c = completions->front();
  EXPECT_EQ(c.snippet_id, 1);
  // The continuation must contain the loop body that follows the prefix.
  EXPECT_NE(c.continuation.find("for v in values:"), std::string::npos)
      << c.continuation;
  EXPECT_NE(c.continuation.find("return sums"), std::string::npos);
  // ...and not repeat the already-typed initialization.
  EXPECT_EQ(c.continuation.find("acc = 0"), std::string::npos)
      << c.continuation;
}

TEST(AromaComplete, NoContinuationWhenQueryCoversWholeSnippet) {
  spt::AromaEngine engine;
  ASSERT_TRUE(engine.AddSnippet(1, kFullSnippet).ok());
  Result<std::vector<spt::Completion>> completions =
      engine.Complete(kFullSnippet);
  ASSERT_TRUE(completions.ok());
  // The full snippet matches everything; nothing is left to suggest.
  for (const spt::Completion& c : completions.value()) {
    EXPECT_NE(c.snippet_id, 1);
  }
}

TEST(AromaComplete, WeakMatchesFiltered) {
  spt::AromaEngine engine;
  ASSERT_TRUE(engine.AddSnippet(1, kFullSnippet).ok());
  Result<std::vector<spt::Completion>> completions =
      engine.Complete("import os\n");
  ASSERT_TRUE(completions.ok());
  EXPECT_TRUE(completions->empty());  // below the 6.0 overlap threshold
}

TEST(AromaComplete, RanksByOverlap) {
  spt::AromaEngine engine;
  dataset::DatasetConfig config;
  config.families = 10;
  config.variants_per_family = 3;
  auto ds = dataset::CodeSearchNetPeDataset::Generate(config);
  for (const auto& ex : ds.examples()) {
    ASSERT_TRUE(engine.AddSnippet(ex.id, ex.pe_code).ok());
  }
  const auto& ex = ds.example(4);
  std::string prefix = dataset::DropCode(ex.pe_code, 0.6);
  Result<std::vector<spt::Completion>> completions =
      engine.Complete(prefix, 3);
  ASSERT_TRUE(completions.ok());
  ASSERT_FALSE(completions->empty());
  for (size_t i = 1; i < completions->size(); ++i) {
    EXPECT_GE((*completions)[i - 1].score, (*completions)[i].score);
  }
  // The best continuation should come from the query's own family.
  const auto& members = ds.GroupMembers(ex.group);
  EXPECT_NE(std::find(members.begin(), members.end(),
                      completions->front().snippet_id),
            members.end());
}

class CompletionEndToEnd : public ::testing::Test {
 protected:
  CompletionEndToEnd() {
    server::ServerConfig config;
    config.engine.cold_start_ms = 0;
    laminar_ = client::ConnectInProcess(config);
  }
  client::InProcessLaminar laminar_;
};

TEST_F(CompletionEndToEnd, ThroughClientApi) {
  ASSERT_TRUE(laminar_.client->RegisterPe(kFullSnippet, "RunningTotal").ok());
  auto completions = laminar_.client->CompleteCode(
      "class MyTotal(IterativePE):\n"
      "    def _process(self, values):\n"
      "        sums = []\n"
      "        acc = 0\n");
  ASSERT_TRUE(completions.ok()) << completions.status().ToString();
  ASSERT_FALSE(completions->empty());
  EXPECT_EQ(completions->front().name, "RunningTotal");
  EXPECT_NE(completions->front().similar_code.find("sums.append"),
            std::string::npos);
}

TEST_F(CompletionEndToEnd, ThroughCli) {
  client::LaminarCli cli(*laminar_.client);
  std::ostringstream setup;
  cli.ExecuteLine("register_workflow isprime_wf.py", setup);
  std::ostringstream out;
  cli.ExecuteLine(
      "code_completion 'class P(IterativePE):\n"
      "    def _process(self, num):\n"
      "        if all(num % i != 0 for i in range(2, num)):'",
      out);
  // Completion either shows the continuation (return num) or reports no
  // match; with the IsPrime PE registered it must find it.
  EXPECT_NE(out.str().find("IsPrime"), std::string::npos) << out.str();
}

TEST_F(CompletionEndToEnd, EmptyRegistryYieldsNoCompletions) {
  auto completions = laminar_.client->CompleteCode("x = 1\n");
  ASSERT_TRUE(completions.ok());
  EXPECT_TRUE(completions->empty());
}

}  // namespace
}  // namespace laminar
