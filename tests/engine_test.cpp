#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/json.hpp"
#include "engine/engine.hpp"

namespace laminar::engine {
namespace {

Value IsPrimeSpec() {
  const char* spec = R"({
    "name": "isprime_wf",
    "pes": [
      {"name": "NumberProducer", "type": "NumberProducer",
       "params": {"seed": 42, "lo": 1, "hi": 1000}},
      {"name": "IsPrime", "type": "IsPrime", "params": {}},
      {"name": "PrintPrime", "type": "PrintPrime", "params": {}}
    ],
    "edges": [
      {"from": "NumberProducer", "to": "IsPrime"},
      {"from": "IsPrime", "to": "PrintPrime"}
    ]
  })";
  return json::Parse(spec).value();
}

// ---- Resource cache ----

TEST(ResourceCache, MissingUntilPut) {
  ResourceCache cache;
  ResourceRef ref{"data.csv", HashResourceContent("a,b\n")};
  EXPECT_EQ(cache.Missing({ref}).size(), 1u);
  cache.Put("data.csv", "a,b\n");
  EXPECT_TRUE(cache.Missing({ref}).empty());
  EXPECT_TRUE(cache.Has(ref));
  EXPECT_EQ(cache.Get("data.csv").value(), "a,b\n");
}

TEST(ResourceCache, ContentHashDetectsStaleness) {
  ResourceCache cache;
  cache.Put("f", "old content");
  ResourceRef updated{"f", HashResourceContent("new content")};
  // Same name, different content: must re-upload.
  EXPECT_EQ(cache.Missing({updated}).size(), 1u);
  cache.Put("f", "new content");
  EXPECT_TRUE(cache.Missing({updated}).empty());
}

TEST(ResourceCache, StatsTrackHitsMisses) {
  ResourceCache cache;
  ResourceRef ref{"x", HashResourceContent("1")};
  cache.Missing({ref});  // miss
  cache.Put("x", "1");
  cache.Missing({ref});  // hit
  ResourceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bytes_stored, 1u);
}

TEST(ResourceCache, LruEvictionUnderBudget) {
  ResourceCache cache(/*max_bytes=*/100);
  cache.Put("a", std::string(60, 'a'));
  cache.Put("b", std::string(60, 'b'));  // evicts a
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("b").has_value());
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ResourceCache, PutReplacesAndAdjustsBytes) {
  ResourceCache cache;
  cache.Put("f", std::string(100, 'x'));
  cache.Put("f", "tiny");
  EXPECT_EQ(cache.stats().bytes_stored, 4u);
}

// ---- AutoImporter ----

TEST(AutoImporter, ClassifiesImports) {
  AutoImporter importer;
  importer.RegisterModule("my_pe_module");
  Result<ImportScan> scan = importer.Scan(
      "import os\n"
      "import numpy as np\n"
      "from my_pe_module import Helper\n"
      "from totally_missing import thing\n");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->imports.size(), 4u);
  EXPECT_EQ(scan->preinstalled,
            (std::vector<std::string>{"os", "numpy"}));
  EXPECT_EQ(scan->registered, (std::vector<std::string>{"my_pe_module"}));
  EXPECT_EQ(scan->missing, (std::vector<std::string>{"totally_missing"}));
}

TEST(AutoImporter, DottedAndMultiImports) {
  AutoImporter importer;
  Result<ImportScan> scan = importer.Scan(
      "import os.path, json\n"
      "from collections import OrderedDict, deque\n");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->imports,
            (std::vector<std::string>{"os", "json", "collections"}));
  EXPECT_TRUE(scan->missing.empty());
}

TEST(AutoImporter, DeduplicatesAndKeepsOrder) {
  AutoImporter importer;
  Result<ImportScan> scan = importer.Scan(
      "import zlib9\nimport os\nimport zlib9\n");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->imports, (std::vector<std::string>{"zlib9", "os"}));
  EXPECT_EQ(scan->missing, (std::vector<std::string>{"zlib9"}));
}

TEST(AutoImporter, CheckSatisfiedGate) {
  AutoImporter importer;
  EXPECT_TRUE(importer.CheckSatisfied("import math\nx = math.sqrt(2)\n").ok());
  Status st = importer.CheckSatisfied("import nonexistent_pkg\n");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  importer.AddPreinstalled("nonexistent_pkg");
  EXPECT_TRUE(importer.CheckSatisfied("import nonexistent_pkg\n").ok());
}

TEST(AutoImporter, RelativeImportsIgnored) {
  AutoImporter importer;
  Result<ImportScan> scan = importer.Scan("from . import sibling\n");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->imports.empty());
}

// ---- Workflow spec ----

TEST(WorkflowSpec, BuildsValidGraph) {
  Result<dataflow::WorkflowGraph> graph = BuildGraph(IsPrimeSpec());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NodeCount(), 3u);
  EXPECT_EQ(graph->Edges().size(), 2u);
  EXPECT_EQ(graph->Node(0).name(), "NumberProducer");
}

TEST(WorkflowSpec, RejectsUnknownType) {
  Value spec = IsPrimeSpec();
  spec["pes"].mutable_array()[0]["type"] = "Nonexistent";
  EXPECT_FALSE(BuildGraph(spec).ok());
}

TEST(WorkflowSpec, RejectsDuplicateNamesAndBadEdges) {
  Value spec = IsPrimeSpec();
  spec["pes"].mutable_array()[1]["name"] = "NumberProducer";
  EXPECT_FALSE(BuildGraph(spec).ok());

  Value spec2 = IsPrimeSpec();
  spec2["edges"].mutable_array()[0]["to"] = "Ghost";
  EXPECT_FALSE(BuildGraph(spec2).ok());
}

TEST(WorkflowSpec, GroupByRequiresKey) {
  Value edge = Value::MakeObject();
  edge["grouping"] = "group_by";
  EXPECT_FALSE(ParseGrouping(edge).ok());
  edge["key"] = "word";
  Result<dataflow::Grouping> g = ParseGrouping(edge);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->key, "word");
  Value bad = Value::MakeObject();
  bad["grouping"] = "teleport";
  EXPECT_FALSE(ParseGrouping(bad).ok());
}

TEST(WorkflowSpec, EveryKnownTypeConstructs) {
  for (const std::string& type : KnownPeTypes()) {
    Value params = Value::MakeObject();
    if (type == "LineProducer") {
      params["lines"].push_back("a line");
    }
    Result<std::unique_ptr<dataflow::ProcessingElement>> pe =
        CreatePe(type, params);
    EXPECT_TRUE(pe.ok()) << type << ": " << pe.status().ToString();
  }
}

// ---- ExecutionEngine ----

EngineConfig FastConfig() {
  EngineConfig config;
  config.cold_start_ms = 0;
  return config;
}

TEST(Engine, ExecutesAndStreamsLines) {
  ExecutionEngine engine(FastConfig());
  ExecuteRequest req;
  req.workflow_spec = IsPrimeSpec();
  req.run_options.input = Value(30);
  std::vector<std::string> streamed;
  ExecuteStats stats;
  Result<dataflow::RunResult> result = engine.Execute(
      req, [&](const std::string& line) { streamed.push_back(line); }, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(streamed.size(), result->output_lines.size());
  EXPECT_EQ(stats.lines, streamed.size());
  EXPECT_GE(stats.tuples, 30u);
}

TEST(Engine, AllMappingsWork) {
  ExecutionEngine engine(FastConfig());
  for (const char* mapping : {"simple", "multi", "dynamic"}) {
    ExecuteRequest req;
    req.workflow_spec = IsPrimeSpec();
    req.mapping = mapping;
    req.run_options.input = Value(10);
    Result<dataflow::RunResult> result = engine.Execute(req);
    EXPECT_TRUE(result.ok()) << mapping << ": " << result.status().ToString();
  }
  ExecuteRequest bad;
  bad.workflow_spec = IsPrimeSpec();
  bad.mapping = "teleport";
  EXPECT_FALSE(engine.Execute(bad).ok());
}

TEST(Engine, MissingResourcesBlockExecution) {
  ExecutionEngine engine(FastConfig());
  ExecuteRequest req;
  req.workflow_spec = IsPrimeSpec();
  req.resources = {{"input.csv", HashResourceContent("1,2,3")}};
  Result<dataflow::RunResult> result = engine.Execute(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("input.csv"), std::string::npos);
  // Upload, then it runs.
  engine.PutResource("input.csv", "1,2,3");
  EXPECT_TRUE(engine.Execute(req).ok());
}

TEST(Engine, ImportGateUsesWorkflowCode) {
  ExecutionEngine engine(FastConfig());
  ExecuteRequest req;
  req.workflow_spec = IsPrimeSpec();
  req.workflow_code = "import missing_dependency\n";
  Result<dataflow::RunResult> result = engine.Execute(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  engine.auto_importer().RegisterModule("missing_dependency");
  EXPECT_TRUE(engine.Execute(req).ok());
}

TEST(Engine, ColdStartThenWarm) {
  EngineConfig config;
  config.cold_start_ms = 40;
  config.max_warm_instances = 2;
  ExecutionEngine engine(config);
  ExecuteRequest req;
  req.workflow_spec = IsPrimeSpec();
  req.run_options.input = Value(3);
  ExecuteStats first_stats;
  ASSERT_TRUE(engine.Execute(req, nullptr, &first_stats).ok());
  EXPECT_TRUE(first_stats.cold_start);
  EXPECT_EQ(engine.warm_instances(), 1);
  ExecuteStats second_stats;
  ASSERT_TRUE(engine.Execute(req, nullptr, &second_stats).ok());
  EXPECT_FALSE(second_stats.cold_start);  // warm reuse
}

TEST(Engine, ConcurrencyBounded) {
  EngineConfig config;
  config.cold_start_ms = 0;
  config.max_concurrent = 2;
  ExecutionEngine engine(config);
  // 4 concurrent executions with a CPU-heavy workflow: all must finish.
  Value spec = json::Parse(R"({
    "name": "burn",
    "pes": [
      {"name": "P", "type": "NumberProducer", "params": {}},
      {"name": "B", "type": "CpuBurn", "params": {"iters": 2000000}},
      {"name": "S", "type": "NullSink", "params": {}}
    ],
    "edges": [{"from": "P", "to": "B"}, {"from": "B", "to": "S"}]
  })").value();
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      ExecuteRequest req;
      req.workflow_spec = spec;
      req.run_options.input = Value(4);
      if (engine.Execute(req).ok()) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 4);
}

TEST(Engine, InvalidSpecFailsCleanly) {
  ExecutionEngine engine(FastConfig());
  ExecuteRequest req;
  req.workflow_spec = Value("not an object");
  EXPECT_FALSE(engine.Execute(req).ok());
}

}  // namespace
}  // namespace laminar::engine
