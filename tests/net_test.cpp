#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/byte_buffer.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/http.hpp"
#include "net/multipart.hpp"
#include "telemetry/telemetry.hpp"

// Wall-clock assertions need headroom under ThreadSanitizer: its scheduler
// can delay a freshly spawned handler thread by tens of milliseconds on a
// small host, which is noise, not a lost multiplexing property.
#if defined(__SANITIZE_THREAD__)
#define LAMINAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LAMINAR_TSAN 1
#endif
#endif

namespace laminar::net {
namespace {

TEST(Pipe, BytesFlowBothWays) {
  DuplexPipe pipe = CreatePipe();
  ASSERT_TRUE(pipe.first->Write("hello"));
  char buf[16];
  size_t n = pipe.second->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "hello");
  ASSERT_TRUE(pipe.second->Write("hi"));
  n = pipe.first->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "hi");
}

TEST(Pipe, CloseWriteDrainsThenEof) {
  DuplexPipe pipe = CreatePipe();
  pipe.first->Write("tail");
  pipe.first->CloseWrite();
  char buf[16];
  size_t n = pipe.second->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "tail");
  EXPECT_EQ(pipe.second->Read(buf, sizeof buf), 0u);  // EOF
  EXPECT_FALSE(pipe.first->Write("after close"));
}

TEST(Pipe, ReadBlocksUntilWrite) {
  DuplexPipe pipe = CreatePipe();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pipe.first->Write("late");
  });
  char buf[8];
  size_t n = pipe.second->Read(buf, sizeof buf);
  writer.join();
  EXPECT_EQ(std::string(buf, n), "late");
}

TEST(Pipe, ReadExactAssemblesFragments) {
  DuplexPipe pipe = CreatePipe();
  std::thread writer([&] {
    pipe.first->Write("ab");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pipe.first->Write("cd");
  });
  char buf[4];
  EXPECT_TRUE(pipe.second->ReadExact(buf, 4));
  writer.join();
  EXPECT_EQ(std::string(buf, 4), "abcd");
  pipe.first->CloseWrite();
  EXPECT_FALSE(pipe.second->ReadExact(buf, 1));  // premature EOF
}

TEST(Multipart, RoundTripsBinaryParts) {
  std::vector<FilePart> parts = {
      {"data/input.csv", "a,b\n1,2\n"},
      {"bin", std::string("\x00\x01\xFF", 3)},
      {"empty", ""},
  };
  Result<std::vector<FilePart>> back = DecodeMultipart(EncodeMultipart(parts));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].name, "data/input.csv");
  EXPECT_EQ((*back)[1].content, parts[1].content);
  EXPECT_EQ((*back)[2].content, "");
}

TEST(Multipart, RejectsGarbage) {
  EXPECT_FALSE(DecodeMultipart("nope").ok());
  EXPECT_FALSE(DecodeMultipart("").ok());
  std::string truncated = EncodeMultipart({{"a", "abc"}});
  EXPECT_FALSE(DecodeMultipart(truncated.substr(0, truncated.size() - 2)).ok());
  EXPECT_FALSE(DecodeMultipart(truncated + "extra").ok());
}

struct Harness {
  explicit Harness(HttpConnection::Mode mode, StreamHandler handler) {
    DuplexPipe pipe = CreatePipe();
    server = std::make_unique<HttpConnection>(std::move(pipe.first), mode,
                                              std::move(handler));
    client = std::make_unique<HttpConnection>(std::move(pipe.second), mode);
  }
  std::unique_ptr<HttpConnection> server;
  std::unique_ptr<HttpConnection> client;
};

TEST(Http, BasicCallRoundTrip) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              EXPECT_EQ(req.method, "POST");
              out.SendChunk("echo:" + req.body);
              out.End(200);
            });
  HttpRequest req;
  req.path = "/echo";
  req.body = "payload";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 200);
  EXPECT_EQ(resp->second, "echo:payload");
}

TEST(Http, HeadersTravel) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.headers.GetString("authorization"));
              out.End(200);
            });
  HttpRequest req;
  req.path = "/auth";
  req.headers["authorization"] = "tok-1";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->second, "tok-1");
}

TEST(Http, ErrorStatusPropagates) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) { out.End(404); });
  HttpRequest req;
  req.path = "/missing";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 404);
  EXPECT_EQ(resp->second, "");
}

TEST(Http, NoHandlerYields501) {
  DuplexPipe pipe = CreatePipe();
  HttpConnection server(std::move(pipe.first),
                        HttpConnection::Mode::kStreaming);  // no handler
  HttpConnection client(std::move(pipe.second),
                        HttpConnection::Mode::kStreaming);
  HttpRequest req;
  req.path = "/x";
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 501);
}

TEST(Http, StreamingChunksArriveBeforeEnd) {
  // The §IV-E property: in streaming mode, the client observes the first
  // chunk while the handler is still running.
  std::atomic<bool> handler_done{false};
  Harness h(HttpConnection::Mode::kStreaming,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk("first\n");
              std::this_thread::sleep_for(std::chrono::milliseconds(80));
              out.SendChunk("second\n");
              handler_done = true;
              out.End(200);
            });
  HttpRequest req;
  req.path = "/stream";
  auto stream = h.client->Send(req);
  auto first = stream->NextChunk();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "first\n");
  EXPECT_FALSE(handler_done.load());  // observed mid-handler
  EXPECT_EQ(stream->ReadAll(), "second\n");
  EXPECT_EQ(stream->status(), 200);
}

TEST(Http, BatchModeBuffersUntilEnd) {
  // The Laminar 1.0 behaviour: nothing reaches the client until the handler
  // finishes; the whole body arrives at once.
  Harness h(HttpConnection::Mode::kBatch,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk("first\n");
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
              out.SendChunk("second\n");
              out.End(200);
            });
  HttpRequest req;
  req.path = "/batch";
  Stopwatch watch;
  auto stream = h.client->Send(req);
  auto chunk = stream->NextChunk();
  double first_ms = watch.ElapsedMillis();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(*chunk, "first\nsecond\n");  // single coalesced body
  EXPECT_GE(first_ms, 45.0);             // not before the handler finished
  EXPECT_FALSE(stream->NextChunk().has_value());
}

TEST(Http, LargeBodySplitsIntoFrames) {
  std::string big(100'000, 'z');
  Harness h(HttpConnection::Mode::kStreaming,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk(big);
              out.End(200);
            });
  HttpRequest req;
  req.path = "/big";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->second.size(), big.size());
  EXPECT_EQ(resp->second, big);
}

TEST(Http, MultiplexedConcurrentRequests) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              if (req.path == "/slow") {
                std::this_thread::sleep_for(std::chrono::milliseconds(60));
              }
              out.SendChunk(req.path);
              out.End(200);
            });
  HttpRequest slow;
  slow.path = "/slow";
  HttpRequest fast;
  fast.path = "/fast";
  auto slow_stream = h.client->Send(slow);
  auto fast_stream = h.client->Send(fast);
  // The fast response must complete while the slow one is still pending.
  EXPECT_EQ(fast_stream->ReadAll(), "/fast");
  EXPECT_EQ(slow_stream->ReadAll(), "/slow");
}

TEST(Http, CloseFailsPendingRequests) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) {
              std::this_thread::sleep_for(std::chrono::milliseconds(200));
              out.End(200);
            });
  HttpRequest req;
  req.path = "/hang";
  auto stream = h.client->Send(req);
  h.client->Close();
  EXPECT_FALSE(stream->NextChunk().has_value());
  EXPECT_NE(stream->status(), 200);
}

TEST(Http, SendAfterCloseFailsFast) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) { out.End(200); });
  h.client->Close();
  HttpRequest req;
  req.path = "/x";
  auto stream = h.client->Send(req);
  EXPECT_FALSE(stream->NextChunk().has_value());
  EXPECT_EQ(stream->status(), 503);
}

TEST(Http, MalformedRequestValueRejected) {
  Result<HttpRequest> r = HttpRequest::FromValue(Value("not an object"));
  EXPECT_FALSE(r.ok());
  Value no_path = Value::MakeObject();
  no_path["method"] = "POST";
  EXPECT_FALSE(HttpRequest::FromValue(no_path).ok());
}

TEST(BoundedPipe, SlowReaderBlocksWriter) {
  // Real-socket behaviour: once the peer's buffer is full, the writer
  // blocks until the reader drains (kernel send-buffer backpressure).
  DuplexPipe pipe = CreatePipe(/*capacity=*/8);
  std::atomic<bool> write_done{false};
  std::thread writer([&] {
    pipe.first->Write(std::string(64, 'x'));  // 8x the capacity
    write_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(write_done.load());  // stuck behind the full buffer
  char buf[64];
  size_t total = 0;
  while (total < 64) total += pipe.second->Read(buf, sizeof buf);
  writer.join();
  EXPECT_TRUE(write_done.load());
  EXPECT_EQ(total, 64u);
}

TEST(BoundedPipe, CloseUnblocksStuckWriter) {
  DuplexPipe pipe = CreatePipe(/*capacity=*/4);
  std::atomic<bool> write_ok{true};
  std::thread writer([&] { write_ok = pipe.first->Write(std::string(100, 'y')); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pipe.second->CloseRead();  // reader gives up
  writer.join();
  EXPECT_FALSE(write_ok.load());  // write reports the broken pipe
}

TEST(BoundedPipe, StreamingProtocolSurvivesBackpressure) {
  // The whole frame protocol over a pipe whose per-direction buffer is
  // smaller than one frame: every write crosses the capacity boundary, so
  // the codec sees short reads and blocked writes just like a socket whose
  // kernel buffers are tiny.
  DuplexPipe pipe = CreatePipe(/*capacity=*/512);
  HttpConnection server(std::move(pipe.first), HttpConnection::Mode::kStreaming,
                        [](const HttpRequest& req, StreamResponder& out) {
                          out.SendChunk("pre:");
                          out.SendChunk(req.body);
                          out.End(200);
                        });
  HttpConnection client(std::move(pipe.second),
                        HttpConnection::Mode::kStreaming);
  std::string big(50'000, 'q');
  HttpRequest req;
  req.path = "/big";
  req.body = big;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 200);
  EXPECT_EQ(resp->second, "pre:" + big);
}

TEST(Http, LongLivedConnectionKeepsBoundedThreads) {
  // Regression for the unbounded handler-thread growth: one thread used to
  // be created per request and joined only at destruction, so a long-lived
  // connection serving N requests accumulated N threads. The dispatch pool
  // must stay within its cap across 10k requests.
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.body);
              out.End(200);
            });
  for (int i = 0; i < 10'000; ++i) {
    HttpRequest req;
    req.path = "/n";
    req.body = std::to_string(i);
    auto resp = h.client->Call(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->second, req.body);
  }
  EXPECT_LE(h.server->handler_threads(),
            HttpConnection::kDefaultMaxHandlerThreads);
  EXPECT_GE(h.server->handler_threads(), 1u);
}

TEST(Http, HandlerPoolStillMultiplexes) {
  // The pool spawns additional workers while others are busy, so the
  // multiplexing property survives the thread bound. A serialized fast
  // request would wait out the whole slow sleep, so any bound below the
  // sleep proves overlap; under TSan the sleep is stretched so scheduler
  // jitter cannot eat the margin.
#ifdef LAMINAR_TSAN
  static constexpr int kSlowSleepMs = 400;
#else
  static constexpr int kSlowSleepMs = 80;
#endif
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              if (req.path == "/slow") {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(kSlowSleepMs));
              }
              out.SendChunk(req.path);
              out.End(200);
            });
  HttpRequest slow;
  slow.path = "/slow";
  HttpRequest fast;
  fast.path = "/fast";
  auto slow_stream = h.client->Send(slow);
  auto fast_stream = h.client->Send(fast);
  Stopwatch watch;
  EXPECT_EQ(fast_stream->ReadAll(), "/fast");
  EXPECT_LT(watch.ElapsedMillis(), 0.75 * kSlowSleepMs);  // not queued behind /slow
  EXPECT_EQ(slow_stream->ReadAll(), "/slow");
}

// ---- frame-codec hardening (hostile bytes) -------------------------------

namespace {

struct HostileOutcome {
  bool closed = false;           // connection shut itself down within 250ms
  uint64_t protocol_errors = 0;  // laminar_net_protocol_errors_total delta
};

/// Feeds `bytes` into a serving HttpConnection over a pipe, half-closes the
/// feed, and reports how the connection ended. Every feed must end with the
/// connection closed — via ProtocolError for hostile headers (counted), or
/// cleanly at EOF for merely truncated input (not counted). A hang is
/// caught by the ctest timeout, UB by the sanitizer configs.
HostileOutcome FeedHostileBytes(std::string_view bytes) {
  telemetry::Counter& errors = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_net_protocol_errors_total");
  uint64_t errors_before = errors.Value();
  DuplexPipe pipe = CreatePipe();
  HttpConnection conn(std::move(pipe.first), HttpConnection::Mode::kStreaming,
                      [](const HttpRequest&, StreamResponder& out) {
                        out.End(200);
                      });
  pipe.second->Write(bytes);
  pipe.second->CloseWrite();
  HostileOutcome out;
  for (int i = 0; i < 50 && !(out.closed = conn.is_closed()); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pipe.second->CloseRead();
  out.protocol_errors = errors.Value() - errors_before;
  return out;
}

std::string ValidHeadersFrame() {
  HttpRequest req;
  req.path = "/x";
  req.body = "payload";
  std::string json = req.ToValue().ToJson();
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(json.size()));
  w.PutU8(1);  // HEADERS
  w.PutU64(1);
  w.PutRaw(json);
  return w.data();
}

}  // namespace

TEST(HttpHardening, OversizedPayloadLenClosesConnection) {
  ByteWriter w;
  w.PutU32(0xFFFFFFFFu);  // 4 GiB declared length: reject before allocating
  w.PutU8(1);
  w.PutU64(1);
  HostileOutcome out = FeedHostileBytes(w.data());
  EXPECT_TRUE(out.closed);
  EXPECT_GE(out.protocol_errors, 1u);
}

TEST(HttpHardening, UnknownFrameTypeClosesConnection) {
  ByteWriter w;
  w.PutU32(0);
  w.PutU8(42);  // not a codec frame type
  w.PutU64(1);
  HostileOutcome out = FeedHostileBytes(w.data());
  EXPECT_TRUE(out.closed);
  EXPECT_GE(out.protocol_errors, 1u);
}

TEST(HttpHardening, DataForUnknownStreamClosesConnection) {
  ByteWriter w;
  w.PutU32(4);
  w.PutU8(2);     // DATA
  w.PutU64(999);  // never initiated
  w.PutRaw("boom");
  HostileOutcome out = FeedHostileBytes(w.data());
  EXPECT_TRUE(out.closed);
  EXPECT_GE(out.protocol_errors, 1u);
}

TEST(HttpHardening, TruncatedFramesEndCleanlyAtEof) {
  std::string frame = ValidHeadersFrame();
  // Every proper prefix is a truncated frame; EOF mid-frame must close the
  // connection quietly — no protocol error, no hang, no stuck destructor.
  for (size_t cut : {size_t{1}, size_t{4}, size_t{12}, frame.size() - 1}) {
    HostileOutcome out =
        FeedHostileBytes(std::string_view(frame).substr(0, cut));
    EXPECT_TRUE(out.closed) << "cut=" << cut;
    EXPECT_EQ(out.protocol_errors, 0u) << "cut=" << cut;
  }
}

TEST(HttpHardening, FuzzedPrefixTortureNeverHangsOrCrashes) {
  // Replay randomly mutated prefixes of a valid frame stream. Whatever the
  // bytes decode to — garbage lengths, bogus types, half frames — feeding
  // and tearing down the connection must terminate without crash or hang.
  std::string valid = ValidHeadersFrame() + ValidHeadersFrame();
  Rng rng(0xf0e1d2c3);
  for (int round = 0; round < 60; ++round) {
    std::string bytes = valid.substr(0, rng.NextBelow(valid.size() + 1));
    for (size_t flips = rng.NextBelow(4); flips > 0 && !bytes.empty();
         --flips) {
      size_t pos = rng.NextBelow(bytes.size());
      bytes[pos] = static_cast<char>(rng.NextU64());
    }
    DuplexPipe pipe = CreatePipe();
    {
      HttpConnection conn(std::move(pipe.first),
                          HttpConnection::Mode::kStreaming,
                          [](const HttpRequest&, StreamResponder& out) {
                            out.End(200);
                          });
      pipe.second->Write(bytes);
      pipe.second->CloseWrite();
      // Give the reader a moment to chew on the bytes, then tear down.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      pipe.second->CloseRead();
    }
  }
  SUCCEED();  // termination without crash/hang IS the property
}

// ---- content-length hardening (request smuggling classics) ---------------

Value HeadersWith(std::initializer_list<std::pair<const char*, Value>> items) {
  Value headers = Value::MakeObject();
  for (const auto& [name, value] : items) headers[name] = value;
  return headers;
}

Result<HttpRequest> ParseWithHeaders(Value headers, std::string body) {
  HttpRequest req;
  req.path = "/x";
  req.body = std::move(body);
  req.headers = std::move(headers);
  return HttpRequest::FromValue(req.ToValue());
}

TEST(HttpHardening, ContentLengthMustBeStrictDigits) {
  // The classic parser-differential seeds: sign prefixes, whitespace,
  // decimals, hex. Every one is a clean rejection, not a best-effort parse.
  for (const char* bad : {"+7", "-7", " 7", "7 ", "7.0", "0x7", "7e1", ""}) {
    Result<HttpRequest> r =
        ParseWithHeaders(HeadersWith({{"content-length", Value(bad)}}),
                         "payload");
    EXPECT_FALSE(r.ok()) << "accepted content-length '" << bad << "'";
  }
  // Negative integers fail the digit scan via their minus sign.
  EXPECT_FALSE(ParseWithHeaders(
                   HeadersWith({{"content-length", Value(int64_t{-7})}}), "")
                   .ok());
  // A correct value — string or integer, any case — passes.
  EXPECT_TRUE(ParseWithHeaders(
                  HeadersWith({{"content-length", Value("7")}}), "payload")
                  .ok());
  EXPECT_TRUE(ParseWithHeaders(
                  HeadersWith({{"Content-Length", Value(int64_t{7})}}),
                  "payload")
                  .ok());
}

TEST(HttpHardening, ContentLengthOverflowAndCapRejected) {
  // More digits than uint64 can hold: the per-digit cap check fires long
  // before any wraparound could be observed.
  EXPECT_FALSE(
      ParseWithHeaders(
          HeadersWith({{"content-length", Value("99999999999999999999999999")}}),
          "x")
          .ok());
  // Just past the frame payload cap is refused even as a clean number.
  std::string over = std::to_string(HttpConnection::kMaxFramePayload + 1);
  EXPECT_FALSE(
      ParseWithHeaders(HeadersWith({{"content-length", Value(over)}}), "x")
          .ok());
}

TEST(HttpHardening, ContentLengthDuplicatesMustAgree) {
  // Case-variant duplicates that disagree are the smuggling primitive.
  EXPECT_FALSE(ParseWithHeaders(
                   HeadersWith({{"Content-Length", Value("7")},
                                {"content-length", Value("8")}}),
                   "payload")
                   .ok());
  // Agreeing duplicates are odd but harmless.
  EXPECT_TRUE(ParseWithHeaders(
                  HeadersWith({{"Content-Length", Value("7")},
                               {"content-length", Value("7")}}),
                  "payload")
                  .ok());
  // And the declared value must match the actual body.
  EXPECT_FALSE(
      ParseWithHeaders(HeadersWith({{"content-length", Value("6")}}), "payload")
          .ok());
}

TEST(HttpHardening, BadContentLengthIsCounted400NotFatal) {
  telemetry::Counter& errors = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_net_protocol_errors_total");
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.body);
              out.End(200);
            });
  uint64_t errors_before = errors.Value();

  HttpRequest bad;
  bad.path = "/x";
  bad.body = "payload";
  bad.headers = HeadersWith({{"content-length", Value("+7")}});
  auto resp = h.client->Call(bad);
  ASSERT_TRUE(resp.ok());  // transport-level success: a clean reply arrived
  EXPECT_EQ(resp->first, 400);
  EXPECT_EQ(errors.Value(), errors_before + 1);

  // The violation is per stream, not per connection: the same connection
  // keeps serving well-formed requests afterwards.
  HttpRequest good;
  good.path = "/x";
  good.body = "after";
  good.headers = HeadersWith({{"content-length", Value("5")}});
  auto ok = h.client->Call(good);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->first, 200);
  EXPECT_EQ(ok->second, "after");
}

TEST(Http, ManySequentialCallsReuseConnection) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.body);
              out.End(200);
            });
  for (int i = 0; i < 50; ++i) {
    HttpRequest req;
    req.path = "/n";
    req.body = std::to_string(i);
    auto resp = h.client->Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->second, std::to_string(i));
  }
}

}  // namespace
}  // namespace laminar::net
