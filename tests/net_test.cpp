#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.hpp"
#include "net/http.hpp"
#include "net/multipart.hpp"

namespace laminar::net {
namespace {

TEST(Pipe, BytesFlowBothWays) {
  DuplexPipe pipe = CreatePipe();
  ASSERT_TRUE(pipe.first->Write("hello"));
  char buf[16];
  size_t n = pipe.second->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "hello");
  ASSERT_TRUE(pipe.second->Write("hi"));
  n = pipe.first->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "hi");
}

TEST(Pipe, CloseWriteDrainsThenEof) {
  DuplexPipe pipe = CreatePipe();
  pipe.first->Write("tail");
  pipe.first->CloseWrite();
  char buf[16];
  size_t n = pipe.second->Read(buf, sizeof buf);
  EXPECT_EQ(std::string(buf, n), "tail");
  EXPECT_EQ(pipe.second->Read(buf, sizeof buf), 0u);  // EOF
  EXPECT_FALSE(pipe.first->Write("after close"));
}

TEST(Pipe, ReadBlocksUntilWrite) {
  DuplexPipe pipe = CreatePipe();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pipe.first->Write("late");
  });
  char buf[8];
  size_t n = pipe.second->Read(buf, sizeof buf);
  writer.join();
  EXPECT_EQ(std::string(buf, n), "late");
}

TEST(Pipe, ReadExactAssemblesFragments) {
  DuplexPipe pipe = CreatePipe();
  std::thread writer([&] {
    pipe.first->Write("ab");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pipe.first->Write("cd");
  });
  char buf[4];
  EXPECT_TRUE(pipe.second->ReadExact(buf, 4));
  writer.join();
  EXPECT_EQ(std::string(buf, 4), "abcd");
  pipe.first->CloseWrite();
  EXPECT_FALSE(pipe.second->ReadExact(buf, 1));  // premature EOF
}

TEST(Multipart, RoundTripsBinaryParts) {
  std::vector<FilePart> parts = {
      {"data/input.csv", "a,b\n1,2\n"},
      {"bin", std::string("\x00\x01\xFF", 3)},
      {"empty", ""},
  };
  Result<std::vector<FilePart>> back = DecodeMultipart(EncodeMultipart(parts));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].name, "data/input.csv");
  EXPECT_EQ((*back)[1].content, parts[1].content);
  EXPECT_EQ((*back)[2].content, "");
}

TEST(Multipart, RejectsGarbage) {
  EXPECT_FALSE(DecodeMultipart("nope").ok());
  EXPECT_FALSE(DecodeMultipart("").ok());
  std::string truncated = EncodeMultipart({{"a", "abc"}});
  EXPECT_FALSE(DecodeMultipart(truncated.substr(0, truncated.size() - 2)).ok());
  EXPECT_FALSE(DecodeMultipart(truncated + "extra").ok());
}

struct Harness {
  explicit Harness(HttpConnection::Mode mode, StreamHandler handler) {
    DuplexPipe pipe = CreatePipe();
    server = std::make_unique<HttpConnection>(std::move(pipe.first), mode,
                                              std::move(handler));
    client = std::make_unique<HttpConnection>(std::move(pipe.second), mode);
  }
  std::unique_ptr<HttpConnection> server;
  std::unique_ptr<HttpConnection> client;
};

TEST(Http, BasicCallRoundTrip) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              EXPECT_EQ(req.method, "POST");
              out.SendChunk("echo:" + req.body);
              out.End(200);
            });
  HttpRequest req;
  req.path = "/echo";
  req.body = "payload";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 200);
  EXPECT_EQ(resp->second, "echo:payload");
}

TEST(Http, HeadersTravel) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.headers.GetString("authorization"));
              out.End(200);
            });
  HttpRequest req;
  req.path = "/auth";
  req.headers["authorization"] = "tok-1";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->second, "tok-1");
}

TEST(Http, ErrorStatusPropagates) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) { out.End(404); });
  HttpRequest req;
  req.path = "/missing";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 404);
  EXPECT_EQ(resp->second, "");
}

TEST(Http, NoHandlerYields501) {
  DuplexPipe pipe = CreatePipe();
  HttpConnection server(std::move(pipe.first),
                        HttpConnection::Mode::kStreaming);  // no handler
  HttpConnection client(std::move(pipe.second),
                        HttpConnection::Mode::kStreaming);
  HttpRequest req;
  req.path = "/x";
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 501);
}

TEST(Http, StreamingChunksArriveBeforeEnd) {
  // The §IV-E property: in streaming mode, the client observes the first
  // chunk while the handler is still running.
  std::atomic<bool> handler_done{false};
  Harness h(HttpConnection::Mode::kStreaming,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk("first\n");
              std::this_thread::sleep_for(std::chrono::milliseconds(80));
              out.SendChunk("second\n");
              handler_done = true;
              out.End(200);
            });
  HttpRequest req;
  req.path = "/stream";
  auto stream = h.client->Send(req);
  auto first = stream->NextChunk();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "first\n");
  EXPECT_FALSE(handler_done.load());  // observed mid-handler
  EXPECT_EQ(stream->ReadAll(), "second\n");
  EXPECT_EQ(stream->status(), 200);
}

TEST(Http, BatchModeBuffersUntilEnd) {
  // The Laminar 1.0 behaviour: nothing reaches the client until the handler
  // finishes; the whole body arrives at once.
  Harness h(HttpConnection::Mode::kBatch,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk("first\n");
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
              out.SendChunk("second\n");
              out.End(200);
            });
  HttpRequest req;
  req.path = "/batch";
  Stopwatch watch;
  auto stream = h.client->Send(req);
  auto chunk = stream->NextChunk();
  double first_ms = watch.ElapsedMillis();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(*chunk, "first\nsecond\n");  // single coalesced body
  EXPECT_GE(first_ms, 45.0);             // not before the handler finished
  EXPECT_FALSE(stream->NextChunk().has_value());
}

TEST(Http, LargeBodySplitsIntoFrames) {
  std::string big(100'000, 'z');
  Harness h(HttpConnection::Mode::kStreaming,
            [&](const HttpRequest&, StreamResponder& out) {
              out.SendChunk(big);
              out.End(200);
            });
  HttpRequest req;
  req.path = "/big";
  auto resp = h.client->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->second.size(), big.size());
  EXPECT_EQ(resp->second, big);
}

TEST(Http, MultiplexedConcurrentRequests) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              if (req.path == "/slow") {
                std::this_thread::sleep_for(std::chrono::milliseconds(60));
              }
              out.SendChunk(req.path);
              out.End(200);
            });
  HttpRequest slow;
  slow.path = "/slow";
  HttpRequest fast;
  fast.path = "/fast";
  auto slow_stream = h.client->Send(slow);
  auto fast_stream = h.client->Send(fast);
  // The fast response must complete while the slow one is still pending.
  EXPECT_EQ(fast_stream->ReadAll(), "/fast");
  EXPECT_EQ(slow_stream->ReadAll(), "/slow");
}

TEST(Http, CloseFailsPendingRequests) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) {
              std::this_thread::sleep_for(std::chrono::milliseconds(200));
              out.End(200);
            });
  HttpRequest req;
  req.path = "/hang";
  auto stream = h.client->Send(req);
  h.client->Close();
  EXPECT_FALSE(stream->NextChunk().has_value());
  EXPECT_NE(stream->status(), 200);
}

TEST(Http, SendAfterCloseFailsFast) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest&, StreamResponder& out) { out.End(200); });
  h.client->Close();
  HttpRequest req;
  req.path = "/x";
  auto stream = h.client->Send(req);
  EXPECT_FALSE(stream->NextChunk().has_value());
  EXPECT_EQ(stream->status(), 503);
}

TEST(Http, MalformedRequestValueRejected) {
  Result<HttpRequest> r = HttpRequest::FromValue(Value("not an object"));
  EXPECT_FALSE(r.ok());
  Value no_path = Value::MakeObject();
  no_path["method"] = "POST";
  EXPECT_FALSE(HttpRequest::FromValue(no_path).ok());
}

TEST(Http, ManySequentialCallsReuseConnection) {
  Harness h(HttpConnection::Mode::kStreaming,
            [](const HttpRequest& req, StreamResponder& out) {
              out.SendChunk(req.body);
              out.End(200);
            });
  for (int i = 0; i < 50; ++i) {
    HttpRequest req;
    req.path = "/n";
    req.body = std::to_string(i);
    auto resp = h.client->Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->second, std::to_string(i));
  }
}

}  // namespace
}  // namespace laminar::net
