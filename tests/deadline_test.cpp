// Serverless execution-duration limits (§II-B names "limited execution
// duration" as a core serverless challenge): runs that exceed their
// deadline stop processing, keep the output produced so far, and report
// DEADLINE_EXCEEDED through every layer (mapping -> engine -> server ->
// client, HTTP 408).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "client/connect.hpp"
#include "common/json.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"
#include "engine/engine.hpp"

namespace laminar {
namespace {

using namespace dataflow;

/// A workflow that would run for seconds: heavy CpuBurn per tuple.
std::unique_ptr<WorkflowGraph> SlowGraph() {
  auto g = std::make_unique<WorkflowGraph>("slow_wf");
  auto& producer = g->AddPE<NumberProducer>(9);
  auto& burn = g->AddPE<CpuBurn>(4'000'000);
  auto& echo = g->AddPE<EchoSink>();
  EXPECT_TRUE(g->Connect(producer, burn).ok());
  EXPECT_TRUE(g->Connect(burn, echo).ok());
  return g;
}

class DeadlineMapping : public ::testing::TestWithParam<const char*> {};

TEST_P(DeadlineMapping, ExpiresAndKeepsPartialOutput) {
  std::unique_ptr<Mapping> mapping;
  std::string name = GetParam();
  if (name == "simple") mapping = std::make_unique<SequentialMapping>();
  else if (name == "multi") mapping = std::make_unique<MultiMapping>();
  else mapping = std::make_unique<DynamicMapping>();

  RunOptions options;
  options.input = Value(500);  // far more work than the deadline allows
  options.num_processes = 4;
  options.deadline_ms = 60;
  RunResult result = mapping->Execute(*SlowGraph(), options);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
      << result.status.ToString();
  // It genuinely stopped early rather than finishing all 500 tuples...
  EXPECT_LT(result.output_lines.size(), 500u);
  // ...but within a generous multiple of the deadline (not unbounded).
  EXPECT_LT(result.elapsed_ms, 4000.0);
}

TEST_P(DeadlineMapping, GenerousDeadlineDoesNotTrigger) {
  std::unique_ptr<Mapping> mapping;
  std::string name = GetParam();
  if (name == "simple") mapping = std::make_unique<SequentialMapping>();
  else if (name == "multi") mapping = std::make_unique<MultiMapping>();
  else mapping = std::make_unique<DynamicMapping>();

  RunOptions options;
  options.input = Value(3);
  options.deadline_ms = 60'000;
  RunResult result = mapping->Execute(*SlowGraph(), options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.output_lines.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllMappings, DeadlineMapping,
                         ::testing::Values("simple", "multi", "dynamic"));

Value SlowSpec() {
  return json::Parse(R"({
    "name": "slow_wf",
    "pes": [
      {"name": "P", "type": "NumberProducer", "params": {"seed": 9}},
      {"name": "B", "type": "CpuBurn", "params": {"iters": 4000000}},
      {"name": "E", "type": "EchoSink", "params": {}}
    ],
    "edges": [{"from": "P", "to": "B"}, {"from": "B", "to": "E"}]
  })").value();
}

TEST(DeadlineEngine, EngineDefaultLimitApplies) {
  engine::EngineConfig config;
  config.cold_start_ms = 0;
  config.max_execution_ms = 60;  // platform-wide function duration limit
  engine::ExecutionEngine engine(config);
  engine::ExecuteRequest req;
  req.workflow_spec = SlowSpec();
  req.run_options.input = Value(500);
  Result<dataflow::RunResult> result = engine.Execute(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineEngine, PerRequestDeadlineOverridesDefault) {
  engine::EngineConfig config;
  config.cold_start_ms = 0;
  config.max_execution_ms = 50;
  engine::ExecutionEngine engine(config);
  engine::ExecuteRequest req;
  req.workflow_spec = SlowSpec();
  req.run_options.input = Value(2);
  req.run_options.deadline_ms = 60'000;  // generous explicit deadline wins
  EXPECT_TRUE(engine.Execute(req).ok());
}

TEST(DeadlineValidation, ClampHandlesNonFiniteAndNegativeDeadlines) {
  // The mapping-layer clamp: non-finite or non-positive deadlines mean "no
  // deadline" (0) instead of being cast into a garbage int64 epoch.
  EXPECT_EQ(dataflow::DeadlineMicrosFromNow(std::nan("")), 0);
  EXPECT_EQ(dataflow::DeadlineMicrosFromNow(
                -std::numeric_limits<double>::infinity()),
            0);
  EXPECT_EQ(dataflow::DeadlineMicrosFromNow(-10.0), 0);
  EXPECT_EQ(dataflow::DeadlineMicrosFromNow(0.0), 0);
  // Absurdly large deadlines clamp to a far-future time, not overflow: the
  // cap is ~285 years of milliseconds, so both of these land within a
  // second of each other instead of wrapping int64.
  int64_t far_a = dataflow::DeadlineMicrosFromNow(1e300);
  int64_t far_b = dataflow::DeadlineMicrosFromNow(1e307);
  EXPECT_GT(far_a, 0);
  EXPECT_LT(std::abs(far_a - far_b), 1'000'000);
}

TEST(DeadlineValidation, MalformedDeadlineRejectedAtParseBoundary) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);

  // Malformed deadline_ms values must be a 400 naming the field — never a
  // run that silently misinterprets them, never a 5xx.
  for (const char* bad : {"-5", "\"abc\"", "1e300", "true"}) {
    net::HttpRequest req;
    req.path = "/execute";
    req.body = std::string(R"({"spec": {"name": "wf", "pes": [], "edges": []},)"
                           R"( "mapping": "simple", "input": 1,)"
                           R"( "deadline_ms": )") +
               bad + "}";
    auto stream = laminar.client_side->Send(req);
    std::string all = stream->ReadAll();
    EXPECT_EQ(stream->status(), 400) << bad << " -> " << all;
    EXPECT_NE(all.find("deadline_ms"), std::string::npos) << all;
  }

  // A well-formed deadline on the same connection still executes.
  net::HttpRequest ok_req;
  ok_req.path = "/execute";
  Value body = Value::MakeObject();
  body["spec"] = SlowSpec();
  body["mapping"] = "simple";
  body["input"] = 1;
  body["deadline_ms"] = 60'000;
  ok_req.body = body.ToJson();
  auto ok_stream = laminar.client_side->Send(ok_req);
  ok_stream->ReadAll();
  EXPECT_EQ(ok_stream->status(), 200);
}

TEST(DeadlineEndToEnd, ClientSeesDeadlineAndPartialStream) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);

  Value body_spec = SlowSpec();
  // Drive through RunSpec-equivalent with a deadline in the body.
  net::HttpRequest req;
  req.path = "/execute";
  Value body = Value::MakeObject();
  body["spec"] = body_spec;
  body["mapping"] = "simple";
  body["input"] = 500;
  body["deadline_ms"] = 60;
  req.body = body.ToJson();
  auto stream = laminar.client_side->Send(req);
  std::string all = stream->ReadAll();
  EXPECT_EQ(stream->status(), 408);  // HTTP request-timeout family
  EXPECT_NE(all.find("DEADLINE_EXCEEDED"), std::string::npos) << all;
}

}  // namespace
}  // namespace laminar
