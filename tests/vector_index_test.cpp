// VectorIndex parity and property tests (ISSUE 2): the flat SoA top-k path
// must return the same ids and scores (fp-tolerant) as the legacy
// brute-force path — embed::Cosine per pair over a hash map, full sort,
// truncate — across randomized corpora including ties, k > corpus, zero
// vectors and dimension mismatches. Plus LRU query-cache behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "embed/embedding.hpp"
#include "search/query_cache.hpp"
#include "search/vector_index.hpp"

namespace laminar::search {
namespace {

constexpr float kTol = 1e-4f;

embed::Vector RandomVector(Rng& rng, size_t dims) {
  embed::Vector v(dims);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return v;
}

/// The pre-rebuild ranking, verbatim: cosine against every stored vector
/// (norms recomputed per pair), full sort by (score desc, id asc), truncate.
std::vector<ScoredId> LegacyTopK(
    const std::unordered_map<int64_t, embed::Vector>& docs,
    const embed::Vector& query, size_t k) {
  std::vector<ScoredId> hits;
  hits.reserve(docs.size());
  for (const auto& [id, vec] : docs) {
    hits.push_back({id, embed::Cosine(query, vec)});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredId& a, const ScoredId& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

/// Order-sensitive comparison that tolerates fp noise between the two
/// score formulas: scores must match elementwise within kTol, and ids must
/// match exactly except inside runs of near-equal scores, where the two
/// paths may legitimately order differently — there the id sets must match.
void ExpectParity(const std::vector<ScoredId>& got,
                  const std::vector<ScoredId>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, kTol) << "rank " << i;
  }
  size_t i = 0;
  while (i < want.size()) {
    // Extend the tie window while adjacent reference scores are within tol.
    size_t j = i + 1;
    while (j < want.size() &&
           std::abs(want[j].score - want[j - 1].score) <= kTol) {
      ++j;
    }
    std::multiset<int64_t> got_ids, want_ids;
    for (size_t r = i; r < j; ++r) {
      got_ids.insert(got[r].id);
      want_ids.insert(want[r].id);
    }
    EXPECT_EQ(got_ids, want_ids) << "tie window [" << i << "," << j << ")";
    i = j;
  }
}

TEST(VectorIndexParity, RandomizedCorporaMatchLegacyBruteForce) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    const size_t dims = static_cast<size_t>(rng.NextInt(4, 96));
    const size_t docs = static_cast<size_t>(rng.NextInt(1, 180));
    VectorIndex index(dims);
    std::unordered_map<int64_t, embed::Vector> legacy;
    embed::Vector dup;  // reused verbatim to force exact score ties
    for (size_t i = 0; i < docs; ++i) {
      int64_t id = static_cast<int64_t>(i + 1);
      embed::Vector v;
      double kind = rng.NextDouble();
      if (kind < 0.08) {
        v.assign(dims, 0.0f);  // zero vector
      } else if (kind < 0.16 && !dup.empty()) {
        v = dup;  // exact duplicate -> guaranteed tie
      } else if (kind < 0.22) {
        v = RandomVector(rng, dims + 3);  // dimension mismatch
      } else {
        v = RandomVector(rng, dims);
        if (dup.empty()) dup = v;
      }
      index.Upsert(id, v);
      legacy.emplace(id, std::move(v));
    }
    for (size_t k : {size_t{1}, size_t{5}, docs / 2 + 1, docs, docs + 7}) {
      if (k == 0) continue;
      embed::Vector q = RandomVector(rng, dims);
      ExpectParity(index.TopK(q, k), LegacyTopK(legacy, q, k));
      // The retained brute-force reference path must agree too.
      ExpectParity(index.BruteForceTopK(q, k), LegacyTopK(legacy, q, k));
    }
    // Zero query: legacy scores everything 0 -> ascending-id order.
    embed::Vector zero(dims, 0.0f);
    ExpectParity(index.TopK(zero, docs), LegacyTopK(legacy, zero, docs));
  }
}

TEST(VectorIndexParity, ShardedScanMatchesSerialScan) {
  Rng rng(99);
  const size_t dims = 32;
  VectorIndexOptions serial;
  serial.parallel_threshold = static_cast<size_t>(-1);
  VectorIndexOptions sharded;
  sharded.parallel_threshold = 1;  // force the threaded path
  sharded.max_threads = 4;
  VectorIndex a(dims, serial);
  VectorIndex b(dims, sharded);
  for (int64_t id = 1; id <= 500; ++id) {
    embed::Vector v = RandomVector(rng, dims);
    a.Upsert(id, v);
    b.Upsert(id, v);
  }
  for (int trial = 0; trial < 8; ++trial) {
    embed::Vector q = RandomVector(rng, dims);
    std::vector<ScoredId> want = a.TopK(q, 17);
    std::vector<ScoredId> got = b.TopK(q, 17);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_FLOAT_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(VectorIndex, KLargerThanCorpusReturnsEveryRow) {
  Rng rng(7);
  VectorIndex index(8);
  for (int64_t id = 1; id <= 5; ++id) index.Upsert(id, RandomVector(rng, 8));
  EXPECT_EQ(index.TopK(RandomVector(rng, 8), 50).size(), 5u);
}

TEST(VectorIndex, EmptyIndexAndZeroK) {
  VectorIndex index(8);
  embed::Vector q(8, 1.0f);
  EXPECT_TRUE(index.TopK(q, 3).empty());
  index.Upsert(1, q);
  EXPECT_TRUE(index.TopK(q, 0).empty());
}

TEST(VectorIndex, UpsertReplacesInPlace) {
  VectorIndex index(4);
  embed::Vector a = {1.0f, 0.0f, 0.0f, 0.0f};
  embed::Vector b = {0.0f, 1.0f, 0.0f, 0.0f};
  index.Upsert(1, a);
  index.Upsert(2, b);
  ASSERT_EQ(index.size(), 2u);
  index.Upsert(1, b);  // replace, not insert
  EXPECT_EQ(index.size(), 2u);
  std::vector<ScoredId> hits = index.TopK(b, 2);
  EXPECT_NEAR(hits[0].score, 1.0f, kTol);
  EXPECT_NEAR(hits[1].score, 1.0f, kTol);
  EXPECT_EQ(hits[0].id, 1);  // tie broken by ascending id
}

TEST(VectorIndex, RemoveSwapAndPopKeepsRemainingRows) {
  Rng rng(21);
  VectorIndex index(16);
  std::unordered_map<int64_t, embed::Vector> legacy;
  for (int64_t id = 1; id <= 30; ++id) {
    embed::Vector v = RandomVector(rng, 16);
    index.Upsert(id, v);
    legacy.emplace(id, std::move(v));
  }
  for (int64_t id : {3, 30, 1, 17}) {
    EXPECT_TRUE(index.Remove(id));
    legacy.erase(id);
  }
  EXPECT_FALSE(index.Remove(3));  // already gone
  EXPECT_EQ(index.size(), legacy.size());
  embed::Vector q = RandomVector(rng, 16);
  ExpectParity(index.TopK(q, 30), LegacyTopK(legacy, q, 30));
}

TEST(VectorIndex, ChurnReturnsCapacityToTheAllocator) {
  Rng rng(55);
  const size_t dims = 32;
  VectorIndexOptions opts;
  opts.strategy = IndexStrategy::kFlat;
  VectorIndex index(dims, opts);
  for (int64_t id = 1; id <= 6000; ++id) {
    index.Upsert(id, RandomVector(rng, dims));
  }
  const size_t peak = index.stats().bytes;
  for (int64_t id = 1; id <= 5900; ++id) {
    ASSERT_TRUE(index.Remove(id));
  }
  ASSERT_EQ(index.size(), 100u);
  const size_t after = index.stats().bytes;
  // The index must not pin its high-water allocation after heavy churn.
  // The shrink policy stops once capacity drops under its 1024-slot floor
  // (shrinking tiny blocks buys nothing), so the bound is that floor's
  // footprint — still an order of magnitude under the 6000-row peak.
  const size_t floor_bytes =
      1024 * (dims * sizeof(float) + sizeof(int64_t));
  EXPECT_LT(after, floor_bytes) << "capacity pinned after churn";
  EXPECT_LT(after * 10, peak);
  // The survivors still rank correctly after the shrink.
  embed::Vector q = RandomVector(rng, dims);
  std::vector<ScoredId> hits = index.TopK(q, 100);
  EXPECT_EQ(hits.size(), 100u);
  for (const ScoredId& s : hits) EXPECT_GT(s.id, 5900);
}

TEST(VectorIndex, NormalizesAtInsertSoCosineIsDot) {
  VectorIndex index(3);
  embed::Vector big = {10.0f, 0.0f, 0.0f};  // large magnitude, same direction
  embed::Vector small = {0.0f, 0.1f, 0.0f};
  index.Upsert(1, big);
  index.Upsert(2, small);
  embed::Vector q = {2.0f, 0.0f, 0.0f};
  std::vector<ScoredId> hits = index.TopK(q, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1);
  EXPECT_NEAR(hits[0].score, 1.0f, kTol);   // cosine, not raw dot
  EXPECT_NEAR(hits[1].score, 0.0f, kTol);
}

// ---- query-embedding cache ----

TEST(QueryEmbeddingCache, HitsAndMissesAreCounted) {
  QueryEmbeddingCache cache(4);
  int encodes = 0;
  auto encode = [&] {
    ++encodes;
    return embed::Vector{1.0f, 2.0f};
  };
  embed::Vector first = cache.GetOrCompute("m", "query", encode);
  embed::Vector second = cache.GetOrCompute("m", "query", encode);
  EXPECT_EQ(encodes, 1);
  EXPECT_EQ(first, second);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryEmbeddingCache, KeyIncludesModel) {
  QueryEmbeddingCache cache(4);
  int encodes = 0;
  auto encode = [&] {
    ++encodes;
    return embed::Vector{1.0f};
  };
  cache.GetOrCompute("unixcoder", "q", encode);
  cache.GetOrCompute("reacc", "q", encode);
  EXPECT_EQ(encodes, 2);  // same text, different model -> distinct entries
}

TEST(QueryEmbeddingCache, EvictsLeastRecentlyUsed) {
  QueryEmbeddingCache cache(2);
  int encodes = 0;
  auto encode = [&] {
    ++encodes;
    return embed::Vector{1.0f};
  };
  cache.GetOrCompute("m", "a", encode);
  cache.GetOrCompute("m", "b", encode);
  cache.GetOrCompute("m", "a", encode);  // refresh a
  cache.GetOrCompute("m", "c", encode);  // evicts b
  EXPECT_EQ(encodes, 3);
  cache.GetOrCompute("m", "a", encode);  // still cached
  EXPECT_EQ(encodes, 3);
  cache.GetOrCompute("m", "b", encode);  // was evicted -> re-encoded
  EXPECT_EQ(encodes, 4);
}

TEST(QueryEmbeddingCache, ZeroCapacityDisablesCaching) {
  QueryEmbeddingCache cache(0);
  int encodes = 0;
  auto encode = [&] {
    ++encodes;
    return embed::Vector{1.0f};
  };
  cache.GetOrCompute("m", "q", encode);
  cache.GetOrCompute("m", "q", encode);
  EXPECT_EQ(encodes, 2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryEmbeddingCache, ClearDuringEncodeDoesNotResurrectStaleEntry) {
  // Regression (bugfix): a miss encodes outside the lock; if Clear() runs
  // in that window (registry reload replacing the encoders), the in-flight
  // result must be handed to its caller but NOT stored — otherwise the
  // freshly emptied cache is repopulated with a pre-Clear embedding.
  QueryEmbeddingCache cache(4);
  embed::Vector got = cache.GetOrCompute("m", "q", [&] {
    cache.Clear();  // deterministic mid-encode Clear
    return embed::Vector{1.0f, 2.0f};
  });
  EXPECT_EQ(got, (embed::Vector{1.0f, 2.0f}));  // caller still gets a result
  EXPECT_EQ(cache.stats().entries, 0u);         // but nothing was resurrected
  // The next lookup is a real miss that does get cached.
  int encodes = 0;
  cache.GetOrCompute("m", "q", [&] {
    ++encodes;
    return embed::Vector{3.0f};
  });
  EXPECT_EQ(encodes, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(QueryEmbeddingCache, ChurnStressConcurrentLookupsAndClears) {
  // Readers hammer a small key space while two threads Clear() in a loop:
  // under TSan this races GetOrCompute's unlock-encode-relock window
  // against Clear; the invariants are no crash, entries bounded by
  // capacity, and hits + misses equal to the number of lookups.
  constexpr int kReaders = 6;
  constexpr int kLookupsPerReader = 400;
  QueryEmbeddingCache cache(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> clearers;
  for (int i = 0; i < 2; ++i) {
    clearers.emplace_back([&] {
      while (!stop.load()) {
        cache.Clear();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kLookupsPerReader; ++i) {
        std::string text = "q" + std::to_string((r + i) % 12);
        embed::Vector v = cache.GetOrCompute("m", text, [&] {
          return embed::Vector{static_cast<float>((r + i) % 12)};
        });
        ASSERT_EQ(v.size(), 1u);
        ASSERT_EQ(v[0], static_cast<float>((r + i) % 12));
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  for (auto& t : clearers) t.join();

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kReaders) * kLookupsPerReader);
  EXPECT_LE(stats.entries, cache.capacity());
}

}  // namespace
}  // namespace laminar::search
