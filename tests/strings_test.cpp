#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace laminar::strings {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(SplitLines, NoTrailingEmptyLine) {
  EXPECT_EQ(SplitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("a\n\nb"), (std::vector<std::string>{"a", "", "b"}));
}

TEST(SplitLines, StripsCarriageReturns) {
  EXPECT_EQ(SplitLines("a\r\nb\r\n"), (std::vector<std::string>{"a", "b"}));
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("workflow.py", "workflow"));
  EXPECT_FALSE(StartsWith("wf", "workflow"));
  EXPECT_TRUE(EndsWith("workflow.py", ".py"));
  EXPECT_FALSE(EndsWith("py", "workflow.py"));
}

TEST(ContainsIgnoreCase, MatchesAnyCase) {
  EXPECT_TRUE(ContainsIgnoreCase("AnomalyDetectionPE", "anomaly"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("xyzWORDSabc", "words"));
}

TEST(ReplaceAll, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("$A + $A", "$A", "x"), "x + x");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(SplitIdentifier, SnakeCase) {
  EXPECT_EQ(SplitIdentifier("num_workers"),
            (std::vector<std::string>{"num", "workers"}));
}

TEST(SplitIdentifier, CamelAndPascal) {
  EXPECT_EQ(SplitIdentifier("readHttpResponse"),
            (std::vector<std::string>{"read", "http", "response"}));
  EXPECT_EQ(SplitIdentifier("IsPrime"),
            (std::vector<std::string>{"is", "prime"}));
}

TEST(SplitIdentifier, AcronymRuns) {
  EXPECT_EQ(SplitIdentifier("readHTTPResponse2"),
            (std::vector<std::string>{"read", "http", "response", "2"}));
}

TEST(SplitIdentifier, Digits) {
  EXPECT_EQ(SplitIdentifier("v2Counter"),
            (std::vector<std::string>{"v", "2", "counter"}));
}

TEST(WordTokens, LowercasesAndDropsPunctuation) {
  EXPECT_EQ(WordTokens("A PE that checks primes!"),
            (std::vector<std::string>{"a", "pe", "that", "checks", "primes"}));
  EXPECT_TRUE(WordTokens("!!! ...").empty());
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Format("%.2f", 1.005), "1.00");
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
}

TEST(IsIdentifier, Rules) {
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_TRUE(IsIdentifier("x1"));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("has space"));
  EXPECT_FALSE(IsIdentifier("has-dash"));
}

}  // namespace
}  // namespace laminar::strings
