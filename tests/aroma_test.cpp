#include <algorithm>
#include <gtest/gtest.h>

#include "dataset/generator.hpp"
#include "spt/index.hpp"
#include "spt/recommend.hpp"
#include "spt/rerank.hpp"

namespace laminar::spt {
namespace {

FeatureBag Feat(const std::string& code, bool occurrences = false) {
  Result<SptNodePtr> spt = SptFromSource(code);
  EXPECT_TRUE(spt.ok());
  FeatureOptions opts;
  opts.with_occurrences = occurrences;
  return ExtractFeatures(*spt.value(), opts);
}

// ---- SptIndex ----

TEST(SptIndex, AddGetRemove) {
  SptIndex index;
  index.Add(1, Feat("x = 1\n"));
  index.Add(2, Feat("y = 2\n"));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_NE(index.Get(1), nullptr);
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.Get(1), nullptr);
  EXPECT_EQ(index.size(), 1u);
}

TEST(SptIndex, ReAddReplaces) {
  SptIndex index;
  index.Add(1, Feat("x = 1\n"));
  index.Add(1, Feat("while flag:\n    step(1)\n"));
  EXPECT_EQ(index.size(), 1u);
  // Retrieval requires at least one shared (generalized) token — here
  // `flag` and the literal 1.
  auto hits = index.TopK(Feat("while flag:\n    go(1)\n"), 5, Metric::kCosine);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 1);
}

TEST(SptIndex, TopKRanksStructuralMatchesFirst) {
  SptIndex index;
  index.Add(1, Feat("for i in range(2, n):\n    if n % i == 0:\n        return None\n"));
  index.Add(2, Feat("result = []\nfor x in xs:\n    result.append(x * 2)\n"));
  index.Add(3, Feat("with open(path) as fh:\n    data = fh.read()\n"));
  auto hits = index.TopK(
      Feat("for d in range(2, value):\n    if value % d == 0:\n        return None\n"),
      3, Metric::kOverlap);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 1);
}

TEST(SptIndex, TopKRespectsK) {
  SptIndex index;
  for (int64_t i = 0; i < 10; ++i) {
    index.Add(i, Feat("x = " + std::to_string(i) + "\n"));
  }
  auto hits = index.TopK(Feat("x = 99\n"), 3, Metric::kCosine);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(SptIndex, DeterministicTieBreakById) {
  SptIndex index;
  index.Add(5, Feat("a = 1\n"));
  index.Add(2, Feat("b = 1\n"));  // structurally identical after #VAR
  auto hits = index.TopK(Feat("c = 1\n"), 2, Metric::kCosine);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[0].doc_id, 2);
}

TEST(SptIndex, NoSharedFeaturesNoHits) {
  SptIndex index;
  index.Add(1, Feat("import os\n"));
  auto hits = index.TopK(Feat("9999\n"), 5, Metric::kOverlap);
  // Any overlap must be via genuinely shared features; a bare unique number
  // shares nothing with an import statement.
  for (const auto& hit : hits) EXPECT_GT(hit.score, 0.0);
}

// ---- Prune & rerank ----

TEST(Prune, SelectsOnlyRelevantLines) {
  FeatureBag query = Feat("total = total + price\n");
  FeatureBag candidate = Feat(
      "def bill(items):\n"
      "    total = 0\n"
      "    for price in items:\n"
      "        total = total + price\n"
      "    log_invoice()\n"
      "    return total\n",
      /*occurrences=*/true);
  PruneResult pruned = PruneAgainstQuery(query, candidate);
  ASSERT_FALSE(pruned.lines.empty());
  // Line 4 (the accumulation) must be selected; line 5 (logging) must not.
  EXPECT_NE(std::find(pruned.lines.begin(), pruned.lines.end(), 4),
            pruned.lines.end());
  EXPECT_EQ(std::find(pruned.lines.begin(), pruned.lines.end(), 5),
            pruned.lines.end());
  EXPECT_GT(pruned.containment, 0.5);
}

TEST(Prune, EmptyQueryYieldsNothing) {
  FeatureBag query;  // empty
  FeatureBag candidate = Feat("x = 1\n", true);
  PruneResult pruned = PruneAgainstQuery(query, candidate);
  EXPECT_TRUE(pruned.lines.empty());
  EXPECT_DOUBLE_EQ(pruned.overlap, 0.0);
}

TEST(Prune, CandidateWithoutOccurrencesYieldsNothing) {
  FeatureBag query = Feat("x = 1\n");
  FeatureBag candidate = Feat("x = 1\n", /*occurrences=*/false);
  EXPECT_TRUE(PruneAgainstQuery(query, candidate).lines.empty());
}

TEST(Prune, LinesSortedAscending) {
  FeatureBag query = Feat("a = 1\nb = 2\nc = 3\n");
  FeatureBag candidate = Feat("c = 3\nb = 2\na = 1\n", true);
  PruneResult pruned = PruneAgainstQuery(query, candidate);
  EXPECT_TRUE(std::is_sorted(pruned.lines.begin(), pruned.lines.end()));
}

// ---- Clustering ----

TEST(Cluster, GroupsSimilarSeparatesDifferent) {
  FeatureBag a1 = Feat("for i in range(n):\n    acc += i\n");
  FeatureBag a2 = Feat("for j in range(m):\n    sum2 += j\n");
  FeatureBag b = Feat("with open(f) as fh:\n    data = fh.read()\n");
  std::vector<ClusterInput> inputs = {{1, &a1}, {2, &a2}, {3, &b}};
  auto clusters = ClusterCandidates(inputs, 0.5);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<size_t>{2}));
}

TEST(Cluster, ThresholdOneIsolatesAll) {
  FeatureBag a = Feat("x = 1\n");
  FeatureBag b = Feat("y = 2\n");
  std::vector<ClusterInput> inputs = {{1, &a}, {2, &b}};
  auto clusters = ClusterCandidates(inputs, 1.01);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Cluster, ThresholdZeroMergesAll) {
  FeatureBag a = Feat("x = 1\n");
  FeatureBag b = Feat("import os\n");
  std::vector<ClusterInput> inputs = {{1, &a}, {2, &b}};
  auto clusters = ClusterCandidates(inputs, 0.0);
  EXPECT_EQ(clusters.size(), 1u);
}

// ---- AromaEngine end-to-end ----

class AromaEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset::DatasetConfig config;
    config.families = 8;
    config.variants_per_family = 4;
    ds_ = dataset::CodeSearchNetPeDataset::Generate(config);
    for (const auto& ex : ds_.examples()) {
      ASSERT_TRUE(engine_.AddSnippet(ex.id, ex.pe_code).ok()) << ex.name;
    }
  }

  dataset::CodeSearchNetPeDataset ds_;
  AromaEngine engine_;
};

TEST_F(AromaEngineTest, FullCodeQueryFindsOwnFamily) {
  const auto& query = ds_.example(0);
  Result<std::vector<SptIndex::Hit>> hits =
      engine_.Search(query.pe_code, 4, Metric::kCosine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().doc_id, query.id);  // self first
  // Most of the rest of the top-4 should be family members.
  const auto& members = ds_.GroupMembers(query.group);
  int family_hits = 0;
  for (const auto& hit : hits.value()) {
    if (std::find(members.begin(), members.end(), hit.doc_id) != members.end()) {
      ++family_hits;
    }
  }
  EXPECT_GE(family_hits, 3);
}

TEST_F(AromaEngineTest, PartialQueryStillRecommendsFamily) {
  const auto& query = ds_.example(5);
  std::string partial = dataset::DropCode(query.pe_code, 0.5);
  Result<std::vector<Recommendation>> recs = engine_.Recommend(partial);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  const auto& members = ds_.GroupMembers(query.group);
  EXPECT_NE(std::find(members.begin(), members.end(), recs->front().snippet_id),
            members.end());
}

TEST_F(AromaEngineTest, RecommendationsIncludePrunedCode) {
  const auto& query = ds_.example(2);
  Result<std::vector<Recommendation>> recs = engine_.Recommend(query.pe_code);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_FALSE(recs->front().recommended_code.empty());
  EXPECT_FALSE(recs->front().pruned_lines.empty());
  EXPECT_GT(recs->front().score, 6.0);  // paper's default threshold
}

TEST_F(AromaEngineTest, ClustersCollapseNearDuplicates) {
  Result<std::vector<Recommendation>> recs =
      engine_.Recommend(ds_.example(1).pe_code);
  ASSERT_TRUE(recs.ok());
  // At least one recommendation should represent a multi-member cluster,
  // since each family has 4 structurally-equivalent variants.
  bool clustered = false;
  for (const auto& rec : recs.value()) {
    if (rec.cluster_size > 1) clustered = true;
  }
  EXPECT_TRUE(clustered);
}

TEST_F(AromaEngineTest, SimplifiedModeMatchesPaperDefaults) {
  AromaConfig config;
  config.use_full_pipeline = false;
  AromaEngine simple(config);
  for (const auto& ex : ds_.examples()) {
    ASSERT_TRUE(simple.AddSnippet(ex.id, ex.pe_code).ok());
  }
  Result<std::vector<Recommendation>> recs =
      simple.Recommend(ds_.example(0).pe_code);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_LE(recs->size(), 5u);  // top-five default
  EXPECT_EQ(recs->front().snippet_id, ds_.example(0).id);
}

TEST_F(AromaEngineTest, RemoveSnippetForgetsIt) {
  const auto& ex = ds_.example(0);
  EXPECT_TRUE(engine_.RemoveSnippet(ex.id));
  Result<std::vector<SptIndex::Hit>> hits = engine_.Search(ex.pe_code, 3);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : hits.value()) EXPECT_NE(hit.doc_id, ex.id);
}

TEST(AromaEngineEdge, RejectsEmptySnippet) {
  AromaEngine engine;
  EXPECT_FALSE(engine.AddSnippet(1, "").ok());
}

TEST(FeatureBagJson, RoundTrips) {
  Result<SptNodePtr> spt = SptFromSource("x = f(1)\n");
  ASSERT_TRUE(spt.ok());
  FeatureBag bag = ExtractFeatures(*spt.value());
  std::string json_text = FeatureBagToJson(bag);
  Result<FeatureBag> back = FeatureBagFromJson(json_text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->counts, bag.counts);
  EXPECT_EQ(back->total, bag.total);
}

TEST(FeatureBagJson, RejectsMalformed) {
  EXPECT_FALSE(FeatureBagFromJson("not json").ok());
  EXPECT_FALSE(FeatureBagFromJson("[1,2]").ok());
  EXPECT_FALSE(FeatureBagFromJson(R"({"abc":1})").ok());
  EXPECT_FALSE(FeatureBagFromJson(R"({"12":0})").ok());
}

}  // namespace
}  // namespace laminar::spt
