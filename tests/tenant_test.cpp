// Multi-tenant admission control and fair run scheduling (ROADMAP item 3):
// FairRunQueue's start-time fair queuing, per-tenant caps and queued-run
// deadlines; AdmissionController's token bucket and row quotas; and the
// server boundary end to end — tenant resolution (body field > header >
// default), row visibility scoping, 429-with-retry-hint quota refusals, and
// the per-tenant /stats slice reconciling with actual run outcomes.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "common/clock.hpp"
#include "engine/run_queue.hpp"
#include "server/admission.hpp"

namespace laminar {
namespace {

using engine::FairRunQueue;
using server::TenantQuotas;

// ---- FairRunQueue scheduling -------------------------------------------

TEST(FairQueue, GrantsImmediatelyWhileSlotsFree) {
  FairRunQueue q(2);
  auto a = q.Acquire("alice", {});
  auto b = q.Acquire("bob", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->valid());
  EXPECT_EQ(q.queued(), 0u);
}

/// Spawns a waiter thread and blocks until it is registered in the queue
/// (so arrival order across threads is deterministic).
std::thread QueuedWaiter(FairRunQueue& q, std::string tenant,
                         FairRunQueue::AcquireOptions options,
                         std::mutex& mu, std::vector<std::string>& grants) {
  size_t queued_before = q.queued();
  std::thread t([&q, &mu, &grants, tenant, options] {
    auto ticket = q.Acquire(tenant, options);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    std::scoped_lock lock(mu);
    grants.push_back(tenant);
    // Ticket destructor releases the slot -> next grant dispatches.
  });
  while (q.queued() <= queued_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return t;
}

TEST(FairQueue, FloodedTenantDoesNotStarveOthers) {
  FairRunQueue q(1);
  auto hog = q.Acquire("mallory", {});  // occupies the only slot
  ASSERT_TRUE(hog.ok());

  std::mutex mu;
  std::vector<std::string> grants;
  std::vector<std::thread> threads;
  // mallory floods the queue first; alice arrives last.
  for (int i = 0; i < 3; ++i) {
    threads.push_back(QueuedWaiter(q, "mallory", {}, mu, grants));
  }
  threads.push_back(QueuedWaiter(q, "alice", {}, mu, grants));

  hog->Release();  // cascade: each grant releases and dispatches the next
  for (auto& t : threads) t.join();

  ASSERT_EQ(grants.size(), 4u);
  // mallory's first grant pushed its virtual time to 1; alice queued at
  // virtual time 0, so despite arriving last she is granted first.
  EXPECT_EQ(grants[0], "alice");
}

TEST(FairQueue, EqualWeightTenantsAlternate) {
  FairRunQueue q(1);
  auto hog = q.Acquire("zeta", {});  // park the slot; zeta vtime -> 1
  ASSERT_TRUE(hog.ok());

  std::mutex mu;
  std::vector<std::string> grants;
  std::vector<std::thread> threads;
  // All of a's waiters queue before any of b's.
  for (int i = 0; i < 3; ++i) {
    threads.push_back(QueuedWaiter(q, "a", {}, mu, grants));
  }
  for (int i = 0; i < 3; ++i) {
    threads.push_back(QueuedWaiter(q, "b", {}, mu, grants));
  }
  hog->Release();
  for (auto& t : threads) t.join();

  // Start-time fair queuing with equal weights interleaves the two tenants
  // (ties break by name): a b a b a b — never a a a b b b.
  ASSERT_EQ(grants.size(), 6u);
  EXPECT_EQ(grants, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(FairQueue, PriorityOvertakesWithinTenant) {
  FairRunQueue q(1);
  auto hog = q.Acquire("t", {});
  ASSERT_TRUE(hog.ok());

  std::mutex mu;
  std::vector<std::string> grants;
  FairRunQueue::AcquireOptions low;
  low.priority = 0;
  FairRunQueue::AcquireOptions high;
  high.priority = 5;
  // Tag the tenant string with the priority so the grant log is readable.
  std::vector<std::thread> threads;
  std::thread t1([&] {
    auto ticket = q.Acquire("t", low);
    ASSERT_TRUE(ticket.ok());
    std::scoped_lock lock(mu);
    grants.push_back("low");
  });
  while (q.queued() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread t2([&] {
    auto ticket = q.Acquire("t", high);
    ASSERT_TRUE(ticket.ok());
    std::scoped_lock lock(mu);
    grants.push_back("high");
  });
  while (q.queued() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  hog->Release();
  t1.join();
  t2.join();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0], "high");  // arrived second, dispatched first
}

TEST(FairQueue, PerTenantConcurrencyCapHoldsSlotsBack) {
  FairRunQueue q(4);
  FairRunQueue::AcquireOptions capped;
  capped.max_concurrent = 1;
  auto first = q.Acquire("solo", capped);
  ASSERT_TRUE(first.ok());

  // Three slots are free, but solo is at its cap: a second acquire with a
  // queued-run deadline expires instead of being granted.
  FairRunQueue::AcquireOptions capped_deadline = capped;
  capped_deadline.deadline_us = NowMicros() + 60'000;
  auto second = q.Acquire("solo", capped_deadline);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);

  // Other tenants are unaffected by solo's cap.
  auto other = q.Acquire("other", {});
  EXPECT_TRUE(other.ok());

  // Releasing the capped run frees the tenant again.
  first->Release();
  auto third = q.Acquire("solo", capped);
  EXPECT_TRUE(third.ok());
}

TEST(FairQueue, DepthCapsRejectWithRetryHint) {
  FairRunQueue q(1, /*max_queue_depth=*/1);
  auto hog = q.Acquire("t", {});
  ASSERT_TRUE(hog.ok());

  std::mutex mu;
  std::vector<std::string> grants;
  std::thread waiter = QueuedWaiter(q, "t", {}, mu, grants);

  double retry_after_ms = 0.0;
  auto rejected = q.Acquire("t", {}, &retry_after_ms);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(retry_after_ms, 0.0);

  hog->Release();
  waiter.join();

  auto snapshot = q.Snapshot();
  EXPECT_EQ(snapshot["t"].rejected, 1u);
  EXPECT_EQ(snapshot["t"].admitted, 2u);  // hog + the queued waiter
}

TEST(FairQueue, PerTenantQueueCapRejects) {
  FairRunQueue q(1);  // global depth unlimited
  auto hog = q.Acquire("t", {});
  ASSERT_TRUE(hog.ok());

  FairRunQueue::AcquireOptions one_queued;
  one_queued.max_queued = 1;
  std::mutex mu;
  std::vector<std::string> grants;
  std::thread waiter = QueuedWaiter(q, "t", one_queued, mu, grants);

  auto rejected = q.Acquire("t", one_queued);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // Another tenant still queues fine against the same global queue.
  EXPECT_EQ(q.queued(), 1u);

  hog->Release();
  waiter.join();
}

TEST(FairQueue, QueuedDeadlineExpiresWithoutTakingSlot) {
  FairRunQueue q(1);
  auto hog = q.Acquire("t", {});
  ASSERT_TRUE(hog.ok());

  FairRunQueue::AcquireOptions opts;
  opts.deadline_us = NowMicros() + 30'000;  // 30ms, slot never frees
  auto expired = q.Acquire("t", opts);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(q.queued(), 0u);  // deregistered, no leaked waiter

  auto snapshot = q.Snapshot();
  EXPECT_EQ(snapshot["t"].deadline_expired, 1u);
  EXPECT_EQ(snapshot["t"].running, 1);
}

// ---- AdmissionController ------------------------------------------------

TEST(Admission, TenantNameCharsetIsStrict) {
  EXPECT_TRUE(server::ValidTenantName("default"));
  EXPECT_TRUE(server::ValidTenantName("team-7.staging_x"));
  EXPECT_FALSE(server::ValidTenantName(""));
  EXPECT_FALSE(server::ValidTenantName("has space"));
  EXPECT_FALSE(server::ValidTenantName("slash/y"));
  EXPECT_FALSE(server::ValidTenantName("quote\"z"));
  EXPECT_FALSE(server::ValidTenantName(std::string(65, 'a')));
}

TEST(Admission, TokenBucketThrottlesThenRecovers) {
  TenantQuotas limited;
  limited.requests_per_sec = 20.0;
  limited.burst = 2.0;
  server::AdmissionController admission({}, {{"rl", limited}});

  double retry_after_ms = 0.0;
  EXPECT_TRUE(admission.AdmitRequest("rl", &retry_after_ms).ok());
  EXPECT_TRUE(admission.AdmitRequest("rl", &retry_after_ms).ok());
  Status throttled = admission.AdmitRequest("rl", &retry_after_ms);
  ASSERT_EQ(throttled.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(retry_after_ms, 0.0);

  // Unlimited tenants never throttle.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.AdmitRequest("free", nullptr).ok());
  }

  // A refill interval later the bucket has a token again.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(admission.AdmitRequest("rl", &retry_after_ms).ok());
}

TEST(Admission, RowQuotasTrackLiveCounts) {
  TenantQuotas small;
  small.max_pes = 2;
  small.max_workflows = 1;
  server::AdmissionController admission({}, {{"t", small}});

  EXPECT_TRUE(admission.AdmitPes("t", 2).ok());
  EXPECT_EQ(admission.AdmitPes("t", 3).code(),
            StatusCode::kResourceExhausted);
  admission.OnPesChanged("t", 2);
  EXPECT_EQ(admission.AdmitPes("t", 1).code(),
            StatusCode::kResourceExhausted);
  admission.OnPesChanged("t", -1);
  EXPECT_TRUE(admission.AdmitPes("t", 1).ok());

  EXPECT_TRUE(admission.AdmitWorkflows("t", 1).ok());
  admission.OnWorkflowsChanged("t", 1);
  EXPECT_EQ(admission.AdmitWorkflows("t", 1).code(),
            StatusCode::kResourceExhausted);

  // Reload replaces the counts wholesale (registry/load, recovery).
  admission.ResetRowCounts({{"t", {0, 0}}});
  EXPECT_TRUE(admission.AdmitPes("t", 2).ok());
  EXPECT_TRUE(admission.AdmitWorkflows("t", 1).ok());
}

// ---- server boundary end to end ----------------------------------------

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

TEST(TenantServer, DefaultTenantKeepsLegacyBehaviour) {
  client::InProcessLaminar laminar = client::ConnectInProcess(FastServer());
  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Result<client::WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();

  client::RunOutcome run = laminar.client->RunDynamic(wf->id, Value(10));
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();

  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());
  const Value& tenants = stats->at("tenants");
  ASSERT_TRUE(tenants.is_object());
  const Value& dflt = tenants.at("default");
  EXPECT_GE(dflt.GetInt("runsSucceeded"), 1);
  EXPECT_GE(dflt.GetInt("runsAdmitted"), 1);
  EXPECT_EQ(dflt.GetInt("runsRejected"), 0);
  EXPECT_GE(stats->at("runQueue").GetInt("slots"), 1);
}

TEST(TenantServer, RowsAreScopedToTheirTenant) {
  client::InProcessLaminar laminar = client::ConnectInProcess(FastServer());
  client::ExtraClient alice = client::AttachClient(*laminar.server);
  client::ExtraClient bob = client::AttachClient(*laminar.server);
  alice.client->SetTenant("alice");
  bob.client->SetTenant("bob");

  Result<client::PeInfo> pe = alice.client->RegisterPe(
      "class AliceOnly(IterativePE):\n"
      "    def _process(self, x):\n"
      "        return x\n");
  ASSERT_TRUE(pe.ok()) << pe.status().ToString();

  // Owner sees it; an unrelated tenant gets 404; the default tenant (the
  // operator view) sees everything.
  EXPECT_TRUE(alice.client->GetPe(pe->id).ok());
  Result<client::PeInfo> cross = bob.client->GetPe(pe->id);
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(laminar.client->GetPe(pe->id).ok());

  // Listing and literal search filter the same way.
  auto bob_registry = bob.client->GetRegistry();
  ASSERT_TRUE(bob_registry.ok());
  EXPECT_TRUE(bob_registry->first.empty());
  auto bob_hits = bob.client->SearchRegistryLiteral("AliceOnly");
  ASSERT_TRUE(bob_hits.ok());
  EXPECT_TRUE(bob_hits->empty());
  auto alice_hits = alice.client->SearchRegistryLiteral("AliceOnly");
  ASSERT_TRUE(alice_hits.ok());
  EXPECT_EQ(alice_hits->size(), 1u);

  // Default-tenant rows stay visible to every tenant (shared library).
  Result<client::PeInfo> shared = laminar.client->RegisterPe(
      "class SharedPe(IterativePE):\n"
      "    def _process(self, x):\n"
      "        return x\n");
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(bob.client->GetPe(shared->id).ok());
}

TEST(TenantServer, PeQuotaRefusesWith429) {
  server::ServerConfig config = FastServer();
  TenantQuotas one_pe;
  one_pe.max_pes = 1;
  config.tenant_overrides["alice"] = one_pe;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  laminar.client->SetTenant("alice");

  ASSERT_TRUE(laminar.client
                  ->RegisterPe("class A(IterativePE):\n"
                               "    def _process(self, x):\n"
                               "        return x\n")
                  .ok());
  Result<client::PeInfo> second = laminar.client->RegisterPe(
      "class B(IterativePE):\n"
      "    def _process(self, x):\n"
      "        return x\n");
  ASSERT_FALSE(second.ok());
  // Quota refusal is 429 -> kResourceExhausted, never a 5xx.
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  // Removing the row frees the quota again.
  auto pes = laminar.client->GetRegistry();
  ASSERT_TRUE(pes.ok());
  ASSERT_EQ(pes->first.size(), 1u);
  ASSERT_TRUE(laminar.client->RemovePe(pes->first[0].id).ok());
  EXPECT_TRUE(laminar.client
                  ->RegisterPe("class C(IterativePE):\n"
                               "    def _process(self, x):\n"
                               "        return x\n")
                  .ok());
}

TEST(TenantServer, RequestRateLimitReturns429) {
  server::ServerConfig config = FastServer();
  TenantQuotas limited;
  limited.requests_per_sec = 1.0;
  limited.burst = 1.0;
  config.tenant_overrides["rl"] = limited;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  laminar.client->SetTenant("rl");

  ASSERT_TRUE(laminar.client->GetStats().ok());  // spends the one token
  Result<Value> throttled = laminar.client->GetStats();
  ASSERT_FALSE(throttled.ok());
  EXPECT_EQ(throttled.status().code(), StatusCode::kResourceExhausted);

  // The throttle is per tenant: the default tenant is unaffected.
  laminar.client->SetTenant("");
  EXPECT_TRUE(laminar.client->GetStats().ok());
}

TEST(TenantServer, InvalidTenantNameIs400) {
  client::InProcessLaminar laminar = client::ConnectInProcess(FastServer());
  laminar.client->SetTenant("not a tenant!");
  Result<Value> stats = laminar.client->GetStats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(TenantServer, BodyTenantFieldWinsOverHeader) {
  server::ServerConfig config = FastServer();
  TenantQuotas none;
  none.max_concurrent_runs = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  laminar.client->SetTenant("header-tenant");

  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Value body = Value::MakeObject();
  body["spec"] = demo->spec;
  body["mapping"] = "simple";
  body["input"] = 5;
  body["tenant"] = "body-tenant";
  client::RunOutcome run = laminar.client->RunRaw(body);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();

  laminar.client->SetTenant("");
  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());
  const Value& tenants = stats->at("tenants");
  EXPECT_EQ(tenants.at("body-tenant").GetInt("runsSucceeded"), 1);
  // The header tenant was overridden for the run itself (it still shows up
  // in request accounting from the gate, but owns no run).
  EXPECT_EQ(tenants.at("header-tenant").GetInt("runsSucceeded", 0), 0);
}

TEST(TenantServer, StatsReconcileWithRunOutcomes) {
  client::InProcessLaminar laminar = client::ConnectInProcess(FastServer());
  client::ExtraClient alice = client::AttachClient(*laminar.server);
  alice.client->SetTenant("alice");

  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  int alice_ok = 0;
  for (int i = 0; i < 3; ++i) {
    client::RunOutcome run =
        alice.client->RunSpec(demo->spec, "simple", Value(5));
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    ASSERT_FALSE(run.stats.is_null());  // the ##END## record arrived
    ++alice_ok;
  }
  client::RunOutcome dflt =
      laminar.client->RunSpec(demo->spec, "simple", Value(5));
  ASSERT_TRUE(dflt.status.ok());

  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());
  const Value& tenants = stats->at("tenants");
  EXPECT_EQ(tenants.at("alice").GetInt("runsSucceeded"), alice_ok);
  EXPECT_EQ(tenants.at("alice").GetInt("runsAdmitted"), alice_ok);
  EXPECT_EQ(tenants.at("alice").GetInt("runsFailed"), 0);
  EXPECT_EQ(tenants.at("alice").GetInt("running"), 0);  // all released
  EXPECT_EQ(tenants.at("default").GetInt("runsSucceeded"), 1);
  EXPECT_EQ(stats->at("runQueue").GetInt("queued"), 0);
}

}  // namespace
}  // namespace laminar
