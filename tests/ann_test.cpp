// laminar::ann tests (ISSUE 6): the HNSW strategy behind VectorIndex must
// (a) hit recall@10 >= 0.95 against the exact scan across randomized
// clustered corpora and seeds, (b) return scores bit-identical to
// BruteForceTopK for every id it surfaces (the exact-rerank guarantee) with
// ties broken identically, (c) honor tombstoned removals, re-inserts and
// threshold-triggered compaction, (d) switch flat->hnsw at the kAuto
// threshold without an API seam, and (e) survive concurrent readers racing
// a writer and a pool-parallel bulk build — the suites the
// LAMINAR_SANITIZE=thread configuration stresses (ctest -L faults).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "embed/embedding.hpp"
#include "search/vector_index.hpp"

namespace laminar::search {
namespace {

embed::Vector RandomVector(Rng& rng, size_t dims) {
  embed::Vector v(dims);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return v;
}

/// Clustered corpus in the shape ANN indexes actually serve: `clusters`
/// random centroids, each row a centroid plus bounded noise. Queries drawn
/// the same way make top-k well-posed (nearest cluster dominates).
struct Clusters {
  std::vector<embed::Vector> centroids;
  Rng rng;

  Clusters(uint64_t seed, size_t dims, size_t n) : rng(seed) {
    for (size_t c = 0; c < n; ++c) {
      centroids.push_back(RandomVector(rng, dims));
    }
  }

  embed::Vector Sample() {
    const embed::Vector& c = rng.Choice(centroids);
    embed::Vector v(c.size());
    const float amp = std::sqrt(3.0f / static_cast<float>(c.size()));
    for (size_t i = 0; i < c.size(); ++i) {
      v[i] = c[i] + amp * static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    }
    return v;
  }
};

VectorIndexOptions HnswOptions() {
  VectorIndexOptions o;
  o.strategy = IndexStrategy::kHnsw;
  o.recall_probe_interval = 0;  // these tests measure recall themselves
  return o;
}

double RecallAtK(const VectorIndex& index,
                 const std::vector<embed::Vector>& queries, size_t k) {
  double sum = 0.0;
  for (const embed::Vector& q : queries) {
    std::vector<ScoredId> got = index.TopK(q, k);
    std::vector<ScoredId> want = index.BruteForceTopK(q, k);
    if (want.empty()) {
      sum += 1.0;
      continue;
    }
    std::unordered_set<int64_t> want_ids;
    for (const ScoredId& w : want) want_ids.insert(w.id);
    size_t hits = 0;
    for (const ScoredId& g : got) hits += want_ids.count(g.id);
    sum += static_cast<double>(hits) / static_cast<double>(want.size());
  }
  return sum / static_cast<double>(queries.size());
}

/// The exact-rerank guarantee: every (id, score) the ANN path returns must
/// be bit-identical to what the exact scan computes for that id, and the
/// result must be sorted by (score desc, id asc) — ties break identically.
void ExpectExactRerank(const VectorIndex& index, const embed::Vector& q,
                       size_t k) {
  std::vector<ScoredId> got = index.TopK(q, k);
  std::vector<ScoredId> all = index.BruteForceTopK(q, index.size());
  std::unordered_map<int64_t, float> exact;
  exact.reserve(all.size());
  for (const ScoredId& s : all) exact.emplace(s.id, s.score);
  for (size_t i = 0; i < got.size(); ++i) {
    auto it = exact.find(got[i].id);
    ASSERT_NE(it, exact.end()) << "ANN returned unknown id " << got[i].id;
    EXPECT_EQ(std::memcmp(&it->second, &got[i].score, sizeof(float)), 0)
        << "score for id " << got[i].id << " not bit-identical: ann="
        << got[i].score << " exact=" << it->second;
    if (i > 0) {
      const bool ordered =
          got[i - 1].score > got[i].score ||
          (got[i - 1].score == got[i].score && got[i - 1].id < got[i].id);
      EXPECT_TRUE(ordered) << "rank " << i << " out of (score desc, id asc)";
    }
  }
}

TEST(AnnRecall, PropertyAcrossCorporaAndSeeds) {
  for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Rng shape(seed);
    const size_t dims = static_cast<size_t>(shape.NextInt(16, 48));
    const size_t docs = static_cast<size_t>(shape.NextInt(1200, 2400));
    Clusters clusters(seed * 31, dims, 24);
    VectorIndex index(dims, HnswOptions());
    for (size_t i = 0; i < docs; ++i) {
      index.Upsert(static_cast<int64_t>(i + 1), clusters.Sample());
    }
    ASSERT_TRUE(index.ann_active());
    std::vector<embed::Vector> queries;
    for (int i = 0; i < 24; ++i) queries.push_back(clusters.Sample());
    const double recall = RecallAtK(index, queries, 10);
    EXPECT_GE(recall, 0.95) << "seed " << seed << " dims " << dims << " docs "
                            << docs;
    for (const embed::Vector& q : queries) ExpectExactRerank(index, q, 10);
  }
}

TEST(AnnParity, DuplicateRowsTieByAscendingId) {
  const size_t dims = 16;
  VectorIndex index(dims, HnswOptions());
  Rng rng(7);
  embed::Vector dup = RandomVector(rng, dims);
  // Interleave exact duplicates (guaranteed score ties) with noise rows.
  for (int64_t id = 1; id <= 400; ++id) {
    index.Upsert(id, id % 4 == 0 ? dup : RandomVector(rng, dims));
  }
  std::vector<ScoredId> got = index.TopK(dup, 12);
  ASSERT_GE(got.size(), 4u);
  // All surfaced duplicates score exactly 1.0 (bit-identical rerank) and
  // appear in ascending-id order — the same tie-break rule the flat path
  // applies. (Which duplicates the beam finds is a recall question; the
  // guarantee is about scores and ordering of what is returned.)
  const float top = got[0].score;  // the duplicates' exact shared score
  int64_t prev_dup = 0;
  size_t tied = 0;
  for (const ScoredId& s : got) {
    if (std::memcmp(&s.score, &top, sizeof(float)) != 0) break;
    EXPECT_EQ(s.id % 4, 0) << "non-duplicate tied the duplicates' score";
    EXPECT_GT(s.id, prev_dup) << "tie not broken by ascending id";
    prev_dup = s.id;
    ++tied;
  }
  EXPECT_GE(tied, 4u);
  ExpectExactRerank(index, dup, 12);
}

TEST(Ann, KCoveringCorpusFallsBackToExactScan) {
  const size_t dims = 12;
  VectorIndex index(dims, HnswOptions());
  Rng rng(3);
  for (int64_t id = 1; id <= 60; ++id) {
    index.Upsert(id, RandomVector(rng, dims));
  }
  embed::Vector q = RandomVector(rng, dims);
  for (size_t k : {index.size(), index.size() + 10}) {
    std::vector<ScoredId> got = index.TopK(q, k);
    std::vector<ScoredId> want = index.BruteForceTopK(q, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0);
    }
  }
}

TEST(Ann, ZeroQueryReturnsAscendingIdsAtZeroScore) {
  VectorIndex index(8, HnswOptions());
  Rng rng(5);
  for (int64_t id : {9, 2, 7, 4, 1}) index.Upsert(id, RandomVector(rng, 8));
  embed::Vector zero(8, 0.0f);
  std::vector<ScoredId> got = index.TopK(zero, 5);
  ASSERT_EQ(got.size(), 5u);
  int64_t prev = 0;
  for (const ScoredId& s : got) {
    EXPECT_EQ(s.score, 0.0f);
    EXPECT_GT(s.id, prev);  // ascending ids, the legacy zero-query order
    prev = s.id;
  }
}

TEST(AnnTombstone, RemoveExcludesRowAndReinsertRestoresIt) {
  const size_t dims = 24;
  VectorIndex index(dims, HnswOptions());
  Clusters clusters(17, dims, 8);
  std::unordered_map<int64_t, embed::Vector> rows;
  for (int64_t id = 1; id <= 200; ++id) {
    embed::Vector v = clusters.Sample();
    index.Upsert(id, v);
    rows.emplace(id, std::move(v));
  }
  // Remove a third; removed ids must never surface again even when queried
  // with their own vector (the strongest pull back into the result set).
  std::unordered_set<int64_t> removed;
  for (int64_t id = 3; id <= 200; id += 3) {
    EXPECT_TRUE(index.Remove(id));
    removed.insert(id);
  }
  EXPECT_FALSE(index.Remove(3));  // already tombstoned
  EXPECT_EQ(index.size(), rows.size() - removed.size());
  for (int64_t id : {3, 99, 198}) {
    for (const ScoredId& s : index.TopK(rows.at(id), 20)) {
      EXPECT_EQ(removed.count(s.id), 0u) << "tombstoned id " << s.id;
    }
  }
  // Re-insert one removed id with its original vector: it must come back as
  // the top hit for itself, with the exact-rerank score.
  index.Upsert(99, rows.at(99));
  std::vector<ScoredId> hits = index.TopK(rows.at(99), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 99);
  ExpectExactRerank(index, rows.at(99), 10);
}

TEST(AnnTombstone, ChurnTriggersCompactionAndBoundsNodes) {
  const size_t dims = 16;
  VectorIndex index(dims, HnswOptions());
  Clusters clusters(23, dims, 8);
  for (int64_t id = 1; id <= 400; ++id) index.Upsert(id, clusters.Sample());
  // Heavy remove/re-insert churn: without compaction the node array would
  // grow by 200 per round and queries would wade through garbage forever.
  int64_t next_id = 401;
  for (int round = 0; round < 6; ++round) {
    for (int64_t i = 0; i < 200; ++i) {
      EXPECT_TRUE(index.Remove(next_id - 400 + i));
    }
    for (int64_t i = 0; i < 200; ++i) {
      index.Upsert(next_id++, clusters.Sample());
    }
  }
  VectorIndexStats stats = index.stats();
  EXPECT_EQ(stats.rows, 400u);
  EXPECT_GE(stats.compactions, 1u);
  // Tombstones stay below max_dead_fraction (plus the min-dead slack), so
  // stored nodes are bounded by a small multiple of live rows.
  EXPECT_LE(stats.nodes, 2 * stats.rows);
  std::vector<embed::Vector> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(clusters.Sample());
  EXPECT_GE(RecallAtK(index, queries, 10), 0.95);
  for (const embed::Vector& q : queries) ExpectExactRerank(index, q, 10);
}

TEST(Ann, UpsertReplaceRebindsTheRow) {
  const size_t dims = 8;
  VectorIndex index(dims, HnswOptions());
  Rng rng(13);
  for (int64_t id = 1; id <= 120; ++id) {
    index.Upsert(id, RandomVector(rng, dims));
  }
  embed::Vector b = RandomVector(rng, dims);
  const size_t before = index.size();
  index.Upsert(60, b);  // replace: tombstone old node, append fresh one
  EXPECT_EQ(index.size(), before);
  std::vector<ScoredId> hits = index.TopK(b, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 60);
  ExpectExactRerank(index, b, 10);
}

TEST(AnnAuto, SwitchesToGraphAtThresholdWithoutApiSeam) {
  const size_t dims = 24;
  VectorIndexOptions opts;
  opts.strategy = IndexStrategy::kAuto;
  opts.ann_threshold = 256;
  opts.recall_probe_interval = 0;
  VectorIndex index(dims, opts);
  Clusters clusters(29, dims, 12);
  for (int64_t id = 1; id <= 255; ++id) index.Upsert(id, clusters.Sample());
  EXPECT_FALSE(index.ann_active());
  for (int64_t id = 256; id <= 400; ++id) index.Upsert(id, clusters.Sample());
  EXPECT_TRUE(index.ann_active());
  EXPECT_GE(index.stats().graph_builds, 1u);
  std::vector<embed::Vector> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(clusters.Sample());
  EXPECT_GE(RecallAtK(index, queries, 10), 0.95);
  for (const embed::Vector& q : queries) ExpectExactRerank(index, q, 10);
}

TEST(AnnBulk, MidBulkQueriesFallBackToExactScan) {
  const size_t dims = 16;
  VectorIndex index(dims, HnswOptions());
  Rng rng(31);
  for (int64_t id = 1; id <= 100; ++id) {
    index.Upsert(id, RandomVector(rng, dims));
  }
  index.BeginBulk();
  for (int64_t id = 101; id <= 300; ++id) {
    index.Upsert(id, RandomVector(rng, dims));
  }
  // Graph is stale (200 rows never linked in); TopK must still see all 300.
  embed::Vector q = RandomVector(rng, dims);
  std::vector<ScoredId> got = index.TopK(q, 10);
  std::vector<ScoredId> want = index.BruteForceTopK(q, 10);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0);
  }
  index.EndBulk(nullptr);
  ExpectExactRerank(index, q, 10);
}

TEST(AnnBulk, ParallelBulkBuildMeetsTheSameRecallGate) {
  const size_t dims = 32;
  Clusters clusters(37, dims, 16);
  std::vector<embed::Vector> corpus;
  for (int i = 0; i < 1500; ++i) corpus.push_back(clusters.Sample());

  VectorIndex incremental(dims, HnswOptions());
  VectorIndex bulk(dims, HnswOptions());
  bulk.BeginBulk();
  for (size_t i = 0; i < corpus.size(); ++i) {
    incremental.Upsert(static_cast<int64_t>(i + 1), corpus[i]);
    bulk.Upsert(static_cast<int64_t>(i + 1), corpus[i]);
  }
  ThreadPool pool(3);  // parallel graph build: the TSan target for ann
  bulk.EndBulk(&pool);

  std::vector<embed::Vector> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(clusters.Sample());
  // The two graphs legitimately differ (insertion-order-dependent links),
  // but both must clear the recall gate and the exact-rerank guarantee.
  EXPECT_GE(RecallAtK(incremental, queries, 10), 0.95);
  EXPECT_GE(RecallAtK(bulk, queries, 10), 0.95);
  for (const embed::Vector& q : queries) {
    ExpectExactRerank(incremental, q, 10);
    ExpectExactRerank(bulk, q, 10);
  }
}

// The server's read path: many readers under a shared lock racing a writer
// that mutates under the exclusive lock. Run under LAMINAR_SANITIZE=thread
// (ctest -L faults) this is the data-race gate for the ann subsystem.
TEST(AnnStress, ConcurrentReadersRacingAWriter) {
  const size_t dims = 16;
  Clusters clusters(41, dims, 8);
  VectorIndex index(dims, HnswOptions());
  for (int64_t id = 1; id <= 800; ++id) index.Upsert(id, clusters.Sample());

  std::shared_mutex mu;
  std::atomic<uint64_t> queries_served{0};
  const size_t reader_count = 3;
  // Readers run a bounded query count rather than until a stop flag:
  // glibc's shared_mutex prefers readers, so free-running readers on a
  // small machine can starve the writer indefinitely.
  const size_t queries_per_reader = 250;
  std::vector<std::thread> readers;
  readers.reserve(reader_count);
  for (size_t t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      Clusters qsrc(100 + t, dims, 8);
      for (size_t i = 0; i < queries_per_reader; ++i) {
        embed::Vector q = qsrc.Sample();
        std::shared_lock lock(mu);
        std::vector<ScoredId> hits = index.TopK(q, 10);
        ASSERT_LE(hits.size(), 10u);
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Clusters wsrc(77, dims, 8);
  std::thread writer([&] {
    int64_t next_id = 801;
    for (int op = 0; op < 400; ++op) {
      std::unique_lock lock(mu);
      if (op % 3 == 0) {
        index.Remove(next_id - 800 + op);
      } else {
        index.Upsert(next_id++, wsrc.Sample());
      }
    }
  });
  for (std::thread& r : readers) r.join();
  writer.join();
  EXPECT_EQ(queries_served.load(), reader_count * queries_per_reader);

  std::vector<embed::Vector> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(wsrc.Sample());
  for (const embed::Vector& q : queries) ExpectExactRerank(index, q, 10);
}

}  // namespace
}  // namespace laminar::search
