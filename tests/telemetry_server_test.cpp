// Server-level telemetry tests: the GET /metrics Prometheus scrape, the
// telemetry block of POST /stats, and the guarantee that the /execute
// ##END## totals and /stats totals are read from the same registry.
//
// The registry is process-wide, so all assertions are monotonic (>=) or
// compare two views captured at the same moment — other tests in this
// binary may also have executed workflows.
#include <gtest/gtest.h>

#include <string>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::client {
namespace {

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

/// Value of `name{labels} N` in a Prometheus text scrape; -1 when absent.
int64_t ScrapeValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t start = 0;
  while ((start = text.find(needle, start)) != std::string::npos) {
    // Must be at the start of a line.
    if (start != 0 && text[start - 1] != '\n') {
      ++start;
      continue;
    }
    size_t value_at = start + needle.size();
    return std::stoll(text.substr(value_at));
  }
  return -1;
}

TEST(TelemetryServer, ExecuteThenScrapeShowsActivity) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  ASSERT_NE(demo, nullptr);
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());

  RunOutcome outcome = laminar.client->Run(wf->id, Value(10));
  ASSERT_TRUE(outcome.status.ok());

  Result<std::string> metrics = laminar.client->GetMetrics();
  ASSERT_TRUE(metrics.ok());
  const std::string& text = metrics.value();

  // Executions were counted.
  EXPECT_GE(ScrapeValue(text, "laminar_engine_executions_total{result=\"ok\"}"),
            1);
  // The cold-start histogram has at least one sample (this run started at
  // least one instance cold).
  EXPECT_GE(ScrapeValue(text, "laminar_engine_cold_start_ms_count"), 1);
  // Per-endpoint request counters: the /execute call itself plus the
  // /metrics scrape we are reading were both counted.
  EXPECT_GE(
      ScrapeValue(text, "laminar_server_requests_total{path=\"/execute\"}"),
      1);
  EXPECT_GE(
      ScrapeValue(text, "laminar_server_requests_total{path=\"/metrics\"}"),
      1);
  // The mapping layer and the broker were exercised too.
  EXPECT_GE(ScrapeValue(
                text, "laminar_dataflow_enactments_total{mapping=\"simple\"}"),
            1);
  // Exposition is well-formed Prometheus text.
  EXPECT_NE(text.find("# TYPE laminar_engine_executions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("laminar_engine_run_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

TEST(TelemetryServer, UnknownPathsCollapseToOther) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  net::HttpRequest req;
  req.path = "/definitely/not/an/endpoint";
  (void)laminar.client_side->Call(req);

  Result<std::string> metrics = laminar.client->GetMetrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(
      ScrapeValue(*metrics, "laminar_server_requests_total{path=\"other\"}"),
      1);
  // The unknown path itself must NOT appear as a label.
  EXPECT_EQ(metrics->find("/definitely/not/an/endpoint"), std::string::npos);
}

TEST(TelemetryServer, StatsCarriesTelemetryView) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE(laminar.client->Run(wf->id, Value(5)).status.ok());

  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());

  // Pre-existing fields still served.
  EXPECT_EQ(stats->GetInt("pes"), 3);
  EXPECT_EQ(stats->GetInt("workflows"), 1);

  // Telemetry totals: cumulative execution counts and percentiles.
  const Value& totals = stats->at("totals");
  EXPECT_GE(totals.GetInt("executionsTotal"), 1);
  EXPECT_GE(totals.GetInt("executionsOk"), 1);
  EXPECT_GE(totals.GetInt("coldStartsTotal"), 1);
  EXPECT_GT(totals.GetInt("tuplesTotal"), 0);
  EXPECT_GE(totals.GetDouble("runMsP95"), totals.GetDouble("runMsP50"));
  EXPECT_GE(totals.GetInt("coldStartSamples"), 1);

  // Full metric dump and recent trace spans ride along.
  EXPECT_TRUE(stats->at("metrics").at("counters").is_object());
  EXPECT_TRUE(stats->at("trace").is_array());
  EXPECT_GT(stats->at("trace").as_array().size(), 0u);
}

TEST(TelemetryServer, EndChunkTotalsMatchStatsTotals) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());

  RunOutcome outcome = laminar.client->Run(wf->id, Value(8));
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(outcome.stats.contains("totals"));
  const Value& end_totals = outcome.stats.at("totals");

  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());
  const Value& stats_totals = stats->at("totals");

  // Same registry, and nothing executed in between: the cumulative counts
  // must agree exactly.
  EXPECT_EQ(end_totals.GetInt("executionsTotal"),
            stats_totals.GetInt("executionsTotal"));
  EXPECT_EQ(end_totals.GetInt("tuplesTotal"),
            stats_totals.GetInt("tuplesTotal"));
  EXPECT_EQ(end_totals.GetInt("coldStartsTotal"),
            stats_totals.GetInt("coldStartsTotal"));
  // And the per-run fields still exist alongside.
  EXPECT_GT(outcome.stats.GetInt("tuples"), 0);
}

TEST(TelemetryServer, SearchQueriesAreCounted) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  ASSERT_TRUE(laminar.client
                  ->RegisterWorkflow(demo->name, demo->spec, demo->pes,
                                     demo->code)
                  .ok());
  ASSERT_TRUE(
      laminar.client->SearchRegistrySemantic("prime numbers", "pe").ok());
  ASSERT_TRUE(laminar.client->SearchRegistryLiteral("prime", "pe").ok());

  Result<std::string> metrics = laminar.client->GetMetrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(
      ScrapeValue(*metrics, "laminar_search_queries_total{kind=\"semantic\"}"),
      1);
  EXPECT_GE(
      ScrapeValue(*metrics, "laminar_search_queries_total{kind=\"literal\"}"),
      1);
  EXPECT_GE(ScrapeValue(*metrics,
                        "laminar_embed_encodes_total{model=\"unixcoder\"}"),
            1);
}

TEST(TelemetryServer, QueryCacheCountersExposedInMetrics) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  ASSERT_TRUE(laminar.client
                  ->RegisterPe(
                      "class CacheProbe(IterativePE):\n"
                      "    def _process(self, x):\n        return x\n",
                      "CacheProbe")
                  .ok());
  Result<std::string> before = laminar.client->GetMetrics();
  ASSERT_TRUE(before.ok());
  // Both series exist in the scrape even before any query runs.
  int64_t hits0 =
      ScrapeValue(*before, "laminar_search_query_cache_hits_total");
  int64_t misses0 =
      ScrapeValue(*before, "laminar_search_query_cache_misses_total");
  ASSERT_GE(hits0, 0);
  ASSERT_GE(misses0, 0);

  // Same query twice: one miss (first encode), then one hit.
  ASSERT_TRUE(
      laminar.client->SearchRegistrySemantic("probe the cache", "pe").ok());
  ASSERT_TRUE(
      laminar.client->SearchRegistrySemantic("probe the cache", "pe").ok());
  Result<std::string> after = laminar.client->GetMetrics();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(ScrapeValue(*after, "laminar_search_query_cache_misses_total"),
            misses0 + 1);
  EXPECT_GE(ScrapeValue(*after, "laminar_search_query_cache_hits_total"),
            hits0 + 1);
}

}  // namespace
}  // namespace laminar::client
