#include <gtest/gtest.h>

#include "pycode/parser.hpp"

namespace laminar::pycode {
namespace {

std::string SExpr(const std::string& source) {
  Result<NodePtr> tree = Parse(source);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString() << "\nsource:\n" << source;
  return tree.ok() ? tree.value()->ToSExpr() : "";
}

bool ParsesStrict(const std::string& source) { return Parse(source).ok(); }

TEST(Parser, SimpleAssignment) {
  EXPECT_EQ(SExpr("x = 1\n"), "(module (assign x = 1))");
}

TEST(Parser, ChainedAndAugmented) {
  EXPECT_EQ(SExpr("a = b = 2\n"), "(module (assign a = b = 2))");
  EXPECT_EQ(SExpr("a += 1\n"), "(module (aug_assign a += 1))");
}

TEST(Parser, AnnotatedAssignment) {
  EXPECT_EQ(SExpr("x: int = 5\n"), "(module (ann_assign x : int = 5))");
}

TEST(Parser, TupleAssignmentAndSwap) {
  EXPECT_TRUE(ParsesStrict("a, b = b, a + b\n"));
  EXPECT_TRUE(ParsesStrict("xs[i], xs[j] = xs[j], xs[i]\n"));
}

TEST(Parser, OperatorPrecedence) {
  // * binds tighter than +; ** tighter than unary minus on the left.
  EXPECT_EQ(SExpr("x = 1 + 2 * 3\n"),
            "(module (assign x = (bin_op 1 + (bin_op 2 * 3))))");
  EXPECT_EQ(SExpr("x = 2 ** 3 ** 2\n"),
            "(module (assign x = (power 2 ** (power 3 ** 2))))");
}

TEST(Parser, ComparisonChains) {
  EXPECT_EQ(SExpr("r = a < b <= c\n"),
            "(module (assign r = (comparison a < b <= c)))");
  EXPECT_TRUE(ParsesStrict("if x not in seen and y is not None:\n    pass\n"));
}

TEST(Parser, BooleanOperators) {
  EXPECT_EQ(SExpr("r = a or b and not c\n"),
            "(module (assign r = (or_expr a or (and_expr b and (not_expr not c)))))");
}

TEST(Parser, Ternary) {
  EXPECT_EQ(SExpr("x = 1 if ok else 2\n"),
            "(module (assign x = (ternary 1 if ok else 2)))");
}

TEST(Parser, CallForms) {
  EXPECT_TRUE(ParsesStrict("f()\n"));
  EXPECT_TRUE(ParsesStrict("f(1, x, key=2, *args, **kwargs)\n"));
  EXPECT_TRUE(ParsesStrict("obj.method(1).chain()[0].attr\n"));
  EXPECT_TRUE(ParsesStrict("print('a', end='')\n"));
}

TEST(Parser, SubscriptsAndSlices) {
  EXPECT_TRUE(ParsesStrict("a[1]\n"));
  EXPECT_TRUE(ParsesStrict("a[1:2]\n"));
  EXPECT_TRUE(ParsesStrict("a[::2]\n"));
  EXPECT_TRUE(ParsesStrict("a[i:j:k]\n"));
  EXPECT_TRUE(ParsesStrict("m[i][j]\n"));
  EXPECT_TRUE(ParsesStrict("a[1:]\n"));
  EXPECT_TRUE(ParsesStrict("a[:-1]\n"));
  EXPECT_TRUE(ParsesStrict("a[x, y]\n"));
}

TEST(Parser, Displays) {
  EXPECT_TRUE(ParsesStrict("x = []\n"));
  EXPECT_TRUE(ParsesStrict("x = [1, 2, 3]\n"));
  EXPECT_TRUE(ParsesStrict("x = {}\n"));
  EXPECT_TRUE(ParsesStrict("x = {'a': 1, 'b': 2}\n"));
  EXPECT_TRUE(ParsesStrict("x = {1, 2}\n"));
  EXPECT_TRUE(ParsesStrict("x = (1,)\n"));
  EXPECT_TRUE(ParsesStrict("x = ()\n"));
  EXPECT_TRUE(ParsesStrict("x = (a + b) * c\n"));
}

TEST(Parser, Comprehensions) {
  EXPECT_TRUE(ParsesStrict("x = [i * i for i in range(10) if i % 2 == 0]\n"));
  EXPECT_TRUE(ParsesStrict("x = {k: v for k, v in items}\n"));
  EXPECT_TRUE(ParsesStrict("x = {c for c in text}\n"));
  EXPECT_TRUE(ParsesStrict("total = sum(v * v for v in vec)\n"));
  EXPECT_TRUE(ParsesStrict("m = [[0] * n for _ in range(n)]\n"));
}

TEST(Parser, Lambda) {
  EXPECT_TRUE(ParsesStrict("f = lambda x, y=2: x + y\n"));
  EXPECT_TRUE(ParsesStrict("sorted(xs, key=lambda p: p[1])\n"));
}

TEST(Parser, FunctionDefs) {
  std::string src =
      "def f(a, b=1, *args, **kw) -> int:\n"
      "    return a + b\n";
  std::string sexpr = SExpr(src);
  EXPECT_NE(sexpr.find("func_def"), std::string::npos);
  EXPECT_NE(sexpr.find("return_annotation"), std::string::npos);
}

TEST(Parser, ClassWithMethods) {
  std::string src =
      "class IsPrime(IterativePE):\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "    def _process(self, num):\n"
      "        if all(num % i != 0 for i in range(2, num)):\n"
      "            return num\n";
  std::string sexpr = SExpr(src);
  EXPECT_NE(sexpr.find("class_def"), std::string::npos);
  EXPECT_NE(sexpr.find("(bases ( IterativePE ))"), std::string::npos);
}

TEST(Parser, Decorators) {
  EXPECT_TRUE(ParsesStrict(
      "@staticmethod\n"
      "@app.route('/x', methods=['GET'])\n"
      "def handler():\n"
      "    pass\n"));
}

TEST(Parser, ControlFlowStatements) {
  EXPECT_TRUE(ParsesStrict(
      "while x > 0:\n"
      "    x -= 1\n"
      "else:\n"
      "    done()\n"));
  EXPECT_TRUE(ParsesStrict(
      "for i, v in enumerate(xs):\n"
      "    if v:\n"
      "        break\n"
      "    elif not v:\n"
      "        continue\n"
      "else:\n"
      "    pass\n"));
  EXPECT_TRUE(ParsesStrict(
      "try:\n"
      "    risky()\n"
      "except ValueError as e:\n"
      "    handle(e)\n"
      "except Exception:\n"
      "    raise\n"
      "else:\n"
      "    ok()\n"
      "finally:\n"
      "    cleanup()\n"));
  EXPECT_TRUE(ParsesStrict(
      "with open('f') as fh, lock:\n"
      "    fh.read()\n"));
}

TEST(Parser, ImportForms) {
  EXPECT_TRUE(ParsesStrict("import os\n"));
  EXPECT_TRUE(ParsesStrict("import os.path as p, sys\n"));
  EXPECT_TRUE(ParsesStrict("from collections import OrderedDict, deque\n"));
  EXPECT_TRUE(ParsesStrict("from a.b.c import d as e\n"));
  EXPECT_TRUE(ParsesStrict("from . import sibling\n"));
  EXPECT_TRUE(ParsesStrict("from mod import *\n"));
  EXPECT_TRUE(ParsesStrict("from pkg import (one,\n    two)\n"));
}

TEST(Parser, SmallStatements) {
  EXPECT_TRUE(ParsesStrict("assert x, 'message'\n"));
  EXPECT_TRUE(ParsesStrict("global a, b\n"));
  EXPECT_TRUE(ParsesStrict("nonlocal c\n"));
  EXPECT_TRUE(ParsesStrict("del xs[0], y\n"));
  EXPECT_TRUE(ParsesStrict("raise ValueError('bad') from err\n"));
  EXPECT_TRUE(ParsesStrict("yield x\n"));
  EXPECT_TRUE(ParsesStrict("x = yield from gen()\n"));
  EXPECT_TRUE(ParsesStrict("a = 1; b = 2; c = 3\n"));
}

TEST(Parser, InlineSuite) {
  EXPECT_TRUE(ParsesStrict("if x: y = 1\n"));
  EXPECT_TRUE(ParsesStrict("def f(): return 1\n"));
}

TEST(Parser, AsyncForms) {
  EXPECT_TRUE(ParsesStrict(
      "async def fetch(url):\n"
      "    data = await get(url)\n"
      "    return data\n"));
}

TEST(Parser, StringConcatenation) {
  EXPECT_TRUE(ParsesStrict("s = 'a' 'b' 'c'\n"));
}

TEST(Parser, DocstringSurvivesInTree) {
  std::string sexpr = SExpr(
      "def f():\n"
      "    \"\"\"Docs here.\"\"\"\n"
      "    return 1\n");
  EXPECT_NE(sexpr.find("Docs here."), std::string::npos);
}

TEST(Parser, SyntaxErrorsReported) {
  EXPECT_FALSE(ParsesStrict("def f(:\n    pass\n"));
  EXPECT_FALSE(ParsesStrict("if\n"));
  EXPECT_FALSE(ParsesStrict("x = = 2\n"));
  EXPECT_FALSE(ParsesStrict("return 1\n2 +\n"));
}

TEST(ParserLenient, RecoversPerStatement) {
  // Second line is garbage; first and third must still be parsed.
  Result<NodePtr> tree = ParseLenient(
      "x = 1\n"
      "def broken(:\n"
      "y = 2\n");
  ASSERT_TRUE(tree.ok());
  std::string sexpr = tree.value()->ToSExpr();
  EXPECT_NE(sexpr.find("(assign x = 1)"), std::string::npos);
  EXPECT_NE(sexpr.find("(assign y = 2)"), std::string::npos);
  EXPECT_NE(sexpr.find("fragment"), std::string::npos);
}

TEST(ParserLenient, TruncatedSuiteTolerated) {
  // Dropping code can cut a def header from its body.
  Result<NodePtr> tree = ParseLenient(
      "class P(IterativePE):\n"
      "    def _process(self, x):\n");
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree.value()->ToSExpr().find("func_def"), std::string::npos);
}

TEST(ParserLenient, UnlexableFallsBackToLineFragments) {
  Result<NodePtr> tree = ParseLenient(
      "result = value + 1\n"
      "s = 'unterminated\n");
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree.value()->ToSExpr().find("result"), std::string::npos);
}

TEST(ParserLenient, EmptyInputRejected) {
  EXPECT_FALSE(ParseLenient("").ok());
}

TEST(ParseTree, LineSpans) {
  Result<NodePtr> tree = Parse(
      "def f():\n"
      "    a = 1\n"
      "    return a\n");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value()->FirstLine(), 1);
  EXPECT_EQ(tree.value()->LastLine(), 3);
}

TEST(ParseTree, TreeSizeCountsAllNodes) {
  Result<NodePtr> tree = Parse("x = 1\n");
  ASSERT_TRUE(tree.ok());
  // module + assign + x + '=' + 1
  EXPECT_EQ(tree.value()->TreeSize(), 5u);
}

}  // namespace
}  // namespace laminar::pycode
