// Tests for the MinHash-LSH structural index (the paper's LSH future work).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "dataset/generator.hpp"
#include "spt/lsh_index.hpp"

namespace laminar::spt {
namespace {

FeatureBag Feat(const std::string& code) {
  Result<SptNodePtr> spt = SptFromSource(code);
  EXPECT_TRUE(spt.ok());
  return ExtractFeatures(*spt.value());
}

TEST(LshIndex, AddRemoveLifecycle) {
  LshIndex index;
  index.Add(1, Feat("x = 1\n"));
  index.Add(2, Feat("for i in items:\n    use(i)\n"));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.size(), 1u);
  auto hits = index.TopK(Feat("x = 1\n"), 5);
  for (const auto& hit : hits) EXPECT_NE(hit.doc_id, 1);
}

TEST(LshIndex, ReAddReplaces) {
  LshIndex index;
  index.Add(1, Feat("x = 1\n"));
  index.Add(1, Feat("while flag:\n    step(1)\n"));
  EXPECT_EQ(index.size(), 1u);
}

TEST(LshIndex, IdenticalSnippetAlwaysCandidate) {
  LshIndex index;
  FeatureBag bag = Feat("total = 0\nfor v in xs:\n    total += v\n");
  index.Add(7, bag);
  std::vector<int64_t> candidates = index.Candidates(bag);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 7);
  auto hits = index.TopK(bag, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 7);
}

TEST(LshIndex, DissimilarSnippetsRarelyCollide) {
  LshIndex index;
  index.Add(1, Feat("import os\nimport sys\n"));
  // A structurally unrelated query should produce (near) zero candidates.
  FeatureBag query = Feat(
      "while left < right:\n"
      "    middle = (left + right) // 2\n"
      "    probe(middle)\n");
  EXPECT_LE(index.Candidates(query).size(), 1u);
}

TEST(LshIndex, JaccardEstimateTracksTruth) {
  LshConfig config;
  config.num_hashes = 128;
  config.bands = 32;
  LshIndex index(config);
  FeatureBag a = Feat(
      "result = 1\nfor i in range(2, n + 1):\n    result = result * i\n");
  FeatureBag b = Feat(
      "acc = 1\nfor k in range(2, m + 1):\n    acc = acc * k\n");  // rename
  FeatureBag c = Feat("with open(p) as fh:\n    data = fh.read()\n");
  index.Add(1, a);
  index.Add(2, b);
  index.Add(3, c);
  double sim_ab = index.EstimateJaccard(1, 2);
  double sim_ac = index.EstimateJaccard(1, 3);
  double true_ab = JaccardSimilarity(a, b);
  EXPECT_GT(sim_ab, sim_ac);
  EXPECT_NEAR(sim_ab, true_ab, 0.25);  // MinHash estimate tolerance
  EXPECT_EQ(index.EstimateJaccard(1, 99), 0.0);
}

TEST(LshIndex, InvalidBandShapeFallsBack) {
  LshConfig config;
  config.num_hashes = 10;
  config.bands = 3;  // not a divisor
  LshIndex index(config);
  index.Add(1, Feat("x = 1\n"));
  EXPECT_EQ(index.TopK(Feat("x = 1\n"), 1).size(), 1u);
}

class LshCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset::DatasetConfig config;
    config.families = 0;
    config.variants_per_family = 8;
    ds_ = dataset::CodeSearchNetPeDataset::Generate(config);
    FeatureOptions opts;
    for (const auto& ex : ds_.examples()) {
      Result<SptNodePtr> spt = SptFromSource(ex.pe_code);
      ASSERT_TRUE(spt.ok());
      FeatureBag bag = ExtractFeatures(*spt.value(), opts);
      exact_.Add(ex.id, bag);
      lsh_.Add(ex.id, std::move(bag));
    }
  }

  dataset::CodeSearchNetPeDataset ds_;
  SptIndex exact_;
  LshIndex lsh_;
};

TEST_F(LshCorpusTest, HighRecallOfExactTopResults) {
  // LSH must recover the large majority of the exact index's top-5 results.
  size_t found = 0, total = 0;
  for (size_t i = 0; i < ds_.size(); i += 4) {
    const auto& ex = ds_.example(i);
    Result<SptNodePtr> spt = SptFromSource(ex.pe_code);
    ASSERT_TRUE(spt.ok());
    FeatureBag query = ExtractFeatures(*spt.value());
    auto exact_hits = exact_.TopK(query, 5, Metric::kOverlap);
    auto lsh_hits = lsh_.TopK(query, 5, Metric::kOverlap);
    std::unordered_set<int64_t> lsh_ids;
    for (const auto& hit : lsh_hits) lsh_ids.insert(hit.doc_id);
    for (const auto& hit : exact_hits) {
      ++total;
      if (lsh_ids.contains(hit.doc_id)) ++found;
    }
  }
  ASSERT_GT(total, 0u);
  double recall = static_cast<double>(found) / static_cast<double>(total);
  EXPECT_GT(recall, 0.8) << found << "/" << total;
}

TEST_F(LshCorpusTest, CandidateSetMuchSmallerThanCorpus) {
  size_t total_candidates = 0;
  size_t queries = 0;
  for (size_t i = 0; i < ds_.size(); i += 8) {
    const auto& ex = ds_.example(i);
    Result<SptNodePtr> spt = SptFromSource(ex.pe_code);
    ASSERT_TRUE(spt.ok());
    total_candidates +=
        lsh_.Candidates(ExtractFeatures(*spt.value())).size();
    ++queries;
  }
  double avg = static_cast<double>(total_candidates) /
               static_cast<double>(queries);
  // The point of LSH: score a fraction of the corpus, not all of it.
  EXPECT_LT(avg, static_cast<double>(ds_.size()) * 0.5) << avg;
}

TEST_F(LshCorpusTest, TopHitAgreesWithExactForSelfQueries) {
  for (size_t i = 0; i < ds_.size(); i += 16) {
    const auto& ex = ds_.example(i);
    Result<SptNodePtr> spt = SptFromSource(ex.pe_code);
    ASSERT_TRUE(spt.ok());
    FeatureBag query = ExtractFeatures(*spt.value());
    auto hits = lsh_.TopK(query, 1, Metric::kOverlap);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].doc_id, ex.id);
  }
}

}  // namespace
}  // namespace laminar::spt
