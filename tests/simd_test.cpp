// Kernel-parity and SQ8 quantization suite (ISSUE 10).
//
// The dispatch contract under test: every tier's float kernel agrees with
// the scalar reference within a documented FMA reassociation bound, the
// int8 kernel agrees *exactly* on every tier (integer arithmetic has no
// rounding), DotBatch row i is bit-identical to Dot on that row, and a
// VectorIndex with the SQ8 mirror enabled returns scores bit-identical to
// the exact float paths for every id it returns — quantization may only
// change recall, never a returned score.
//
// The whole binary is registered twice with ctest: once as `kernels_suite`
// (native dispatch) and once as `kernels_force_scalar` with
// LAMINAR_SIMD=scalar in the environment, which pins ActiveTier to the
// portable loop and re-proves the same contracts on the fallback path.
#include "simd/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "embed/embedding.hpp"
#include "gtest/gtest.h"
#include "search/vector_index.hpp"
#include "simd/sq8.hpp"

namespace laminar {
namespace {

// Shapes chosen to cross every kernel boundary: sub-vector-width (1),
// odd with scalar tail (17, 63, 255), and exact unroll multiples (256).
const size_t kDims[] = {1, 17, 63, 255, 256};
// Start offsets into an over-allocated buffer: the kernels promise no
// alignment requirement, so unaligned bases must work and agree too.
const size_t kOffsets[] = {0, 1, 3};

std::vector<float> RandomFloats(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return v;
}

std::vector<int8_t> RandomCodes(Rng& rng, size_t n) {
  std::vector<int8_t> v(n);
  for (int8_t& c : v) {
    c = static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
  }
  return v;
}

/// Tiers the host can actually run, discovered through SetTier's clamping.
std::vector<simd::Tier> AvailableTiers() {
  const simd::Tier before = simd::ActiveTier();
  std::vector<simd::Tier> tiers;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kNeon,
                       simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::SetTier(t) == t) tiers.push_back(t);
  }
  simd::SetTier(before);
  return tiers;
}

/// FMA bound: wider tiers contract a*b+c into one rounding and reassociate
/// the reduction tree, so the scalar and SIMD sums can differ by a few ULPs
/// per accumulation step. |err| <= n * eps * sum(|a_i * b_i|) is a loose
/// but dimension-aware envelope (documented in simd.hpp: float results may
/// differ across tiers in the final ULPs; each tier is deterministic).
float FloatBound(const float* a, const float* b, size_t n) {
  float mag = 0.0f;
  for (size_t i = 0; i < n; ++i) mag += std::fabs(a[i] * b[i]);
  return static_cast<float>(n) * 1.19209290e-7f * mag + 1e-7f;
}

TEST(SimdDispatch, TierRoundTripsAndClampToScalarAlwaysWorks) {
  const simd::Tier before = simd::ActiveTier();
  EXPECT_EQ(simd::SetTier(simd::Tier::kScalar), simd::Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  simd::SetTier(before);
  EXPECT_EQ(simd::ActiveTier(), before);
  // DetectedTier is a host property; whatever it is, it must be settable.
  EXPECT_EQ(simd::SetTier(simd::DetectedTier()), simd::DetectedTier());
  simd::SetTier(before);
}

TEST(SimdDispatch, EnvOverridePinsScalar) {
  // Under the kernels_force_scalar ctest entry LAMINAR_SIMD=scalar is set
  // before the process starts; dispatch must have resolved to the portable
  // loop. (Without the env var this test is a no-op.)
  const char* env = std::getenv("LAMINAR_SIMD");
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
}

TEST(SimdKernels, FloatDotMatchesScalarWithinFmaBound) {
  Rng rng(0x5eed0001ULL);
  const simd::Tier before = simd::ActiveTier();
  for (size_t dims : kDims) {
    for (size_t off : kOffsets) {
      std::vector<float> a = RandomFloats(rng, dims + off);
      std::vector<float> b = RandomFloats(rng, dims + off);
      const float want = simd::DotScalar(a.data() + off, b.data() + off, dims);
      const float bound = FloatBound(a.data() + off, b.data() + off, dims);
      for (simd::Tier tier : AvailableTiers()) {
        ASSERT_EQ(simd::SetTier(tier), tier);
        const float got = simd::Dot(a.data() + off, b.data() + off, dims);
        EXPECT_NEAR(got, want, bound)
            << "tier=" << simd::TierName(tier) << " dims=" << dims
            << " off=" << off;
        if (tier == simd::Tier::kScalar) {
          // The scalar tier is not merely close — it IS the reference.
          EXPECT_EQ(std::memcmp(&got, &want, sizeof(float)), 0);
        }
      }
    }
  }
  simd::SetTier(before);
}

TEST(SimdKernels, Int8DotExactOnEveryTier) {
  Rng rng(0x5eed0002ULL);
  const simd::Tier before = simd::ActiveTier();
  for (size_t dims : kDims) {
    for (size_t off : kOffsets) {
      std::vector<int8_t> a = RandomCodes(rng, dims + off);
      std::vector<int8_t> b = RandomCodes(rng, dims + off);
      const int32_t want =
          simd::DotI8Scalar(a.data() + off, b.data() + off, dims);
      for (simd::Tier tier : AvailableTiers()) {
        ASSERT_EQ(simd::SetTier(tier), tier);
        EXPECT_EQ(simd::DotI8(a.data() + off, b.data() + off, dims), want)
            << "tier=" << simd::TierName(tier) << " dims=" << dims
            << " off=" << off;
      }
    }
  }
  simd::SetTier(before);
}

TEST(SimdKernels, Int8SaturationCornersExact) {
  // +/-127 everywhere maximizes every intermediate: a 16-bit madd pair
  // reaches 2*127*127 = 32258, within int16? No — 32258 < 32767 holds, and
  // that is exactly why the AVX madd_epi16 path is exact; prove the corner.
  const simd::Tier before = simd::ActiveTier();
  for (size_t dims : kDims) {
    std::vector<int8_t> hi(dims, 127), lo(dims, -127);
    const int32_t want_hi = static_cast<int32_t>(dims) * 127 * 127;
    for (simd::Tier tier : AvailableTiers()) {
      ASSERT_EQ(simd::SetTier(tier), tier);
      EXPECT_EQ(simd::DotI8(hi.data(), hi.data(), dims), want_hi);
      EXPECT_EQ(simd::DotI8(hi.data(), lo.data(), dims), -want_hi);
      EXPECT_EQ(simd::DotI8(lo.data(), lo.data(), dims), want_hi);
    }
  }
  simd::SetTier(before);
}

TEST(SimdKernels, DotBatchBitIdenticalToPerRowDot) {
  Rng rng(0x5eed0003ULL);
  const simd::Tier before = simd::ActiveTier();
  const size_t rows = 37;
  for (size_t dims : kDims) {
    std::vector<float> query = RandomFloats(rng, dims);
    std::vector<float> block = RandomFloats(rng, rows * dims);
    std::vector<float> out(rows);
    for (simd::Tier tier : AvailableTiers()) {
      ASSERT_EQ(simd::SetTier(tier), tier);
      simd::DotBatch(query.data(), block.data(), rows, dims, out.data());
      for (size_t r = 0; r < rows; ++r) {
        const float one =
            simd::Dot(query.data(), block.data() + r * dims, dims);
        ASSERT_EQ(std::memcmp(&out[r], &one, sizeof(float)), 0)
            << "tier=" << simd::TierName(tier) << " dims=" << dims
            << " row=" << r;
      }
    }
  }
  simd::SetTier(before);
}

TEST(Sq8, QuantizedScoreTracksFloatDot) {
  Rng rng(0x5eed0004ULL);
  const size_t dims = 64;
  const size_t rows = 256;
  std::vector<float> block(rows * dims);
  std::vector<int8_t> codes(rows * dims);
  std::vector<float> scales(rows), offsets(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<float> row = RandomFloats(rng, dims);
    float norm = 0.0f;
    for (float x : row) norm += x * x;
    norm = std::sqrt(norm);
    for (size_t i = 0; i < dims; ++i) block[r * dims + i] = row[i] / norm;
    simd::QuantizeRow(block.data() + r * dims, dims, codes.data() + r * dims,
                      &scales[r], &offsets[r]);
  }
  const simd::Sq8View view{codes.data(), scales.data(), offsets.data(), dims};

  std::vector<float> qf = RandomFloats(rng, dims);
  float qnorm = 0.0f;
  for (float x : qf) qnorm += x * x;
  qnorm = std::sqrt(qnorm);
  for (float& x : qf) x /= qnorm;
  simd::Sq8Query q8;
  simd::QuantizeQuery(qf.data(), dims, &q8);
  ASSERT_EQ(q8.codes.size(), dims);

  // Unit vectors, so every true score is in [-1, 1]; 8-bit codes on both
  // sides keep the approximation within a few percent — far tighter than
  // the rerank over-fetch needs, but wide enough to never flake.
  for (size_t r = 0; r < rows; ++r) {
    const float exact =
        simd::DotScalar(qf.data(), block.data() + r * dims, dims);
    const float approx = simd::Sq8Score(q8, view, r);
    EXPECT_NEAR(approx, exact, 0.05f) << "row " << r;
  }
}

TEST(Sq8, ConstantAndZeroRowsQuantizeExactly) {
  const size_t dims = 33;
  std::vector<float> row(dims, 0.25f);
  std::vector<int8_t> codes(dims, 99);
  float scale = -1.0f, offset = -1.0f;
  simd::QuantizeRow(row.data(), dims, codes.data(), &scale, &offset);
  EXPECT_EQ(scale, 0.0f);
  EXPECT_EQ(offset, 0.25f);
  for (int8_t c : codes) EXPECT_EQ(c, 0);

  std::vector<float> zero(dims, 0.0f);
  simd::Sq8Query q8;
  simd::QuantizeQuery(zero.data(), dims, &q8);
  EXPECT_EQ(q8.scale, 0.0f);
  EXPECT_EQ(q8.code_sum, 0);
}

search::VectorIndexOptions QuantFlatOptions() {
  search::VectorIndexOptions o;
  o.strategy = search::IndexStrategy::kFlat;
  o.quantize = true;
  o.rerank_overfetch = 4.0;
  return o;
}

embed::Vector ClusteredVector(Rng& rng, size_t dims, uint32_t cluster) {
  embed::Vector v(dims);
  Rng centroid_rng(0xc105ULL + cluster);
  for (size_t i = 0; i < dims; ++i) {
    const float c = static_cast<float>(centroid_rng.NextDouble() * 2.0 - 1.0);
    v[i] = c + 0.15f * static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  return v;
}

/// Returned-score parity: every id `got` returns must carry the bit-exact
/// score the reference result assigns it. Returns the id overlap count.
size_t CheckScoreParity(const std::vector<search::ScoredId>& got,
                        const std::vector<search::ScoredId>& want) {
  std::unordered_map<int64_t, float> want_scores;
  want_scores.reserve(want.size());
  for (const search::ScoredId& w : want) want_scores.emplace(w.id, w.score);
  size_t hits = 0;
  for (const search::ScoredId& g : got) {
    auto it = want_scores.find(g.id);
    if (it == want_scores.end()) continue;
    ++hits;
    EXPECT_EQ(std::memcmp(&g.score, &it->second, sizeof(float)), 0)
        << "id " << g.id << " quantized-path score differs from exact";
  }
  return hits;
}

TEST(VectorIndexQuant, FlatReturnedScoresBitIdenticalAndRecallHigh) {
  const size_t dims = 32, n = 2000, k = 10, nqueries = 20;
  Rng rng(0x5eed0005ULL);
  search::VectorIndex quant(dims, QuantFlatOptions());
  search::VectorIndexOptions plain_opts;
  plain_opts.strategy = search::IndexStrategy::kFlat;
  search::VectorIndex plain(dims, plain_opts);
  for (size_t i = 0; i < n; ++i) {
    embed::Vector v = ClusteredVector(rng, dims, static_cast<uint32_t>(i % 8));
    quant.Upsert(static_cast<int64_t>(i), v);
    plain.Upsert(static_cast<int64_t>(i), v);
  }
  ASSERT_TRUE(quant.DebugQuantConsistent());
  ASSERT_TRUE(quant.stats().quantized);
  ASSERT_GT(quant.stats().quant_bytes, 0u);

  double recall_sum = 0.0;
  for (size_t qi = 0; qi < nqueries; ++qi) {
    embed::Vector q = ClusteredVector(rng, dims, static_cast<uint32_t>(qi % 8));
    std::vector<search::ScoredId> want = plain.TopK(q, k);
    std::vector<search::ScoredId> got = quant.TopK(q, k);
    ASSERT_EQ(got.size(), want.size());
    recall_sum += static_cast<double>(CheckScoreParity(got, want)) /
                  static_cast<double>(want.size());
    // BruteForceTopK must stay exact (and bit-equal to TopK's scores) even
    // with the mirror on — it never routes through the quantized path.
    CheckScoreParity(got, quant.BruteForceTopK(q, k));
  }
  EXPECT_GE(recall_sum / nqueries, 0.95);
}

TEST(VectorIndexQuant, HnswTraversalOverMirrorKeepsParity) {
  const size_t dims = 32, n = 3000, k = 10, nqueries = 20;
  Rng rng(0x5eed0006ULL);
  search::VectorIndexOptions opts;
  opts.strategy = search::IndexStrategy::kHnsw;
  opts.quantize = true;
  opts.rerank_overfetch = 4.0;
  opts.recall_probe_interval = 0;
  search::VectorIndex index(dims, opts);
  index.BeginBulk();
  for (size_t i = 0; i < n; ++i) {
    index.Upsert(static_cast<int64_t>(i),
                 ClusteredVector(rng, dims, static_cast<uint32_t>(i % 8)));
  }
  index.EndBulk(nullptr);
  ASSERT_TRUE(index.ann_active());
  ASSERT_TRUE(index.DebugQuantConsistent());

  double recall_sum = 0.0;
  for (size_t qi = 0; qi < nqueries; ++qi) {
    embed::Vector q = ClusteredVector(rng, dims, static_cast<uint32_t>(qi % 8));
    std::vector<search::ScoredId> want = index.BruteForceTopK(q, k);
    std::vector<search::ScoredId> got = index.TopK(q, k);
    ASSERT_EQ(got.size(), k);
    recall_sum += static_cast<double>(CheckScoreParity(got, want)) /
                  static_cast<double>(want.size());
  }
  EXPECT_GE(recall_sum / nqueries, 0.90);
}

TEST(VectorIndexQuant, MirrorStaysConsistentThroughChurn) {
  const size_t dims = 16;
  Rng rng(0x5eed0007ULL);

  // Flat churn: upserts, in-place replaces, swap-and-pop removes, shrink.
  search::VectorIndex flat(dims, QuantFlatOptions());
  for (int64_t i = 0; i < 300; ++i) {
    flat.Upsert(i, ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4)));
  }
  for (int64_t i = 0; i < 300; i += 3) {
    flat.Upsert(i, ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4)));
  }
  ASSERT_TRUE(flat.DebugQuantConsistent());
  for (int64_t i = 0; i < 300; i += 2) EXPECT_TRUE(flat.Remove(i));
  ASSERT_TRUE(flat.DebugQuantConsistent());
  EXPECT_EQ(flat.size(), 150u);

  // hnsw churn: tombstoning replaces/removes, then enough dead rows to
  // trigger compaction (which rebuilds the mirror alongside the graph).
  search::VectorIndexOptions hopts;
  hopts.strategy = search::IndexStrategy::kHnsw;
  hopts.quantize = true;
  hopts.max_dead_fraction = 0.2;
  search::VectorIndex hnsw(dims, hopts);
  hnsw.BeginBulk();
  for (int64_t i = 0; i < 400; ++i) {
    hnsw.Upsert(i, ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4)));
  }
  hnsw.EndBulk(nullptr);
  ASSERT_TRUE(hnsw.DebugQuantConsistent());
  const uint64_t before_compactions = hnsw.stats().compactions;
  for (int64_t i = 0; i < 200; ++i) {
    hnsw.Upsert(i, ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4)));
  }
  for (int64_t i = 200; i < 300; ++i) EXPECT_TRUE(hnsw.Remove(i));
  EXPECT_GT(hnsw.stats().compactions, before_compactions);
  ASSERT_TRUE(hnsw.DebugQuantConsistent());
  EXPECT_EQ(hnsw.size(), 300u);

  hnsw.Clear();
  EXPECT_TRUE(hnsw.DebugQuantConsistent());
  EXPECT_EQ(hnsw.size(), 0u);  // capacity may linger, like data_/ids_
}

TEST(VectorIndexQuant, SetQuantizetogglesMirrorWithoutChangingScores) {
  const size_t dims = 24, n = 1200, k = 8;
  Rng rng(0x5eed0008ULL);
  search::VectorIndexOptions opts;
  opts.strategy = search::IndexStrategy::kFlat;
  search::VectorIndex index(dims, opts);
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    index.Upsert(i, ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4)));
  }
  EXPECT_FALSE(index.stats().quantized);
  embed::Vector q = ClusteredVector(rng, dims, 1);
  std::vector<search::ScoredId> before = index.TopK(q, k);

  index.SetQuantize(true);
  ASSERT_TRUE(index.DebugQuantConsistent());
  EXPECT_TRUE(index.stats().quantized);
  std::vector<search::ScoredId> quant = index.TopK(q, k);
  CheckScoreParity(quant, before);

  index.SetQuantize(false);
  EXPECT_FALSE(index.stats().quantized);
  EXPECT_EQ(index.stats().quant_bytes, 0u);
  std::vector<search::ScoredId> after = index.TopK(q, k);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(std::memcmp(&after[i].score, &before[i].score, sizeof(float)),
              0);
  }
}

TEST(VectorIndexQuant, ForcedScalarTierKeepsQuantParity) {
  // The whole contract must also hold on the portable kernels — the same
  // checks the kernels_force_scalar ctest entry runs process-wide, pinned
  // here explicitly so the native run covers the fallback too.
  const simd::Tier before = simd::ActiveTier();
  ASSERT_EQ(simd::SetTier(simd::Tier::kScalar), simd::Tier::kScalar);
  const size_t dims = 16, n = 800, k = 5;
  Rng rng(0x5eed0009ULL);
  search::VectorIndex quant(dims, QuantFlatOptions());
  search::VectorIndexOptions plain_opts;
  plain_opts.strategy = search::IndexStrategy::kFlat;
  search::VectorIndex plain(dims, plain_opts);
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    embed::Vector v = ClusteredVector(rng, dims, static_cast<uint32_t>(i % 4));
    quant.Upsert(i, v);
    plain.Upsert(i, v);
  }
  double recall_sum = 0.0;
  for (size_t qi = 0; qi < 10; ++qi) {
    embed::Vector q = ClusteredVector(rng, dims, static_cast<uint32_t>(qi % 4));
    std::vector<search::ScoredId> want = plain.TopK(q, k);
    std::vector<search::ScoredId> got = quant.TopK(q, k);
    recall_sum += static_cast<double>(CheckScoreParity(got, want)) /
                  static_cast<double>(want.size());
  }
  EXPECT_GE(recall_sum / 10.0, 0.9);
  simd::SetTier(before);
}

}  // namespace
}  // namespace laminar
