// Fast-ingest-path tests (ISSUE 5): two-phase registration correctness,
// the /registry/bulk_register endpoint, description updates without full
// re-indexing, WAL-backed server recovery, and an 8-writer/8-searcher
// registration-vs-search stress that asserts full consistency afterwards.
// The stress test is a primary TSan target (ctest label `faults`).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "client/connect.hpp"

namespace laminar::client {
namespace {

namespace fs = std::filesystem;

std::string PeCode(const std::string& name, int salt) {
  return "class " + name +
         "(IterativePE):\n"
         "    def _process(self, data):\n"
         "        return data * " +
         std::to_string(salt) + " + " + std::to_string(salt + 1) + "\n";
}

TEST(Ingest, TwoPhaseRegistrationMatchesReadBack) {
  InProcessLaminar laminar = ConnectInProcess();
  Result<PeInfo> pe = laminar.client->RegisterPe(
      PeCode("Doubler", 2), "Doubler", "doubles every incoming tuple");
  ASSERT_TRUE(pe.ok());
  EXPECT_GT(pe->id, 0);
  EXPECT_EQ(pe->name, "Doubler");

  // The committed indexes must serve all three search modalities.
  Result<std::vector<SearchHit>> semantic =
      laminar.client->SearchRegistrySemantic("doubles every incoming tuple");
  ASSERT_TRUE(semantic.ok());
  ASSERT_FALSE(semantic->empty());
  EXPECT_EQ(semantic->front().id, pe->id);

  Result<std::vector<SearchHit>> literal =
      laminar.client->SearchRegistryLiteral("Doubler");
  ASSERT_TRUE(literal.ok());
  ASSERT_FALSE(literal->empty());
  EXPECT_EQ(literal->front().id, pe->id);

  Result<std::vector<SearchHit>> recs =
      laminar.client->CodeRecommendation(PeCode("Doubler", 2), "pe", "spt");
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ(recs->front().id, pe->id);
}

TEST(Ingest, MissingDescriptionIsSummarizedOffLock) {
  InProcessLaminar laminar = ConnectInProcess();
  Result<PeInfo> pe = laminar.client->RegisterPe(PeCode("Tripler", 3));
  ASSERT_TRUE(pe.ok());
  EXPECT_EQ(pe->name, "Tripler");  // extracted from the class definition
  Result<PeInfo> read = laminar.client->GetPe(pe->id);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->description.empty());  // §IV-C auto-summary
}

TEST(Ingest, BulkRegisterCommitsValidItemsAndReportsErrors) {
  InProcessLaminar laminar = ConnectInProcess();
  std::vector<PeSource> pes;
  for (int i = 0; i < 12; ++i) {
    std::string name = "BulkPe" + std::to_string(i);
    pes.push_back({PeCode(name, i + 2), name,
                   "bulk pe number " + std::to_string(i)});
  }
  pes.push_back({"", "Broken", ""});  // no code: rejected, others unaffected
  Result<std::vector<int64_t>> ids = laminar.client->BulkRegisterPes(pes);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 12u);
  for (size_t i = 0; i < ids->size(); ++i) {
    Result<PeInfo> pe = laminar.client->GetPe((*ids)[i]);
    ASSERT_TRUE(pe.ok());
    EXPECT_EQ(pe->name, "BulkPe" + std::to_string(i));
  }
  // Bulk-registered PEs are fully indexed, like individual registrations.
  Result<std::vector<SearchHit>> hits =
      laminar.client->SearchRegistrySemantic("bulk pe number 7", "pe", 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().name, "BulkPe7");
}

TEST(Ingest, BulkRegisterMatchesIndividualRegistration) {
  InProcessLaminar bulk = ConnectInProcess();
  InProcessLaminar serial = ConnectInProcess();
  std::vector<PeSource> pes;
  for (int i = 0; i < 8; ++i) {
    std::string name = "ParityPe" + std::to_string(i);
    pes.push_back({PeCode(name, i + 2), name,
                   "parity corpus entry " + std::to_string(i)});
  }
  ASSERT_TRUE(bulk.client->BulkRegisterPes(pes).ok());
  for (const PeSource& pe : pes) {
    ASSERT_TRUE(
        serial.client->RegisterPe(pe.code, pe.name, pe.description).ok());
  }
  for (const std::string& query :
       {std::string("parity corpus entry 3"), std::string("entry")}) {
    Result<std::vector<SearchHit>> a =
        bulk.client->SearchRegistrySemantic(query, "pe", 5);
    Result<std::vector<SearchHit>> b =
        serial.client->SearchRegistrySemantic(query, "pe", 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].name, (*b)[i].name) << "query: " << query;
      EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score) << "query: " << query;
    }
  }
}

TEST(Ingest, UpdateDescriptionReindexesTextOnly) {
  InProcessLaminar laminar = ConnectInProcess();
  Result<PeInfo> pe = laminar.client->RegisterPe(
      PeCode("Renamer", 5), "Renamer", "original words nobody searches");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(laminar.client
                  ->UpdatePeDescription(pe->id,
                                        "completely fresh text about kumquats")
                  .ok());
  Result<std::vector<SearchHit>> hits = laminar.client->SearchRegistrySemantic(
      "completely fresh text about kumquats");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().id, pe->id);
  // The code/SPT indexes survive untouched.
  Result<std::vector<SearchHit>> recs =
      laminar.client->CodeRecommendation(PeCode("Renamer", 5), "pe", "spt");
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ(recs->front().id, pe->id);
  Result<PeInfo> read = laminar.client->GetPe(pe->id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->description, "completely fresh text about kumquats");
}

TEST(Ingest, ServerRecoversFromWalAcrossRestarts) {
  server::ServerConfig config;
  config.snapshot_path =
      (fs::temp_directory_path() / "laminar_ingest_snap.json").string();
  config.wal_path =
      (fs::temp_directory_path() / "laminar_ingest_wal.jsonl").string();
  fs::remove(config.snapshot_path);
  fs::remove(config.wal_path);

  {
    InProcessLaminar laminar = ConnectInProcess(config);
    ASSERT_TRUE(laminar.client
                    ->RegisterPe(PeCode("Durable", 4), "Durable",
                                 "survives a server restart")
                    .ok());
    ASSERT_TRUE(laminar.client->SaveRegistry(config.snapshot_path).ok());
    // Registered after the snapshot: reachable only through the WAL suffix.
    ASSERT_TRUE(laminar.client
                    ->RegisterPe(PeCode("Suffix", 6), "Suffix",
                                 "only in the write-ahead log")
                    .ok());
  }

  InProcessLaminar revived = ConnectInProcess(config);
  Result<PeInfo> durable = revived.client->GetPeByName("Durable");
  ASSERT_TRUE(durable.ok());
  Result<PeInfo> suffix = revived.client->GetPeByName("Suffix");
  ASSERT_TRUE(suffix.ok());
  // Recovery rebuilds the search indexes via the parallel bulk path.
  Result<std::vector<SearchHit>> hits =
      revived.client->SearchRegistrySemantic("survives a server restart");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().id, durable->id);

  fs::remove(config.snapshot_path);
  fs::remove(config.wal_path);
}

// 8 writers registering PEs while 8 searchers hammer the read endpoints.
// Afterwards every registration must be visible to point reads, the
// registry listing, and all search modalities — no lost or torn commits.
TEST(Ingest, ConcurrentWritersAndSearchersStayConsistent) {
  constexpr int kWriters = 8;
  constexpr int kSearchers = 8;
  constexpr int kPesPerWriter = 6;

  InProcessLaminar laminar = ConnectInProcess();
  // Seed so searchers have something to find from the first iteration.
  ASSERT_TRUE(laminar.client
                  ->RegisterPe(PeCode("Seed", 2), "Seed",
                               "seed processing element")
                  .ok());

  std::vector<ExtraClient> writers;
  std::vector<ExtraClient> searchers;
  for (int i = 0; i < kWriters; ++i) {
    writers.push_back(AttachClient(*laminar.server));
  }
  for (int i = 0; i < kSearchers; ++i) {
    searchers.push_back(AttachClient(*laminar.server));
  }

  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      LaminarClient& cli = *writers[static_cast<size_t>(w)].client;
      for (int i = 0; i < kPesPerWriter; ++i) {
        std::string name =
            "IngestPe" + std::to_string(w) + "_" + std::to_string(i);
        Result<PeInfo> pe =
            cli.RegisterPe(PeCode(name, w * 10 + i + 2), name,
                           "writer " + std::to_string(w) + " item " +
                               std::to_string(i));
        if (!pe.ok() || pe->id <= 0) failures.fetch_add(1);
      }
    });
  }
  for (int s = 0; s < kSearchers; ++s) {
    threads.emplace_back([&, s] {
      LaminarClient& cli = *searchers[static_cast<size_t>(s)].client;
      int spin = 0;
      while (!writers_done.load(std::memory_order_relaxed) || spin < 4) {
        ++spin;
        if (!cli.SearchRegistrySemantic("processing element", "pe", 3).ok()) {
          failures.fetch_add(1);
        }
        if (!cli.SearchRegistryLiteral("IngestPe", "pe", 5).ok()) {
          failures.fetch_add(1);
        }
        if (spin > 200) break;  // liveness backstop
      }
    });
  }
  for (size_t t = 0; t < static_cast<size_t>(kWriters); ++t) {
    threads[t].join();
  }
  writers_done.store(true);
  for (size_t t = static_cast<size_t>(kWriters); t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Consistency: every registration is visible everywhere.
  auto registry = laminar.client->GetRegistry();
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry->first.size(),
            static_cast<size_t>(kWriters * kPesPerWriter + 1));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPesPerWriter; ++i) {
      std::string name =
          "IngestPe" + std::to_string(w) + "_" + std::to_string(i);
      Result<PeInfo> pe = laminar.client->GetPeByName(name);
      ASSERT_TRUE(pe.ok()) << name;
      Result<std::vector<SearchHit>> hits =
          laminar.client->SearchRegistryLiteral(name, "pe", 1);
      ASSERT_TRUE(hits.ok());
      ASSERT_FALSE(hits->empty()) << name;
      EXPECT_EQ(hits->front().name, name);
    }
  }
}

}  // namespace
}  // namespace laminar::client
