// Batched-vs-unbatched data-plane parity for the dynamic mapping: tuple
// micro-batching (RunOptions::send_batch_size / recv_batch_size) is a pure
// transport optimization and must be invisible to workflow semantics —
// identical outputs, per-edge FIFO arrival order, and identical
// fault-containment behaviour (retries, DLQ) under injected faults.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"

namespace laminar::dataflow {
namespace {

/// Producer that forwards the iteration payload verbatim, so downstream
/// PEs see the deterministic sequence 0..N-1 (stateless: parallelizes).
class IndexProducer final : public Clonable<IndexProducer, ProducerBase> {
 public:
  IndexProducer() { set_name("IndexProducer"); }
  void Process(std::string_view, const Value& value, Emitter& out) override {
    out.Emit(kDefaultOutput, value);
  }
};

RunOptions Batched(Value input) {
  RunOptions options;
  options.input = std::move(input);
  options.initial_workers = 4;
  options.max_workers = 8;
  options.send_batch_size = 32;
  options.recv_batch_size = 32;
  return options;
}

RunOptions Unbatched(Value input) {
  RunOptions options = Batched(std::move(input));
  // 1/1 restores the pre-batching per-tuple protocol.
  options.send_batch_size = 1;
  options.recv_batch_size = 1;
  return options;
}

std::multiset<std::string> AsMultiset(const std::vector<std::string>& lines) {
  return {lines.begin(), lines.end()};
}

std::unique_ptr<WorkflowGraph> PrimesGraph() {
  auto g = std::make_unique<WorkflowGraph>("isprime_wf");
  auto& producer = g->AddPE<IndexProducer>();
  auto& filter = g->AddPE<IsPrime>();
  auto& printer = g->AddPE<PrintPrime>();
  EXPECT_TRUE(g->Connect(producer, filter).ok());
  EXPECT_TRUE(g->Connect(filter, printer).ok());
  return g;
}

TEST(BatchingParity, SameOutputsAsUnbatchedAndSequential) {
  auto graph = PrimesGraph();
  DynamicMapping batched_mapping;
  RunResult batched = batched_mapping.Execute(*graph, Batched(Value(500)));
  DynamicMapping unbatched_mapping;
  RunResult unbatched =
      unbatched_mapping.Execute(*graph, Unbatched(Value(500)));
  SequentialMapping sequential;
  RunResult reference = sequential.Execute(*graph, Batched(Value(500)));

  ASSERT_TRUE(batched.status.ok()) << batched.status.ToString();
  ASSERT_TRUE(unbatched.status.ok()) << unbatched.status.ToString();
  EXPECT_EQ(batched.tuples_processed, unbatched.tuples_processed);
  EXPECT_EQ(AsMultiset(batched.output_lines),
            AsMultiset(unbatched.output_lines));
  EXPECT_EQ(AsMultiset(batched.output_lines),
            AsMultiset(reference.output_lines));
  EXPECT_EQ(batched.failed_tuples, 0u);
  EXPECT_EQ(batched.dlq_depth, 0u);
}

// With a single worker the whole pipeline is serial, so per-edge FIFO is
// observable end to end: the sink must see tuples in exact emission order
// under batching, as it does unbatched.
TEST(BatchingParity, SingleWorkerPreservesPerEdgeFifoOrder) {
  auto g = std::make_unique<WorkflowGraph>("fifo_wf");
  auto& producer = g->AddPE<IndexProducer>();
  auto& sink = g->AddPE<EchoSink>();
  ASSERT_TRUE(g->Connect(producer, sink).ok());

  constexpr int kTuples = 300;
  for (bool batching : {false, true}) {
    RunOptions options = batching ? Batched(Value(kTuples))
                                  : Unbatched(Value(kTuples));
    options.initial_workers = 1;
    options.max_workers = 1;
    options.autoscale = false;
    DynamicMapping mapping;
    RunResult result = mapping.Execute(*g, options);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_EQ(result.output_lines.size(), static_cast<size_t>(kTuples));
    for (int i = 0; i < kTuples; ++i) {
      EXPECT_EQ(result.output_lines[static_cast<size_t>(i)],
                std::to_string(i))
          << "tuple order diverged at " << i
          << (batching ? " (batched)" : " (unbatched)");
    }
  }
}

std::unique_ptr<WorkflowGraph> FaultyGraph(int64_t every_n,
                                           int64_t heal_after) {
  auto g = std::make_unique<WorkflowGraph>("faulty_wf");
  auto& producer = g->AddPE<IndexProducer>();
  auto& injector = g->AddPE<FaultInjector>(every_n, heal_after);
  auto& sink = g->AddPE<NullSink>();
  EXPECT_TRUE(g->Connect(producer, injector).ok());
  EXPECT_TRUE(g->Connect(injector, sink).ok());
  return g;
}

// FaultInjector faults by tuple VALUE (every value divisible by every_n),
// so the permanent-failure set is deterministic regardless of transport:
// batching must quarantine exactly the same tuples.
TEST(BatchingParity, SameDlqUnderPermanentFaults) {
  constexpr int kTuples = 300;
  constexpr int kEveryN = 3;
  auto graph = FaultyGraph(kEveryN, /*heal_after=*/0);

  DynamicMapping batched_mapping;
  RunResult batched = batched_mapping.Execute(*graph, Batched(Value(kTuples)));
  DynamicMapping unbatched_mapping;
  RunResult unbatched =
      unbatched_mapping.Execute(*graph, Unbatched(Value(kTuples)));

  // 0, 3, 6, ... 297 fail permanently (max_retries = 0).
  constexpr uint64_t kExpectedFailures = kTuples / kEveryN;
  EXPECT_EQ(batched.failed_tuples, kExpectedFailures);
  EXPECT_EQ(batched.failed_tuples, unbatched.failed_tuples);
  EXPECT_EQ(batched.dlq_depth, unbatched.dlq_depth);
  EXPECT_EQ(batched.tuples_processed, unbatched.tuples_processed);
  EXPECT_EQ(batched.status.code(), unbatched.status.code());
}

// Transient faults healed by the retry policy: run serial (one worker) so
// the injector's consecutive-failure bookkeeping is deterministic, and
// require batched and unbatched runs to retry and recover identically.
TEST(BatchingParity, RetriesHealTransientFaultsIdentically) {
  constexpr int kTuples = 120;
  constexpr int kEveryN = 4;
  auto graph = FaultyGraph(kEveryN, /*heal_after=*/1);

  RunResult results[2];
  int idx = 0;
  for (bool batching : {false, true}) {
    RunOptions options = batching ? Batched(Value(kTuples))
                                  : Unbatched(Value(kTuples));
    options.initial_workers = 1;
    options.max_workers = 1;
    options.autoscale = false;
    options.max_retries = 2;
    DynamicMapping mapping;
    results[idx++] = mapping.Execute(*graph, options);
  }
  const RunResult& unbatched = results[0];
  const RunResult& batched = results[1];
  ASSERT_TRUE(batched.status.ok()) << batched.status.ToString();
  ASSERT_TRUE(unbatched.status.ok()) << unbatched.status.ToString();
  EXPECT_EQ(batched.failed_tuples, 0u);
  EXPECT_EQ(batched.dlq_depth, 0u);
  // Every value divisible by kEveryN fails once then heals on retry.
  constexpr uint64_t kExpectedRetries = kTuples / kEveryN;
  EXPECT_EQ(batched.retries, kExpectedRetries);
  EXPECT_EQ(unbatched.retries, kExpectedRetries);
  EXPECT_EQ(batched.tuples_processed, unbatched.tuples_processed);
}

// Parse-boundary validation (bugfix): batch sizes that reach the dynamic
// mapping as zero or negative would turn its chunking arithmetic into
// no-progress loops, so /execute must refuse them with 400 + the field
// name before they are cast into RunOptions.
TEST(BatchingValidation, ServerRejectsNonPositiveBatchSizes) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);

  struct Case {
    const char* field;
    const char* value;
  };
  for (const Case& c : {Case{"send_batch_size", "0"},
                        Case{"send_batch_size", "-1"},
                        Case{"send_batch_size", "2.5"},
                        Case{"recv_batch_size", "0"},
                        Case{"recv_batch_size", "-8"},
                        Case{"max_workers", "0"},
                        Case{"processes", "-2"}}) {
    net::HttpRequest req;
    req.path = "/execute";
    req.body = std::string(R"({"spec": {"name": "wf", "pes": [], "edges": []},)"
                           R"( "mapping": "dynamic", "input": 1, ")") +
               c.field + R"(": )" + c.value + "}";
    auto stream = laminar.client_side->Send(req);
    std::string all = stream->ReadAll();
    EXPECT_EQ(stream->status(), 400) << c.field << "=" << c.value;
    EXPECT_NE(all.find(c.field), std::string::npos)
        << c.field << "=" << c.value << " -> " << all;
  }

  // Batch size 1 (the unbatched protocol) remains valid.
  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Value body = Value::MakeObject();
  body["spec"] = demo->spec;
  body["mapping"] = "dynamic";
  body["input"] = 5;
  body["send_batch_size"] = 1;
  body["recv_batch_size"] = 1;
  client::RunOutcome run = laminar.client->RunRaw(body);
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
}

}  // namespace
}  // namespace laminar::dataflow
