#include <gtest/gtest.h>

#include <algorithm>

#include "spt/features.hpp"

namespace laminar::spt {
namespace {

FeatureBag Extract(const std::string& source, FeatureOptions opts = {}) {
  Result<SptNodePtr> spt = SptFromSource(source);
  EXPECT_TRUE(spt.ok()) << spt.status().ToString();
  return ExtractFeatures(*spt.value(), opts);
}

bool HasFeature(const FeatureBag& bag, const std::string& feature) {
  return std::find(bag.strings.begin(), bag.strings.end(), feature) !=
         bag.strings.end();
}

TEST(Locals, AssignmentTargets) {
  Result<SptNodePtr> spt = SptFromSource("total = 0\ntotal += x\n");
  ASSERT_TRUE(spt.ok());
  auto locals = CollectLocalVariables(*spt.value());
  EXPECT_TRUE(locals.contains("total"));
  EXPECT_FALSE(locals.contains("x"));  // only read, never bound
}

TEST(Locals, LoopAndComprehensionTargets) {
  Result<SptNodePtr> spt = SptFromSource(
      "for item in items:\n"
      "    pass\n"
      "ys = [v * v for v in xs]\n");
  ASSERT_TRUE(spt.ok());
  auto locals = CollectLocalVariables(*spt.value());
  EXPECT_TRUE(locals.contains("item"));
  EXPECT_TRUE(locals.contains("v"));
  EXPECT_TRUE(locals.contains("ys"));
  EXPECT_FALSE(locals.contains("items"));
  EXPECT_FALSE(locals.contains("xs"));
}

TEST(Locals, ParamsWithAndExcept) {
  Result<SptNodePtr> spt = SptFromSource(
      "def f(alpha, beta=2):\n"
      "    with open('x') as fh:\n"
      "        try:\n"
      "            pass\n"
      "        except ValueError as err:\n"
      "            pass\n");
  ASSERT_TRUE(spt.ok());
  auto locals = CollectLocalVariables(*spt.value());
  EXPECT_TRUE(locals.contains("alpha"));
  EXPECT_TRUE(locals.contains("beta"));
  EXPECT_TRUE(locals.contains("fh"));
  EXPECT_TRUE(locals.contains("err"));
  EXPECT_FALSE(locals.contains("ValueError"));
  EXPECT_FALSE(locals.contains("f"));  // function names are API, not vars
}

TEST(Locals, SelfAndClsAlwaysLocal) {
  Result<SptNodePtr> spt = SptFromSource("pass\n");
  ASSERT_TRUE(spt.ok());
  auto locals = CollectLocalVariables(*spt.value());
  EXPECT_TRUE(locals.contains("self"));
  EXPECT_TRUE(locals.contains("cls"));
}

TEST(Features, TokenFeatureGeneralizesVariables) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract("count = 0\ncount += 1\n", opts);
  EXPECT_TRUE(HasFeature(bag, "T:#VAR"));
  EXPECT_FALSE(HasFeature(bag, "T:count"));
}

TEST(Features, GlobalNamesKeptVerbatim) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract("x = range(10)\n", opts);
  EXPECT_TRUE(HasFeature(bag, "T:range"));  // API name survives
}

TEST(Features, StringLiteralsBecomeStr) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract("s = 'hello world'\n", opts);
  EXPECT_TRUE(HasFeature(bag, "T:#STR"));
  for (const std::string& f : bag.strings) {
    EXPECT_EQ(f.find("hello"), std::string::npos) << f;
  }
}

TEST(Features, GeneralizationCanBeDisabled) {
  FeatureOptions opts;
  opts.generalize_variables = false;
  opts.record_strings = true;
  FeatureBag bag = Extract("count = 0\n", opts);
  EXPECT_TRUE(HasFeature(bag, "T:count"));
  EXPECT_FALSE(HasFeature(bag, "T:#VAR"));
}

TEST(Features, ParentFeaturesCarryContext) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract("if x > 1:\n    pass\n", opts);
  // The literal 1 should have a parent feature inside the "#>#" comparison.
  bool found = false;
  for (const std::string& f : bag.strings) {
    if (f.rfind("P1:1|", 0) == 0 && f.find("#>#") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Features, SiblingFeaturesLinkConsecutiveTokens) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract("y = f(x)\n", opts);
  EXPECT_TRUE(HasFeature(bag, "S:#VAR>f"));
}

TEST(Features, VariableUsageFeatures) {
  FeatureOptions opts;
  opts.record_strings = true;
  FeatureBag bag = Extract(
      "acc = 0\n"
      "acc = acc + 1\n",
      opts);
  bool has_usage = false;
  for (const std::string& f : bag.strings) {
    if (f.rfind("V:", 0) == 0) has_usage = true;
  }
  EXPECT_TRUE(has_usage);
}

TEST(Features, RenameInvariance) {
  // The defining property: renaming locals must not change the feature set.
  std::string a =
      "def check(num):\n"
      "    for i in range(2, num):\n"
      "        if num % i == 0:\n"
      "            return None\n"
      "    return num\n";
  std::string b =
      "def check(candidate):\n"
      "    for divisor in range(2, candidate):\n"
      "        if candidate % divisor == 0:\n"
      "            return None\n"
      "    return candidate\n";
  FeatureBag fa = Extract(a);
  FeatureBag fb = Extract(b);
  EXPECT_EQ(fa.counts, fb.counts);
  EXPECT_DOUBLE_EQ(CosineSimilarity(fa, fb), 1.0);
}

TEST(Features, DifferentStructureDiffers) {
  FeatureBag a = Extract("for i in range(10):\n    total += i\n");
  FeatureBag b = Extract("if ready:\n    send(payload)\n");
  EXPECT_LT(CosineSimilarity(a, b), 0.5);
}

TEST(Features, OccurrencesTagLines) {
  FeatureOptions opts;
  opts.with_occurrences = true;
  FeatureBag bag = Extract("a = 1\nb = 2\n", opts);
  ASSERT_FALSE(bag.occurrences.empty());
  bool line1 = false, line2 = false;
  for (const auto& [h, line] : bag.occurrences) {
    line1 |= line == 1;
    line2 |= line == 2;
  }
  EXPECT_TRUE(line1);
  EXPECT_TRUE(line2);
}

// ---- scoring ----

TEST(Scoring, OverlapIsMinCountSum) {
  FeatureBag a, b;
  a.counts = {{1, 2}, {2, 1}};
  a.total = 3;
  b.counts = {{1, 1}, {3, 5}};
  b.total = 6;
  EXPECT_DOUBLE_EQ(OverlapScore(a, b), 1.0);
  EXPECT_DOUBLE_EQ(OverlapScore(b, a), 1.0);  // symmetric
}

TEST(Scoring, CosineBoundsAndIdentity) {
  FeatureBag a = Extract("x = a + b\n");
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  FeatureBag empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, empty), 0.0);
}

TEST(Scoring, ContainmentAsymmetric) {
  FeatureBag small = Extract("result = sorted(xs)\n");
  FeatureBag big = Extract(
      "result = sorted(xs)\n"
      "for v in result:\n"
      "    print(v)\n");
  EXPECT_GT(ContainmentScore(small, big), 0.95);
  EXPECT_LT(ContainmentScore(big, small), 0.9);
}

TEST(Scoring, JaccardBounds) {
  FeatureBag a = Extract("x = 1\n");
  EXPECT_NEAR(JaccardSimilarity(a, a), 1.0, 1e-9);
  FeatureBag b = Extract("while running:\n    tick()\n");
  double j = JaccardSimilarity(a, b);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
}

}  // namespace
}  // namespace laminar::spt
