// WAL-shipping read replicas (ISSUE 9): follower bootstrap + tail parity,
// the read-only 421 gate, the bounded-staleness 503 contract, follower
// kill/restart resync, and the ConnectTcp startup-race retry.
//
// Leader and followers run in ONE process as separate LaminarServer
// instances behind real TCP listeners — the replication path exercised is
// identical to separate OS processes (same sockets, same protocol), while
// teardown stays deterministic and sanitizer-friendly.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/connect.hpp"
#include "client/fanout.hpp"
#include "common/json.hpp"
#include "net/tcp.hpp"

namespace laminar::client {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string PeCode(const std::string& cls) {
  return "class " + cls + ":\n    def process(self, x):\n        return x\n";
}

/// One leader (WAL-enabled) plus N followers, all on ephemeral ports.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ = TempPath("laminar_repl_wal.jsonl");
    snapshot_path_ = TempPath("laminar_repl_snap.json");
    fs::remove(wal_path_);
    fs::remove(snapshot_path_);
  }

  void StartLeader() {
    server::ServerConfig config;
    config.wal_path = wal_path_;
    config.snapshot_path = snapshot_path_;
    net::TcpListenerConfig listener;
    listener.port = 0;
    Result<TcpLaminarServer> leader = ServeTcp(std::move(config), listener);
    ASSERT_TRUE(leader.ok()) << leader.status().ToString();
    leader_ = std::make_unique<TcpLaminarServer>(std::move(leader.value()));
  }

  std::unique_ptr<TcpLaminarServer> StartFollower(int max_replica_lag_ms = 0,
                                                  uint16_t leader_port = 0) {
    server::ServerConfig config;
    config.replica_of =
        "127.0.0.1:" +
        std::to_string(leader_port != 0 ? leader_port : leader_->port());
    config.max_replica_lag_ms = max_replica_lag_ms;
    net::TcpListenerConfig listener;
    listener.port = 0;
    Result<TcpLaminarServer> follower = ServeTcp(std::move(config), listener);
    EXPECT_TRUE(follower.ok()) << follower.status().ToString();
    if (!follower.ok()) return nullptr;
    return std::make_unique<TcpLaminarServer>(std::move(follower.value()));
  }

  static Result<TcpClient> Dial(uint16_t port) {
    return ConnectTcp("127.0.0.1", port);
  }

  /// Polls the follower's /replication/status until appliedSeq >= the
  /// leader's current headSeq.
  static void AwaitCatchUp(LaminarClient& leader_client,
                           LaminarClient& follower_client,
                           int timeout_ms = 10'000) {
    Result<Value> leader_status = leader_client.ReplicationStatus();
    ASSERT_TRUE(leader_status.ok()) << leader_status.status().ToString();
    const int64_t head = leader_status->GetInt("headSeq", 0);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      Result<Value> status = follower_client.ReplicationStatus();
      if (status.ok() && status->GetInt("appliedSeq", 0) >= head) return;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower never caught up to leader headSeq " << head << ": "
          << (status.ok() ? status->ToJson() : status.status().ToString());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::string wal_path_;
  std::string snapshot_path_;
  std::unique_ptr<TcpLaminarServer> leader_;
};

TEST_F(ReplicationTest, FollowerBootstrapsTailsAndServesIdenticalReads) {
  StartLeader();
  Result<TcpClient> leader_cli = Dial(leader_->port());
  ASSERT_TRUE(leader_cli.ok());

  // Rows registered BEFORE the follower exists arrive via the snapshot...
  Result<PeInfo> pe1 = leader_cli->client->RegisterPe(
      PeCode("SnapshotSource"), "SnapshotSource", "reads tuples from a file");
  ASSERT_TRUE(pe1.ok()) << pe1.status().ToString();

  std::unique_ptr<TcpLaminarServer> follower = StartFollower();
  ASSERT_NE(follower, nullptr);
  Result<TcpClient> follower_cli = Dial(follower->port());
  ASSERT_TRUE(follower_cli.ok());
  AwaitCatchUp(*leader_cli->client, *follower_cli->client);

  // ...and rows registered AFTER it bootstrapped arrive via the WAL tail.
  Result<PeInfo> pe2 = leader_cli->client->RegisterPe(
      PeCode("TailFilter"), "TailFilter", "filters tuples by a predicate");
  ASSERT_TRUE(pe2.ok()) << pe2.status().ToString();
  AwaitCatchUp(*leader_cli->client, *follower_cli->client);

  // Point reads resolve identically on both nodes.
  Result<PeInfo> got = follower_cli->client->GetPe(pe2->id);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->name, "TailFilter");
  EXPECT_EQ(got->code, PeCode("TailFilter"));

  // Parity gate at quiesce: follower search results are bit-identical to
  // the leader's — same ids, same order, same scores (the follower indexes
  // the stored embeddings, it never re-encodes).
  for (const char* query : {"reads tuples", "filters tuples", "tuples"}) {
    Result<std::vector<SearchHit>> on_leader =
        leader_cli->client->SearchRegistrySemantic(query);
    Result<std::vector<SearchHit>> on_follower =
        follower_cli->client->SearchRegistrySemantic(query);
    ASSERT_TRUE(on_leader.ok() && on_follower.ok());
    ASSERT_EQ(on_leader->size(), on_follower->size()) << query;
    for (size_t i = 0; i < on_leader->size(); ++i) {
      EXPECT_EQ((*on_leader)[i].id, (*on_follower)[i].id) << query;
      EXPECT_EQ((*on_leader)[i].score, (*on_follower)[i].score) << query;
    }
  }
  Result<std::vector<SearchHit>> literal =
      follower_cli->client->SearchRegistryLiteral("Filter");
  ASSERT_TRUE(literal.ok());
  EXPECT_EQ(literal->size(), 1u);

  // Removal also replicates: erase on the leader disappears on the replica.
  ASSERT_TRUE(leader_cli->client->RemovePe(pe1->id).ok());
  AwaitCatchUp(*leader_cli->client, *follower_cli->client);
  EXPECT_FALSE(follower_cli->client->GetPe(pe1->id).ok());

  // /stats surfaces the replication role on both sides.
  Result<Value> leader_stats = leader_cli->client->GetStats();
  ASSERT_TRUE(leader_stats.ok());
  EXPECT_EQ(leader_stats->at("replication").GetString("role"), "leader");
  EXPECT_TRUE(leader_stats->at("wal").GetBool("enabled"));
  Result<Value> follower_stats = follower_cli->client->GetStats();
  ASSERT_TRUE(follower_stats.ok());
  EXPECT_EQ(follower_stats->at("replication").GetString("role"), "follower");
  EXPECT_GE(follower_stats->at("replication").GetInt("recordsApplied"), 1);
}

TEST_F(ReplicationTest, FollowerRejectsMutationsWith421) {
  StartLeader();
  std::unique_ptr<TcpLaminarServer> follower = StartFollower();
  ASSERT_NE(follower, nullptr);

  // Wire-level: the raw HTTP status must be 421 and the body must name the
  // leader, so any client can fail over without Laminar-specific logic.
  Result<std::unique_ptr<net::ByteStream>> stream =
      net::TcpConnect("127.0.0.1", follower->port());
  ASSERT_TRUE(stream.ok());
  net::HttpConnection raw(std::move(stream.value()),
                          net::HttpConnection::Mode::kStreaming);
  for (const char* path :
       {"/pes/register", "/execute", "/registry/remove_all",
        "/replication/fetch"}) {
    net::HttpRequest req;
    req.path = path;
    req.body = "{}";
    Result<std::pair<int, std::string>> resp = raw.Call(req);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(resp->first, 421) << path;
    Result<Value> body = json::Parse(resp->second);
    ASSERT_TRUE(body.ok()) << path;
    EXPECT_EQ(body->GetString("leader"),
              "127.0.0.1:" + std::to_string(leader_->port()))
        << path;
  }
  raw.Close();

  // Client-level: 421 maps to kUnavailable (the fan-out failover trigger).
  Result<TcpClient> follower_cli = Dial(follower->port());
  ASSERT_TRUE(follower_cli.ok());
  Result<PeInfo> refused =
      follower_cli->client->RegisterPe(PeCode("Nope"), "Nope");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
}

TEST_F(ReplicationTest, StalenessContractRefusesReadsWith503) {
  // A follower whose leader does not exist can never confirm freshness:
  // with a staleness bound configured, reads must fail 503, not serve an
  // empty (infinitely stale) registry.
  uint16_t dead_port = 1;  // nothing listens on port 1
  std::unique_ptr<TcpLaminarServer> orphan =
      StartFollower(/*max_replica_lag_ms=*/50, /*leader_port=*/dead_port);
  ASSERT_NE(orphan, nullptr);
  Result<TcpClient> orphan_cli = Dial(orphan->port());
  ASSERT_TRUE(orphan_cli.ok());
  Result<std::vector<SearchHit>> stale =
      orphan_cli->client->SearchRegistryLiteral("anything");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  // /replication/status stays observable even while reads are refused.
  Result<Value> status = orphan_cli->client->ReplicationStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status->GetBool("bootstrapped", true));
  orphan.reset();

  // With a live leader and a generous bound, the same gate passes once the
  // follower has confirmed catch-up.
  StartLeader();
  Result<TcpClient> leader_cli = Dial(leader_->port());
  ASSERT_TRUE(leader_cli.ok());
  ASSERT_TRUE(
      leader_cli->client->RegisterPe(PeCode("Fresh"), "Fresh").ok());
  std::unique_ptr<TcpLaminarServer> follower =
      StartFollower(/*max_replica_lag_ms=*/60'000);
  ASSERT_NE(follower, nullptr);
  Result<TcpClient> follower_cli = Dial(follower->port());
  ASSERT_TRUE(follower_cli.ok());
  AwaitCatchUp(*leader_cli->client, *follower_cli->client);
  Result<std::vector<SearchHit>> fresh =
      follower_cli->client->SearchRegistryLiteral("Fresh");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->size(), 1u);
}

TEST_F(ReplicationTest, ReplicaSetClientRoutesReadsAndFailsOver) {
  StartLeader();
  Result<TcpClient> seed = Dial(leader_->port());
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE(seed->client->RegisterPe(PeCode("Routed"), "Routed").ok());
  std::unique_ptr<TcpLaminarServer> f1 = StartFollower();
  std::unique_ptr<TcpLaminarServer> f2 = StartFollower();
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);

  const std::string leader_spec =
      "127.0.0.1:" + std::to_string(leader_->port());
  Result<std::unique_ptr<ReplicaSetClient>> set = ReplicaSetClient::Connect(
      leader_spec, {"127.0.0.1:" + std::to_string(f1->port()),
                    "127.0.0.1:" + std::to_string(f2->port())});
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ((*set)->follower_count(), 2u);
  ASSERT_TRUE((*set)->WaitForCatchUp(10'000).ok());

  // Reads succeed through the set; writes go to the leader explicitly.
  Result<std::vector<SearchHit>> hits =
      (*set)->Read<std::vector<SearchHit>>([](LaminarClient& c) {
        return c.SearchRegistryLiteral("Routed");
      });
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 1u);
  Result<PeInfo> write = (*set)->leader().RegisterPe(PeCode("ViaSet"));
  ASSERT_TRUE(write.ok()) << write.status().ToString();

  // Kill both followers: every read must fail over to the leader rather
  // than surface kUnavailable to the caller.
  f1.reset();
  f2.reset();
  for (int i = 0; i < 8; ++i) {
    Result<std::vector<SearchHit>> after =
        (*set)->Read<std::vector<SearchHit>>([](LaminarClient& c) {
          return c.SearchRegistryLiteral("Routed");
        });
    ASSERT_TRUE(after.ok())
        << "read " << i << ": " << after.status().ToString();
  }
}

TEST_F(ReplicationTest, FollowerRestartResyncsWithoutDupOrSkip) {
  StartLeader();
  Result<TcpClient> leader_cli = Dial(leader_->port());
  ASSERT_TRUE(leader_cli.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader_cli->client
                    ->RegisterPe(PeCode("Before" + std::to_string(i)),
                                 "Before" + std::to_string(i))
                    .ok());
  }
  std::unique_ptr<TcpLaminarServer> follower = StartFollower();
  ASSERT_NE(follower, nullptr);
  {
    Result<TcpClient> follower_cli = Dial(follower->port());
    ASSERT_TRUE(follower_cli.ok());
    AwaitCatchUp(*leader_cli->client, *follower_cli->client);
  }

  // Kill the follower mid-stream, mutate the leader while it is down,
  // then bring a fresh follower up at the same role.
  follower.reset();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader_cli->client
                    ->RegisterPe(PeCode("While" + std::to_string(i)),
                                 "While" + std::to_string(i))
                    .ok());
  }
  follower = StartFollower();
  ASSERT_NE(follower, nullptr);
  Result<TcpClient> follower_cli = Dial(follower->port());
  ASSERT_TRUE(follower_cli.ok());
  AwaitCatchUp(*leader_cli->client, *follower_cli->client);

  // A restarted follower re-bootstraps (it keeps no local WAL), and the
  // snapshot + suffix hand-off is exact: no row duplicated, none skipped.
  Result<Value> status = follower_cli->client->ReplicationStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status->GetInt("bootstraps"), 1);
  EXPECT_EQ(status->GetInt("gaps"), 0);
  EXPECT_EQ(status->GetInt("appliedSeq"), status->GetInt("leaderSeq"));

  auto leader_registry = leader_cli->client->GetRegistry();
  auto follower_registry = follower_cli->client->GetRegistry();
  ASSERT_TRUE(leader_registry.ok() && follower_registry.ok());
  ASSERT_EQ(leader_registry->first.size(), follower_registry->first.size());
  for (size_t i = 0; i < leader_registry->first.size(); ++i) {
    EXPECT_EQ(leader_registry->first[i].id, follower_registry->first[i].id);
    EXPECT_EQ(leader_registry->first[i].name,
              follower_registry->first[i].name);
  }
}

TEST_F(ReplicationTest, ConnectRetryRidesOutStartupRace) {
  // Reserve a port, release it, then start the real server on it only
  // after a delay — the single-shot connect must fail, the retrying
  // connect must ride the race out.
  uint16_t port = 0;
  {
    net::TcpListenerConfig probe;
    probe.port = 0;
    net::TcpListener reserver(probe, [](const net::HttpRequest&,
                                        net::StreamResponder&) {});
    ASSERT_TRUE(reserver.Start().ok());
    port = reserver.port();
    reserver.Stop();
  }
  Result<std::unique_ptr<net::ByteStream>> single =
      net::TcpConnect("127.0.0.1", port, 500);
  EXPECT_FALSE(single.ok()) << "nothing should be listening yet";

  std::unique_ptr<TcpLaminarServer> late;
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server::ServerConfig config;
    net::TcpListenerConfig listener;
    listener.port = port;
    Result<TcpLaminarServer> serving = ServeTcp(std::move(config), listener);
    if (serving.ok()) {
      late = std::make_unique<TcpLaminarServer>(std::move(serving.value()));
    }
  });
  net::TcpConnectOptions options;
  options.attempts = 30;
  options.initial_backoff_ms = 20;
  options.max_backoff_ms = 200;
  Result<TcpClient> retried =
      ConnectTcp("127.0.0.1:" + std::to_string(port), options);
  starter.join();
  ASSERT_NE(late, nullptr) << "late server failed to start";
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  Result<Value> stats = retried->client->GetStats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

}  // namespace
}  // namespace laminar::client
