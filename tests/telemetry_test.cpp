// Unit tests for the telemetry subsystem: counter/gauge/histogram
// correctness (including under concurrency), span nesting through the
// thread-local stack, trace-ring bounds, and both exposition formats.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace laminar::telemetry {
namespace {

TEST(Counter, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(5);
  EXPECT_EQ(g.Value(), 12);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(Histogram, BucketsAndSnapshot) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (le is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // +Inf bucket
  Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 556.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 556.5 / 5);
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram h({10.0, 20.0, 30.0});
  // 100 samples uniformly in the 0-10 bucket.
  for (int i = 0; i < 100; ++i) h.Observe(5.0);
  Histogram::Snapshot s = h.snapshot();
  // All mass in the first bucket: p50 interpolates to its midpoint.
  EXPECT_NEAR(s.Percentile(0.5), 5.0, 0.11);
  EXPECT_LE(s.Percentile(0.99), 10.0);

  // Add 100 samples to the 10-20 bucket: p75 lands in the second bucket.
  for (int i = 0; i < 100; ++i) h.Observe(15.0);
  s = h.snapshot();
  double p75 = s.Percentile(0.75);
  EXPECT_GT(p75, 10.0);
  EXPECT_LE(p75, 20.0);
}

TEST(Histogram, InfBucketReportsLastFiniteBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.snapshot().Percentile(0.99), 2.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().Mean(), 0.0);
}

TEST(Histogram, DefaultBucketsUsedWhenEmpty) {
  Histogram h;
  EXPECT_EQ(h.bounds(), DefaultLatencyBucketsMs());
}

TEST(Histogram, ConcurrentObservesAreLossless) {
  Histogram h({0.5, 1.5, 2.5, 3.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t));  // thread t fills bucket t
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.counts[t], static_cast<uint64_t>(kPerThread)) << t;
  }
  EXPECT_NEAR(s.sum, (0 + 1 + 2 + 3) * double(kPerThread), 1e-6);
}

TEST(TraceBuffer, RingKeepsMostRecent) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord r;
    r.name = "span" + std::to_string(i);
    r.span_id = static_cast<uint64_t>(i + 1);
    buffer.Record(std::move(r));
  }
  EXPECT_EQ(buffer.TotalRecorded(), 10u);
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: spans 6..9 survive.
  EXPECT_EQ(spans.front().name, "span6");
  EXPECT_EQ(spans.back().name, "span9");
}

TEST(ScopedSpan, NestsThroughThreadLocalStack) {
  TraceBuffer buffer(16);
  {
    ScopedSpan outer("outer", nullptr, &buffer);
    {
      ScopedSpan inner("inner", nullptr, &buffer);
    }
  }
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner span completes (and records) first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_GE(outer.duration_us, inner.duration_us);
}

TEST(ScopedSpan, SiblingSpansShareParent) {
  TraceBuffer buffer(16);
  {
    ScopedSpan parent("parent", nullptr, &buffer);
    { ScopedSpan a("a", nullptr, &buffer); }
    { ScopedSpan b("b", nullptr, &buffer); }
  }
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
}

TEST(ScopedSpan, ObservesHistogramOnDestruction) {
  TraceBuffer buffer(4);
  Histogram h;  // default latency buckets
  {
    ScopedSpan span("timed", &h, &buffer);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(MetricsRegistry, HandlesAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("laminar_test_total", "op=\"x\"");
  Counter& b = reg.GetCounter("laminar_test_total", "op=\"x\"");
  Counter& c = reg.GetCounter("laminar_test_total", "op=\"y\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.Inc();
  EXPECT_EQ(b.Value(), 1u);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(reg.FindCounter("laminar_test_total", "op=\"x\""), &a);
  EXPECT_EQ(reg.FindCounter("laminar_missing_total"), nullptr);
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("laminar_demo_ops_total", "op=\"get\"").Inc(3);
  reg.GetGauge("laminar_demo_depth").Set(7);
  Histogram& h = reg.GetHistogram("laminar_demo_ms", "", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE laminar_demo_ops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("laminar_demo_ops_total{op=\"get\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE laminar_demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("laminar_demo_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE laminar_demo_ms histogram"), std::string::npos);
  // Cumulative buckets: le="1" sees 1, le="10" sees 2, +Inf sees all 3.
  EXPECT_NE(text.find("laminar_demo_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("laminar_demo_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("laminar_demo_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("laminar_demo_ms_sum 55.5"), std::string::npos);
  EXPECT_NE(text.find("laminar_demo_ms_count 3"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusOneTypeLinePerFamily) {
  MetricsRegistry reg;
  reg.GetCounter("laminar_family_total", "op=\"a\"").Inc();
  reg.GetCounter("laminar_family_total", "op=\"b\"").Inc();
  std::string text = reg.RenderPrometheus();
  size_t first = text.find("# TYPE laminar_family_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE laminar_family_total counter", first + 1),
            std::string::npos);
}

TEST(MetricsRegistry, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("laminar_j_total").Inc(9);
  reg.GetGauge("laminar_j_level").Set(-2);
  Histogram& h = reg.GetHistogram("laminar_j_ms", "", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);

  Value json = reg.RenderJson();
  EXPECT_EQ(json.at("counters").GetInt("laminar_j_total"), 9);
  EXPECT_EQ(json.at("gauges").GetInt("laminar_j_level"), -2);
  const Value& hist = json.at("histograms").at("laminar_j_ms");
  EXPECT_EQ(hist.GetInt("count"), 2);
  EXPECT_DOUBLE_EQ(hist.GetDouble("sum"), 2.0);
  EXPECT_GT(hist.GetDouble("p95"), 0.0);
}

TEST(MetricsRegistry, ResetZeroesEverythingButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("laminar_r_total");
  Histogram& h = reg.GetHistogram("laminar_r_ms", "", {1.0});
  c.Inc(5);
  h.Observe(0.5);
  reg.trace().Record(SpanRecord{});
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(reg.trace().TotalRecorded(), 0u);
  c.Inc();  // handle still live after Reset
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace laminar::telemetry
