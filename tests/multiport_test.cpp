// Named-port routing: a multi-output PE (ThresholdSplitter) feeding two
// distinct sinks, exercised under all three mappings and via the engine's
// workflow-spec from_port/to_port fields.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/json.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"
#include "engine/engine.hpp"

namespace laminar::dataflow {
namespace {

/// Producer -> splitter(high/low) -> two EchoSinks; tuples are the raw
/// numbers 1..1000 from the seeded producer, split at 500.
std::unique_ptr<WorkflowGraph> SplitGraph() {
  auto g = std::make_unique<WorkflowGraph>("split_wf");
  size_t producer = g->Add(std::make_unique<NumberProducer>(21, 1, 1000));
  size_t splitter =
      g->Add(std::make_unique<ThresholdSplitter>("value", 500.0));
  auto high_sink = std::make_unique<NullSink>();
  high_sink->set_name("HighSink");
  size_t high = g->Add(std::move(high_sink));
  auto low_sink = std::make_unique<NullSink>();
  low_sink->set_name("LowSink");
  size_t low = g->Add(std::move(low_sink));
  EXPECT_TRUE(g->Connect(producer, kDefaultOutput, splitter, kDefaultInput).ok());
  EXPECT_TRUE(g->Connect(splitter, "high", high, kDefaultInput).ok());
  EXPECT_TRUE(g->Connect(splitter, "low", low, kDefaultInput).ok());
  return g;
}

TEST(ThresholdSplitterPe, DeclaresBothPorts) {
  ThresholdSplitter pe;
  EXPECT_TRUE(pe.HasOutputPort("high"));
  EXPECT_TRUE(pe.HasOutputPort("low"));
  EXPECT_FALSE(pe.HasOutputPort(kDefaultOutput));
}

TEST(ThresholdSplitterPe, RoutesByThreshold) {
  ThresholdSplitter pe("t", 10.0);
  struct PortEmitter : Emitter {
    std::vector<std::string> ports;
    void Emit(std::string_view port, Value) override {
      ports.emplace_back(port);
    }
    void Log(std::string_view) override {}
  } emitter;
  Value low = Value::MakeObject();
  low["t"] = 5.0;
  Value high = Value::MakeObject();
  high["t"] = 15.0;
  pe.Process(kDefaultInput, low, emitter);
  pe.Process(kDefaultInput, high, emitter);
  EXPECT_EQ(emitter.ports, (std::vector<std::string>{"low", "high"}));
}

class MultiPortMapping : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiPortMapping, SplitCountsSumToTotal) {
  std::unique_ptr<Mapping> mapping;
  std::string name = GetParam();
  if (name == "simple") mapping = std::make_unique<SequentialMapping>();
  else if (name == "multi") mapping = std::make_unique<MultiMapping>();
  else mapping = std::make_unique<DynamicMapping>();

  RunOptions options;
  options.input = Value(200);
  options.num_processes = 6;
  RunResult result = mapping->Execute(*SplitGraph(), options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // Both sinks logged totals; together they must account for all 200 tuples.
  int total = 0;
  for (const std::string& line : result.output_lines) {
    size_t pos = line.find("received ");
    ASSERT_NE(pos, std::string::npos) << line;
    total += std::stoi(line.substr(pos + 9));
  }
  EXPECT_EQ(total, 200);
}

TEST_P(MultiPortMapping, SameSplitAcrossMappings) {
  SequentialMapping reference;
  RunOptions options;
  options.input = Value(100);
  options.num_processes = 6;
  RunResult expected = reference.Execute(*SplitGraph(), options);

  std::unique_ptr<Mapping> mapping;
  std::string name = GetParam();
  if (name == "simple") mapping = std::make_unique<SequentialMapping>();
  else if (name == "multi") mapping = std::make_unique<MultiMapping>();
  else mapping = std::make_unique<DynamicMapping>();
  RunResult actual = mapping->Execute(*SplitGraph(), options);
  ASSERT_TRUE(actual.status.ok());
  // Parallel mappings may split one logical sink across several ranks, so
  // compare per-sink *totals*, not individual summary lines.
  auto totals = [](const std::vector<std::string>& lines) {
    std::map<std::string, int> by_sink;
    for (const std::string& line : lines) {
      size_t space = line.find(' ');
      size_t pos = line.find("received ");
      EXPECT_NE(pos, std::string::npos) << line;
      by_sink[line.substr(0, space)] += std::stoi(line.substr(pos + 9));
    }
    return by_sink;
  };
  EXPECT_EQ(totals(actual.output_lines), totals(expected.output_lines));
}

INSTANTIATE_TEST_SUITE_P(AllMappings, MultiPortMapping,
                         ::testing::Values("simple", "multi", "dynamic"));

TEST(MultiPortSpec, FromPortToPortFields) {
  const char* spec_text = R"({
    "name": "split_wf",
    "pes": [
      {"name": "Gen", "type": "NumberProducer",
       "params": {"seed": 3, "lo": 1, "hi": 100}},
      {"name": "Split", "type": "ThresholdSplitter",
       "params": {"threshold": 50}},
      {"name": "High", "type": "EchoSink", "params": {}},
      {"name": "Low", "type": "NullSink", "params": {}}
    ],
    "edges": [
      {"from": "Gen", "to": "Split"},
      {"from": "Split", "from_port": "high", "to": "High"},
      {"from": "Split", "from_port": "low", "to": "Low"}
    ]
  })";
  engine::EngineConfig config;
  config.cold_start_ms = 0;
  engine::ExecutionEngine engine(config);
  engine::ExecuteRequest req;
  req.workflow_spec = json::Parse(spec_text).value();
  req.run_options.input = Value(50);
  Result<RunResult> result = engine.Execute(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // EchoSink printed one line per high tuple; NullSink summarized lows.
  int echo_lines = 0, null_summary = 0;
  for (const std::string& line : result->output_lines) {
    if (line.find("NullSink received") != std::string::npos) ++null_summary;
    else ++echo_lines;
  }
  EXPECT_EQ(null_summary, 1);
  EXPECT_GT(echo_lines, 0);
}

TEST(MultiPortSpec, UnknownPortRejected) {
  const char* spec_text = R"({
    "name": "bad",
    "pes": [
      {"name": "Gen", "type": "NumberProducer", "params": {}},
      {"name": "Split", "type": "ThresholdSplitter", "params": {}}
    ],
    "edges": [
      {"from": "Gen", "to": "Split"},
      {"from": "Split", "from_port": "sideways", "to": "Gen"}
    ]
  })";
  Result<WorkflowGraph> graph =
      engine::BuildGraph(json::Parse(spec_text).value());
  EXPECT_FALSE(graph.ok());
}

}  // namespace
}  // namespace laminar::dataflow
