#include <cmath>
#include <gtest/gtest.h>

#include "embed/codet5_sim.hpp"
#include "embed/hashed_encoder.hpp"
#include "embed/reacc_sim.hpp"
#include "embed/unixcoder_sim.hpp"

namespace laminar::embed {
namespace {

TEST(VectorMath, DotAndNorm) {
  Vector a = {1, 0, 2};
  Vector b = {3, 4, 0};
  EXPECT_FLOAT_EQ(Dot(a, b), 3.0f);
  EXPECT_FLOAT_EQ(Norm(a), std::sqrt(5.0f));
}

TEST(VectorMath, CosineProperties) {
  Vector a = {1, 2, 3};
  EXPECT_FLOAT_EQ(Cosine(a, a), 1.0f);
  Vector neg = {-1, -2, -3};
  EXPECT_FLOAT_EQ(Cosine(a, neg), -1.0f);
  Vector zero = {0, 0, 0};
  EXPECT_FLOAT_EQ(Cosine(a, zero), 0.0f);
  Vector mismatched = {1, 2};
  EXPECT_FLOAT_EQ(Cosine(a, mismatched), 0.0f);
}

TEST(VectorMath, DotNormalizedMatchesCosineOnUnitVectors) {
  Vector a = {1, 2, 3};
  Vector b = {-2, 0.5f, 4};
  Vector an = a, bn = b;
  L2Normalize(an);
  L2Normalize(bn);
  EXPECT_NEAR(DotNormalized(an, bn), Cosine(a, b), 1e-6);
  Vector mismatched = {1, 2};
  EXPECT_FLOAT_EQ(DotNormalized(an, mismatched), 0.0f);
  Vector empty;
  EXPECT_FLOAT_EQ(DotNormalized(empty, empty), 0.0f);
}

TEST(VectorMath, CosineWithNormSkipsQueryNormRecomputation) {
  Vector q = {0.5f, -1, 2, 7};
  float qn = Norm(q);
  Vector t1 = {1, 1, 1, 1};
  Vector t2 = {-3, 0, 2, 1};
  EXPECT_NEAR(CosineWithNorm(q, qn, t1), Cosine(q, t1), 1e-6);
  EXPECT_NEAR(CosineWithNorm(q, qn, t2), Cosine(q, t2), 1e-6);
  Vector zero = {0, 0, 0, 0};
  EXPECT_FLOAT_EQ(CosineWithNorm(q, qn, zero), 0.0f);
  EXPECT_FLOAT_EQ(CosineWithNorm(q, 0.0f, t1), 0.0f);
}

TEST(VectorMath, DotUnrolledHandlesRemainders) {
  // Lengths around the 4-lane unroll boundary.
  for (size_t n : {1u, 3u, 4u, 5u, 7u, 8u, 9u}) {
    Vector a(n), b(n);
    float want = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(i + 1);
      b[i] = static_cast<float>(2 * i) - 3.0f;
      want += a[i] * b[i];
    }
    EXPECT_FLOAT_EQ(DotUnrolled(a.data(), b.data(), n), want) << "n=" << n;
  }
}

TEST(VectorMath, L2NormalizeUnitLength) {
  Vector v = {3, 4};
  L2Normalize(v);
  EXPECT_NEAR(Norm(v), 1.0f, 1e-6);
  Vector zero = {0, 0};
  L2Normalize(zero);  // must not produce NaN
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(VectorJson, RoundTrips) {
  Vector v = {0.5f, -1.25f, 3.0f};
  Vector back = FromJson(ToJson(v));
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(back[i], v[i]);
}

TEST(VectorJson, MalformedYieldsEmpty) {
  EXPECT_TRUE(FromJson("not json").empty());
  EXPECT_TRUE(FromJson("{\"a\":1}").empty());
  EXPECT_TRUE(FromJson("[1, \"x\"]").empty());
}

TEST(HashedEncoder, DeterministicAndNormalized) {
  HashedEncoder e1(64, 1), e2(64, 1);
  e1.Add("alpha", 1.0f);
  e1.Add("beta", 0.5f);
  e2.Add("alpha", 1.0f);
  e2.Add("beta", 0.5f);
  Vector v1 = e1.Finish();
  Vector v2 = e2.Finish();
  EXPECT_EQ(v1, v2);
  EXPECT_NEAR(Norm(v1), 1.0f, 1e-5);
}

TEST(HashedEncoder, SeedSeparatesSpaces) {
  HashedEncoder text(64, 1), code(64, 2);
  text.Add("prime", 1.0f);
  code.Add("prime", 1.0f);
  EXPECT_LT(std::abs(Cosine(text.Finish(), code.Finish())), 0.99f);
}

TEST(HashedEncoder, FinishResets) {
  HashedEncoder e(64, 1);
  e.Add("x", 1.0f);
  Vector first = e.Finish();
  Vector second = e.Finish();  // nothing accumulated
  EXPECT_NEAR(Norm(second), 0.0f, 1e-6);
  EXPECT_NEAR(Norm(first), 1.0f, 1e-5);
}

// ---- UnixcoderSim ----

TEST(UnixcoderSim, SimilarTextsScoreHigherThanUnrelated) {
  UnixcoderSim model;
  Vector q = model.EncodeText("a pe that detects anomalies in sensor data");
  Vector similar = model.EncodeText("detects anomalies in a stream of sensor readings");
  Vector unrelated = model.EncodeText("parse comma separated csv rows into fields");
  EXPECT_GT(Cosine(q, similar), Cosine(q, unrelated));
  EXPECT_GT(Cosine(q, similar), 0.2f);
}

TEST(UnixcoderSim, IdenticalTextIsPerfectMatch) {
  UnixcoderSim model;
  Vector a = model.EncodeText("Checks whether a number is prime.");
  Vector b = model.EncodeText("Checks whether a number is prime.");
  EXPECT_NEAR(Cosine(a, b), 1.0f, 1e-6);
}

TEST(UnixcoderSim, StopwordsCarryLittleWeight) {
  UnixcoderSim model;
  Vector just_stop = model.EncodeText("the of a to in and");
  Vector content = model.EncodeText("anomaly detection threshold");
  Vector content_plus_stop =
      model.EncodeText("the anomaly detection of a threshold");
  EXPECT_GT(Cosine(content, content_plus_stop), 0.8f);
  EXPECT_LT(Cosine(just_stop, content), 0.3f);
}

TEST(UnixcoderSim, EmptyTextYieldsZeroVector) {
  UnixcoderSim model;
  Vector v = model.EncodeText("");
  EXPECT_NEAR(Norm(v), 0.0f, 1e-6);
}

// ---- ReaccSim ----

TEST(ReaccSim, ExactCloneIsPerfect) {
  ReaccSim model;
  std::string code = "def f(x):\n    return x + 1\n";
  EXPECT_NEAR(Cosine(model.EncodeCode(code), model.EncodeCode(code)), 1.0f,
              1e-6);
}

TEST(ReaccSim, IdentifierRenameHurtsSimilarity) {
  // The property the paper's Fig. 13 turns on: ReACC embeds the literal
  // token sequence, so renames cost similarity.
  ReaccSim model;
  Vector original = model.EncodeCode(
      "result = 0\nfor item in data:\n    result = result + item\n");
  Vector renamed = model.EncodeCode(
      "acc = 0\nfor x in values:\n    acc = acc + x\n");
  Vector clone = model.EncodeCode(
      "result = 0\nfor item in data:\n    result = result + item\n");
  EXPECT_GT(Cosine(original, clone), 0.99f);
  EXPECT_LT(Cosine(original, renamed), 0.8f);
}

TEST(ReaccSim, TruncationHurtsSimilarity) {
  ReaccSim model;
  std::string full =
      "low = 0\nhigh = len(xs) - 1\nwhile low <= high:\n"
      "    mid = (low + high) // 2\n    if xs[mid] == t:\n        return mid\n";
  std::string truncated = "low = 0\nhigh = len(xs) - 1\n";
  float self = Cosine(model.EncodeCode(full), model.EncodeCode(full));
  float cut = Cosine(model.EncodeCode(full), model.EncodeCode(truncated));
  EXPECT_GT(self, cut);
  EXPECT_LT(cut, 0.9f);
}

TEST(ReaccSim, UnlexableInputStillEmbeds) {
  ReaccSim model;
  Vector v = model.EncodeCode("broken 'string without end");
  EXPECT_GT(Norm(v), 0.0f);
}

// ---- CodeT5Sim ----

constexpr const char* kPeCode =
    "class AnomalyDetectionPE(IterativePE):\n"
    "    \"\"\"Anomaly detection PE. Flags outlier readings.\"\"\"\n"
    "    def __init__(self):\n"
    "        IterativePE.__init__(self)\n"
    "        self.window = []\n"
    "    def _process(self, reading):\n"
    "        value = reading['temperature']\n"
    "        self.window.append(value)\n"
    "        mean = sum(self.window) / len(self.window)\n"
    "        if abs(value - mean) > 3.0:\n"
    "            return reading\n";

TEST(CodeT5Sim, FullClassSeesNameAndDocstring) {
  CodeT5Sim sim;
  std::string desc = sim.Summarize(kPeCode, DescriptionContext::kFullClass);
  EXPECT_NE(desc.find("anomaly"), std::string::npos) << desc;
  // The docstring's first sentence is folded in.
  EXPECT_NE(desc.find("Anomaly detection PE."), std::string::npos) << desc;
}

TEST(CodeT5Sim, ProcessOnlyIsVaguer) {
  // The Fig. 10 contrast: method-only context cannot mention the class name
  // or class docstring.
  CodeT5Sim sim;
  std::string desc =
      sim.Summarize(kPeCode, DescriptionContext::kProcessMethodOnly);
  EXPECT_EQ(desc.find("Anomaly detection PE"), std::string::npos) << desc;
  EXPECT_EQ(desc.find("anomaly"), std::string::npos) << desc;
  EXPECT_FALSE(desc.empty());
}

TEST(CodeT5Sim, FullClassIsLongerAndRicher) {
  CodeT5Sim sim;
  std::string full = sim.Summarize(kPeCode, DescriptionContext::kFullClass);
  std::string proc =
      sim.Summarize(kPeCode, DescriptionContext::kProcessMethodOnly);
  EXPECT_GT(full.size(), proc.size());
}

TEST(CodeT5Sim, DetectsApiVerbs) {
  CodeT5Sim sim;
  std::string desc = sim.Summarize(
      "class S(IterativePE):\n"
      "    def _process(self, xs):\n"
      "        return sorted(xs)\n",
      DescriptionContext::kFullClass);
  EXPECT_NE(desc.find("sorts data"), std::string::npos) << desc;
}

TEST(CodeT5Sim, BareFunctionSummarized) {
  CodeT5Sim sim;
  std::string desc = sim.Summarize(
      "def reverse_string(text):\n"
      "    \"\"\"Reverses the characters of a string.\"\"\"\n"
      "    return text[::-1]\n",
      DescriptionContext::kFullClass);
  EXPECT_NE(desc.find("reverse string"), std::string::npos) << desc;
  EXPECT_NE(desc.find("Reverses the characters"), std::string::npos) << desc;
}

TEST(CodeT5Sim, GarbageInputDegradesGracefully) {
  CodeT5Sim sim;
  std::string desc = sim.Summarize("$$$ not python at all (((",
                                   DescriptionContext::kFullClass);
  EXPECT_FALSE(desc.empty());
}

TEST(CodeT5Sim, WorkflowSummaryNamesPeCount) {
  CodeT5Sim sim;
  std::string desc = sim.SummarizeWorkflow(
      "isprime_wf", {"Generates random numbers.", "Checks primality."});
  EXPECT_NE(desc.find("isprime"), std::string::npos);
  EXPECT_NE(desc.find("2 processing elements"), std::string::npos);
  EXPECT_NE(desc.find("Checks primality."), std::string::npos);
}

}  // namespace
}  // namespace laminar::embed
