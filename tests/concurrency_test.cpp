#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/concurrent_queue.hpp"
#include "common/thread_pool.hpp"

namespace laminar {
namespace {

TEST(ConcurrentQueue, FifoOrder) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(ConcurrentQueue, CloseDrainsThenEnds) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(9));  // rejected after close
}

TEST(ConcurrentQueue, PopBlocksUntilPush) {
  ConcurrentQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(42);
  });
  EXPECT_EQ(q.Pop().value(), 42);  // must block, then wake
  producer.join();
}

TEST(ConcurrentQueue, PopForTimesOut) {
  ConcurrentQueue<int> q;
  auto v = q.PopFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
}

TEST(ConcurrentQueue, TryOpsNonBlocking) {
  ConcurrentQueue<int> q(/*capacity=*/1);
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));  // full
  EXPECT_EQ(q.TryPop().value(), 1);
}

TEST(ConcurrentQueue, BoundedPushBlocksUntilSpace) {
  ConcurrentQueue<int> q(/*capacity=*/1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.Push(2);  // blocks until Pop
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(ConcurrentQueue, MpmcStress) {
  ConcurrentQueue<int> q;
  constexpr int kProducers = 4, kItemsEach = 2000, kConsumers = 4;
  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) q.Push(p * kItemsEach + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  q.Close();
  for (size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  long long n = kProducers * kItemsEach;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ShutdownIdempotentAndRejectsNewWork) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPool, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      concurrent.fetch_sub(1);
    });
  }
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace laminar
