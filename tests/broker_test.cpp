#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "broker/broker.hpp"

namespace laminar::broker {
namespace {

TEST(Broker, StringOps) {
  Broker b;
  EXPECT_FALSE(b.Get("k").has_value());
  b.Set("k", "v");
  EXPECT_EQ(b.Get("k").value(), "v");
  EXPECT_TRUE(b.Exists("k"));
  EXPECT_TRUE(b.Del("k"));
  EXPECT_FALSE(b.Del("k"));
  EXPECT_FALSE(b.Exists("k"));
}

TEST(Broker, IncrSemantics) {
  Broker b;
  EXPECT_EQ(b.Incr("n"), 1);
  EXPECT_EQ(b.Incr("n", 5), 6);
  EXPECT_EQ(b.Incr("n", -2), 4);
  EXPECT_EQ(b.Get("n").value(), "4");
}

TEST(Broker, HashOps) {
  Broker b;
  b.HSet("h", "f1", "a");
  b.HSet("h", "f2", "b");
  EXPECT_EQ(b.HGet("h", "f1").value(), "a");
  EXPECT_FALSE(b.HGet("h", "nope").has_value());
  auto all = b.HGetAll("h");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(b.HDel("h", "f1"));
  EXPECT_FALSE(b.HDel("h", "f1"));
  EXPECT_FALSE(b.HGet("h", "f1").has_value());
}

TEST(Broker, ListPushPopFifo) {
  Broker b;
  EXPECT_EQ(b.RPush("q", "1"), 1u);
  EXPECT_EQ(b.RPush("q", "2"), 2u);
  EXPECT_EQ(b.LPop("q").value(), "1");
  EXPECT_EQ(b.LPop("q").value(), "2");
  EXPECT_FALSE(b.LPop("q").has_value());
  EXPECT_EQ(b.LLen("q"), 0u);
}

TEST(Broker, BlpopImmediateWhenAvailable) {
  Broker b;
  b.RPush("a", "x");
  auto hit = b.BLPop({"a", "b"}, std::chrono::milliseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "a");
  EXPECT_EQ(hit->second, "x");
}

TEST(Broker, BlpopKeyPriorityOrder) {
  Broker b;
  b.RPush("second", "s");
  b.RPush("first", "f");
  auto hit = b.BLPop({"first", "second"}, std::chrono::milliseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "first");  // first listed key wins, BLPOP semantics
}

TEST(Broker, BlpopTimesOut) {
  Broker b;
  auto hit = b.BLPop({"empty"}, std::chrono::milliseconds(20));
  EXPECT_FALSE(hit.has_value());
  EXPECT_GE(b.stats().blocked_pops, 1u);
}

TEST(Broker, BlpopWakesOnPush) {
  Broker b;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.RPush("q", "late");
  });
  auto hit = b.BLPop({"q"});  // wait forever
  producer.join();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, "late");
}

TEST(Broker, BlpopConcurrentConsumersEachItemOnce) {
  Broker b;
  constexpr int kItems = 500;
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto hit = b.BLPop({"work"}, std::chrono::milliseconds(50));
        if (!hit.has_value()) return;
        received.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kItems; ++i) b.RPush("work", std::to_string(i));
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), kItems);
}

TEST(Broker, ShutdownWakesBlockedConsumers) {
  Broker b;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto hit = b.BLPop({"never"});
    EXPECT_FALSE(hit.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  b.Shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(Broker, TotalQueuedByPrefix) {
  Broker b;
  b.RPush("wf:1:q:0", "a");
  b.RPush("wf:1:q:1", "b");
  b.RPush("wf:2:q:0", "c");
  EXPECT_EQ(b.TotalQueued("wf:1:"), 2u);
  EXPECT_EQ(b.TotalQueued("wf:"), 3u);
  EXPECT_EQ(b.TotalQueued("nope"), 0u);
}

TEST(Broker, PubSubDeliversToSubscribers) {
  Broker b;
  std::vector<std::string> got_a, got_b;
  uint64_t sub_a = b.Subscribe("chan", [&](const std::string& m) { got_a.push_back(m); });
  b.Subscribe("chan", [&](const std::string& m) { got_b.push_back(m); });
  b.Subscribe("other", [&](const std::string&) { FAIL(); });
  EXPECT_EQ(b.Publish("chan", "m1"), 2u);
  b.Unsubscribe(sub_a);
  EXPECT_EQ(b.Publish("chan", "m2"), 1u);
  EXPECT_EQ(got_a, (std::vector<std::string>{"m1"}));
  EXPECT_EQ(got_b, (std::vector<std::string>{"m1", "m2"}));
}

TEST(Broker, PublishWithNoSubscribers) {
  Broker b;
  EXPECT_EQ(b.Publish("void", "x"), 0u);
}

TEST(Broker, FlushAllClearsEverything) {
  Broker b;
  b.Set("s", "1");
  b.HSet("h", "f", "2");
  b.RPush("l", "3");
  b.FlushAll();
  EXPECT_FALSE(b.Exists("s"));
  EXPECT_FALSE(b.Exists("h"));
  EXPECT_EQ(b.LLen("l"), 0u);
}

TEST(Broker, StatsCountOperations) {
  Broker b;
  b.Set("a", "1");
  b.Get("a");
  b.RPush("q", "x");
  b.LPop("q");
  b.Publish("c", "m");
  BrokerStats s = b.stats();
  EXPECT_EQ(s.sets, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.pushes, 1u);
  EXPECT_EQ(s.pops, 1u);
  EXPECT_EQ(s.publishes, 1u);
}

TEST(Broker, DelPrefixRemovesAllKeyKinds) {
  Broker b;
  b.Set("wf:1:meta", "x");
  b.HSet("wf:1:h", "f", "v");
  b.RPush("wf:1:q:0", "a");
  b.RPush("wf:1:q:1", "b");
  b.RPush("wf:2:q:0", "other-run");
  b.Set("unrelated", "y");
  EXPECT_EQ(b.KeyCount("wf:1:"), 4u);
  EXPECT_EQ(b.DelPrefix("wf:1:"), 4u);
  EXPECT_EQ(b.KeyCount("wf:1:"), 0u);
  EXPECT_EQ(b.TotalQueued("wf:1:"), 0u);
  // Other runs and unrelated keys are untouched.
  EXPECT_EQ(b.KeyCount("wf:2:"), 1u);
  EXPECT_EQ(b.LLen("wf:2:q:0"), 1u);
  EXPECT_TRUE(b.Exists("unrelated"));
}

// Losing a pop race to another consumer must not re-arm the full timeout:
// the deadline is absolute, so every BLPop returns within timeout + small
// scheduling slack even when other consumers keep winning.
TEST(Broker, BLPopTimeoutBoundedUnderContention) {
  Broker b;
  constexpr auto kTimeout = std::chrono::milliseconds(60);
  std::atomic<bool> stop{false};

  // A rival consumer on the same key wins every race: it blocks with no
  // timeout and is notified by the same pushes.
  std::vector<std::pair<std::string, std::string>> rival_got;
  std::thread rival([&] {
    while (auto item = b.BLPop({"contested"})) {
      rival_got.push_back(*item);
    }
  });
  // A pusher feeds items steadily so the waiters keep waking up.
  std::thread pusher([&] {
    while (!stop.load()) {
      b.RPush("contested", "item");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // The measured consumer asks for a 60 ms pop. Under the old re-arming
  // loop, every lost race restarted the clock and this could block for the
  // whole contention window; with an absolute deadline it returns (with or
  // without an item) within the timeout plus scheduling slack.
  auto start = std::chrono::steady_clock::now();
  (void)b.BLPop({"contested"}, kTimeout);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, kTimeout + std::chrono::milliseconds(500));

  stop.store(true);
  b.Shutdown();
  rival.join();
  pusher.join();
}

// With many short-timeout consumers racing for a trickle of items, every
// call completes within its own deadline bound.
TEST(Broker, BLPopManyConsumersAllReturnWithinBound) {
  Broker b;
  constexpr auto kTimeout = std::chrono::milliseconds(50);
  constexpr int kConsumers = 4;
  std::atomic<int> items_won{0};
  std::vector<std::thread> consumers;
  std::atomic<int64_t> worst_ms{0};
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        auto start = std::chrono::steady_clock::now();
        auto item = b.BLPop({"drip"}, kTimeout);
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        int64_t prev = worst_ms.load();
        while (ms > prev && !worst_ms.compare_exchange_weak(prev, ms)) {
        }
        if (item) items_won.fetch_add(1);
      }
    });
  }
  // One item per timeout window: most BLPop calls lose and must time out
  // on their own schedule.
  for (int i = 0; i < 3; ++i) {
    b.RPush("drip", std::to_string(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(items_won.load(), 3);
  EXPECT_LT(worst_ms.load(), 50 + 500);
}

}  // namespace
}  // namespace laminar::broker
