#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.hpp"

namespace laminar::broker {
namespace {

TEST(Broker, StringOps) {
  Broker b;
  EXPECT_FALSE(b.Get("k").has_value());
  b.Set("k", "v");
  EXPECT_EQ(b.Get("k").value(), "v");
  EXPECT_TRUE(b.Exists("k"));
  EXPECT_TRUE(b.Del("k"));
  EXPECT_FALSE(b.Del("k"));
  EXPECT_FALSE(b.Exists("k"));
}

TEST(Broker, IncrSemantics) {
  Broker b;
  EXPECT_EQ(b.Incr("n"), 1);
  EXPECT_EQ(b.Incr("n", 5), 6);
  EXPECT_EQ(b.Incr("n", -2), 4);
  EXPECT_EQ(b.Get("n").value(), "4");
}

TEST(Broker, HashOps) {
  Broker b;
  b.HSet("h", "f1", "a");
  b.HSet("h", "f2", "b");
  EXPECT_EQ(b.HGet("h", "f1").value(), "a");
  EXPECT_FALSE(b.HGet("h", "nope").has_value());
  auto all = b.HGetAll("h");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(b.HDel("h", "f1"));
  EXPECT_FALSE(b.HDel("h", "f1"));
  EXPECT_FALSE(b.HGet("h", "f1").has_value());
}

TEST(Broker, ListPushPopFifo) {
  Broker b;
  EXPECT_EQ(b.RPush("q", "1"), 1u);
  EXPECT_EQ(b.RPush("q", "2"), 2u);
  EXPECT_EQ(b.LPop("q").value(), "1");
  EXPECT_EQ(b.LPop("q").value(), "2");
  EXPECT_FALSE(b.LPop("q").has_value());
  EXPECT_EQ(b.LLen("q"), 0u);
}

TEST(Broker, BlpopImmediateWhenAvailable) {
  Broker b;
  b.RPush("a", "x");
  auto hit = b.BLPop({"a", "b"}, std::chrono::milliseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "a");
  EXPECT_EQ(hit->second, "x");
}

TEST(Broker, BlpopKeyPriorityOrder) {
  Broker b;
  b.RPush("second", "s");
  b.RPush("first", "f");
  auto hit = b.BLPop({"first", "second"}, std::chrono::milliseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, "first");  // first listed key wins, BLPOP semantics
}

TEST(Broker, BlpopTimesOut) {
  Broker b;
  auto hit = b.BLPop({"empty"}, std::chrono::milliseconds(20));
  EXPECT_FALSE(hit.has_value());
  EXPECT_GE(b.stats().blocked_pops, 1u);
}

TEST(Broker, BlpopWakesOnPush) {
  Broker b;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.RPush("q", "late");
  });
  auto hit = b.BLPop({"q"});  // wait forever
  producer.join();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, "late");
}

TEST(Broker, BlpopConcurrentConsumersEachItemOnce) {
  Broker b;
  constexpr int kItems = 500;
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto hit = b.BLPop({"work"}, std::chrono::milliseconds(50));
        if (!hit.has_value()) return;
        received.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kItems; ++i) b.RPush("work", std::to_string(i));
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), kItems);
}

TEST(Broker, ShutdownWakesBlockedConsumers) {
  Broker b;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto hit = b.BLPop({"never"});
    EXPECT_FALSE(hit.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  b.Shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(Broker, TotalQueuedByPrefix) {
  Broker b;
  b.RPush("wf:1:q:0", "a");
  b.RPush("wf:1:q:1", "b");
  b.RPush("wf:2:q:0", "c");
  EXPECT_EQ(b.TotalQueued("wf:1:"), 2u);
  EXPECT_EQ(b.TotalQueued("wf:"), 3u);
  EXPECT_EQ(b.TotalQueued("nope"), 0u);
}

TEST(Broker, PubSubDeliversToSubscribers) {
  Broker b;
  std::vector<std::string> got_a, got_b;
  uint64_t sub_a = b.Subscribe("chan", [&](const std::string& m) { got_a.push_back(m); });
  b.Subscribe("chan", [&](const std::string& m) { got_b.push_back(m); });
  b.Subscribe("other", [&](const std::string&) { FAIL(); });
  EXPECT_EQ(b.Publish("chan", "m1"), 2u);
  b.Unsubscribe(sub_a);
  EXPECT_EQ(b.Publish("chan", "m2"), 1u);
  EXPECT_EQ(got_a, (std::vector<std::string>{"m1"}));
  EXPECT_EQ(got_b, (std::vector<std::string>{"m1", "m2"}));
}

TEST(Broker, PublishWithNoSubscribers) {
  Broker b;
  EXPECT_EQ(b.Publish("void", "x"), 0u);
}

TEST(Broker, FlushAllClearsEverything) {
  Broker b;
  b.Set("s", "1");
  b.HSet("h", "f", "2");
  b.RPush("l", "3");
  b.FlushAll();
  EXPECT_FALSE(b.Exists("s"));
  EXPECT_FALSE(b.Exists("h"));
  EXPECT_EQ(b.LLen("l"), 0u);
}

TEST(Broker, StatsCountOperations) {
  Broker b;
  b.Set("a", "1");
  b.Get("a");
  b.RPush("q", "x");
  b.LPop("q");
  b.Publish("c", "m");
  BrokerStats s = b.stats();
  EXPECT_EQ(s.sets, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.pushes, 1u);
  EXPECT_EQ(s.pops, 1u);
  EXPECT_EQ(s.publishes, 1u);
}

TEST(Broker, DelPrefixRemovesAllKeyKinds) {
  Broker b;
  b.Set("wf:1:meta", "x");
  b.HSet("wf:1:h", "f", "v");
  b.RPush("wf:1:q:0", "a");
  b.RPush("wf:1:q:1", "b");
  b.RPush("wf:2:q:0", "other-run");
  b.Set("unrelated", "y");
  EXPECT_EQ(b.KeyCount("wf:1:"), 4u);
  EXPECT_EQ(b.DelPrefix("wf:1:"), 4u);
  EXPECT_EQ(b.KeyCount("wf:1:"), 0u);
  EXPECT_EQ(b.TotalQueued("wf:1:"), 0u);
  // Other runs and unrelated keys are untouched.
  EXPECT_EQ(b.KeyCount("wf:2:"), 1u);
  EXPECT_EQ(b.LLen("wf:2:q:0"), 1u);
  EXPECT_TRUE(b.Exists("unrelated"));
}

// Losing a pop race to another consumer must not re-arm the full timeout:
// the deadline is absolute, so every BLPop returns within timeout + small
// scheduling slack even when other consumers keep winning.
TEST(Broker, BLPopTimeoutBoundedUnderContention) {
  Broker b;
  constexpr auto kTimeout = std::chrono::milliseconds(60);
  std::atomic<bool> stop{false};

  // A rival consumer on the same key wins every race: it blocks with no
  // timeout and is notified by the same pushes.
  std::vector<std::pair<std::string, std::string>> rival_got;
  std::thread rival([&] {
    while (auto item = b.BLPop({"contested"})) {
      rival_got.push_back(*item);
    }
  });
  // A pusher feeds items steadily so the waiters keep waking up.
  std::thread pusher([&] {
    while (!stop.load()) {
      b.RPush("contested", "item");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // The measured consumer asks for a 60 ms pop. Under the old re-arming
  // loop, every lost race restarted the clock and this could block for the
  // whole contention window; with an absolute deadline it returns (with or
  // without an item) within the timeout plus scheduling slack.
  auto start = std::chrono::steady_clock::now();
  (void)b.BLPop({"contested"}, kTimeout);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, kTimeout + std::chrono::milliseconds(500));

  stop.store(true);
  b.Shutdown();
  rival.join();
  pusher.join();
}

// With many short-timeout consumers racing for a trickle of items, every
// call completes within its own deadline bound.
TEST(Broker, BLPopManyConsumersAllReturnWithinBound) {
  Broker b;
  constexpr auto kTimeout = std::chrono::milliseconds(50);
  constexpr int kConsumers = 4;
  std::atomic<int> items_won{0};
  std::vector<std::thread> consumers;
  std::atomic<int64_t> worst_ms{0};
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        auto start = std::chrono::steady_clock::now();
        auto item = b.BLPop({"drip"}, kTimeout);
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        int64_t prev = worst_ms.load();
        while (ms > prev && !worst_ms.compare_exchange_weak(prev, ms)) {
        }
        if (item) items_won.fetch_add(1);
      }
    });
  }
  // One item per timeout window: most BLPop calls lose and must time out
  // on their own schedule.
  for (int i = 0; i < 3; ++i) {
    b.RPush("drip", std::to_string(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(items_won.load(), 3);
  EXPECT_LT(worst_ms.load(), 50 + 500);
}

// ---- Batched list ops (RPushMulti / BLPopUpTo) ----

TEST(Broker, RPushMultiAppendsInOrderAndReturnsLength) {
  Broker b;
  b.RPush("q", "head");
  std::vector<std::string> batch = {"a", "b", "c"};
  EXPECT_EQ(b.RPushMulti("q", std::move(batch)), 4u);
  // The source vector is emptied (moved out) but stays reusable.
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(b.LPop("q").value(), "head");
  EXPECT_EQ(b.LPop("q").value(), "a");
  EXPECT_EQ(b.LPop("q").value(), "b");
  EXPECT_EQ(b.LPop("q").value(), "c");
  EXPECT_FALSE(b.LPop("q").has_value());
}

TEST(Broker, RPushMultiEmptyVectorIsNoop) {
  Broker b;
  EXPECT_EQ(b.RPushMulti("q", {}), 0u);
  EXPECT_FALSE(b.Exists("q"));
  EXPECT_EQ(b.LLen("q"), 0u);
}

TEST(Broker, BLPopUpToDrainsFirstNonEmptyKeyInKeyOrder) {
  Broker b;
  b.RPushMulti("second", {"x", "y"});
  b.RPushMulti("first", {"1", "2", "3", "4", "5"});
  // "first" precedes "second" in key order, so it is drained first even
  // though "second" was pushed earlier.
  auto batch = b.BLPopUpTo({"first", "second"}, 3);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->first, "first");
  EXPECT_EQ(batch->second, (std::vector<std::string>{"1", "2", "3"}));
  // The remainder stays queued in order.
  EXPECT_EQ(b.LLen("first"), 2u);
  batch = b.BLPopUpTo({"first", "second"}, 10);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->second, (std::vector<std::string>{"4", "5"}));
  batch = b.BLPopUpTo({"first", "second"}, 10);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->first, "second");
  EXPECT_EQ(batch->second, (std::vector<std::string>{"x", "y"}));
}

TEST(Broker, BLPopUpToZeroMaxItemsMeansOne) {
  Broker b;
  b.RPushMulti("q", {"a", "b"});
  auto batch = b.BLPopUpTo({"q"}, 0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->second.size(), 1u);
  EXPECT_EQ(b.LLen("q"), 1u);
}

TEST(Broker, BLPopUpToTimesOutOnEmptyKeys) {
  Broker b;
  auto start = std::chrono::steady_clock::now();
  auto batch = b.BLPopUpTo({"empty"}, 8, std::chrono::milliseconds(30));
  EXPECT_FALSE(batch.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(Broker, BLPopUpToWakesOnBatchPushAndDrainsIt) {
  Broker b;
  std::optional<std::pair<std::string, std::vector<std::string>>> got;
  std::thread consumer([&] {
    got = b.BLPopUpTo({"q"}, 8, std::chrono::milliseconds(2000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.RPushMulti("q", {"a", "b", "c"});
  consumer.join();
  ASSERT_TRUE(got.has_value());
  // One wake hands the whole pushed batch (it fits under max_items).
  EXPECT_EQ(got->second, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(b.LLen("q"), 0u);
}

TEST(Broker, StatsCountBatchedOpsAndScans) {
  Broker b;
  b.RPushMulti("wf:1:q:0", {"a", "b", "c"});
  (void)b.BLPopUpTo({"wf:1:q:0"}, 2);
  (void)b.KeyCount("wf:1:");
  BrokerStats s = b.stats();
  EXPECT_EQ(s.batch_pushes, 1u);
  EXPECT_EQ(s.batch_pops, 1u);
  EXPECT_EQ(s.pushes, 3u);
  EXPECT_EQ(s.pops, 2u);
  EXPECT_GE(s.keys_scanned, 1u);
}

// ---- Cancellation (Notify + cancel flag) ----

TEST(Broker, NotifyWithCancelFlagUnblocksPopPromptly) {
  Broker b;
  std::atomic<bool> cancel{false};
  std::optional<std::pair<std::string, std::string>> got;
  std::thread consumer([&] {
    got = b.BLPop({"q"}, std::chrono::milliseconds(5000), &cancel);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto start = std::chrono::steady_clock::now();
  cancel.store(true);
  b.Notify();
  consumer.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1000));
  // Unlike Shutdown, the broker stays fully usable afterwards.
  EXPECT_FALSE(b.shut_down());
  b.RPush("q", "x");
  EXPECT_EQ(b.BLPop({"q"}).value().second, "x");
}

TEST(Broker, NotifyWithoutCancelIsSpuriousWake) {
  Broker b;
  std::optional<std::pair<std::string, std::string>> got;
  std::thread consumer(
      [&] { got = b.BLPop({"q"}, std::chrono::milliseconds(2000)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.Notify();  // no cancel flag set: the consumer must keep waiting
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.RPush("q", "payload");
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->second, "payload");
}

// ---- Batch-op contention (run under LAMINAR_SANITIZE=thread via the
// `faults`-labelled broker_batch_contention_stress ctest node) ----

// Producers push unique items in batches while consumers drain with
// BLPopUpTo: every item must arrive exactly once, across both queues.
TEST(Broker, BatchOpsConcurrentProducersConsumersEachItemOnce) {
  Broker b;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kBatches = 40;
  constexpr int kBatchSize = 16;
  constexpr int kTotal = kProducers * kBatches * kBatchSize;
  const std::vector<std::string> keys = {"q:0", "q:1"};

  std::atomic<int> consumed{0};
  std::mutex seen_mu;
  std::vector<std::string> seen;
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load(std::memory_order_acquire) < kTotal) {
        auto batch = b.BLPopUpTo(keys, 8, std::chrono::milliseconds(50));
        if (!batch.has_value()) continue;
        consumed.fetch_add(static_cast<int>(batch->second.size()),
                           std::memory_order_acq_rel);
        std::scoped_lock lock(seen_mu);
        for (std::string& item : batch->second) {
          seen.push_back(std::move(item));
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kBatches; ++i) {
        std::vector<std::string> batch;
        batch.reserve(kBatchSize);
        for (int j = 0; j < kBatchSize; ++j) {
          batch.push_back(std::to_string(p) + ":" +
                          std::to_string(i * kBatchSize + j));
        }
        b.RPushMulti(keys[static_cast<size_t>(i) % keys.size()],
                     std::move(batch));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(seen.size(), static_cast<size_t>(kTotal));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "an item was delivered twice";
  EXPECT_EQ(b.LLen("q:0") + b.LLen("q:1"), 0u);
}

// Single-item and batched ops interleaved on the same keys: conservation
// still holds and per-key FIFO survives for a designated ordered key.
TEST(Broker, BatchOpsMixedSingleAndBatchedKeepPerKeyFifo) {
  Broker b;
  constexpr int kItems = 500;
  // One producer thread writes an ordered stream with a mix of RPush and
  // RPushMulti; one consumer reads with a mix of BLPop and BLPopUpTo.
  std::thread producer([&] {
    int next = 0;
    while (next < kItems) {
      if (next % 3 == 0 && next + 4 <= kItems) {
        std::vector<std::string> batch;
        for (int j = 0; j < 4; ++j) batch.push_back(std::to_string(next++));
        b.RPushMulti("ordered", std::move(batch));
      } else {
        b.RPush("ordered", std::to_string(next++));
      }
    }
  });
  std::vector<std::string> received;
  while (received.size() < kItems) {
    if (received.size() % 2 == 0) {
      auto batch =
          b.BLPopUpTo({"ordered"}, 8, std::chrono::milliseconds(1000));
      if (!batch.has_value()) break;
      for (std::string& item : batch->second) {
        received.push_back(std::move(item));
      }
    } else {
      auto item = b.BLPop({"ordered"}, std::chrono::milliseconds(1000));
      if (!item.has_value()) break;
      received.push_back(std::move(item->second));
    }
  }
  producer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], std::to_string(i));
  }
}

// ---- Keyspace sharding stress (TSan target: every op class hammered
// concurrently across many keys; run via broker_sharding_stress) ----

TEST(Broker, ShardingStressConcurrentMixedOpsAcrossKeys) {
  Broker b;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "own:" + std::to_string(t) + ":";
      for (int i = 0; i < kIters; ++i) {
        b.Incr("shared:counter");
        b.Set(mine + std::to_string(i % 16), std::to_string(i));
        b.HSet("shared:hash", std::to_string(t), std::to_string(i));
        b.RPush("q:" + std::to_string(i % 5), "item");
        if (b.LPop("q:" + std::to_string((i + 2) % 5)).has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 31 == 0) {
          (void)b.KeyCount("own:");
          (void)b.TotalQueued("q:");
          (void)b.Get(mine + std::to_string((i + 7) % 16));
        }
        if (i % 97 == 0) b.DelPrefix(mine);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(b.Get("shared:counter").value(),
            std::to_string(kThreads * kIters));
  // Queue conservation: pushes - pops == what is left on the queues.
  size_t remaining = 0;
  for (int q = 0; q < 5; ++q) remaining += b.LLen("q:" + std::to_string(q));
  EXPECT_EQ(remaining,
            static_cast<size_t>(kThreads * kIters - popped.load()));
  EXPECT_EQ(b.HGetAll("shared:hash").size(), static_cast<size_t>(kThreads));
}

// ---- DelPrefix vs concurrent blocking pops (run-scope teardown, ISSUE 8;
// run under LAMINAR_SANITIZE=thread via broker_delprefix_churn_stress) ----

// A dynamic-mapping run ends with DelPrefix("t:<tenant>:wf:N:") while its
// workers may still sit in BLPopUpTo on those keys. Churn that teardown
// against producers and consumers: no tuple may be delivered twice, no
// tuple may "resurrect" after its prefix was deleted (delivered-then-
// deleted double accounting), the keyspace must end empty, and — via
// DebugWaiterCount — no blocked-pop waiter may leak past its call.
TEST(Broker, DelPrefixDuringBlockingPopsNeverResurrectsOrLeaks) {
  Broker b;
  constexpr int kRounds = 30;
  constexpr int kConsumers = 4;
  constexpr int kItemsPerRound = 64;
  const std::string prefix = "t:alice:wf:1:";
  const std::vector<std::string> keys = {prefix + "q:0", prefix + "q:1"};

  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> stop{false};
    std::atomic<int> delivered{0};
    std::mutex seen_mu;
    std::vector<std::string> seen;

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          auto batch = b.BLPopUpTo(keys, 8, std::chrono::milliseconds(5),
                                   &stop);
          if (!batch.has_value()) continue;
          delivered.fetch_add(static_cast<int>(batch->second.size()),
                              std::memory_order_acq_rel);
          std::scoped_lock lock(seen_mu);
          for (std::string& item : batch->second) {
            seen.push_back(std::move(item));
          }
        }
      });
    }

    std::thread producer([&] {
      for (int i = 0; i < kItemsPerRound; ++i) {
        b.RPush(keys[static_cast<size_t>(i) % keys.size()],
                std::to_string(round) + ":" + std::to_string(i));
      }
    });
    producer.join();

    // Tear the run down while consumers are mid-pop: whatever DelPrefix
    // removes was, by linearizability, never handed to a consumer.
    size_t deleted_keys = b.DelPrefix(prefix);
    (void)deleted_keys;
    stop.store(true, std::memory_order_release);
    b.Notify();  // wake parked pops so they observe the stop flag
    for (std::thread& t : consumers) t.join();

    // Conservation per round: every delivered item is unique, and items
    // the teardown swallowed are simply gone — not delivered afterwards.
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
        << "an item was delivered twice in round " << round;
    ASSERT_LE(seen.size(), static_cast<size_t>(kItemsPerRound));
    ASSERT_EQ(b.KeyCount(prefix), 0u) << "keys survived teardown";
    ASSERT_EQ(b.DebugWaiterCount(), 0u)
        << "a blocking pop leaked its waiter registration in round " << round;
  }
}

}  // namespace
}  // namespace laminar::broker
