#include <gtest/gtest.h>

#include "dataset/generator.hpp"
#include "search/metrics.hpp"
#include "search/search_service.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

uint64_t CounterValue(const char* name, const char* labels = "") {
  const telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().FindCounter(name, labels);
  return c == nullptr ? 0 : c->Value();
}

// ---- metrics ----

TEST(Metrics, PerfectRankingIsPerfect) {
  std::vector<std::vector<int64_t>> ranked = {{1, 2, 9, 8}};
  std::vector<std::unordered_set<int64_t>> relevant = {{1, 2}};
  auto curve = PrecisionRecallCurve(ranked, relevant, 2);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].f1, 1.0);
}

TEST(Metrics, PrecisionPenalizesDeepK) {
  std::vector<std::vector<int64_t>> ranked = {{1, 9, 8, 7}};
  std::vector<std::unordered_set<int64_t>> relevant = {{1}};
  auto curve = PrecisionRecallCurve(ranked, relevant, 4);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].precision, 0.25);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
}

TEST(Metrics, MacroAveragesAcrossQueries) {
  std::vector<std::vector<int64_t>> ranked = {{1}, {9}};
  std::vector<std::unordered_set<int64_t>> relevant = {{1}, {2}};
  auto curve = PrecisionRecallCurve(ranked, relevant, 1);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
}

TEST(Metrics, EmptyRelevantSetsSkipped) {
  std::vector<std::vector<int64_t>> ranked = {{1}, {2}};
  std::vector<std::unordered_set<int64_t>> relevant = {{}, {2}};
  auto curve = PrecisionRecallCurve(ranked, relevant, 1);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);  // only query 2 counted
}

TEST(Metrics, ShortRankedListCountsAgainstPrecision) {
  std::vector<std::vector<int64_t>> ranked = {{1}};  // only 1 result returned
  std::vector<std::unordered_set<int64_t>> relevant = {{1, 2}};
  auto curve = PrecisionRecallCurve(ranked, relevant, 3);
  EXPECT_DOUBLE_EQ(curve[2].precision, 1.0 / 3.0);
}

TEST(Metrics, BestF1PicksMaximum) {
  std::vector<PrPoint> curve(3);
  curve[0].f1 = 0.2;
  curve[1].f1 = 0.9;
  curve[1].k = 2;
  curve[2].f1 = 0.5;
  PrPoint best = BestF1(curve);
  EXPECT_DOUBLE_EQ(best.f1, 0.9);
  EXPECT_EQ(best.k, 2u);
}

TEST(Metrics, MeanReciprocalRank) {
  std::vector<std::vector<int64_t>> ranked = {{9, 1}, {2}};
  std::vector<std::unordered_set<int64_t>> relevant = {{1}, {2}};
  EXPECT_DOUBLE_EQ(MeanReciprocalRank(ranked, relevant), (0.5 + 1.0) / 2.0);
}

// ---- SearchService over a populated registry ----

class SearchServiceTest : public ::testing::Test {
 protected:
  SearchServiceTest() : repo_(db_), service_(repo_) {
    EXPECT_TRUE(registry::CreateLaminarSchema(db_).ok());
    user_id_ = repo_.CreateUser("u", "p").value();
    dataset::DatasetConfig config;
    config.families = 10;
    config.variants_per_family = 3;
    ds_ = dataset::CodeSearchNetPeDataset::Generate(config);
    for (const auto& ex : ds_.examples()) {
      registry::PeRecord pe;
      pe.name = ex.name;
      pe.code = ex.pe_code;
      pe.description = ex.description;
      pe.type = "IterativePE";
      int64_t id = repo_.CreatePe(pe).value();
      pe_ids_[ex.id] = id;
      EXPECT_TRUE(service_.AddPe(id).ok());
    }
  }

  int64_t RegistryId(int64_t dataset_id) const {
    return pe_ids_.at(dataset_id);
  }

  registry::Database db_;
  registry::Repository repo_;
  SearchService service_;
  dataset::CodeSearchNetPeDataset ds_;
  std::unordered_map<int64_t, int64_t> pe_ids_;
  int64_t user_id_ = 0;
};

TEST_F(SearchServiceTest, LiteralSearchMatchesNameAndDescription) {
  auto hits = service_.LiteralSearch("prime", SearchTarget::kPe, 10);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) {
    bool in_name = hit.name.find("Prime") != std::string::npos ||
                   hit.name.find("prime") != std::string::npos;
    bool in_desc = hit.description.find("prime") != std::string::npos;
    EXPECT_TRUE(in_name || in_desc) << hit.name;
  }
}

TEST_F(SearchServiceTest, LiteralSearchNameMatchesRankFirst) {
  auto hits = service_.LiteralSearch("fibonacci", SearchTarget::kPe, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].name.find("Fibonacci"), std::string::npos);
}

TEST_F(SearchServiceTest, LiteralSearchEmptyForNoMatch) {
  EXPECT_TRUE(service_.LiteralSearch("zzzqqq", SearchTarget::kPe).empty());
}

TEST_F(SearchServiceTest, SemanticSearchFindsFamilyFromParaphrase) {
  // Query with the paraphrase, expect the right family in the top results.
  const auto& ex = ds_.example(0);  // is_prime family
  auto hits = service_.SemanticSearch(ex.query, SearchTarget::kPe, 5);
  ASSERT_FALSE(hits.empty());
  const auto& members = ds_.GroupMembers(ex.group);
  bool found = false;
  for (const auto& hit : hits) {
    for (int64_t m : members) {
      if (hit.id == RegistryId(m)) found = true;
    }
  }
  EXPECT_TRUE(found) << "query: " << ex.query;
}

TEST_F(SearchServiceTest, SemanticScoresSortedDescending) {
  auto hits = service_.SemanticSearch("sort numbers ascending",
                                      SearchTarget::kPe, 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST_F(SearchServiceTest, DefaultLimitIsFive) {
  auto hits = service_.SemanticSearch("numbers", SearchTarget::kPe);
  EXPECT_LE(hits.size(), 5u);
}

TEST_F(SearchServiceTest, CodeSearchLlmFindsExactClone) {
  const auto& ex = ds_.example(3);
  auto hits = service_.CodeSearchLlm(ex.pe_code, SearchTarget::kPe, 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, RegistryId(ex.id));
  EXPECT_GT(hits[0].score, 0.99);
}

TEST_F(SearchServiceTest, SptRecommendationBeatsLlmOnRenamedPartialCode) {
  // The paper's central claim, as a unit check: for a 50%-dropped snippet,
  // structural search should place family members higher than the
  // token-sequence baseline does.
  const auto& ex = ds_.example(7);
  std::string partial = dataset::DropCode(ex.pe_code, 0.5);
  const auto& members = ds_.GroupMembers(ex.group);
  auto in_family = [&](int64_t registry_id) {
    for (int64_t m : members) {
      if (registry_id == RegistryId(m)) return true;
    }
    return false;
  };
  // Raw structural retrieval (what Figs. 12/13 measure — no clustering).
  Result<std::vector<spt::SptIndex::Hit>> spt =
      service_.aroma().Search(partial, 3, spt::Metric::kOverlap);
  ASSERT_TRUE(spt.ok());
  int spt_family = 0;
  for (const auto& hit : spt.value()) spt_family += in_family(hit.doc_id);
  auto llm = service_.CodeSearchLlm(partial, SearchTarget::kPe, 3);
  int llm_family = 0;
  for (const auto& hit : llm) llm_family += in_family(hit.id);
  EXPECT_GE(spt_family, llm_family);
  EXPECT_GE(spt_family, 1);
  // The clustered recommendation still surfaces the family first, as one
  // deduplicated entry.
  Result<std::vector<RecommendationHit>> recs =
      service_.CodeRecommendation(partial, SearchTarget::kPe, 3);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_TRUE(in_family(recs->front().id));
}

TEST_F(SearchServiceTest, WorkflowRecommendationRanksByOccurrence) {
  // Build two workflows: one containing two prime-family PEs, one with one.
  registry::WorkflowRecord wf;
  wf.user_id = user_id_;
  wf.name = "prime_wf";
  wf.code = "graph = WorkflowGraph()";
  int64_t heavy = repo_.CreateWorkflow(wf).value();
  wf.name = "other_wf";
  int64_t light = repo_.CreateWorkflow(wf).value();
  ASSERT_TRUE(service_.AddWorkflow(heavy).ok());
  ASSERT_TRUE(service_.AddWorkflow(light).ok());
  const auto& members = ds_.GroupMembers(0);  // is_prime family
  ASSERT_GE(members.size(), 2u);
  ASSERT_TRUE(repo_.LinkPe(heavy, RegistryId(members[0])).ok());
  ASSERT_TRUE(repo_.LinkPe(heavy, RegistryId(members[1])).ok());
  ASSERT_TRUE(repo_.LinkPe(light, RegistryId(members[0])).ok());

  Result<std::vector<RecommendationHit>> recs = service_.CodeRecommendation(
      ds_.example(0).pe_code, SearchTarget::kWorkflow, 5);
  ASSERT_TRUE(recs.ok());
  ASSERT_GE(recs->size(), 2u);
  EXPECT_EQ(recs->front().id, heavy);
  EXPECT_GT(recs->front().occurrences, (*recs)[1].occurrences);
}

TEST_F(SearchServiceTest, RemovePeDropsFromAllIndexes) {
  const auto& ex = ds_.example(0);
  int64_t id = RegistryId(ex.id);
  service_.RemovePe(id);
  auto hits = service_.CodeSearchLlm(ex.pe_code, SearchTarget::kPe, 20);
  for (const auto& hit : hits) EXPECT_NE(hit.id, id);
  Result<std::vector<RecommendationHit>> recs =
      service_.CodeRecommendation(ex.pe_code, SearchTarget::kPe, 20);
  ASSERT_TRUE(recs.ok());
  for (const auto& hit : recs.value()) EXPECT_NE(hit.id, id);
}

TEST_F(SearchServiceTest, ReindexAllRebuilds) {
  service_.Clear();
  EXPECT_TRUE(service_.SemanticSearch("prime", SearchTarget::kPe).empty());
  ASSERT_TRUE(service_.ReindexAll().ok());
  EXPECT_FALSE(service_.SemanticSearch("prime", SearchTarget::kPe).empty());
}

TEST_F(SearchServiceTest, StoredEmbeddingsPreferred) {
  // A PE registered with a precomputed embedding must use it verbatim.
  embed::UnixcoderSim encoder;
  embed::Vector custom = encoder.EncodeText("custom semantics entirely");
  registry::PeRecord pe;
  pe.name = "WithStoredEmbedding";
  pe.code = "class X: pass";
  pe.description = "unrelated text";
  pe.description_embedding = embed::ToJson(custom);
  int64_t id = repo_.CreatePe(pe).value();
  ASSERT_TRUE(service_.AddPe(id).ok());
  auto hits = service_.SemanticSearch("custom semantics entirely",
                                      SearchTarget::kPe, 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, id);
  EXPECT_GT(hits[0].score, 0.99);
}

TEST_F(SearchServiceTest, RepeatedSemanticQueryHitsEmbeddingCache) {
  const char* hits_name = "laminar_search_query_cache_hits_total";
  const char* miss_name = "laminar_search_query_cache_misses_total";
  const char* enc_name = "laminar_embed_encodes_total";
  const char* enc_label = "model=\"unixcoder\"";
  uint64_t hits0 = CounterValue(hits_name);
  uint64_t misses0 = CounterValue(miss_name);

  auto first = service_.SemanticSearch("an entirely novel cache probe query",
                                       SearchTarget::kPe, 3);
  uint64_t encodes_after_first = CounterValue(enc_name, enc_label);
  EXPECT_EQ(CounterValue(miss_name), misses0 + 1);

  auto second = service_.SemanticSearch("an entirely novel cache probe query",
                                        SearchTarget::kPe, 3);
  EXPECT_EQ(CounterValue(hits_name), hits0 + 1);
  // The cached hit skipped the encoder entirely.
  EXPECT_EQ(CounterValue(enc_name, enc_label), encodes_after_first);
  // And returns identical results.
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
  }
}

TEST_F(SearchServiceTest, AddPeEncodesDescriptionAtMostOnce) {
  const char* enc_name = "laminar_embed_encodes_total";
  const char* enc_label = "model=\"unixcoder\"";
  // No stored embedding -> exactly one unixcoder encode.
  registry::PeRecord pe;
  pe.name = "EncodeOnce";
  pe.code = "class EncodeOnce: pass";
  pe.description = "counts unixcoder encodes at index time";
  int64_t id = repo_.CreatePe(pe).value();
  uint64_t before = CounterValue(enc_name, enc_label);
  ASSERT_TRUE(service_.AddPe(id).ok());
  EXPECT_EQ(CounterValue(enc_name, enc_label), before + 1);

  // Stored embedding -> zero encodes.
  embed::UnixcoderSim encoder;
  registry::PeRecord stored;
  stored.name = "EncodeNever";
  stored.code = "class EncodeNever: pass";
  stored.description = "precomputed";
  stored.description_embedding = embed::ToJson(encoder.EncodeText("precomputed"));
  int64_t stored_id = repo_.CreatePe(stored).value();
  before = CounterValue(enc_name, enc_label);
  ASSERT_TRUE(service_.AddPe(stored_id).ok());
  EXPECT_EQ(CounterValue(enc_name, enc_label), before);
}

}  // namespace
}  // namespace laminar::search
