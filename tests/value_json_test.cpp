#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/value.hpp"

namespace laminar {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToJson(), "null");
}

TEST(Value, ScalarAccessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(Value, CrossTypeCoercions) {
  EXPECT_EQ(Value(2.9).as_int(), 2);       // double -> int truncates
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
  EXPECT_TRUE(Value(1).as_bool());
  EXPECT_EQ(Value("nope").as_int(7), 7);   // fallback on mismatch
  EXPECT_EQ(Value(5).as_string(), "");     // strings never coerce
}

TEST(Value, ObjectInsertionOrderPreserved) {
  Value obj = Value::MakeObject();
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = 3;
  EXPECT_EQ(obj.ToJson(), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(Value, ObjectFieldHelpers) {
  Value obj = Value::MakeObject();
  obj["name"] = "laminar";
  obj["count"] = 5;
  obj["ratio"] = 0.5;
  obj["on"] = true;
  EXPECT_EQ(obj.GetString("name"), "laminar");
  EXPECT_EQ(obj.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(obj.GetDouble("ratio"), 0.5);
  EXPECT_TRUE(obj.GetBool("on"));
  EXPECT_EQ(obj.GetString("missing", "fb"), "fb");
  EXPECT_EQ(obj.GetInt("name", -1), -1);  // wrong type -> fallback
  EXPECT_TRUE(obj.at("missing").is_null());
}

TEST(Value, ArrayOps) {
  Value arr = Value::MakeArray();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.as_array()[0].as_int(), 1);
  EXPECT_EQ(arr.ToJson(), R"([1,"two"])");
}

TEST(Value, NestedBuildAndEquality) {
  Value a = Value::MakeObject();
  a["list"].push_back(Value(1));
  a["list"].push_back(Value(2));
  a["obj"]["inner"] = "x";
  Value b = Value::MakeObject();
  b["list"].push_back(Value(1));
  b["list"].push_back(Value(2));
  b["obj"]["inner"] = "x";
  EXPECT_EQ(a, b);
  b["obj"]["inner"] = "y";
  EXPECT_FALSE(a == b);
}

TEST(Value, EraseField) {
  Value obj = Value::MakeObject();
  obj["a"] = 1;
  obj["b"] = 2;
  obj.mutable_object().erase("a");
  EXPECT_FALSE(obj.contains("a"));
  EXPECT_TRUE(obj.contains("b"));
}

TEST(JsonSerialize, EscapesSpecialCharacters) {
  Value v("line\n\"quote\"\t\\end");
  EXPECT_EQ(v.ToJson(), R"("line\n\"quote\"\t\\end")");
}

TEST(JsonSerialize, ControlCharactersAsUnicode) {
  Value v(std::string("\x01", 1));
  EXPECT_EQ(v.ToJson(), "\"\\u0001\"");
}

TEST(JsonSerialize, DoublesRoundTrip) {
  for (double d : {0.1, 1e-9, 12345.6789, -2.5e17, 3.0}) {
    Value v(d);
    Result<Value> back = json::Parse(v.ToJson());
    ASSERT_TRUE(back.ok()) << v.ToJson();
    EXPECT_DOUBLE_EQ(back->as_double(), d);
  }
}

TEST(JsonSerialize, NonFiniteBecomesNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).ToJson(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).ToJson(), "null");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::Parse("null")->is_null());
  EXPECT_EQ(json::Parse("true")->as_bool(), true);
  EXPECT_EQ(json::Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(json::Parse("2.5e2")->as_double(), 250.0);
  EXPECT_EQ(json::Parse(R"("s")")->as_string(), "s");
}

TEST(JsonParse, BigIntegerFallsBackToDouble) {
  Result<Value> v = json::Parse("99999999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

TEST(JsonParse, NestedDocument) {
  Result<Value> v = json::Parse(R"({"a":[1,{"b":null},"x"],"c":{"d":false}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at("a").as_array()[2].as_string(), "x");
  EXPECT_TRUE(v->at("a").as_array()[1].at("b").is_null());
  EXPECT_FALSE(v->at("c").GetBool("d", true));
}

TEST(JsonParse, UnicodeEscapes) {
  Result<Value> v = json::Parse(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9");
}

TEST(JsonParse, SurrogatePairs) {
  Result<Value> v = json::Parse(R"("😀")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "\"\\q\"", "nan", "[1 2]"}) {
    EXPECT_FALSE(json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonParse, RejectsLoneSurrogate) {
  EXPECT_FALSE(json::Parse(R"("\ud800")").ok());
  EXPECT_FALSE(json::Parse(R"("\udc00")").ok());
}

TEST(JsonParse, RejectsRawControlInString) {
  std::string bad = "\"a\x01b\"";
  EXPECT_FALSE(json::Parse(bad).ok());
}

TEST(JsonParse, DeepNestingBounded) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
}

TEST(JsonRoundTrip, ComplexDocument) {
  Value doc = Value::MakeObject();
  doc["pes"] = Value::MakeArray();
  Value pe = Value::MakeObject();
  pe["name"] = "IsPrime";
  pe["params"]["seed"] = 42;
  doc["pes"].push_back(std::move(pe));
  doc["nested"]["arr"].push_back(Value(1.5));
  Result<Value> back = json::Parse(doc.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), doc);
  // Pretty form parses back to the same value too.
  Result<Value> pretty = json::Parse(doc.ToJsonPretty());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty.value(), doc);
}

}  // namespace
}  // namespace laminar
