// Failure-semantics tests for the fault-containment layer: a PE that
// throws never takes the process down under any mapping; throws are
// retried per RunOptions{max_retries, retry_backoff_ms} and then
// quarantined on the run's dead-letter queue; every dynamic run deletes
// its broker keys on exit (success, partial failure, or deadline expiry);
// and the server surfaces partial failures as structured data.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "client/connect.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"
#include "engine/engine.hpp"

namespace laminar::dataflow {
namespace {

/// Producer that forwards the iteration payload verbatim, so downstream
/// PEs see the deterministic sequence 0..N-1.
class IndexProducer final : public Clonable<IndexProducer, ProducerBase> {
 public:
  IndexProducer() { set_name("IndexProducer"); }
  void Process(std::string_view, const Value& value, Emitter& out) override {
    out.Emit(kDefaultOutput, value);
  }
};

std::unique_ptr<WorkflowGraph> FaultyGraph(int64_t every_n,
                                           int64_t heal_after) {
  auto g = std::make_unique<WorkflowGraph>("faulty_wf");
  auto& producer = g->AddPE<IndexProducer>();
  auto& injector = g->AddPE<FaultInjector>(every_n, heal_after);
  auto& sink = g->AddPE<NullSink>();
  EXPECT_TRUE(g->Connect(producer, injector).ok());
  EXPECT_TRUE(g->Connect(injector, sink).ok());
  return g;
}

std::unique_ptr<Mapping> MakeMapping(const std::string& name) {
  if (name == "simple") return std::make_unique<SequentialMapping>();
  if (name == "multi") return std::make_unique<MultiMapping>();
  return std::make_unique<DynamicMapping>();
}

/// Total tuples the NullSink ranks reported (multi logs one line per rank).
uint64_t SinkTotal(const std::vector<std::string>& lines) {
  constexpr std::string_view kPrefix = "NullSink received ";
  uint64_t total = 0;
  for (const std::string& line : lines) {
    if (line.starts_with(kPrefix)) {
      total += std::stoull(line.substr(kPrefix.size()));
    }
  }
  return total;
}

class FaultContainment : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllMappings, FaultContainment,
                         ::testing::Values("simple", "multi", "dynamic"));

// A PE that throws on some tuples must not crash the run: the process
// survives, successes flow through, and the run reports kInternal with the
// exact failed-tuple count.
TEST_P(FaultContainment, ThrowingPeIsIsolatedPerTuple) {
  auto g = FaultyGraph(/*every_n=*/3, /*heal_after=*/0);
  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunOptions options;
  options.input = Value(12);  // values 0..11; 0,3,6,9 fail permanently
  RunResult result = mapping->Execute(*g, options);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("quarantined"), std::string::npos);
  EXPECT_EQ(result.failed_tuples, 4u);
  EXPECT_EQ(result.dlq_depth, 4u);
  EXPECT_EQ(result.retries, 0u);  // no retry policy configured
  ASSERT_FALSE(result.error_samples.empty());
  EXPECT_NE(result.error_samples.front().find("injected fault"),
            std::string::npos);
  // The 8 surviving values reached the sink.
  EXPECT_EQ(SinkTotal(result.output_lines), 8u);
}

// Transient faults (each tuple fails twice, then heals) are fully absorbed
// by max_retries=2: the run succeeds and the retry count matches the
// policy exactly — two retries per tuple, no quarantined items.
TEST_P(FaultContainment, RetryPolicyAbsorbsTransientFaults) {
  auto g = FaultyGraph(/*every_n=*/1, /*heal_after=*/2);
  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunOptions options;
  options.input = Value(5);
  options.max_retries = 2;
  RunResult result = mapping->Execute(*g, options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.failed_tuples, 0u);
  EXPECT_EQ(result.dlq_depth, 0u);
  EXPECT_EQ(result.retries, 10u);  // 2 per tuple, 5 tuples
  EXPECT_EQ(SinkTotal(result.output_lines), 5u);
}

// Permanent faults exhaust the whole retry budget before quarantine:
// retries == failed_tuples * max_retries.
TEST_P(FaultContainment, ExhaustedRetriesMatchPolicy) {
  auto g = FaultyGraph(/*every_n=*/1, /*heal_after=*/0);
  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunOptions options;
  options.input = Value(4);
  options.max_retries = 3;
  RunResult result = mapping->Execute(*g, options);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(result.failed_tuples, 4u);
  EXPECT_EQ(result.retries, 12u);  // 3 retries per permanently failing tuple
  EXPECT_EQ(result.dlq_depth, 4u);
}

// FaultContext accounting: decode failures are DLQ'd but not counted as
// retryable tuple failures, and Finalize leaves non-OK statuses alone.
TEST(FaultContextTest, DecodeFailuresAndStatusPrecedence) {
  RunOptions options;
  FaultContext faults("simple", options);
  faults.RecordDecodeFailure("undecodable work item");
  EXPECT_EQ(faults.failures(), 0u);
  EXPECT_EQ(faults.dlq_items(), 1u);

  RunResult result;
  faults.Finalize(result);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(result.dlq_depth, 1u);

  // A deadline error keeps precedence over the partial-failure downgrade.
  RunResult expired;
  expired.status = Status::DeadlineExceeded("expired");
  faults.Finalize(expired);
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.dlq_depth, 1u);
}

TEST(FaultContextTest, InvokeWithRetriesStopsOnFirstSuccess) {
  RunOptions options;
  options.max_retries = 5;
  FaultContext faults("simple", options);
  int calls = 0;
  bool ok = faults.InvokeWithRetries(
      [&] {
        if (++calls < 3) throw std::runtime_error("flaky");
      },
      "test[pe]");
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(faults.retries(), 2u);
  EXPECT_EQ(faults.failures(), 0u);
}

}  // namespace
}  // namespace laminar::dataflow

namespace laminar::engine {
namespace {

Value FaultySpec(int64_t every_n, const std::string& producer_type = "") {
  Value spec = Value::MakeObject();
  spec["name"] = std::string("faulty_wf");
  Value pes = Value::MakeArray();
  auto add_pe = [&](const std::string& name, const std::string& type,
                    Value params) {
    Value pe = Value::MakeObject();
    pe["name"] = name;
    pe["type"] = type;
    pe["params"] = std::move(params);
    pes.push_back(std::move(pe));
  };
  Value producer_params = Value::MakeObject();
  if (producer_type.empty() || producer_type == "NumberProducer") {
    producer_params["lo"] = static_cast<int64_t>(1);
    producer_params["hi"] = static_cast<int64_t>(1000);
    add_pe("src", "NumberProducer", std::move(producer_params));
  } else {
    add_pe("src", producer_type, std::move(producer_params));
  }
  Value injector_params = Value::MakeObject();
  injector_params["every_n"] = every_n;
  add_pe("faulty", "FaultInjector", std::move(injector_params));
  add_pe("sink", "NullSink", Value::MakeObject());
  spec["pes"] = std::move(pes);
  Value edges = Value::MakeArray();
  auto add_edge = [&](const std::string& from, const std::string& to) {
    Value e = Value::MakeObject();
    e["from"] = from;
    e["to"] = to;
    edges.push_back(std::move(e));
  };
  add_edge("src", "faulty");
  add_edge("faulty", "sink");
  spec["edges"] = std::move(edges);
  return spec;
}

ExecuteRequest DynamicRequest(Value spec, Value input) {
  ExecuteRequest req;
  req.workflow_spec = std::move(spec);
  req.mapping = "dynamic";
  req.run_options.input = std::move(input);
  return req;
}

// The engine's long-lived shared broker must return to its pre-run key and
// queue baselines after every dynamic run: success, partial failure, and
// deadline expiry (whose undrained queues used to leak forever).
TEST(BrokerLeak, DynamicRunsLeaveNoKeysBehind) {
  EngineConfig config;
  config.cold_start_ms = 0;
  ExecutionEngine engine(config);
  const size_t baseline_keys = engine.broker().KeyCount("wf:");
  const size_t baseline_queued = engine.broker().TotalQueued("wf:");

  // Success: IsPrime pipeline, no faults.
  {
    ExecuteRequest req = DynamicRequest(FaultySpec(/*every_n=*/1000000000),
                                        Value(20));
    Result<dataflow::RunResult> result = engine.Execute(req);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(engine.broker().KeyCount("wf:"), baseline_keys);
    EXPECT_EQ(engine.broker().TotalQueued("wf:"), baseline_queued);
  }

  // Partial failure: roughly half the tuples throw; keys still cleaned.
  {
    ExecuteRequest req = DynamicRequest(FaultySpec(/*every_n=*/2), Value(20));
    Result<dataflow::RunResult> result = engine.Execute(req);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_EQ(engine.broker().KeyCount("wf:"), baseline_keys);
    EXPECT_EQ(engine.broker().TotalQueued("wf:"), baseline_queued);
  }

  // Deadline expiry: a CPU-heavy run killed mid-flight leaves undrained
  // queue items — exactly the case the RAII cleanup must cover.
  {
    Value spec = Value::MakeObject();
    spec["name"] = std::string("burn_wf");
    Value pes = Value::MakeArray();
    Value src = Value::MakeObject();
    src["name"] = std::string("src");
    src["type"] = std::string("NumberProducer");
    src["params"] = Value::MakeObject();
    pes.push_back(std::move(src));
    Value burn = Value::MakeObject();
    burn["name"] = std::string("burn");
    burn["type"] = std::string("CpuBurn");
    Value burn_params = Value::MakeObject();
    burn_params["iters"] = static_cast<int64_t>(2'000'000);
    burn["params"] = std::move(burn_params);
    pes.push_back(std::move(burn));
    Value sink = Value::MakeObject();
    sink["name"] = std::string("sink");
    sink["type"] = std::string("NullSink");
    sink["params"] = Value::MakeObject();
    pes.push_back(std::move(sink));
    spec["pes"] = std::move(pes);
    Value edges = Value::MakeArray();
    Value e1 = Value::MakeObject();
    e1["from"] = std::string("src");
    e1["to"] = std::string("burn");
    edges.push_back(std::move(e1));
    Value e2 = Value::MakeObject();
    e2["from"] = std::string("burn");
    e2["to"] = std::string("sink");
    edges.push_back(std::move(e2));
    spec["edges"] = std::move(edges);

    ExecuteRequest req;
    req.workflow_spec = std::move(spec);
    req.mapping = "dynamic";
    req.run_options.input = Value(500);
    req.run_options.deadline_ms = 5.0;
    Result<dataflow::RunResult> result = engine.Execute(req);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(engine.broker().KeyCount("wf:"), baseline_keys);
    EXPECT_EQ(engine.broker().TotalQueued("wf:"), baseline_queued);
  }
}

}  // namespace
}  // namespace laminar::engine

namespace laminar::client {
namespace {

// End-to-end acceptance: a workflow whose PE throws on every other tuple
// completes without crashing the server; the client sees a structured
// kInternal error with the failure summary, the retry/DLQ counters appear
// in GET /metrics, and the engine broker holds no leftover wf:* keys.
TEST(FaultServer, PartialFailureIsStructuredNotFatal) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  InProcessLaminar laminar = ConnectInProcess(config);

  Value body = Value::MakeObject();
  body["spec"] = engine::FaultySpec(/*every_n=*/2);
  body["mapping"] = std::string("dynamic");
  body["input"] = Value(30);
  body["max_retries"] = static_cast<int64_t>(1);
  body["resources"] = Value::MakeArray();

  RunOutcome outcome = laminar.client->RunRaw(std::move(body));
  EXPECT_EQ(outcome.status.code(), StatusCode::kInternal);
  EXPECT_NE(outcome.status.message().find("quarantined"), std::string::npos);
  ASSERT_TRUE(outcome.stats.is_object());
  EXPECT_GT(outcome.stats.GetInt("failedTuples"), 0);
  EXPECT_GT(outcome.stats.GetInt("dlqDepth"), 0);
  // max_retries=1 and permanent faults: one retry per failed tuple.
  EXPECT_EQ(outcome.stats.GetInt("retries"),
            outcome.stats.GetInt("failedTuples"));
  ASSERT_TRUE(outcome.stats.contains("errorSamples"));
  ASSERT_FALSE(outcome.stats.at("errorSamples").as_array().empty());

  Result<std::string> metrics = laminar.client->GetMetrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("laminar_dataflow_tuple_failures_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("laminar_dataflow_dlq_total"), std::string::npos);
  EXPECT_NE(metrics->find("laminar_dataflow_retries_total"),
            std::string::npos);

  // Run-scoped cleanup held across the wire path too.
  EXPECT_EQ(laminar.server->engine().broker().KeyCount("wf:"), 0u);
}

}  // namespace
}  // namespace laminar::client
