#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "registry/repository.hpp"
#include "registry/schema.hpp"

namespace laminar::registry {
namespace {

TableSchema SimpleSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.columns = {
      {"name", ColumnType::kString, /*nullable=*/false},
      {"payload", ColumnType::kClob, true},
      {"score", ColumnType::kDouble, true},
      {"active", ColumnType::kBool, true},
      {"count", ColumnType::kInt, true},
  };
  schema.unique_columns = {"name"};
  return schema;
}

Row MakeRow(const std::string& name) {
  Row row = Value::MakeObject();
  row["name"] = name;
  return row;
}

TEST(Table, InsertAssignsSequentialIds) {
  Table t(SimpleSchema());
  EXPECT_EQ(t.Insert(MakeRow("a")).value(), 1);
  EXPECT_EQ(t.Insert(MakeRow("b")).value(), 2);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Table, GetReturnsStoredRow) {
  Table t(SimpleSchema());
  Row row = MakeRow("a");
  row["count"] = 7;
  int64_t id = t.Insert(std::move(row)).value();
  Result<Row> got = t.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetString("name"), "a");
  EXPECT_EQ(got->GetInt("count"), 7);
  EXPECT_EQ(got->GetInt("id"), id);
  EXPECT_FALSE(t.Get(99).ok());
}

TEST(Table, TypeValidation) {
  Table t(SimpleSchema());
  Row bad = MakeRow("a");
  bad["count"] = "not an int";
  EXPECT_FALSE(t.Insert(std::move(bad)).ok());
  Row unknown = MakeRow("b");
  unknown["bogus_column"] = 1;
  EXPECT_FALSE(t.Insert(std::move(unknown)).ok());
  Row missing = Value::MakeObject();  // name is non-nullable
  EXPECT_FALSE(t.Insert(std::move(missing)).ok());
}

TEST(Table, PrimaryKeyCannotBeSupplied) {
  Table t(SimpleSchema());
  Row row = MakeRow("a");
  row["id"] = 42;
  EXPECT_FALSE(t.Insert(std::move(row)).ok());
}

TEST(Table, VarcharLimitEnforcedButClobUnbounded) {
  // The Laminar 1.0 failure mode (§IV-D): code stored in a String field.
  Table t(SimpleSchema());
  std::string big(10'000, 'x');
  Row clob_row = MakeRow("ok");
  clob_row["payload"] = big;  // Clob column: fine
  EXPECT_TRUE(t.Insert(std::move(clob_row)).ok());
  Row string_row = MakeRow(big);  // String column: VARCHAR(255) overflow
  Result<int64_t> r = t.Insert(std::move(string_row));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("VARCHAR"), std::string::npos);
}

TEST(Table, UniqueConstraint) {
  Table t(SimpleSchema());
  EXPECT_TRUE(t.Insert(MakeRow("a")).ok());
  Result<int64_t> dup = t.Insert(MakeRow("a"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(Table, UpdateMergesAndRevalidates) {
  Table t(SimpleSchema());
  int64_t a = t.Insert(MakeRow("a")).value();
  t.Insert(MakeRow("b")).value();
  Row fields = Value::MakeObject();
  fields["count"] = 5;
  EXPECT_TRUE(t.Update(a, fields).ok());
  EXPECT_EQ(t.Get(a)->GetInt("count"), 5);
  EXPECT_EQ(t.Get(a)->GetString("name"), "a");  // untouched fields survive
  // Updating into a unique collision fails.
  Row rename = Value::MakeObject();
  rename["name"] = "b";
  EXPECT_FALSE(t.Update(a, rename).ok());
  // Update to own value is fine.
  Row same = Value::MakeObject();
  same["name"] = "a";
  EXPECT_TRUE(t.Update(a, same).ok());
}

TEST(Table, UpdateKeepsIndexConsistent) {
  Table t(SimpleSchema());
  int64_t a = t.Insert(MakeRow("old")).value();
  Row rename = Value::MakeObject();
  rename["name"] = "new";
  ASSERT_TRUE(t.Update(a, rename).ok());
  EXPECT_TRUE(t.FindBy("name", Value("old")).empty());
  ASSERT_EQ(t.FindBy("name", Value("new")).size(), 1u);
  // The freed unique value is reusable.
  EXPECT_TRUE(t.Insert(MakeRow("old")).ok());
}

TEST(Table, EraseRemovesRowAndIndex) {
  Table t(SimpleSchema());
  int64_t a = t.Insert(MakeRow("a")).value();
  EXPECT_TRUE(t.Erase(a));
  EXPECT_FALSE(t.Erase(a));
  EXPECT_TRUE(t.FindBy("name", Value("a")).empty());
  EXPECT_TRUE(t.Insert(MakeRow("a")).ok());  // unique value freed
}

TEST(Table, IndexedLookupAvoidsScan) {
  TableSchema schema = SimpleSchema();
  schema.indexed_columns = {"count"};
  Table t(schema);
  for (int i = 0; i < 100; ++i) {
    Row row = MakeRow("r" + std::to_string(i));
    row["count"] = i % 10;
    t.Insert(std::move(row)).value();
  }
  EXPECT_EQ(t.FindBy("count", Value(3)).size(), 10u);
  TableStats stats = t.stats();
  EXPECT_GE(stats.index_lookups, 1u);
  EXPECT_EQ(stats.full_scans, 0u);
  // Unindexed column falls back to a scan.
  t.FindBy("score", Value(1.0));
  EXPECT_EQ(t.stats().full_scans, 1u);
  EXPECT_GE(t.stats().rows_scanned, 100u);
}

TEST(Table, ScanAscendingIdOrder) {
  Table t(SimpleSchema());
  for (int i = 0; i < 5; ++i) t.Insert(MakeRow("r" + std::to_string(i))).value();
  std::vector<Row> all = t.All();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].GetInt("id"), all[i].GetInt("id"));
  }
  std::vector<Row> odd =
      t.Scan([](const Row& r) { return r.GetInt("id") % 2 == 1; });
  EXPECT_EQ(odd.size(), 3u);
}

TEST(Database, ForeignKeysEnforced) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Row wf = Value::MakeObject();
  wf["userId"] = 999;  // no such user
  wf["workflowName"] = "w";
  wf["workflowCode"] = "x";
  EXPECT_FALSE(db.Insert(kWorkflowTable, wf).ok());

  Repository repo(db);
  int64_t uid = repo.CreateUser("u", "p").value();
  wf["userId"] = uid;
  EXPECT_TRUE(db.Insert(kWorkflowTable, wf).ok());
}

TEST(Database, EraseRefusesWhileReferenced) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  int64_t uid = repo.CreateUser("u", "p").value();
  WorkflowRecord wf;
  wf.user_id = uid;
  wf.name = "w";
  wf.code = "code";
  int64_t wid = repo.CreateWorkflow(wf).value();
  Status st = db.Erase(kUserTable, uid);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(repo.RemoveWorkflow(wid).ok());
  EXPECT_TRUE(db.Erase(kUserTable, uid).ok());
}

TEST(Database, DuplicateTableRejected) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  TableSchema dup;
  dup.name = kUserTable;
  EXPECT_FALSE(db.CreateTable(std::move(dup)).ok());
}

TEST(Repository, PeCrudLifecycle) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  PeRecord pe;
  pe.name = "IsPrime";
  pe.code = "class IsPrime: pass";
  pe.description = "checks primes";
  pe.type = "IterativePE";
  int64_t id = repo.CreatePe(pe).value();
  Result<PeRecord> got = repo.GetPe(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->name, "IsPrime");
  EXPECT_EQ(repo.GetPeByName("IsPrime")->id, id);
  Row update = Value::MakeObject();
  update["description"] = "new text";
  ASSERT_TRUE(repo.UpdatePe(id, update).ok());
  EXPECT_EQ(repo.GetPe(id)->description, "new text");
  ASSERT_TRUE(repo.RemovePe(id).ok());
  EXPECT_FALSE(repo.GetPe(id).ok());
}

TEST(Repository, DuplicatePeNamesResolveToNewest) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  PeRecord pe;
  pe.name = "Dup";
  pe.code = "v1";
  repo.CreatePe(pe).value();
  pe.code = "v2";
  int64_t second = repo.CreatePe(pe).value();
  EXPECT_EQ(repo.GetPeByName("Dup")->id, second);
  EXPECT_EQ(repo.GetPeByName("Dup")->code, "v2");
}

TEST(Repository, WorkflowPeLinksAndCascade) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  int64_t uid = repo.CreateUser("u", "p").value();
  WorkflowRecord wf;
  wf.user_id = uid;
  wf.name = "wf";
  wf.code = "c";
  int64_t wid = repo.CreateWorkflow(wf).value();
  PeRecord pe;
  pe.name = "P1";
  pe.code = "x";
  int64_t p1 = repo.CreatePe(pe).value();
  pe.name = "P2";
  int64_t p2 = repo.CreatePe(pe).value();
  ASSERT_TRUE(repo.LinkPe(wid, p1).ok());
  ASSERT_TRUE(repo.LinkPe(wid, p2).ok());
  EXPECT_EQ(repo.PesOfWorkflow(wid).size(), 2u);
  EXPECT_EQ(repo.WorkflowsUsingPe(p1), (std::vector<int64_t>{wid}));
  // Removing a linked PE drops its link rows (cascade).
  ASSERT_TRUE(repo.RemovePe(p1).ok());
  EXPECT_EQ(repo.PesOfWorkflow(wid).size(), 1u);
  // Removing the workflow drops remaining links.
  ASSERT_TRUE(repo.RemoveWorkflow(wid).ok());
  EXPECT_TRUE(repo.WorkflowsUsingPe(p2).empty());
}

TEST(Repository, ExecutionLifecycle) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  int64_t uid = repo.CreateUser("u", "p").value();
  WorkflowRecord wf;
  wf.user_id = uid;
  wf.name = "wf";
  wf.code = "c";
  int64_t wid = repo.CreateWorkflow(wf).value();
  int64_t eid = repo.CreateExecution(wid, uid, "multi").value();
  Result<ExecutionRecord> running = repo.GetExecution(eid);
  ASSERT_TRUE(running.ok());
  EXPECT_EQ(running->status, "running");
  EXPECT_EQ(running->mapping, "multi");
  ASSERT_TRUE(repo.FinishExecution(eid, "succeeded", "out\n", 1).ok());
  EXPECT_EQ(repo.GetExecution(eid)->status, "succeeded");
  EXPECT_EQ(repo.ExecutionsOfWorkflow(wid).size(), 1u);
  // The response row was written and linked.
  EXPECT_EQ(db.GetTable(kResponseTable)->FindBy("executionId", Value(eid)).size(),
            1u);
}

TEST(Repository, RemoveAllKeepsUsers) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  Repository repo(db);
  repo.CreateUser("keep", "p").value();
  PeRecord pe;
  pe.name = "P";
  pe.code = "x";
  repo.CreatePe(pe).value();
  ASSERT_TRUE(repo.RemoveAll().ok());
  EXPECT_TRUE(repo.AllPes().empty());
  EXPECT_TRUE(repo.AllWorkflows().empty());
  EXPECT_TRUE(repo.GetUserByName("keep").ok());
}

TEST(Database, PersistenceRoundTrip) {
  namespace fs = std::filesystem;
  std::string path = (fs::temp_directory_path() / "laminar_reg_test.json").string();
  {
    Database db;
    ASSERT_TRUE(CreateLaminarSchema(db).ok());
    Repository repo(db);
    int64_t uid = repo.CreateUser("saved", "pw").value();
    PeRecord pe;
    pe.name = "Persisted";
    pe.code = std::string(5000, 'y');  // CLOB content survives
    repo.CreatePe(pe).value();
    WorkflowRecord wf;
    wf.user_id = uid;
    wf.name = "wf";
    wf.code = "c";
    repo.CreateWorkflow(wf).value();
    ASSERT_TRUE(db.SaveToFile(path).ok());
  }
  {
    Database db;
    ASSERT_TRUE(CreateLaminarSchema(db).ok());
    ASSERT_TRUE(db.LoadFromFile(path).ok());
    Repository repo(db);
    EXPECT_TRUE(repo.GetUserByName("saved").ok());
    Result<PeRecord> pe = repo.GetPeByName("Persisted");
    ASSERT_TRUE(pe.ok());
    EXPECT_EQ(pe->code.size(), 5000u);
    // Ids continue past the loaded maximum.
    PeRecord fresh;
    fresh.name = "New";
    fresh.code = "z";
    EXPECT_GT(repo.CreatePe(fresh).value(), pe->id);
    // Indexes were rebuilt on load.
    EXPECT_EQ(db.GetTable(kPeTable)->stats().full_scans, 0u);
  }
  std::remove(path.c_str());
}

TEST(Database, LoadMissingFileFails) {
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  EXPECT_FALSE(db.LoadFromFile("/nonexistent/path.json").ok());
}

TEST(LegacySchema, ModelsLaminar10Limits) {
  Database db;
  ASSERT_TRUE(CreateLegacySchema(db).ok());
  Table* pes = db.GetTable("v1_processing_element");
  ASSERT_NE(pes, nullptr);
  Row small = Value::MakeObject();
  small["peName"] = "Tiny";
  small["peCode"] = "def f(): pass";
  EXPECT_TRUE(pes->Insert(std::move(small)).ok());
  Row big = Value::MakeObject();
  big["peName"] = "Big";
  big["peCode"] = std::string(1000, 'c');  // does not fit in String field
  EXPECT_FALSE(pes->Insert(std::move(big)).ok());
  // Name lookups scan (no index in the 1.0 schema).
  pes->FindBy("peName", Value("Tiny"));
  EXPECT_GE(pes->stats().full_scans, 1u);
}

}  // namespace
}  // namespace laminar::registry
