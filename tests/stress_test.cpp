// Concurrency stress: many clients doing mixed registry mutations, searches
// and executions against one server simultaneously. Guards the server's
// locking discipline (registry mutations serialized; execution outside the
// lock; per-connection multiplexing).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"

namespace laminar::client {
namespace {

TEST(ServerStress, ParallelClientsMixedWorkload) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  config.engine.max_concurrent = 4;
  InProcessLaminar laminar = ConnectInProcess(config);

  // Seed one workflow everyone can run.
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  int64_t wf_id = wf->id;

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 12;
  std::vector<ExtraClient> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(AttachClient(*laminar.server));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LaminarClient& cli = *clients[static_cast<size_t>(c)].client;
      for (int op = 0; op < kOpsPerClient; ++op) {
        switch ((c + op) % 4) {
          case 0: {
            // Register a unique PE.
            std::string name =
                "StressPe" + std::to_string(c) + "_" + std::to_string(op);
            std::string code = "class " + name +
                               "(IterativePE):\n"
                               "    def _process(self, x):\n"
                               "        return x + " +
                               std::to_string(c * 100 + op) + "\n";
            if (!cli.RegisterPe(code, name).ok()) failures.fetch_add(1);
            break;
          }
          case 1: {
            if (!cli.SearchRegistrySemantic("prime numbers", "pe", 3).ok()) {
              failures.fetch_add(1);
            }
            break;
          }
          case 2: {
            RunOutcome outcome = cli.Run(wf_id, Value(3));
            if (!outcome.status.ok()) failures.fetch_add(1);
            break;
          }
          default: {
            if (!cli.GetRegistry().ok()) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Registry ended consistent: all unique PEs present exactly once.
  auto registry = laminar.client->GetRegistry();
  ASSERT_TRUE(registry.ok());
  size_t stress_pes = 0;
  for (const PeInfo& pe : registry->first) {
    if (pe.name.rfind("StressPe", 0) == 0) ++stress_pes;
  }
  // Exact count: ops where (c+op)%4==0.
  size_t expected = 0;
  for (int c = 0; c < kClients; ++c) {
    for (int op = 0; op < kOpsPerClient; ++op) {
      if ((c + op) % 4 == 0) ++expected;
    }
  }
  EXPECT_EQ(stress_pes, expected);
}

TEST(ServerStress, ConcurrentStreamingRuns) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 10;
  config.engine.max_concurrent = 3;
  InProcessLaminar laminar = ConnectInProcess(config);
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());

  // Fire several runs over ONE multiplexed connection simultaneously.
  std::atomic<int> ok_runs{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      RunOutcome outcome = laminar.client->Run(wf->id, Value(10));
      if (outcome.status.ok() && !outcome.lines.empty()) ok_runs.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_runs.load(), 6);
}

TEST(ServerStress, InterleavedRemoveAndSearch) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  InProcessLaminar laminar = ConnectInProcess(config);
  // Register 40 PEs.
  std::vector<int64_t> ids;
  for (int i = 0; i < 40; ++i) {
    std::string name = "Churn" + std::to_string(i);
    Result<PeInfo> pe = laminar.client->RegisterPe(
        "class " + name + "(IterativePE):\n    def _process(self, x):\n"
        "        return x\n",
        name);
    ASSERT_TRUE(pe.ok());
    ids.push_back(pe->id);
  }
  ExtraClient remover = AttachClient(*laminar.server);
  std::thread removal([&] {
    for (int64_t id : ids) {
      (void)remover.client->RemovePe(id);
    }
  });
  // Searches during removal must never fail (results may shrink).
  for (int i = 0; i < 30; ++i) {
    auto hits = laminar.client->SearchRegistryLiteral("Churn", "pe", 10);
    EXPECT_TRUE(hits.ok());
  }
  removal.join();
  auto registry = laminar.client->GetRegistry();
  ASSERT_TRUE(registry.ok());
  for (const PeInfo& pe : registry->first) {
    EXPECT_EQ(pe.name.rfind("Churn", 0), std::string::npos);
  }
}

// Shared-lock read path (ISSUE 2): many reader threads hammer the search
// endpoints (which now hold mu_ shared and mutate only the internally
// locked query-embedding cache) while one writer churns registrations.
// Run with -DLAMINAR_SANITIZE=thread to have TSan check the discipline:
// concurrent shared-lock readers must not race with each other, and the
// exclusive writer must not race with any reader.
TEST(ServerStress, ConcurrentSearchReadersWithWriterChurn) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  InProcessLaminar laminar = ConnectInProcess(config);

  // Seed a searchable corpus.
  for (int i = 0; i < 12; ++i) {
    std::string name = "SeedPe" + std::to_string(i);
    Result<PeInfo> pe = laminar.client->RegisterPe(
        "class " + name + "(IterativePE):\n    def _process(self, x):\n"
        "        return x * " + std::to_string(i + 2) + "\n",
        name);
    ASSERT_TRUE(pe.ok());
  }

  constexpr int kReaders = 4;
  constexpr int kOpsPerReader = 25;
  std::vector<ExtraClient> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(AttachClient(*laminar.server));
  }
  ExtraClient writer = AttachClient(*laminar.server);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      LaminarClient& cli = *readers[static_cast<size_t>(r)].client;
      // A small rotating query set, so the embedding cache sees concurrent
      // hits and misses for the same keys.
      const char* queries[] = {"multiply numbers", "seed processing",
                               "multiply numbers"};
      for (int op = 0; op < kOpsPerReader; ++op) {
        switch (op % 3) {
          case 0:
            if (!cli.SearchRegistrySemantic(queries[op % 3], "pe", 3).ok()) {
              failures.fetch_add(1);
            }
            break;
          case 1:
            if (!cli.SearchRegistryLiteral("SeedPe", "pe", 5).ok()) {
              failures.fetch_add(1);
            }
            break;
          default:
            if (!cli.GetRegistry().ok()) failures.fetch_add(1);
            break;
        }
      }
    });
  }
  std::thread churn([&] {
    for (int i = 0; i < 15; ++i) {
      std::string name = "ChurnPe" + std::to_string(i);
      Result<PeInfo> pe = writer.client->RegisterPe(
          "class " + name + "(IterativePE):\n    def _process(self, x):\n"
          "        return x\n",
          name);
      if (!pe.ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (!writer.client->RemovePe(pe->id).ok()) failures.fetch_add(1);
    }
  });
  for (auto& t : threads) t.join();
  churn.join();
  EXPECT_EQ(failures.load(), 0);

  // The churned PEs are gone; the seeds all survived.
  auto registry = laminar.client->GetRegistry();
  ASSERT_TRUE(registry.ok());
  size_t seeds = 0;
  for (const PeInfo& pe : registry->first) {
    EXPECT_EQ(pe.name.rfind("ChurnPe", 0), std::string::npos);
    if (pe.name.rfind("SeedPe", 0) == 0) ++seeds;
  }
  EXPECT_EQ(seeds, 12u);
}

}  // namespace
}  // namespace laminar::client
