// Tests for composite-workflow merging (WorkflowGraph::Merge) and the
// execution-history surface (/workflows/executions + CLI `history`).
#include <gtest/gtest.h>

#include <sstream>

#include "client/cli.hpp"
#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"

namespace laminar {
namespace {

using namespace dataflow;

/// Reusable sub-pipeline: normalize -> detect (no producer, no sink).
WorkflowGraph DetectionStage() {
  WorkflowGraph sub("detection_stage");
  auto& normalize = sub.AddPE<NormalizeData>();
  auto& detect = sub.AddPE<AnomalyDetector>(3.0, 32);
  EXPECT_TRUE(sub.Connect(normalize, detect, Grouping::AllToOne()).ok());
  return sub;
}

TEST(CompositeGraph, MergeSplicesSubgraph) {
  WorkflowGraph g("composite_wf");
  size_t sensor = g.Add(std::make_unique<SensorProducer>(5));
  size_t offset = g.Merge(DetectionStage());
  size_t alert = g.Add(std::make_unique<Alerter>());
  // Wire the host graph to the merged stage's boundary PEs.
  ASSERT_TRUE(g.Connect(sensor, kDefaultOutput, offset + 0, kDefaultInput).ok());
  ASSERT_TRUE(
      g.Connect(offset + 1, kDefaultOutput, alert, kDefaultInput).ok());
  EXPECT_EQ(g.NodeCount(), 4u);
  EXPECT_EQ(g.Edges().size(), 3u);  // 1 internal + 2 boundary
  ASSERT_TRUE(g.Validate().ok());

  SequentialMapping mapping;
  RunOptions options;
  options.input = Value(300);
  RunResult result = mapping.Execute(g, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.output_lines.empty());  // alerts fired
  for (const std::string& line : result.output_lines) {
    EXPECT_EQ(line.find("ALERT"), 0u);
  }
}

TEST(CompositeGraph, MergeOffsetsAreStable) {
  WorkflowGraph g;
  g.Add(std::make_unique<NumberProducer>());
  size_t first = g.Merge(DetectionStage());
  size_t second = g.Merge(DetectionStage());
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 3u);
  EXPECT_EQ(g.NodeCount(), 5u);
  // Internal edges of both copies survived with remapped indexes.
  EXPECT_EQ(g.Edges().size(), 2u);
  EXPECT_EQ(g.Edges()[0].from_pe, 1u);
  EXPECT_EQ(g.Edges()[1].from_pe, 3u);
}

TEST(CompositeGraph, MergedSourceIsEmptied) {
  WorkflowGraph host;
  WorkflowGraph sub;
  sub.AddPE<IsPrime>();
  host.Merge(std::move(sub));
  EXPECT_EQ(host.NodeCount(), 1u);
}

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() {
    server::ServerConfig config;
    config.engine.cold_start_ms = 0;
    laminar_ = client::ConnectInProcess(config);
  }
  client::InProcessLaminar laminar_;
};

TEST_F(HistoryTest, ExecutionsRecordedPerRun) {
  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Result<client::WorkflowInfo> wf = laminar_.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE(laminar_.client->Run(wf->id, Value(3)).status.ok());
  ASSERT_TRUE(
      laminar_.client->RunMultiprocess(wf->id, Value(3), 5).status.ok());

  Result<Value> history = laminar_.client->GetExecutions(wf->id);
  ASSERT_TRUE(history.ok());
  const Value::Array& executions = history->at("executions").as_array();
  ASSERT_EQ(executions.size(), 2u);
  EXPECT_EQ(executions[0].GetString("mapping"), "simple");
  EXPECT_EQ(executions[1].GetString("mapping"), "multi");
  for (const Value& e : executions) {
    EXPECT_EQ(e.GetString("status"), "succeeded");
    EXPECT_GE(e.GetInt("finishedAtMs"), e.GetInt("startedAtMs"));
  }
}

TEST_F(HistoryTest, FailedRunRecordedAsFailed) {
  // Register a workflow whose stored spec is valid JSON but not a runnable
  // graph (unknown PE type), then run it by id.
  Value spec = Value::MakeObject();
  spec["name"] = "broken";
  Value pes = Value::MakeArray();
  Value pe = Value::MakeObject();
  pe["name"] = "Ghost";
  pe["type"] = "GhostType";
  pes.push_back(std::move(pe));
  spec["pes"] = std::move(pes);
  spec["edges"] = Value::MakeArray();
  Result<client::WorkflowInfo> wf = laminar_.client->RegisterWorkflow(
      "broken_wf", spec, {}, "graph = None");
  ASSERT_TRUE(wf.ok());
  client::RunOutcome outcome = laminar_.client->Run(wf->id, Value(1));
  EXPECT_FALSE(outcome.status.ok());
  Result<Value> history = laminar_.client->GetExecutions(wf->id);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->at("executions").size(), 1u);
  EXPECT_EQ(history->at("executions").as_array()[0].GetString("status"),
            "failed");
}

TEST_F(HistoryTest, CliHistoryCommand) {
  client::LaminarCli cli(*laminar_.client);
  std::ostringstream setup;
  cli.ExecuteLine("register_workflow isprime_wf.py", setup);
  cli.ExecuteLine("run isprime_wf -i 3", setup);
  Result<client::WorkflowInfo> wf =
      laminar_.client->GetWorkflowByName("isprime_wf");
  ASSERT_TRUE(wf.ok());
  std::ostringstream out;
  cli.ExecuteLine("history " + std::to_string(wf->id), out);
  EXPECT_NE(out.str().find("simple"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("succeeded"), std::string::npos);
}

}  // namespace
}  // namespace laminar
