#include <algorithm>
#include <functional>
#include <gtest/gtest.h>

#include "pycode/parser.hpp"
#include "spt/spt.hpp"

namespace laminar::spt {
namespace {

SptNodePtr Build(const std::string& source) {
  Result<SptNodePtr> spt = SptFromSource(source);
  EXPECT_TRUE(spt.ok()) << spt.status().ToString();
  return spt.ok() ? std::move(spt.value()) : nullptr;
}

/// Finds the first descendant whose label equals `label`.
const SptNode* FindLabel(const SptNode& node, const std::string& label) {
  if (node.Label() == label) return &node;
  for (const SptElem& e : node.elems) {
    if (e.child) {
      if (const SptNode* found = FindLabel(*e.child, label)) return found;
    }
  }
  return nullptr;
}

TEST(Spt, LabelOfComparison) {
  // `x > 1` -> node label "#>#" (Aroma's canonical example).
  SptNodePtr spt = Build("x > 1\n");
  ASSERT_NE(spt, nullptr);
  EXPECT_NE(FindLabel(*spt, "#>#"), nullptr) << ToDebugString(*spt);
}

TEST(Spt, LabelOfIfStatement) {
  SptNodePtr spt = Build("if x > 1:\n    pass\n");
  ASSERT_NE(spt, nullptr);
  // if_stmt children: 'if' keyword, condition subtree, ':', suite subtree.
  EXPECT_NE(FindLabel(*spt, "if#:#"), nullptr) << ToDebugString(*spt);
}

TEST(Spt, KeywordsKeptVerbatimIdentifiersAbstracted) {
  SptNodePtr spt = Build("return value\n");
  ASSERT_NE(spt, nullptr);
  EXPECT_NE(FindLabel(*spt, "return#"), nullptr) << ToDebugString(*spt);
}

TEST(Spt, StructureTokensDropped) {
  SptNodePtr spt = Build("x = 1\ny = 2\n");
  ASSERT_NE(spt, nullptr);
  std::string debug = ToDebugString(*spt);
  EXPECT_EQ(debug.find("<NL>"), std::string::npos);
  EXPECT_EQ(debug.find("NEWLINE"), std::string::npos);
}

TEST(Spt, RenamedSnippetsHaveIdenticalLabels) {
  // Identical structure, different identifiers -> same SPT shape.
  SptNodePtr a = Build("for i in range(2, n):\n    if n % i == 0:\n        return None\n");
  SptNodePtr b = Build("for div in range(2, num):\n    if num % div == 0:\n        return None\n");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Compare the label multisets by rendering structure with identifiers
  // replaced by '#': labels only contain keywords + '#'.
  std::function<void(const SptNode&, std::vector<std::string>&)> collect =
      [&](const SptNode& n, std::vector<std::string>& out) {
        out.push_back(n.Label());
        for (const SptElem& e : n.elems) {
          if (e.child) collect(*e.child, out);
        }
      };
  std::vector<std::string> la, lb;
  collect(*a, la);
  collect(*b, lb);
  EXPECT_EQ(la, lb);
}

TEST(Spt, TreeSizeAndLines) {
  SptNodePtr spt = Build(
      "def f(x):\n"
      "    y = x + 1\n"
      "    return y\n");
  ASSERT_NE(spt, nullptr);
  EXPECT_GT(spt->TreeSize(), 3u);
  std::vector<int> lines;
  spt->CollectLines(lines);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(*std::min_element(lines.begin(), lines.end()), 1);
  EXPECT_EQ(*std::max_element(lines.begin(), lines.end()), 3);
}

TEST(Spt, SingleElementChainsCollapsed) {
  SptNodePtr spt = Build("x\n");
  ASSERT_NE(spt, nullptr);
  // The whole module is one token element, not a chain of unary wrappers.
  ASSERT_EQ(spt->elems.size(), 1u);
  EXPECT_TRUE(spt->elems[0].is_token);
  EXPECT_EQ(spt->elems[0].text, "x");
}

TEST(Spt, PartialSnippetStillBuilds) {
  Result<SptNodePtr> spt = SptFromSource(
      "class P(IterativePE):\n"
      "    def _process(self, data):\n"
      "        result = 0\n"
      "        for\n");  // truncated mid-keyword
  ASSERT_TRUE(spt.ok());
  EXPECT_GT(spt.value()->TreeSize(), 4u);
}

TEST(Spt, EmptySnippetFails) {
  EXPECT_FALSE(SptFromSource("").ok());
}

TEST(Spt, OperatorsCountAsKeywords) {
  SptNodePtr spt = Build("total += price * qty\n");
  ASSERT_NE(spt, nullptr);
  EXPECT_NE(FindLabel(*spt, "#+=#"), nullptr) << ToDebugString(*spt);
  EXPECT_NE(FindLabel(*spt, "#*#"), nullptr) << ToDebugString(*spt);
}

}  // namespace
}  // namespace laminar::spt
