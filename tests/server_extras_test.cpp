// Tests for the server's operational endpoints: /stats, /registry/save,
// /registry/load, plus error-path behaviour of the protocol layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"

namespace laminar::client {
namespace {

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

TEST(ServerExtras, StatsReflectActivity) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = laminar.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  (void)laminar.client->RunDynamic(wf->id, Value(10));

  Result<Value> stats = laminar.client->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->GetInt("pes"), 3);
  EXPECT_EQ(stats->GetInt("workflows"), 1);
  // The dynamic run went through the engine's broker.
  EXPECT_GT(stats->at("broker").GetInt("pushes"), 0);
  EXPECT_GT(stats->at("engine").GetInt("warmInstances"), 0);
}

TEST(ServerExtras, SaveAndLoadRoundTrip) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "laminar_server_snapshot.json").string();

  {
    InProcessLaminar laminar = ConnectInProcess(FastServer());
    const DemoWorkflow* demo = FindDemoWorkflow("anomaly_wf");
    ASSERT_TRUE(laminar.client
                    ->RegisterWorkflow(demo->name, demo->spec, demo->pes,
                                       demo->code)
                    .ok());
    ASSERT_TRUE(laminar.client->SaveRegistry(path).ok());
  }
  {
    InProcessLaminar laminar = ConnectInProcess(FastServer());
    ASSERT_TRUE(laminar.client->LoadRegistry(path).ok());
    // Registry content restored...
    Result<WorkflowInfo> wf = laminar.client->GetWorkflowByName("anomaly_wf");
    ASSERT_TRUE(wf.ok());
    // ...search reindexed...
    auto hits = laminar.client->SearchRegistrySemantic(
        "a pe that is able to detect anomalies", "pe", 3);
    ASSERT_TRUE(hits.ok());
    ASSERT_FALSE(hits->empty());
    EXPECT_NE(hits->front().name.find("Anomaly"), std::string::npos);
    // ...and the restored workflow still runs.
    RunOutcome outcome = laminar.client->Run(wf->id, Value(50));
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
  std::remove(path.c_str());
}

TEST(ServerExtras, SaveRequiresPath) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  EXPECT_FALSE(laminar.client->SaveRegistry("").ok());
}

TEST(ServerExtras, LoadMissingFileFails) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  Status st = laminar.client->LoadRegistry("/definitely/not/here.json");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(ServerExtras, UnknownEndpointIs404) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  net::HttpRequest req;
  req.path = "/no/such/endpoint";
  auto resp = laminar.client_side->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 404);
}

TEST(ServerExtras, MalformedJsonBodyIs400) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  net::HttpRequest req;
  req.path = "/pes/get";
  req.body = "{not json";
  auto resp = laminar.client_side->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 400);
}

TEST(ServerExtras, HealthEndpoint) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  net::HttpRequest req;
  req.path = "/health";
  auto resp = laminar.client_side->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 200);
  EXPECT_NE(resp->second.find("ok"), std::string::npos);
}

TEST(ServerExtras, ExecuteRejectsGarbageResourcesField) {
  InProcessLaminar laminar = ConnectInProcess(FastServer());
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  net::HttpRequest req;
  req.path = "/execute";
  Value body = Value::MakeObject();
  body["spec"] = demo->spec;
  body["mapping"] = "simple";
  body["input"] = 2;
  body["resources"] = "not an array";  // tolerated: treated as empty
  req.body = body.ToJson();
  auto resp = laminar.client_side->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->first, 200);
}

}  // namespace
}  // namespace laminar::client
