#include <set>
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"

namespace laminar::dataflow {
namespace {

std::unique_ptr<WorkflowGraph> IsPrimeGraph(uint64_t seed = 42) {
  auto g = std::make_unique<WorkflowGraph>("isprime_wf");
  auto& producer = g->AddPE<NumberProducer>(seed);
  auto& isprime = g->AddPE<IsPrime>();
  auto& printer = g->AddPE<PrintPrime>();
  EXPECT_TRUE(g->Connect(producer, isprime).ok());
  EXPECT_TRUE(g->Connect(isprime, printer).ok());
  return g;
}

std::unique_ptr<WorkflowGraph> WordCountGraph() {
  auto g = std::make_unique<WorkflowGraph>("wordcount_wf");
  auto& lines = g->AddPE<LineProducer>(std::vector<std::string>{
      "the quick brown fox", "the lazy dog", "the fox again"});
  auto& tok = g->AddPE<Tokenizer>();
  auto& counter = g->AddPE<WordCounter>();
  auto& printer = g->AddPE<CountPrinter>();
  EXPECT_TRUE(g->Connect(lines, tok).ok());
  EXPECT_TRUE(g->Connect(tok, counter, Grouping::GroupBy("word")).ok());
  EXPECT_TRUE(g->Connect(counter, printer, Grouping::AllToOne()).ok());
  return g;
}

std::unique_ptr<Mapping> MakeMapping(const std::string& name) {
  if (name == "simple") return std::make_unique<SequentialMapping>();
  if (name == "multi") return std::make_unique<MultiMapping>();
  return std::make_unique<DynamicMapping>();
}

std::multiset<std::string> AsMultiset(const std::vector<std::string>& lines) {
  return {lines.begin(), lines.end()};
}

// ---- Sequential reference behaviour ----

TEST(SequentialMapping, IsPrimeOutputsOnlyPrimes) {
  auto g = IsPrimeGraph();
  SequentialMapping mapping;
  RunOptions options;
  options.input = Value(50);
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.output_lines.empty());
  for (const std::string& line : result.output_lines) {
    EXPECT_NE(line.find("is prime"), std::string::npos);
  }
  EXPECT_GE(result.tuples_processed, 50u);
}

TEST(SequentialMapping, ArrayInputDrivesPerElement) {
  WorkflowGraph g;
  auto& lines = g.AddPE<LineProducer>(std::vector<std::string>{"a b", "c"});
  auto& tok = g.AddPE<Tokenizer>();
  auto& sink = g.AddPE<NullSink>();
  ASSERT_TRUE(g.Connect(lines, tok).ok());
  ASSERT_TRUE(g.Connect(tok, sink).ok());
  SequentialMapping mapping;
  RunOptions options;
  options.input = Value(Value::Array{Value(0), Value(1)});
  RunResult result = mapping.Execute(g, options);
  ASSERT_TRUE(result.status.ok());
  // 2 producer iterations -> "a b" + "c" -> 3 words.
  ASSERT_EQ(result.output_lines.size(), 1u);
  EXPECT_EQ(result.output_lines[0], "NullSink received 3 tuples");
}

TEST(SequentialMapping, InvalidGraphFails) {
  WorkflowGraph g;
  SequentialMapping mapping;
  RunResult result = mapping.Execute(g, RunOptions{});
  EXPECT_FALSE(result.status.ok());
}

TEST(SequentialMapping, WordCountExactCounts) {
  auto g = WordCountGraph();
  SequentialMapping mapping;
  RunOptions options;
  options.input = Value(3);  // all three lines, once each
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  ASSERT_FALSE(result.output_lines.empty());
  EXPECT_EQ(result.output_lines[0], "the: 3");  // most frequent word first
  std::multiset<std::string> lines = AsMultiset(result.output_lines);
  EXPECT_TRUE(lines.contains("fox: 2"));
  EXPECT_TRUE(lines.contains("dog: 1"));
}

// ---- Multi mapping specifics ----

TEST(MultiMapping, PartitionMatchesPaperExample) {
  // Fig. 5b: 9 processes over NumberProducer/IsPrime/PrintPrime ->
  // {producer: range(0,1), isprime: range(1,5), printer: range(5,9)}.
  auto g = IsPrimeGraph();
  auto partition = PartitionRanks(*g, 9);
  EXPECT_EQ(partition[0], std::make_pair(0, 1));
  EXPECT_EQ(partition[1], std::make_pair(1, 5));
  EXPECT_EQ(partition[2], std::make_pair(5, 9));
}

TEST(MultiMapping, PartitionRaisesTooSmallProcessCount) {
  auto g = IsPrimeGraph();
  auto partition = PartitionRanks(*g, 1);  // infeasible, min is 3
  int total = 0;
  for (auto [first, last] : partition) {
    EXPECT_LT(first, last);
    total = std::max(total, last);
  }
  EXPECT_EQ(total, 3);
}

TEST(MultiMapping, VerbosePrintsPartitionAndRanks) {
  auto g = IsPrimeGraph();
  MultiMapping mapping;
  RunOptions options;
  options.input = Value(10);
  options.num_processes = 9;
  options.verbose = true;
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  bool partition_line = false;
  int rank_lines = 0;
  for (const std::string& line : result.output_lines) {
    if (line.find("Partition: {'NumberProducer': range(0, 1)") == 0) {
      partition_line = true;
    }
    if (line.find("): Processed ") != std::string::npos) ++rank_lines;
  }
  EXPECT_TRUE(partition_line);
  EXPECT_EQ(rank_lines, 9);
  EXPECT_EQ(result.partition.at("IsPrime"), std::make_pair(1, 5));
}

TEST(MultiMapping, GroupByKeepsKeysTogether) {
  auto g = WordCountGraph();
  MultiMapping mapping;
  RunOptions options;
  options.input = Value(3);
  options.num_processes = 8;
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  // Counts must be exact despite 'the' tuples flowing through many ranks:
  // group_by('word') pins each word to one WordCounter rank.
  std::multiset<std::string> lines = AsMultiset(result.output_lines);
  EXPECT_TRUE(lines.contains("the: 3")) << result.output_lines.size();
  EXPECT_TRUE(lines.contains("fox: 2"));
}

TEST(MultiMapping, OneToAllBroadcasts) {
  WorkflowGraph g;
  auto& producer = g.AddPE<NumberProducer>(1);
  auto& sink = g.AddPE<NullSink>();
  ASSERT_TRUE(g.Connect(g.IndexOf(producer), kDefaultOutput, g.IndexOf(sink),
                        kDefaultInput, Grouping::OneToAll())
                  .ok());
  MultiMapping mapping;
  RunOptions options;
  options.input = Value(5);
  options.num_processes = 4;  // producer 1 rank + sink 3 ranks
  RunResult result = mapping.Execute(g, options);
  ASSERT_TRUE(result.status.ok());
  // Every sink rank logs its own count; totals must be 5 per rank.
  int total = 0;
  for (const std::string& line : result.output_lines) {
    size_t pos = line.find("received ");
    ASSERT_NE(pos, std::string::npos);
    total += std::stoi(line.substr(pos + 9));
  }
  EXPECT_EQ(total, 15);  // 5 tuples x 3 ranks
}

// ---- Dynamic mapping specifics ----

TEST(DynamicMapping, AutoscalesUnderLoad) {
  WorkflowGraph g;
  auto& producer = g.AddPE<NumberProducer>(3);
  auto& burn = g.AddPE<CpuBurn>(3'000'000);
  auto& sink = g.AddPE<NullSink>();
  ASSERT_TRUE(g.Connect(producer, burn).ok());
  ASSERT_TRUE(g.Connect(burn, sink).ok());
  DynamicMapping mapping;
  RunOptions options;
  options.input = Value(64);
  options.initial_workers = 1;
  options.max_workers = 6;
  options.autoscale = true;
  options.autoscale_queue_per_worker = 2;
  RunResult result = mapping.Execute(g, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.peak_workers, 1);
}

TEST(DynamicMapping, NoAutoscaleKeepsPoolFixed) {
  auto g = IsPrimeGraph();
  DynamicMapping mapping;
  RunOptions options;
  options.input = Value(20);
  options.initial_workers = 2;
  options.autoscale = false;
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.peak_workers, 2);
}

TEST(DynamicMapping, SharedBrokerAccumulatesStats) {
  broker::Broker shared;
  auto g = IsPrimeGraph();
  DynamicMapping mapping(&shared);
  RunOptions options;
  options.input = Value(10);
  RunResult result = mapping.Execute(*g, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(shared.stats().pushes, 0u);
  EXPECT_GT(shared.stats().pops, 0u);
}

// ---- Equivalence property: every mapping computes the same answer ----

class MappingEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(MappingEquivalence, IsPrimeSameOutputMultiset) {
  SequentialMapping reference;
  RunOptions options;
  options.input = Value(40);
  options.num_processes = 7;
  RunResult expected = reference.Execute(*IsPrimeGraph(), options);
  ASSERT_TRUE(expected.status.ok());

  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunResult actual = mapping->Execute(*IsPrimeGraph(), options);
  ASSERT_TRUE(actual.status.ok()) << actual.status.ToString();
  EXPECT_EQ(AsMultiset(actual.output_lines), AsMultiset(expected.output_lines));
}

TEST_P(MappingEquivalence, WordCountSameOutputMultiset) {
  SequentialMapping reference;
  RunOptions options;
  options.input = Value(6);
  options.num_processes = 8;
  RunResult expected = reference.Execute(*WordCountGraph(), options);
  ASSERT_TRUE(expected.status.ok());

  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunResult actual = mapping->Execute(*WordCountGraph(), options);
  ASSERT_TRUE(actual.status.ok()) << actual.status.ToString();
  EXPECT_EQ(AsMultiset(actual.output_lines), AsMultiset(expected.output_lines));
}

TEST_P(MappingEquivalence, AggregationMatches) {
  auto make_graph = [] {
    auto g = std::make_unique<WorkflowGraph>("agg");
    auto& sensor = g->AddPE<SensorProducer>(11);
    auto& agg = g->AddPE<AggregateData>("temperature");
    auto& sink = g->AddPE<NullSink>();
    EXPECT_TRUE(g->Connect(sensor, agg, Grouping::AllToOne()).ok());
    EXPECT_TRUE(g->Connect(agg, sink).ok());
    return g;
  };
  RunOptions options;
  options.input = Value(30);
  options.num_processes = 6;
  SequentialMapping reference;
  RunResult expected = reference.Execute(*make_graph(), options);
  std::unique_ptr<Mapping> mapping = MakeMapping(GetParam());
  RunResult actual = mapping->Execute(*make_graph(), options);
  ASSERT_TRUE(actual.status.ok());
  EXPECT_EQ(AsMultiset(actual.output_lines), AsMultiset(expected.output_lines));
}

INSTANTIATE_TEST_SUITE_P(AllMappings, MappingEquivalence,
                         ::testing::Values("simple", "multi", "dynamic"));

// ---- Input expansion helper ----

TEST(ProducerIterations, IntArrayAndScalar) {
  EXPECT_EQ(ProducerIterations(Value(3)).size(), 3u);
  EXPECT_EQ(ProducerIterations(Value(0)).size(), 0u);
  Value arr = Value::MakeArray();
  arr.push_back("a");
  arr.push_back("b");
  EXPECT_EQ(ProducerIterations(arr).size(), 2u);
  EXPECT_EQ(ProducerIterations(arr)[1].as_string(), "b");
  EXPECT_EQ(ProducerIterations(Value("once")).size(), 1u);
}

TEST(GroupingHashFn, StableAndKeyed) {
  Value t1 = Value::MakeObject();
  t1["word"] = "fox";
  t1["count"] = 1;
  Value t2 = Value::MakeObject();
  t2["word"] = "fox";
  t2["count"] = 99;  // different payload, same key
  EXPECT_EQ(GroupingHash(t1, "word"), GroupingHash(t2, "word"));
  Value t3 = Value::MakeObject();
  t3["word"] = "dog";
  EXPECT_NE(GroupingHash(t1, "word"), GroupingHash(t3, "word"));
  // Missing key: falls back to whole-tuple hash.
  EXPECT_NE(GroupingHash(t1, "missing"), GroupingHash(t2, "missing"));
}

}  // namespace
}  // namespace laminar::dataflow
