// Integration tests: every Table I client function exercised through the
// full stack — client API -> wire protocol -> server -> registry / search /
// execution engine — over an in-memory connection.
#include <gtest/gtest.h>

#include <set>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"

namespace laminar::client {
namespace {

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

class ClientIntegration : public ::testing::Test {
 protected:
  ClientIntegration() : laminar_(ConnectInProcess(FastServer())) {}

  LaminarClient& client() { return *laminar_.client; }

  WorkflowInfo RegisterIsPrime() {
    const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
    Result<WorkflowInfo> wf = client().RegisterWorkflow(
        demo->name, demo->spec, demo->pes, demo->code);
    EXPECT_TRUE(wf.ok()) << wf.status().ToString();
    return wf.value();
  }

  InProcessLaminar laminar_;
};

TEST_F(ClientIntegration, RegisterAndLogin) {
  Result<int64_t> uid = client().Register("alice", "pw");
  ASSERT_TRUE(uid.ok());
  EXPECT_GT(uid.value(), 0);
  EXPECT_FALSE(client().Register("alice", "pw2").ok());  // duplicate name
  EXPECT_TRUE(client().Login("alice", "pw").ok());
  EXPECT_FALSE(client().Login("alice", "wrong").ok());
  EXPECT_FALSE(client().Login("nobody", "pw").ok());
}

TEST_F(ClientIntegration, RegisterPeGeneratesDescription) {
  Result<PeInfo> pe = client().RegisterPe(
      "class Doubler(IterativePE):\n"
      "    def _process(self, x):\n"
      "        return x * 2\n");
  ASSERT_TRUE(pe.ok()) << pe.status().ToString();
  EXPECT_EQ(pe->name, "Doubler");  // extracted from the class
  EXPECT_FALSE(pe->description.empty());  // CodeT5-style auto description
}

TEST_F(ClientIntegration, RegisterPeRequiresCode) {
  EXPECT_FALSE(client().RegisterPe("").ok());
}

TEST_F(ClientIntegration, UserDescriptionWinsOverGenerated) {
  Result<PeInfo> pe = client().RegisterPe(
      "class X(IterativePE):\n    def _process(self, v):\n        return v\n",
      "X", "my own words");
  ASSERT_TRUE(pe.ok());
  EXPECT_EQ(pe->description, "my own words");
}

TEST_F(ClientIntegration, WorkflowRegistrationLinksPes) {
  WorkflowInfo wf = RegisterIsPrime();
  EXPECT_EQ(wf.pe_ids.size(), 3u);
  Result<std::vector<PeInfo>> pes = client().GetPesByWorkflow(wf.id);
  ASSERT_TRUE(pes.ok());
  EXPECT_EQ(pes->size(), 3u);
  std::set<std::string> names;
  for (const PeInfo& pe : pes.value()) names.insert(pe.name);
  EXPECT_TRUE(names.contains("IsPrime"));
  EXPECT_TRUE(names.contains("NumberProducer"));
  EXPECT_TRUE(names.contains("PrintPrime"));
}

TEST_F(ClientIntegration, GetByIdAndByName) {
  WorkflowInfo wf = RegisterIsPrime();
  Result<WorkflowInfo> by_id = client().GetWorkflow(wf.id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->name, "isprime_wf");
  Result<WorkflowInfo> by_name = client().GetWorkflowByName("isprime_wf");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->id, wf.id);
  Result<PeInfo> pe = client().GetPeByName("IsPrime");
  ASSERT_TRUE(pe.ok());
  EXPECT_NE(pe->code.find("all(num % i != 0"), std::string::npos);
  EXPECT_FALSE(client().GetPe(9999).ok());
  EXPECT_FALSE(client().GetWorkflowByName("ghost").ok());
}

TEST_F(ClientIntegration, GetRegistryListsEverything) {
  RegisterIsPrime();
  auto registry = client().GetRegistry();
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry->first.size(), 3u);   // PEs
  EXPECT_EQ(registry->second.size(), 1u);  // workflows
}

TEST_F(ClientIntegration, UpdateDescriptionsReflectInSearch) {
  WorkflowInfo wf = RegisterIsPrime();
  int64_t pe_id = wf.pe_ids[1];
  ASSERT_TRUE(client()
                  .UpdatePeDescription(pe_id, "verifies integer primality")
                  .ok());
  EXPECT_EQ(client().GetPe(pe_id)->description,
            "verifies integer primality");
  auto hits =
      client().SearchRegistrySemantic("verifies integer primality", "pe", 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().id, pe_id);
  ASSERT_TRUE(
      client().UpdateWorkflowDescription(wf.id, "the prime pipeline").ok());
  EXPECT_EQ(client().GetWorkflow(wf.id)->description, "the prime pipeline");
}

TEST_F(ClientIntegration, RemovePeAndWorkflow) {
  WorkflowInfo wf = RegisterIsPrime();
  ASSERT_TRUE(client().RemovePe(wf.pe_ids[0]).ok());
  EXPECT_FALSE(client().GetPe(wf.pe_ids[0]).ok());
  EXPECT_EQ(client().GetPesByWorkflow(wf.id)->size(), 2u);
  ASSERT_TRUE(client().RemoveWorkflow(wf.id).ok());
  EXPECT_FALSE(client().GetWorkflow(wf.id).ok());
  EXPECT_FALSE(client().RemoveWorkflow(wf.id).ok());  // already gone
}

TEST_F(ClientIntegration, RemoveAllClearsRegistry) {
  RegisterIsPrime();
  ASSERT_TRUE(client().RemoveAll().ok());
  auto registry = client().GetRegistry();
  ASSERT_TRUE(registry.ok());
  EXPECT_TRUE(registry->first.empty());
  EXPECT_TRUE(registry->second.empty());
}

TEST_F(ClientIntegration, LiteralAndSemanticSearch) {
  RegisterIsPrime();
  auto literal = client().SearchRegistryLiteral("prime", "pe", 10);
  ASSERT_TRUE(literal.ok());
  EXPECT_GE(literal->size(), 2u);  // IsPrime + PrintPrime
  auto literal_wf = client().SearchRegistryLiteral("isprime", "workflow");
  ASSERT_TRUE(literal_wf.ok());
  EXPECT_EQ(literal_wf->size(), 1u);
  auto semantic =
      client().SearchRegistrySemantic("random number generator", "pe", 3);
  ASSERT_TRUE(semantic.ok());
  ASSERT_FALSE(semantic->empty());
  EXPECT_EQ(semantic->front().name, "NumberProducer");
}

TEST_F(ClientIntegration, CodeRecommendationSptAndLlm) {
  RegisterIsPrime();
  // Fig. 9: snippet "random.randint(1, 1000)" should recommend the
  // NumberProducer PE.
  auto spt = client().CodeRecommendation("random.randint(1, 1000)", "pe");
  ASSERT_TRUE(spt.ok());
  ASSERT_FALSE(spt->empty());
  EXPECT_EQ(spt->front().name, "NumberProducer");
  EXPECT_FALSE(spt->front().similar_code.empty());
  auto llm = client().CodeRecommendation(
      "class IsPrime(IterativePE):\n"
      "    def _process(self, num):\n"
      "        if all(num % i != 0 for i in range(2, num)):\n"
      "            return num\n",
      "pe", "llm");
  ASSERT_TRUE(llm.ok());
  ASSERT_FALSE(llm->empty());
  EXPECT_EQ(llm->front().name, "IsPrime");  // clone detection
}

TEST_F(ClientIntegration, WorkflowCodeRecommendation) {
  RegisterIsPrime();
  auto recs =
      client().CodeRecommendation("random.randint(1, 1000)", "workflow");
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ(recs->front().name, "isprime_wf");
  EXPECT_GE(recs->front().occurrences, 1);
}

TEST_F(ClientIntegration, RunSequentialStreamsOutput) {
  WorkflowInfo wf = RegisterIsPrime();
  std::vector<std::string> streamed;
  RunOutcome outcome = client().Run(
      wf.id, Value(20),
      [&](const std::string& line) { streamed.push_back(line); });
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(streamed, outcome.lines);
  EXPECT_GT(outcome.stats.GetInt("tuples"), 0);
  EXPECT_GT(outcome.stats.GetInt("executionId"), 0);
  for (const std::string& line : outcome.lines) {
    EXPECT_NE(line.find("is prime"), std::string::npos);
  }
}

TEST_F(ClientIntegration, RunModesAgree) {
  WorkflowInfo wf = RegisterIsPrime();
  RunOutcome seq = client().Run(wf.id, Value(25));
  RunOutcome multi = client().RunMultiprocess(wf.id, Value(25), 9);
  RunOutcome dynamic = client().RunDynamic(wf.id, Value(25));
  ASSERT_TRUE(seq.status.ok());
  ASSERT_TRUE(multi.status.ok());
  ASSERT_TRUE(dynamic.status.ok());
  std::multiset<std::string> a(seq.lines.begin(), seq.lines.end());
  std::multiset<std::string> b(multi.lines.begin(), multi.lines.end());
  std::multiset<std::string> c(dynamic.lines.begin(), dynamic.lines.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(ClientIntegration, RunRecordsExecutionInRegistry) {
  WorkflowInfo wf = RegisterIsPrime();
  RunOutcome outcome = client().Run(wf.id, Value(5));
  ASSERT_TRUE(outcome.status.ok());
  int64_t exec_id = outcome.stats.GetInt("executionId");
  auto& repo = laminar_.server->repository();
  Result<registry::ExecutionRecord> exec = repo.GetExecution(exec_id);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->status, "succeeded");
  EXPECT_EQ(exec->workflow_id, wf.id);
}

TEST_F(ClientIntegration, RunUnknownWorkflowFails) {
  RunOutcome outcome = client().Run(404, Value(1));
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
}

TEST_F(ClientIntegration, ResourceNegotiationUploadsOnlyOnce) {
  WorkflowInfo wf = RegisterIsPrime();
  std::vector<Resource> resources = {
      {"data/config.json", R"({"threshold": 3})"},
      {"data/big.bin", std::string(50'000, 'b')},
  };
  // First run: engine reports missing, client uploads, run proceeds.
  RunOutcome first = client().Run(wf.id, Value(5), nullptr, resources);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  auto stats_after_first = laminar_.server->engine().resource_cache().stats();
  EXPECT_EQ(stats_after_first.misses, 2u);
  // Second run: warm cache, nothing re-uploaded.
  RunOutcome second = client().Run(wf.id, Value(5), nullptr, resources);
  ASSERT_TRUE(second.status.ok());
  auto stats_after_second = laminar_.server->engine().resource_cache().stats();
  EXPECT_EQ(stats_after_second.misses, 2u);  // unchanged
  EXPECT_GE(stats_after_second.hits, 2u);
}

TEST_F(ClientIntegration, ChangedResourceReUploads) {
  WorkflowInfo wf = RegisterIsPrime();
  std::vector<Resource> v1 = {{"cfg", "version 1"}};
  ASSERT_TRUE(client().Run(wf.id, Value(2), nullptr, v1).status.ok());
  std::vector<Resource> v2 = {{"cfg", "version 2"}};
  ASSERT_TRUE(client().Run(wf.id, Value(2), nullptr, v2).status.ok());
  EXPECT_EQ(laminar_.server->engine().resource_cache().Get("cfg").value(),
            "version 2");
}

TEST_F(ClientIntegration, RunSpecWithoutRegistration) {
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  RunOutcome outcome = client().RunSpec(demo->spec, "simple", Value(10));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_GT(outcome.stats.GetInt("tuples"), 0);
}

TEST_F(ClientIntegration, TrueStreamingDeliversFirstLineEarly) {
  // §IV-E: with the streaming transport, the first output line reaches the
  // client long before a long-running workflow finishes.
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Value spec = demo->spec;
  // Make the workflow slow: many CPU-heavy inputs.
  RunOutcome outcome = client().RunSpec(spec, "simple", Value(400));
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_GT(outcome.lines.size(), 10u);
  EXPECT_LT(outcome.first_line_ms, outcome.total_ms);
}

TEST_F(ClientIntegration, BatchModeClientStillWorks) {
  // The whole protocol also functions over the 1.0-style batch transport.
  InProcessLaminar batch =
      ConnectInProcess(FastServer(), net::HttpConnection::Mode::kBatch);
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  Result<WorkflowInfo> wf = batch.client->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  RunOutcome outcome = batch.client->Run(wf->id, Value(10));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_FALSE(outcome.lines.empty());
}

TEST_F(ClientIntegration, MultipleClientsShareOneServer) {
  WorkflowInfo wf = RegisterIsPrime();
  ExtraClient second = AttachClient(*laminar_.server);
  Result<WorkflowInfo> seen = second.client->GetWorkflow(wf.id);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->name, "isprime_wf");
  RunOutcome outcome = second.client->Run(wf.id, Value(5));
  EXPECT_TRUE(outcome.status.ok());
}

TEST_F(ClientIntegration, AnomalyDemoEndToEnd) {
  const DemoWorkflow* demo = FindDemoWorkflow("anomaly_wf");
  Result<WorkflowInfo> wf = client().RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  ASSERT_TRUE(wf.ok());
  RunOutcome outcome = client().Run(wf->id, Value(400));
  ASSERT_TRUE(outcome.status.ok());
  // The seeded sensor stream injects ~5% anomalies; some alerts must fire.
  EXPECT_FALSE(outcome.lines.empty());
  for (const std::string& line : outcome.lines) {
    EXPECT_EQ(line.find("ALERT"), 0u) << line;
  }
  // Fig. 8's query should surface the anomaly PE.
  auto hits = client().SearchRegistrySemantic(
      "a pe that is able to detect anomalies", "pe", 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NE(hits->front().name.find("Anomaly"), std::string::npos);
}

}  // namespace
}  // namespace laminar::client
