// Transport-parity matrix: the same client-visible behaviour — registration,
// semantic search, streamed /execute, and the 428 resource-negotiation path —
// must hold over BOTH transports: in-memory duplex pipes (the deterministic
// test default) and real TCP loopback sockets through the epoll listener.
// Plus TCP-only coverage: connection-cap rejection, reaping of dead
// connections, large-body round trips (EAGAIN partial writes), and a full
// two-OS-process round trip against a spawned laminar_serve.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "common/byte_buffer.hpp"

namespace laminar::client {
namespace {

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

enum class Transport { kPipe, kTcp };

class TransportParity : public ::testing::TestWithParam<Transport> {
 protected:
  void SetUp() override {
    if (GetParam() == Transport::kPipe) {
      pipe_ = std::make_unique<InProcessLaminar>(ConnectInProcess(FastServer()));
      return;
    }
    Result<TcpLaminarServer> srv = ServeTcp(FastServer());
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    tcp_server_ =
        std::make_unique<TcpLaminarServer>(std::move(srv.value()));
    Result<TcpClient> cli = ConnectTcp("127.0.0.1", tcp_server_->port());
    ASSERT_TRUE(cli.ok()) << cli.status().ToString();
    tcp_client_ = std::make_unique<TcpClient>(std::move(cli.value()));
  }

  void TearDown() override {
    tcp_client_.reset();  // close the socket before stopping the listener
    if (tcp_server_) tcp_server_->listener->Stop();
  }

  LaminarClient& client() {
    return pipe_ ? *pipe_->client : *tcp_client_->client;
  }

  WorkflowInfo RegisterIsPrime() {
    const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
    Result<WorkflowInfo> wf = client().RegisterWorkflow(
        demo->name, demo->spec, demo->pes, demo->code);
    EXPECT_TRUE(wf.ok()) << wf.status().ToString();
    return wf.value();
  }

  std::unique_ptr<InProcessLaminar> pipe_;
  std::unique_ptr<TcpLaminarServer> tcp_server_;
  std::unique_ptr<TcpClient> tcp_client_;
};

TEST_P(TransportParity, RegisterAndFetchPe) {
  Result<PeInfo> pe = client().RegisterPe(
      "class Doubler(IterativePE):\n"
      "    def _process(self, x):\n"
      "        return x * 2\n");
  ASSERT_TRUE(pe.ok()) << pe.status().ToString();
  EXPECT_EQ(pe->name, "Doubler");
  Result<PeInfo> fetched = client().GetPe(pe->id);
  ASSERT_TRUE(fetched.ok());
  // The register reply omits code; the fetch must return it in full.
  EXPECT_NE(fetched->code.find("def _process(self, x)"), std::string::npos);
}

TEST_P(TransportParity, SemanticSearchFindsRegisteredPe) {
  WorkflowInfo wf = RegisterIsPrime();
  ASSERT_TRUE(client()
                  .UpdatePeDescription(wf.pe_ids[1],
                                       "verifies integer primality")
                  .ok());
  Result<std::vector<SearchHit>> hits =
      client().SearchRegistrySemantic("verifies integer primality", "pe", 1);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().id, wf.pe_ids[1]);
}

TEST_P(TransportParity, StreamedExecuteDeliversIncrementally) {
  // §IV-E: output chunks must reach the client while the run is still in
  // flight — over the pipe AND over real sockets (acceptance criterion:
  // "streamed /execute chunks arrive incrementally over TCP").
  const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
  RunOutcome outcome = client().RunSpec(demo->spec, "simple", Value(400));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_GT(outcome.lines.size(), 10u);
  EXPECT_GE(outcome.first_line_ms, 0.0);
  EXPECT_LT(outcome.first_line_ms, outcome.total_ms);
}

TEST_P(TransportParity, ResourceNegotiation428Path) {
  // First run returns 428 with the missing list; the client uploads and
  // retries — one extra round trip, same result, over either transport.
  WorkflowInfo wf = RegisterIsPrime();
  std::vector<Resource> resources = {
      {"data/config.json", R"({"threshold": 3})"},
      {"data/blob.bin", std::string(50'000, 'b')},
  };
  RunOutcome first = client().Run(wf.id, Value(5), nullptr, resources);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.lines.empty());
  // Warm cache: the second run must not renegotiate.
  RunOutcome second = client().Run(wf.id, Value(5), nullptr, resources);
  ASSERT_TRUE(second.status.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportParity,
    ::testing::Values(Transport::kPipe, Transport::kTcp),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return info.param == Transport::kPipe ? "Pipe" : "Tcp";
    });

// ---- TCP-only behaviour ----

TEST(TcpTransport, ConnectionCapRejectsExcess) {
  net::TcpListenerConfig listener;
  listener.max_connections = 2;
  Result<TcpLaminarServer> srv = ServeTcp(FastServer(), listener);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  Result<TcpClient> a = ConnectTcp("127.0.0.1", srv->port());
  Result<TcpClient> b = ConnectTcp("127.0.0.1", srv->port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->client->GetStats().ok());
  ASSERT_TRUE(b->client->GetStats().ok());

  // Third connection completes the TCP handshake (it sits in the listen
  // backlog) but the server closes it at accept time: any request fails.
  Result<TcpClient> c = ConnectTcp("127.0.0.1", srv->port());
  if (c.ok()) {
    EXPECT_FALSE(c->client->GetStats().ok());
  }
  EXPECT_LE(srv->listener->open_connections(), 2u);
}

TEST(TcpTransport, ClosedConnectionsAreReaped) {
  Result<TcpLaminarServer> srv = ServeTcp(FastServer());
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  for (int i = 0; i < 20; ++i) {
    Result<TcpClient> cli = ConnectTcp("127.0.0.1", srv->port());
    ASSERT_TRUE(cli.ok()) << "i=" << i << ": " << cli.status().ToString();
    ASSERT_TRUE(cli->client->GetStats().ok()) << "i=" << i;
  }  // client destructor closes the socket; the reaper collects server side
  for (int i = 0; i < 500 && srv->listener->open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv->listener->open_connections(), 0u);
}

TEST(TcpTransport, RestartedListenerStillReaps) {
  // Stop() closes the reap queue; Start() must rebuild it or a restarted
  // listener silently drops every reap push and hung-up connections pile up
  // against max_connections.
  Result<TcpLaminarServer> srv = ServeTcp(FastServer());
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  srv->listener->Stop();
  ASSERT_TRUE(srv->listener->Start().ok());
  {
    Result<TcpClient> cli = ConnectTcp("127.0.0.1", srv->listener->port());
    ASSERT_TRUE(cli.ok()) << cli.status().ToString();
    ASSERT_TRUE(cli->client->GetStats().ok());
  }  // hang up; the restarted reaper must collect the server side
  for (int i = 0; i < 500 && srv->listener->open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv->listener->open_connections(), 0u);
}

TEST(TcpTransport, MalformedFrameConnectionIsReaped) {
  // A protocol violation closes the connection server-side (ProtocolError ->
  // Close -> CloseRead). That locally-initiated close must reach the reaper
  // even though the client never hangs up — otherwise every garbage frame
  // permanently burns a conns_ slot and socket fd until the cap starves out
  // all future accepts.
  Result<TcpLaminarServer> srv = ServeTcp(FastServer());
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Result<std::unique_ptr<net::ByteStream>> raw =
      net::TcpConnect("127.0.0.1", srv->port());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  for (int i = 0; i < 500 && srv->listener->open_connections() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(srv->listener->open_connections(), 1u);
  // Frame header (u32 payload_len | u8 type | u64 stream_id) declaring a
  // hostile 4 GiB payload — rejected before any allocation.
  ByteWriter frame;
  frame.PutU32(0xFFFF'FFFFu);
  frame.PutU8(1);  // HEADERS
  frame.PutU64(1);
  ASSERT_TRUE((*raw)->Write(frame.data()));
  // The client socket stays open throughout the wait: only the server-side
  // close can trigger the reap.
  for (int i = 0; i < 500 && srv->listener->open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv->listener->open_connections(), 0u);
}

TEST(TcpTransport, LargeBodyRoundTripSurvivesPartialWrites) {
  // A multi-megabyte resource upload overflows every socket buffer on the
  // way, forcing the EAGAIN partial-write path on the client and partial
  // reads on the server.
  Result<TcpLaminarServer> srv = ServeTcp(FastServer());
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Result<TcpClient> cli = ConnectTcp("127.0.0.1", srv->port());
  ASSERT_TRUE(cli.ok());
  std::string big(4 * 1024 * 1024, 'x');
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = char('a' + i % 23);
  ASSERT_TRUE(cli->client->UploadResources({{"blob", big}}).ok());
  // The run must find the resource already cached (no 428 renegotiation
  // would re-upload it, but the content-hash must match the 4 MiB body).
  WorkflowInfo wf = [&] {
    const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
    Result<WorkflowInfo> w = cli->client->RegisterWorkflow(
        demo->name, demo->spec, demo->pes, demo->code);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return w.value();
  }();
  RunOutcome outcome =
      cli->client->Run(wf.id, Value(5), nullptr, {{"blob", big}});
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
}

TEST(TcpTransport, TwoProcessRoundTrip) {
  // The acceptance-criteria scenario: spawn laminar_serve as a separate OS
  // process, dial it over loopback, register a workflow and stream a run.
  const char* bin = std::getenv("LAMINAR_SERVE_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "LAMINAR_SERVE_BIN not set (run via ctest)";
  }
  int to_child[2];    // our writes -> child stdin
  int from_child[2];  // child stdout -> our reads
  ASSERT_EQ(pipe(to_child), 0);
  ASSERT_EQ(pipe(from_child), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(bin, bin, "--port", "0", "--stdin-eof", "--cold-start-ms", "0",
          (char*)nullptr);
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  // First stdout line: "laminar_serve listening on 127.0.0.1:<port>".
  std::string line;
  char ch;
  while (read(from_child[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  size_t colon = line.rfind(':');
  ASSERT_NE(colon, std::string::npos) << "unexpected banner: " << line;
  uint16_t port = static_cast<uint16_t>(std::stoi(line.substr(colon + 1)));
  ASSERT_GT(port, 0);

  {
    Result<TcpClient> cli = ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(cli.ok()) << cli.status().ToString();
    const DemoWorkflow* demo = FindDemoWorkflow("isprime_wf");
    Result<WorkflowInfo> wf = cli->client->RegisterWorkflow(
        demo->name, demo->spec, demo->pes, demo->code);
    ASSERT_TRUE(wf.ok()) << wf.status().ToString();
    RunOutcome outcome = cli->client->Run(wf->id, Value(10));
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_FALSE(outcome.lines.empty());
    EXPECT_GT(outcome.stats.GetInt("tuples"), 0);
  }  // disconnect before shutting the server down

  close(to_child[1]);  // stdin EOF => laminar_serve exits cleanly
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  close(from_child[0]);
  EXPECT_TRUE(WIFEXITED(status)) << "laminar_serve died abnormally";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace laminar::client
