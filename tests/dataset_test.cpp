#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "dataset/generator.hpp"
#include "pycode/parser.hpp"

namespace laminar::dataset {
namespace {

TEST(Families, TableIsWellFormed) {
  const auto& table = Families();
  EXPECT_GE(table.size(), 24u);
  std::set<std::string_view> keys;
  for (const FamilySpec& f : table) {
    EXPECT_FALSE(f.key.empty());
    EXPECT_FALSE(f.description.empty());
    EXPECT_FALSE(f.paraphrase_a.empty());
    EXPECT_FALSE(f.paraphrase_b.empty());
    EXPECT_FALSE(f.body.empty());
    EXPECT_TRUE(keys.insert(f.key).second) << "duplicate family " << f.key;
  }
}

TEST(Generator, ProducesRequestedShape) {
  DatasetConfig config;
  config.families = 5;
  config.variants_per_family = 7;
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate(config);
  EXPECT_EQ(ds.size(), 35u);
  EXPECT_EQ(ds.family_count(), 5u);
  for (int g = 0; g < 5; ++g) {
    EXPECT_EQ(ds.GroupMembers(g).size(), 7u);
  }
  EXPECT_TRUE(ds.GroupMembers(99).empty());
}

TEST(Generator, IdsAndNamesUnique) {
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate({});
  std::unordered_set<int64_t> ids;
  std::unordered_set<std::string> names;
  for (const PeExample& ex : ds.examples()) {
    EXPECT_TRUE(ids.insert(ex.id).second);
    EXPECT_TRUE(names.insert(ex.name).second) << ex.name;
  }
}

TEST(Generator, DeterministicPerSeed) {
  DatasetConfig config;
  config.families = 4;
  config.variants_per_family = 3;
  CodeSearchNetPeDataset a = CodeSearchNetPeDataset::Generate(config);
  CodeSearchNetPeDataset b = CodeSearchNetPeDataset::Generate(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.example(i).pe_code, b.example(i).pe_code);
    EXPECT_EQ(a.example(i).name, b.example(i).name);
  }
  config.seed ^= 0xFFFF;
  CodeSearchNetPeDataset c = CodeSearchNetPeDataset::Generate(config);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.example(i).pe_code != c.example(i).pe_code) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, EveryGeneratedPeParsesStrictly) {
  // The paper converted all CodeSearchNet functions to valid PE classes;
  // our generator must produce strictly-parseable Python for every family
  // and every noise combination.
  DatasetConfig config;
  config.variants_per_family = 10;
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate(config);
  for (const PeExample& ex : ds.examples()) {
    Result<pycode::NodePtr> tree = pycode::Parse(ex.pe_code);
    ASSERT_TRUE(tree.ok()) << ex.name << ": " << tree.status().ToString()
                           << "\n" << ex.pe_code;
  }
}

TEST(Generator, VariantsWithinFamilyDifferTextually) {
  DatasetConfig config;
  config.families = 6;
  config.variants_per_family = 4;
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate(config);
  for (int g = 0; g < 6; ++g) {
    const auto& members = ds.GroupMembers(g);
    std::set<std::string> bodies;
    for (int64_t id : members) {
      bodies.insert(ds.example(static_cast<size_t>(id - 1)).pe_code);
    }
    EXPECT_GE(bodies.size(), 2u) << "family " << g << " has no text variety";
  }
}

TEST(Generator, DescriptionsAndQueriesShareFamilyVocabulary) {
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate({});
  for (const PeExample& ex : ds.examples()) {
    EXPECT_FALSE(ex.description.empty());
    EXPECT_FALSE(ex.query.empty());
    EXPECT_NE(ex.description, ex.query);  // paraphrase, not copy
  }
}

TEST(Generator, CodeContainsProcessMethod) {
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate({});
  for (const PeExample& ex : ds.examples()) {
    EXPECT_NE(ex.pe_code.find("def _process(self, "), std::string::npos);
    EXPECT_NE(ex.pe_code.find("class " + ex.name + "(IterativePE):"),
              std::string::npos);
  }
}

// ---- DropCode ----

constexpr const char* kPe =
    "class Demo(IterativePE):\n"
    "    def __init__(self):\n"
    "        IterativePE.__init__(self)\n"
    "    def _process(self, data):\n"
    "        a = 1\n"
    "        b = 2\n"
    "        c = 3\n"
    "        d = 4\n";

TEST(DropCode, ZeroFractionIsIdentity) {
  EXPECT_EQ(DropCode(kPe, 0.0), kPe);
}

TEST(DropCode, TailDropKeepsHeaderAndPrefix) {
  std::string dropped = DropCode(kPe, 0.5);
  EXPECT_NE(dropped.find("class Demo"), std::string::npos);
  EXPECT_NE(dropped.find("def _process"), std::string::npos);
  EXPECT_NE(dropped.find("a = 1"), std::string::npos);
  EXPECT_NE(dropped.find("b = 2"), std::string::npos);
  EXPECT_EQ(dropped.find("c = 3"), std::string::npos);
  EXPECT_EQ(dropped.find("d = 4"), std::string::npos);
}

TEST(DropCode, NinetyPercentLeavesAlmostNothing) {
  std::string dropped = DropCode(kPe, 0.9);
  EXPECT_EQ(dropped.find("b = 2"), std::string::npos);
  EXPECT_NE(dropped.find("def _process"), std::string::npos);
}

TEST(DropCode, AlwaysDropsAtLeastOneLineWhenAsked) {
  std::string dropped = DropCode(kPe, 0.01);
  EXPECT_LT(dropped.size(), std::string(kPe).size());
}

TEST(DropCode, RandomModeKeepsRightCount) {
  std::string dropped = DropCode(kPe, 0.5, DropMode::kRandom, 7);
  // 4 body lines -> keep 2.
  int body_lines = 0;
  for (const char* marker : {"a = 1", "b = 2", "c = 3", "d = 4"}) {
    if (dropped.find(marker) != std::string::npos) ++body_lines;
  }
  EXPECT_EQ(body_lines, 2);
  // Deterministic for the same seed.
  EXPECT_EQ(dropped, DropCode(kPe, 0.5, DropMode::kRandom, 7));
}

TEST(DropCode, DroppedCodeStillLeniencyParses) {
  CodeSearchNetPeDataset ds = CodeSearchNetPeDataset::Generate({});
  for (double fraction : {0.5, 0.75, 0.9}) {
    for (size_t i = 0; i < ds.size(); i += 7) {
      std::string dropped = DropCode(ds.example(i).pe_code, fraction);
      Result<pycode::NodePtr> tree = pycode::ParseLenient(dropped);
      EXPECT_TRUE(tree.ok()) << ds.example(i).name << " @" << fraction;
    }
  }
}

}  // namespace
}  // namespace laminar::dataset
