#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace laminar {
namespace {

TEST(Log, LevelGateIsRespected) {
  log::Level original = log::GetLevel();
  log::SetLevel(log::Level::kError);
  EXPECT_EQ(log::GetLevel(), log::Level::kError);
  // Below-threshold writes are no-ops (observable only as "does not crash",
  // since output goes to stderr; the gate itself is the contract).
  log::Debug("test", "suppressed");
  log::Info("test", "suppressed");
  log::SetLevel(log::Level::kOff);
  log::Error("test", "suppressed");
  log::SetLevel(original);
}

TEST(Log, LevelOrderingIsMonotonic) {
  EXPECT_LT(log::Level::kDebug, log::Level::kInfo);
  EXPECT_LT(log::Level::kInfo, log::Level::kWarn);
  EXPECT_LT(log::Level::kWarn, log::Level::kError);
  EXPECT_LT(log::Level::kError, log::Level::kOff);
}

TEST(Clock, MonotonicNowAndStopwatch) {
  int64_t a = NowMicros();
  int64_t b = NowMicros();
  EXPECT_GE(b, a);
  Stopwatch watch;
  volatile uint64_t sink = BusyWork(100'000);
  (void)sink;
  EXPECT_GT(watch.ElapsedMicros(), 0);
  EXPECT_NEAR(watch.ElapsedMillis(),
              static_cast<double>(watch.ElapsedMicros()) / 1000.0, 1.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMicros(), 1'000'000);
}

TEST(Clock, BusyWorkScalesWithIterations) {
  // More iterations must take measurably longer (the mapping benches rely
  // on BusyWork as a calibrated load).
  Stopwatch small_watch;
  volatile uint64_t s1 = BusyWork(1'000'000);
  int64_t small_us = small_watch.ElapsedMicros();
  Stopwatch big_watch;
  volatile uint64_t s2 = BusyWork(20'000'000);
  int64_t big_us = big_watch.ElapsedMicros();
  (void)s1;
  (void)s2;
  EXPECT_GT(big_us, small_us);
}

TEST(Clock, BusyWorkIsDeterministic) {
  EXPECT_EQ(BusyWork(1000), BusyWork(1000));
  EXPECT_NE(BusyWork(1000), BusyWork(1001));
}

}  // namespace
}  // namespace laminar
