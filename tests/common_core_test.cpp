#include <gtest/gtest.h>

#include <set>

#include "common/byte_buffer.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace laminar {
namespace {

// ---- Status / Result ----

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::NotFound("no such PE");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NOT_FOUND: no such PE");
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---- Hashing ----

TEST(Hashing, Fnv1aIsStable) {
  // Known-stable values: these must never change across platforms/builds,
  // since stored sptEmbeddings depend on them.
  EXPECT_EQ(hashing::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(hashing::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(hashing::Fnv1a64("T:x"), hashing::Fnv1a64("T:y"));
}

TEST(Hashing, SeedNamespacesHashSpace) {
  EXPECT_NE(hashing::Fnv1a64("same", 1), hashing::Fnv1a64("same", 2));
}

TEST(Hashing, SplitMixDecorrelates) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(hashing::SplitMix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

// ---- Rng ----

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(1), b(1);
  Rng fa = a.Fork(10), fb = b.Fork(10);
  EXPECT_EQ(fa.NextU64(), fb.NextU64());
}

// ---- ByteBuffer ----

TEST(ByteBuffer, RoundTripsAllTypes) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutString("hello\0world");  // embedded NUL truncated by string_view ctor
  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBuffer, BinarySafeStrings) {
  ByteWriter w;
  std::string binary("\x00\x01\xFF\x7F", 4);
  w.PutString(binary);
  ByteReader r(w.data());
  EXPECT_EQ(r.GetString().value(), binary);
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.PutU32(0x01020304);
  const std::string& bytes = w.data();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x01);
}

TEST(ByteBuffer, TruncationDetected) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(std::string_view(w.data()).substr(0, 2));
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(ByteBuffer, StringLengthBeyondBufferDetected) {
  ByteWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutRaw("short");
  ByteReader r(w.data());
  EXPECT_FALSE(r.GetString().ok());
}

}  // namespace
}  // namespace laminar
