#include <gtest/gtest.h>

#include "pycode/lexer.hpp"

namespace laminar::pycode {
namespace {

std::vector<std::string> Spellings(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) {
    switch (t.type) {
      case TokenType::kNewline: out.push_back("<NL>"); break;
      case TokenType::kIndent: out.push_back("<IND>"); break;
      case TokenType::kDedent: out.push_back("<DED>"); break;
      case TokenType::kEnd: out.push_back("<END>"); break;
      default: out.push_back(t.text);
    }
  }
  return out;
}

TEST(Lexer, KeywordsVsNames) {
  auto tokens = Lex("class Foo def bar if xif");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens.value()[1].type, TokenType::kName);
  EXPECT_EQ(tokens.value()[2].type, TokenType::kKeyword);
  EXPECT_EQ(tokens.value()[3].type, TokenType::kName);
  EXPECT_EQ(tokens.value()[4].type, TokenType::kKeyword);
  EXPECT_EQ(tokens.value()[5].type, TokenType::kName);  // xif not a keyword
}

TEST(Lexer, IndentDedentBalance) {
  auto tokens = Lex(
      "if a:\n"
      "    b\n"
      "    if c:\n"
      "        d\n"
      "e\n");
  ASSERT_TRUE(tokens.ok());
  int depth = 0;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kIndent) ++depth;
    if (t.type == TokenType::kDedent) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Lexer, BlankAndCommentLinesIgnored) {
  auto tokens = Lex("a\n\n   \n# full comment\nb\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Spellings(tokens.value()),
            (std::vector<std::string>{"a", "<NL>", "b", "<NL>", "<END>"}));
}

TEST(Lexer, TrailingCommentStripped) {
  auto tokens = Lex("x = 1  # comment here\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Spellings(tokens.value()),
            (std::vector<std::string>{"x", "=", "1", "<NL>", "<END>"}));
}

TEST(Lexer, ImplicitLineJoiningInsideBrackets) {
  auto tokens = Lex("f(1,\n   2,\n   3)\n");
  ASSERT_TRUE(tokens.ok());
  // No NEWLINE until the bracket closes.
  std::vector<std::string> sp = Spellings(tokens.value());
  EXPECT_EQ(sp, (std::vector<std::string>{"f", "(", "1", ",", "2", ",", "3",
                                          ")", "<NL>", "<END>"}));
}

TEST(Lexer, ExplicitContinuation) {
  auto tokens = Lex("a = 1 + \\\n    2\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Spellings(tokens.value()),
            (std::vector<std::string>{"a", "=", "1", "+", "2", "<NL>", "<END>"}));
}

TEST(Lexer, StringLiterals) {
  auto tokens = Lex(R"(x = "dq" + 'sq' + "es\"c")" "\n");
  ASSERT_TRUE(tokens.ok());
  const auto& toks = tokens.value();
  EXPECT_EQ(toks[2].type, TokenType::kString);
  EXPECT_EQ(toks[2].text, "\"dq\"");
  EXPECT_EQ(toks[4].text, "'sq'");
  EXPECT_EQ(toks[6].text, "\"es\\\"c\"");
}

TEST(Lexer, TripleQuotedStringsSpanLines) {
  auto tokens = Lex("s = \"\"\"line1\nline2\"\"\"\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[2].type, TokenType::kString);
  EXPECT_NE(tokens.value()[2].text.find("line2"), std::string::npos);
}

TEST(Lexer, PrefixedStrings) {
  auto tokens = Lex("a = r'raw' + f\"fmt\"\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[2].text, "r'raw'");
  EXPECT_EQ(tokens.value()[4].text, "f\"fmt\"");
}

TEST(Lexer, Numbers) {
  auto tokens = Lex("a = 1 + 2.5 + 1e-9 + 0xFF + 10_000 + 3j\n");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> nums;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kNumber) nums.push_back(t.text);
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1", "2.5", "1e-9", "0xFF",
                                            "10_000", "3j"}));
}

TEST(Lexer, MultiCharOperatorsMaximalMunch) {
  auto tokens = Lex("a **= b // c >> d != e ** f\n");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> ops;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kOp) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"**=", "//", ">>", "!=", "**"}));
}

TEST(Lexer, WalrusAndArrow) {
  auto tokens = Lex("def f(x) -> int:\n    return (y := x)\n");
  ASSERT_TRUE(tokens.ok());
  bool saw_arrow = false, saw_walrus = false;
  for (const Token& t : tokens.value()) {
    saw_arrow |= t.IsOp("->");
    saw_walrus |= t.IsOp(":=");
  }
  EXPECT_TRUE(saw_arrow);
  EXPECT_TRUE(saw_walrus);
}

TEST(Lexer, LineAndColumnTracking) {
  auto tokens = Lex("a\n  b c\n");
  ASSERT_TRUE(tokens.ok());
  const auto& toks = tokens.value();
  EXPECT_EQ(toks[0].line, 1);
  // b is on line 2 (after the INDENT token)
  const Token* b = nullptr;
  const Token* c = nullptr;
  for (const Token& t : toks) {
    if (t.text == "b") b = &t;
    if (t.text == "c") c = &t;
  }
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(b->line, 2);
  EXPECT_EQ(c->line, 2);
  EXPECT_GT(c->col, b->col);
}

TEST(Lexer, ErrorsReportPosition) {
  auto r1 = Lex("x = 'unterminated\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);
  auto r2 = Lex("good\n  bad_indent\n bad_dedent\n");
  EXPECT_FALSE(r2.ok());
}

TEST(Lexer, UnexpectedCharacterRejected) {
  auto r = Lex("a = 1 ? 2\n");
  EXPECT_FALSE(r.ok());
}

TEST(Lexer, MissingFinalNewlineStillEndsCleanly) {
  auto tokens = Lex("x = 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().back().type, TokenType::kEnd);
  EXPECT_EQ(tokens.value()[tokens.value().size() - 2].type,
            TokenType::kNewline);
}

TEST(Lexer, DedentToIntermediateLevel) {
  auto tokens = Lex(
      "if a:\n"
      "        x\n"
      "    y\n");  // dedent to a level never pushed -> error
  EXPECT_FALSE(tokens.ok());
}

}  // namespace
}  // namespace laminar::pycode
