// Property-based tests: randomized invariants over seeds, swept with
// parameterized gtest. Each property states something that must hold for
// *every* input the generators can produce.
#include <gtest/gtest.h>

#include <set>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"
#include "dataset/generator.hpp"
#include "embed/unixcoder_sim.hpp"
#include "net/http.hpp"
#include "pycode/parser.hpp"
#include "spt/recommend.hpp"

namespace laminar {
namespace {

// ---- JSON: serialize(parse(x)) == x for arbitrary documents ----

Value RandomValue(Rng& rng, int depth) {
  // Leaning scalar at depth; containers shrink with depth.
  uint64_t kind = rng.NextBelow(depth <= 0 ? 5 : 7);
  switch (kind) {
    case 0: return Value();
    case 1: return Value(rng.NextBool());
    case 2: return Value(rng.NextInt(-1'000'000, 1'000'000));
    case 3: {
      // Doubles that survive round-trip exactly: dyadic fractions.
      double d = static_cast<double>(rng.NextInt(-4096, 4096)) / 64.0;
      return Value(d);
    }
    case 4: {
      std::string s;
      size_t len = rng.NextBelow(12);
      for (size_t i = 0; i < len; ++i) {
        // Include escapes, quotes, unicode and control characters.
        static const char* kAlphabet =
            "abc \"\\\n\t{}[]:,\xC3\xA9\x01z0123456789";
        s += kAlphabet[rng.NextBelow(28)];
      }
      return Value(std::move(s));
    }
    case 5: {
      Value arr = Value::MakeArray();
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) arr.push_back(RandomValue(rng, depth - 1));
      return arr;
    }
    default: {
      Value obj = Value::MakeObject();
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng.NextBelow(10))] =
            RandomValue(rng, depth - 1);
      }
      return obj;
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, ParseOfSerializeIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value original = RandomValue(rng, 4);
    Result<Value> back = json::Parse(original.ToJson());
    ASSERT_TRUE(back.ok()) << original.ToJson();
    EXPECT_EQ(back.value(), original) << original.ToJson();
    Result<Value> pretty = json::Parse(original.ToJsonPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.value(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Dataset/parser: every generated PE parses; every drop level
//      lenient-parses and featurizes ----

class CorpusParseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusParseProperty, GeneratedCodeAlwaysUsable) {
  dataset::DatasetConfig config;
  config.families = 0;
  config.variants_per_family = 3;
  config.seed = GetParam();
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(config);
  Rng rng(GetParam() ^ 0xD0D0);
  for (const dataset::PeExample& ex : ds.examples()) {
    ASSERT_TRUE(pycode::Parse(ex.pe_code).ok()) << ex.pe_code;
    double fraction = rng.NextDouble() * 0.9;
    dataset::DropMode mode = rng.NextBool() ? dataset::DropMode::kTail
                                            : dataset::DropMode::kRandom;
    std::string dropped =
        dataset::DropCode(ex.pe_code, fraction, mode, rng.NextU64());
    Result<spt::SptNodePtr> spt = spt::SptFromSource(dropped);
    ASSERT_TRUE(spt.ok()) << "drop " << fraction << " of\n" << ex.pe_code;
    EXPECT_GT(spt::ExtractFeatures(*spt.value()).total, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusParseProperty,
                         ::testing::Values(11, 22, 33));

// ---- SPT features: rename invariance under arbitrary consistent renames --

class RenameInvarianceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenameInvarianceProperty, LocalRenamesNeverChangeFeatures) {
  dataset::DatasetConfig config;
  config.families = 6;
  config.variants_per_family = 1;
  config.seed = GetParam();
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(config);
  Rng rng(GetParam() ^ 0xBEEF);
  for (const dataset::PeExample& ex : ds.examples()) {
    // Rename a known pool variable consistently; class names stay (they are
    // API names, intentionally not generalized).
    std::string renamed = ex.pe_code;
    for (const char* var : {"result", "out", "acc", "total", "cur", "tmp",
                            "data", "value", "item", "elem", "x"}) {
      std::string fresh = "zz" + std::to_string(rng.NextBelow(1000));
      // Whole-token replacement via word-ish boundaries: wrap with common
      // delimiters to avoid touching identifiers that contain the pool name.
      for (const char* pre : {" ", "(", "[", ",", "="}) {
        for (const char* post : {" ", ")", "]", ",", ":", ".", "\n", "["}) {
          renamed = strings::ReplaceAll(
              renamed, std::string(pre) + var + post,
              std::string(pre) + fresh + post);
        }
      }
    }
    Result<spt::SptNodePtr> a = spt::SptFromSource(ex.pe_code);
    Result<spt::SptNodePtr> b = spt::SptFromSource(renamed);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    spt::FeatureBag fa = spt::ExtractFeatures(*a.value());
    spt::FeatureBag fb = spt::ExtractFeatures(*b.value());
    EXPECT_GT(spt::CosineSimilarity(fa, fb), 0.999)
        << ex.name << "\n" << renamed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenameInvarianceProperty,
                         ::testing::Values(101, 202));

// ---- Embeddings: cosine is bounded and self-similarity is maximal ----

class EmbeddingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmbeddingProperty, CosineBoundsAndSelfSimilarity) {
  embed::UnixcoderSim model;
  Rng rng(GetParam());
  std::vector<std::string> vocabulary = {
      "stream", "prime",  "anomaly", "sensor", "sort",  "count",
      "words",  "filter", "detect",  "search", "index", "parse"};
  for (int i = 0; i < 50; ++i) {
    std::string a, b;
    size_t len = 2 + rng.NextBelow(8);
    for (size_t w = 0; w < len; ++w) a += rng.Choice(vocabulary) + " ";
    for (size_t w = 0; w < len; ++w) b += rng.Choice(vocabulary) + " ";
    embed::Vector va = model.EncodeText(a);
    embed::Vector vb = model.EncodeText(b);
    float cross = embed::Cosine(va, vb);
    EXPECT_GE(cross, -1.0001f);
    EXPECT_LE(cross, 1.0001f);
    EXPECT_NEAR(embed::Cosine(va, va), 1.0f, 1e-5);
    EXPECT_GE(embed::Cosine(va, va), cross - 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbeddingProperty, ::testing::Values(7, 8));

// ---- Mappings: equivalence holds for every producer seed ----

class MappingSeedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappingSeedProperty, AllMappingsAgreeOnIsPrime) {
  auto make_graph = [&] {
    auto g = std::make_unique<dataflow::WorkflowGraph>("isprime");
    auto& producer = g->AddPE<dataflow::NumberProducer>(GetParam());
    auto& isprime = g->AddPE<dataflow::IsPrime>();
    auto& printer = g->AddPE<dataflow::PrintPrime>();
    EXPECT_TRUE(g->Connect(producer, isprime).ok());
    EXPECT_TRUE(g->Connect(isprime, printer).ok());
    return g;
  };
  dataflow::RunOptions options;
  options.input = Value(30);
  options.num_processes = 5;

  dataflow::SequentialMapping seq;
  dataflow::MultiMapping multi;
  dataflow::DynamicMapping dynamic;
  auto lines = [](const dataflow::RunResult& r) {
    return std::multiset<std::string>(r.output_lines.begin(),
                                      r.output_lines.end());
  };
  dataflow::RunResult a = seq.Execute(*make_graph(), options);
  dataflow::RunResult b = multi.Execute(*make_graph(), options);
  dataflow::RunResult c = dynamic.Execute(*make_graph(), options);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ASSERT_TRUE(c.status.ok());
  EXPECT_EQ(lines(a), lines(b));
  EXPECT_EQ(lines(a), lines(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingSeedProperty,
                         ::testing::Values(1, 77, 3141, 424242));

// ---- HTTP transport: arbitrary binary bodies survive both modes ----

class TransportProperty
    : public ::testing::TestWithParam<net::HttpConnection::Mode> {};

TEST_P(TransportProperty, ArbitraryBodiesRoundTrip) {
  net::DuplexPipe pipe = net::CreatePipe();
  net::HttpConnection server(
      std::move(pipe.first), GetParam(),
      [](const net::HttpRequest& req, net::StreamResponder& out) {
        out.SendChunk(req.body);
        out.End(200);
      });
  net::HttpConnection client(std::move(pipe.second), GetParam());
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    size_t size = rng.NextBelow(60'000);
    std::string body;
    body.reserve(size);
    for (size_t b = 0; b < size; ++b) {
      body += static_cast<char>(rng.NextBelow(256));
    }
    net::HttpRequest req;
    req.path = "/echo";
    req.body = body;
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->first, 200);
    EXPECT_EQ(resp->second, body);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TransportProperty,
                         ::testing::Values(net::HttpConnection::Mode::kBatch,
                                           net::HttpConnection::Mode::kStreaming));

// ---- Registry: inserts then lookups are consistent for random rows ----

}  // namespace
}  // namespace laminar
