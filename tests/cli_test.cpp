// CLI tests: drive the interactive interpreter line by line and check the
// paper's Fig. 5/7/8/9 interactions.
#include <gtest/gtest.h>

#include <sstream>

#include "client/cli.hpp"
#include "client/connect.hpp"

namespace laminar::client {
namespace {

class CliTest : public ::testing::Test {
 protected:
  CliTest() {
    server::ServerConfig config;
    config.engine.cold_start_ms = 0;
    laminar_ = ConnectInProcess(config);
    cli_ = std::make_unique<LaminarCli>(*laminar_.client);
  }

  std::string Run(const std::string& line) {
    std::ostringstream out;
    keep_going_ = cli_->ExecuteLine(line, out);
    return out.str();
  }

  InProcessLaminar laminar_;
  std::unique_ptr<LaminarCli> cli_;
  bool keep_going_ = true;
};

TEST_F(CliTest, HelpListsCommands) {
  std::string out = Run("help");
  EXPECT_NE(out.find("code_recommendation"), std::string::npos);
  EXPECT_NE(out.find("register_workflow"), std::string::npos);
  EXPECT_NE(out.find("semantic_search"), std::string::npos);
  EXPECT_NE(out.find("remove_all"), std::string::npos);
}

TEST_F(CliTest, HelpRunShowsOptions) {
  std::string out = Run("help run");
  EXPECT_NE(out.find("--multi"), std::string::npos);
  EXPECT_NE(out.find("--dynamic"), std::string::npos);
  EXPECT_NE(out.find("-i, --input"), std::string::npos);
}

TEST_F(CliTest, QuitStopsLoop) {
  Run("quit");
  EXPECT_FALSE(keep_going_);
}

TEST_F(CliTest, UnknownCommandHinted) {
  std::string out = Run("frobnicate");
  EXPECT_NE(out.find("Unknown command"), std::string::npos);
  EXPECT_TRUE(keep_going_);
}

TEST_F(CliTest, RegisterWorkflowPrintsFoundPes) {
  std::string out = Run("register_workflow isprime_wf.py");
  EXPECT_NE(out.find("Found PEs"), std::string::npos);
  EXPECT_NE(out.find("IsPrime"), std::string::npos);
  EXPECT_NE(out.find("NumberProducer"), std::string::npos);
  EXPECT_NE(out.find("Found workflows"), std::string::npos);
  EXPECT_NE(out.find("isprime_wf"), std::string::npos);
}

TEST_F(CliTest, RegisterUnknownWorkflowListsAvailable) {
  std::string out = Run("register_workflow nope.py");
  EXPECT_NE(out.find("isprime_wf.py"), std::string::npos);
  EXPECT_NE(out.find("anomaly_wf.py"), std::string::npos);
}

TEST_F(CliTest, ListShowsRegistryContents) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("list");
  EXPECT_NE(out.find("Processing Elements:"), std::string::npos);
  EXPECT_NE(out.find("IsPrime"), std::string::npos);
  EXPECT_NE(out.find("Workflows:"), std::string::npos);
}

TEST_F(CliTest, RunWorkflowByName) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("run isprime_wf -i 20");
  EXPECT_NE(out.find("is prime"), std::string::npos);
  EXPECT_NE(out.find("Run complete:"), std::string::npos);
}

TEST_F(CliTest, RunWorkflowByIdWithMulti) {
  Run("register_workflow isprime_wf.py");
  Result<WorkflowInfo> wf = laminar_.client->GetWorkflowByName("isprime_wf");
  ASSERT_TRUE(wf.ok());
  std::string out =
      Run("run " + std::to_string(wf->id) + " -i 10 --multi 9");
  EXPECT_NE(out.find("Run complete:"), std::string::npos);
}

TEST_F(CliTest, RunDynamic) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("run isprime_wf -i 5 --dynamic");
  EXPECT_NE(out.find("Run complete:"), std::string::npos);
}

TEST_F(CliTest, RunMissingWorkflowReportsError) {
  std::string out = Run("run ghost_wf -i 5");
  EXPECT_NE(out.find("NOT_FOUND"), std::string::npos);
}

TEST_F(CliTest, LiteralSearchTableOutput) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("literal_search pe prime");
  EXPECT_NE(out.find("IsPrime"), std::string::npos);
}

TEST_F(CliTest, SemanticSearchHeaderMatchesPaper) {
  Run("register_workflow anomaly_wf.py");
  std::string out =
      Run("semantic_search pe \"a pe that is able to detect anomalies\"");
  EXPECT_NE(out.find("Performing semantic search on pe"), std::string::npos);
  EXPECT_NE(out.find("cosine_similarity"), std::string::npos);
  EXPECT_NE(out.find("Anomaly"), std::string::npos);
}

TEST_F(CliTest, CodeRecommendationFig9) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("code_recommendation pe \"random.randint(1, 1000)\"");
  EXPECT_NE(out.find("NumberProducer"), std::string::npos);
  std::string wf_out =
      Run("code_recommendation workflow \"random.randint(1, 1000)\"");
  EXPECT_NE(wf_out.find("isprime_wf"), std::string::npos);
  EXPECT_NE(wf_out.find("occurrences"), std::string::npos);
}

TEST_F(CliTest, CodeRecommendationLlmMode) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run(
      "code_recommendation pe \"random.randint(1, 1000)\" "
      "--embedding_type llm");
  EXPECT_NE(out.find("NumberProducer"), std::string::npos);
}

TEST_F(CliTest, DescribeShowsCode) {
  Run("register_workflow isprime_wf.py");
  Result<PeInfo> pe = laminar_.client->GetPeByName("IsPrime");
  ASSERT_TRUE(pe.ok());
  std::string out = Run("describe " + std::to_string(pe->id));
  EXPECT_NE(out.find("class IsPrime"), std::string::npos);
}

TEST_F(CliTest, UpdateDescriptionAndRemove) {
  Run("register_workflow isprime_wf.py");
  Result<PeInfo> pe = laminar_.client->GetPeByName("IsPrime");
  ASSERT_TRUE(pe.ok());
  std::string out = Run("update_pe_description " + std::to_string(pe->id) +
                        " checks primality fast");
  EXPECT_NE(out.find("updated"), std::string::npos);
  EXPECT_EQ(laminar_.client->GetPe(pe->id)->description,
            "checks primality fast");
  out = Run("remove_pe " + std::to_string(pe->id));
  EXPECT_NE(out.find("Removed."), std::string::npos);
  EXPECT_FALSE(laminar_.client->GetPe(pe->id).ok());
}

TEST_F(CliTest, RemoveAllClears) {
  Run("register_workflow isprime_wf.py");
  std::string out = Run("remove_all");
  EXPECT_NE(out.find("Registry cleared."), std::string::npos);
  EXPECT_EQ(Run("list").find("IsPrime"), std::string::npos);
}

TEST_F(CliTest, RunLoopReadsUntilQuit) {
  std::istringstream in("help\nquit\n");
  std::ostringstream out;
  cli_->RunLoop(in, out);
  EXPECT_NE(out.str().find("Welcome to the Laminar CLI"), std::string::npos);
  EXPECT_NE(out.str().find("(laminar)"), std::string::npos);
}

TEST_F(CliTest, QuotedTokenizationKeepsSnippetsIntact) {
  Run("register_workflow isprime_wf.py");
  // Spaces inside the quoted snippet must not split it.
  std::string out =
      Run("code_recommendation pe 'return random.randint(1, 1000)'");
  EXPECT_NE(out.find("NumberProducer"), std::string::npos);
}

}  // namespace
}  // namespace laminar::client
