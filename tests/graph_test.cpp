#include <gtest/gtest.h>

#include "dataflow/graph.hpp"
#include "dataflow/pe_library.hpp"

namespace laminar::dataflow {
namespace {

WorkflowGraph IsPrimeGraph() {
  WorkflowGraph g("isprime_wf");
  auto& producer = g.AddPE<NumberProducer>(42);
  auto& isprime = g.AddPE<IsPrime>();
  auto& printer = g.AddPE<PrintPrime>();
  EXPECT_TRUE(g.Connect(producer, isprime).ok());
  EXPECT_TRUE(g.Connect(isprime, printer).ok());
  return g;
}

TEST(Pe, PortDeclarations) {
  IsPrime pe;
  EXPECT_TRUE(pe.HasInputPort(kDefaultInput));
  EXPECT_TRUE(pe.HasOutputPort(kDefaultOutput));
  EXPECT_FALSE(pe.HasInputPort("nope"));
  EXPECT_FALSE(pe.IsProducer());
  NumberProducer producer;
  EXPECT_TRUE(producer.IsProducer());
}

TEST(Pe, CloneIsIndependent) {
  WordCounter counter;
  counter.state()["counts"]["x"] = 3;
  std::unique_ptr<ProcessingElement> clone = counter.Clone();
  clone->state()["counts"]["x"] = 7;
  EXPECT_EQ(counter.state().at("counts").GetInt("x"), 3);
  EXPECT_EQ(clone->state().at("counts").GetInt("x"), 7);
  EXPECT_TRUE(clone->stateful());
}

TEST(Pe, SetupRecordsRank) {
  IsPrime pe;
  pe.Setup(3, 8);
  EXPECT_EQ(pe.rank(), 3);
  EXPECT_EQ(pe.num_ranks(), 8);
}

TEST(Graph, ConnectValidatesPorts) {
  WorkflowGraph g;
  size_t a = g.Add(std::make_unique<NumberProducer>());
  size_t b = g.Add(std::make_unique<IsPrime>());
  EXPECT_TRUE(g.Connect(a, kDefaultOutput, b, kDefaultInput).ok());
  EXPECT_FALSE(g.Connect(a, "bogus", b, kDefaultInput).ok());
  EXPECT_FALSE(g.Connect(a, kDefaultOutput, b, "bogus").ok());
  EXPECT_FALSE(g.Connect(a, kDefaultOutput, 99, kDefaultInput).ok());
}

TEST(Graph, ConnectByReferenceRequiresOwnership) {
  WorkflowGraph g;
  auto& owned = g.AddPE<IsPrime>();
  IsPrime foreign;
  EXPECT_FALSE(g.Connect(foreign, owned).ok());
}

TEST(Graph, EdgesQueries) {
  WorkflowGraph g = IsPrimeGraph();
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_EQ(g.Edges().size(), 2u);
  EXPECT_EQ(g.OutgoingEdges(0, kDefaultOutput).size(), 1u);
  EXPECT_EQ(g.IncomingEdges(2).size(), 1u);
  EXPECT_EQ(g.Producers(), (std::vector<size_t>{0}));
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  WorkflowGraph g = IsPrimeGraph();
  Result<std::vector<size_t>> topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value(), (std::vector<size_t>{0, 1, 2}));
}

TEST(Graph, DiamondTopology) {
  WorkflowGraph g;
  auto& src = g.AddPE<NumberProducer>();
  auto& left = g.AddPE<IsPrime>();
  auto& right = g.AddPE<CpuBurn>(100);
  auto& sink = g.AddPE<NullSink>();
  ASSERT_TRUE(g.Connect(src, left).ok());
  ASSERT_TRUE(g.Connect(src, right).ok());
  ASSERT_TRUE(g.Connect(left, sink).ok());
  ASSERT_TRUE(g.Connect(right, sink).ok());
  EXPECT_TRUE(g.Validate().ok());
  Result<std::vector<size_t>> topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->front(), 0u);
  EXPECT_EQ(topo->back(), 3u);
}

TEST(Graph, ValidateRejectsEmpty) {
  WorkflowGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Graph, ValidateRejectsNoProducer) {
  WorkflowGraph g;
  auto& a = g.AddPE<IsPrime>();
  auto& b = g.AddPE<PrintPrime>();
  ASSERT_TRUE(g.Connect(a, b).ok());
  Status st = g.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("producer"), std::string::npos);
}

TEST(Graph, ValidateRejectsUnreachableNode) {
  WorkflowGraph g;
  auto& producer = g.AddPE<NumberProducer>();
  auto& connected = g.AddPE<NullSink>();
  g.AddPE<NumberProducer>();      // a second producer is fine
  auto& orphan = g.AddPE<IsPrime>();  // unreachable AND unfed
  ASSERT_TRUE(g.Connect(producer, connected).ok());
  Status st = g.Validate();
  EXPECT_FALSE(st.ok());
  (void)orphan;
}

TEST(Graph, ValidateRejectsUnconnectedInputPort) {
  WorkflowGraph g;
  g.AddPE<NumberProducer>();
  g.AddPE<IsPrime>();  // input port never fed
  // IsPrime unreachable too; either message is acceptable, must fail.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Grouping, Factories) {
  EXPECT_EQ(Grouping::Shuffle().type, GroupingType::kShuffle);
  Grouping by = Grouping::GroupBy("word");
  EXPECT_EQ(by.type, GroupingType::kGroupBy);
  EXPECT_EQ(by.key, "word");
  EXPECT_EQ(Grouping::OneToAll().type, GroupingType::kOneToAll);
  EXPECT_EQ(Grouping::AllToOne().type, GroupingType::kAllToOne);
}

TEST(FunctionPe, WrapsPlainFunction) {
  FunctionPE pe([](const Value& v) -> std::optional<Value> {
    int64_t n = v.as_int();
    if (n % 2 == 0) return Value(n * 10);
    return std::nullopt;
  });
  struct CollectEmitter : Emitter {
    std::vector<Value> emitted;
    void Emit(std::string_view, Value v) override { emitted.push_back(std::move(v)); }
    void Log(std::string_view) override {}
  } emitter;
  pe.Process(kDefaultInput, Value(4), emitter);
  pe.Process(kDefaultInput, Value(5), emitter);
  ASSERT_EQ(emitter.emitted.size(), 1u);
  EXPECT_EQ(emitter.emitted[0].as_int(), 40);
}

}  // namespace
}  // namespace laminar::dataflow
