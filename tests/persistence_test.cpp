// Persistence-layer tests for ISSUE 5: per-table dirty tracking, atomic
// tmp+rename snapshots, the write-ahead log (append, replay, compaction),
// and crash-shaped recovery (torn WAL tail, interrupted save).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "registry/database.hpp"
#include "registry/repository.hpp"
#include "registry/schema.hpp"

namespace laminar::registry {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TableSchema ItemsSchema() {
  TableSchema schema;
  schema.name = "items";
  schema.columns = {{"name", ColumnType::kString, false},
                    {"score", ColumnType::kInt, true}};
  schema.indexed_columns = {"name"};
  return schema;
}

Row MakeItem(const std::string& name, int64_t score) {
  Row row = Value::MakeObject();
  row["name"] = name;
  row["score"] = score;
  return row;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_path_ = TempPath("laminar_persist_snap.json");
    wal_path_ = TempPath("laminar_persist_wal.jsonl");
    fs::remove(snapshot_path_);
    fs::remove(snapshot_path_ + ".tmp");
    fs::remove(wal_path_);
    fs::remove(wal_path_ + ".tmp");
  }

  std::string snapshot_path_;
  std::string wal_path_;
};

TEST_F(PersistenceTest, GetTablePreservesCreationOrderWithHashLookup) {
  Database db;
  for (const char* name : {"zeta", "alpha", "middle"}) {
    TableSchema schema = ItemsSchema();
    schema.name = name;
    ASSERT_TRUE(db.CreateTable(std::move(schema)).ok());
  }
  EXPECT_EQ(db.TableNames(),
            (std::vector<std::string>{"zeta", "alpha", "middle"}));
  EXPECT_NE(db.GetTable("alpha"), nullptr);
  EXPECT_EQ(db.GetTable("alpha")->schema().name, "alpha");
  EXPECT_EQ(db.GetTable("missing"), nullptr);
  // Duplicate creation is rejected (the slot map must stay consistent).
  TableSchema dup = ItemsSchema();
  dup.name = "alpha";
  EXPECT_FALSE(db.CreateTable(std::move(dup)).ok());
}

TEST_F(PersistenceTest, AtomicSaveLeavesNoTempFile) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("a", 1)).ok());
  ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
  EXPECT_TRUE(fs::exists(snapshot_path_));
  // No temp droppings under any suffix (temp names are unique per write).
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    EXPECT_NE(entry.path().string().rfind(snapshot_path_ + ".tmp", 0), 0u)
        << "leftover temp file: " << entry.path();
  }

  Database loaded;
  ASSERT_TRUE(loaded.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(loaded.LoadFromFile(snapshot_path_).ok());
  std::vector<Row> rows = loaded.GetTable("items")->All();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("name"), "a");
}

TEST_F(PersistenceTest, DirtyTrackingKeepsRepeatedSavesCorrect) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("first", 1)).ok());
  ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());

  // Second save with no mutations: cached text must serialize identically.
  const std::string first_doc = ReadAll(snapshot_path_);
  ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
  EXPECT_EQ(ReadAll(snapshot_path_), first_doc);

  // A mutation invalidates the cache: the new row must reach disk.
  ASSERT_TRUE(db.Insert("items", MakeItem("second", 2)).ok());
  ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
  Database loaded;
  ASSERT_TRUE(loaded.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(loaded.LoadFromFile(snapshot_path_).ok());
  EXPECT_EQ(loaded.GetTable("items")->size(), 2u);
  EXPECT_EQ(loaded.GetTable("items")->FindBy("name", Value("second")).size(),
            1u);
}

TEST_F(PersistenceTest, CaptureUnderSharedAccessThenWriteOffLock) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("captured", 1)).ok());
  Database::Snapshot snapshot = db.CaptureSnapshot();
  // Mutations after the capture are not part of the snapshot.
  ASSERT_TRUE(db.Insert("items", MakeItem("later", 2)).ok());
  ASSERT_TRUE(db.WriteSnapshot(std::move(snapshot), snapshot_path_).ok());

  Database loaded;
  ASSERT_TRUE(loaded.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(loaded.LoadFromFile(snapshot_path_).ok());
  EXPECT_EQ(loaded.GetTable("items")->size(), 1u);
}

TEST_F(PersistenceTest, WalReplayRecoversWithoutSnapshot) {
  {
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.EnableWal(wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("walled", 7)).ok());
    Result<int64_t> gone = db.Insert("items", MakeItem("erased", 8));
    ASSERT_TRUE(gone.ok());
    ASSERT_TRUE(db.Erase("items", gone.value()).ok());
    ASSERT_TRUE(db.Update("items", 1, MakeItem("walled", 9)).ok());
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  std::vector<Row> rows = recovered.GetTable("items")->All();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("name"), "walled");
  EXPECT_EQ(rows[0].GetInt("score"), 9);
  // Recovery re-enables the log; ids continue past the replayed ones.
  Result<int64_t> next = recovered.Insert("items", MakeItem("fresh", 1));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 3);
}

TEST_F(PersistenceTest, SnapshotPlusWalSuffixRecoversBoth) {
  {
    // First boot: Recover on empty disk declares the recovery snapshot
    // path, so saves back to it may compact the log.
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.Recover(snapshot_path_, wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("in_snapshot", 1)).ok());
    ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
    // The save compacts the log down to the un-snapshotted suffix.
    EXPECT_EQ(ReadAll(wal_path_), "");
    ASSERT_TRUE(db.Insert("items", MakeItem("after_snapshot", 2)).ok());
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  Table* items = recovered.GetTable("items");
  EXPECT_EQ(items->size(), 2u);
  EXPECT_EQ(items->FindBy("name", Value("in_snapshot")).size(), 1u);
  EXPECT_EQ(items->FindBy("name", Value("after_snapshot")).size(), 1u);
}

TEST_F(PersistenceTest, TornWalTailEndsReplayWithoutError) {
  {
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.EnableWal(wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("intact", 1)).ok());
  }
  {
    // A crash mid-append leaves a truncated trailing line.
    std::ofstream out(wal_path_, std::ios::app);
    out << "{\"seq\":2,\"table\":\"items\",\"op\":\"ins";
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  EXPECT_EQ(recovered.GetTable("items")->size(), 1u);
}

TEST_F(PersistenceTest, InterruptedSaveLeavesOldSnapshotLoadable) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("good", 1)).ok());
  ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
  {
    // A crash between tmp-write and rename leaves a torn .tmp behind; the
    // published snapshot must be untouched by it.
    std::ofstream out(snapshot_path_ + ".tmp");
    out << "{\"items\": {\"next_id\": 99, \"rows\": [{\"id\"";
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.LoadFromFile(snapshot_path_).ok());
  std::vector<Row> rows = recovered.GetTable("items")->All();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("name"), "good");
  fs::remove(snapshot_path_ + ".tmp");
}

TEST_F(PersistenceTest, LoadsPreWalSnapshotsWithoutSeqKey) {
  // Snapshots written before the WAL existed have no "__wal_seq" root key.
  {
    std::ofstream out(snapshot_path_);
    out << "{\"items\": {\"next_id\": 3, \"rows\": "
           "[{\"id\": 1, \"name\": \"legacy\", \"score\": 4}]}}";
  }
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.LoadFromFile(snapshot_path_).ok());
  std::vector<Row> rows = db.GetTable("items")->All();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("name"), "legacy");
}

TEST_F(PersistenceTest, ClearReplaysThroughWal) {
  {
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.EnableWal(wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("doomed", 1)).ok());
    db.GetTable("items")->Clear();
    ASSERT_TRUE(db.Insert("items", MakeItem("survivor", 2)).ok());
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  std::vector<Row> rows = recovered.GetTable("items")->All();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("name"), "survivor");
}

TEST_F(PersistenceTest, MutationsAfterRecoverySurviveTheNextRecovery) {
  {
    // First boot: nothing on disk yet.
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.Recover(snapshot_path_, wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("snapshotted", 1)).ok());
    ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());  // covers seq 1
    ASSERT_TRUE(db.Insert("items", MakeItem("suffix", 2)).ok());
  }
  {
    // Second boot replays "suffix", then keeps mutating. The live WAL
    // sequence must continue past both the snapshot's sequence and every
    // replayed record; a writer restarting at seq 1 would log this insert
    // with an already-covered number and the next recovery would skip it.
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.Recover(snapshot_path_, wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("post_recovery", 3)).ok());
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  Table* items = recovered.GetTable("items");
  EXPECT_EQ(items->size(), 3u);
  EXPECT_EQ(items->FindBy("name", Value("post_recovery")).size(), 1u);
}

TEST_F(PersistenceTest, SaveToAnotherPathLeavesWalIntact) {
  const std::string side_path = TempPath("laminar_persist_side.json");
  fs::remove(side_path);
  {
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.Recover(snapshot_path_, wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("only_in_wal", 1)).ok());
    // An ad-hoc save elsewhere must not compact: its copy of the row is
    // not the one the next Recover() reads.
    ASSERT_TRUE(db.SaveToFile(side_path).ok());
    EXPECT_NE(ReadAll(wal_path_), "");
  }
  // Crash right after the side save: the row must still recover from the
  // configured snapshot+WAL pair.
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(recovered.Recover(snapshot_path_, wal_path_).ok());
  EXPECT_EQ(
      recovered.GetTable("items")->FindBy("name", Value("only_in_wal")).size(),
      1u);
  fs::remove(side_path);
}

TEST_F(PersistenceTest, FullLaminarSchemaRoundTripsThroughRecovery) {
  {
    Database db;
    ASSERT_TRUE(CreateLaminarSchema(db).ok());
    ASSERT_TRUE(db.EnableWal(wal_path_).ok());
    Repository repo(db);
    ASSERT_TRUE(repo.CreateUser("alice", "pw").ok());
    PeRecord pe;
    pe.name = "Walled";
    pe.code = "class Walled:\n    pass\n";
    pe.description = "a recovered PE";
    ASSERT_TRUE(repo.CreatePe(pe).ok());
    ASSERT_TRUE(db.SaveToFile(snapshot_path_).ok());
    PeRecord pe2 = pe;
    pe2.name = "Suffix";
    ASSERT_TRUE(repo.CreatePe(pe2).ok());
  }
  Database db;
  ASSERT_TRUE(CreateLaminarSchema(db).ok());
  ASSERT_TRUE(db.Recover(snapshot_path_, wal_path_).ok());
  Repository repo(db);
  EXPECT_TRUE(repo.GetUserByName("alice").ok());
  EXPECT_TRUE(repo.GetPeByName("Walled").ok());
  EXPECT_TRUE(repo.GetPeByName("Suffix").ok());
}

TEST_F(PersistenceTest, MidFileWalCorruptionFailsRecoveryLoudly) {
  // Regression (ISSUE 9 satellite): an unparseable record with INTACT
  // records after it is not a crash-torn tail — replaying past the hole
  // would silently drop committed mutations. Recovery must refuse.
  {
    Database db;
    ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
    ASSERT_TRUE(db.EnableWal(wal_path_).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("first", 1)).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("second", 2)).ok());
    ASSERT_TRUE(db.Insert("items", MakeItem("third", 3)).ok());
  }
  // Corrupt the MIDDLE record in place (seq 2), leaving seq 3 intact.
  std::string log = ReadAll(wal_path_);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < log.size()) {
    size_t end = log.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(log.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  lines[1] = lines[1].substr(0, lines[1].size() / 2);  // mangle seq 2
  {
    std::ofstream out(wal_path_, std::ios::trunc);
    for (const std::string& line : lines) out << line << "\n";
  }
  Database recovered;
  ASSERT_TRUE(recovered.CreateTable(ItemsSchema()).ok());
  Status st = recovered.Recover(snapshot_path_, wal_path_);
  ASSERT_FALSE(st.ok()) << "mid-file corruption must not recover silently";
  // The error names the offending line and the last good sequence.
  EXPECT_NE(st.ToString().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("last good seq 1"), std::string::npos)
      << st.ToString();
}

TEST_F(PersistenceTest, PerRecordFsyncKeepsDurableSeqCurrent) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  WalOptions options;
  options.fsync = WalFsyncMode::kPerRecord;
  ASSERT_TRUE(db.EnableWal(wal_path_, options).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("durable", 1)).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("also", 2)).ok());
  WalStatus ws = db.wal_status();
  EXPECT_TRUE(ws.enabled);
  EXPECT_EQ(ws.fsync_mode, "per_record");
  EXPECT_EQ(ws.appended_seq, 2u);
  EXPECT_EQ(ws.durable_seq, 2u);  // every append fsynced before returning
  EXPECT_EQ(ws.records, 2u);
  EXPECT_GT(ws.bytes, 0u);
}

TEST_F(PersistenceTest, IntervalFsyncCatchesUpInBackground) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  WalOptions options;
  options.fsync = WalFsyncMode::kInterval;
  options.fsync_interval_ms = 5;
  ASSERT_TRUE(db.EnableWal(wal_path_, options).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("buffered", 1)).ok());
  // The append itself never waits on disk; the flusher advances
  // durable_seq within a few intervals.
  bool durable = false;
  for (int i = 0; i < 200 && !durable; ++i) {
    durable = db.wal_status().durable_seq >= 1;
    if (!durable) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(durable) << "interval flusher never advanced durable_seq";
  EXPECT_EQ(db.wal_status().fsync_mode, "interval");
}

TEST_F(PersistenceTest, DefaultFsyncModeReportsNoneAndZeroDurable) {
  Database db;
  ASSERT_TRUE(db.CreateTable(ItemsSchema()).ok());
  ASSERT_TRUE(db.EnableWal(wal_path_).ok());
  ASSERT_TRUE(db.Insert("items", MakeItem("lazy", 1)).ok());
  WalStatus ws = db.wal_status();
  EXPECT_EQ(ws.fsync_mode, "none");
  EXPECT_EQ(ws.appended_seq, 1u);
  EXPECT_EQ(ws.durable_seq, 0u);  // nothing fsynced: durability unknown
}

}  // namespace
}  // namespace laminar::registry
