// SQ8 scalar quantization for the vector-search row store (ISSUE 10).
//
// Each float32 row is mirrored as int8 codes plus a per-row affine pair
// (scale, offset): x_i ~= offset + scale * code_i, with codes in
// [-127, 127] fitted to the row's own min/max. A query is quantized once
// per search, symmetrically (q_i ~= qscale * qcode_i), and the approximate
// similarity folds into one exact integer kernel plus two scalar terms:
//
//   dot(q, x) ~= qscale * (scale * DotI8(qcodes, codes) + offset * qsum)
//
// where qsum = sum(qcode_i) is precomputed with the query. The int8 path is
// exact integer arithmetic, so every dispatch tier produces the same
// approximate score; the only error is the quantization itself, which the
// caller absorbs with an over-fetched exact float32 rerank (VectorIndex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/simd.hpp"

namespace laminar::simd {

/// Pointer view over a caller-owned SQ8 row block (node-major codes plus
/// per-row scale/offset side arrays) — the shape VectorIndex stores and
/// HnswIndex::SearchSq8 traverses.
struct Sq8View {
  const int8_t* codes = nullptr;  ///< n_rows * dims, row-major
  const float* scales = nullptr;  ///< per-row scale
  const float* offsets = nullptr;  ///< per-row offset
  size_t dims = 0;
};

/// A query quantized for scoring against an Sq8View.
struct Sq8Query {
  std::vector<int8_t> codes;
  float scale = 0.0f;     ///< q_i ~= scale * codes[i]
  int32_t code_sum = 0;   ///< sum of codes (pairs with the row offsets)
};

/// Quantizes one row of `dims` floats into `codes` (caller-sized) and its
/// affine (scale, offset). A constant row (max == min) gets scale 0 and
/// all-zero codes, reconstructing exactly.
void QuantizeRow(const float* row, size_t dims, int8_t* codes, float* scale,
                 float* offset);

/// Quantizes a query symmetrically into `out` (codes resized to dims).
/// A zero query yields scale 0 / all-zero codes, scoring 0 everywhere.
void QuantizeQuery(const float* query, size_t dims, Sq8Query* out);

/// Approximate dot product of a quantized query against row `node` of the
/// view, via the dispatched int8 kernel.
inline float Sq8Score(const Sq8Query& q, const Sq8View& view, size_t node) {
  const int8_t* codes = view.codes + node * view.dims;
  const float i8 = static_cast<float>(DotI8(q.codes.data(), codes, view.dims));
  return q.scale * (view.scales[node] * i8 +
                    view.offsets[node] * static_cast<float>(q.code_sum));
}

}  // namespace laminar::simd
