#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define LAMINAR_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define LAMINAR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace laminar::simd {
namespace {

// ---------------------------------------------------------------------------
// x86 tiers. Each kernel carries a target attribute instead of relying on
// global -mavx* flags, so one binary holds every tier and the dispatcher
// picks at runtime — non-AVX hosts never execute a VEX instruction.
// Tails stay scalar on purpose: masked loads would be faster by a cycle or
// two but read (hardware-suppressed) bytes past the buffer, which sanitizer
// builds flag; the kernel suite runs under address,undefined.
// ---------------------------------------------------------------------------
#if LAMINAR_SIMD_X86

__attribute__((target("avx2,fma"))) inline float DotAvx2Row(const float* a,
                                                            const float* b,
                                                            size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  __m256 acc =
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  __m128 s =
      _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  float sum = _mm_cvtss_f32(s);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b, size_t n) {
  return DotAvx2Row(a, b, n);
}

__attribute__((target("avx2,fma"))) void DotBatchAvx2(const float* query,
                                                      const float* rows,
                                                      size_t n_rows,
                                                      size_t dims,
                                                      float* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = DotAvx2Row(query, rows + r * dims, dims);
  }
}

__attribute__((target("avx2"))) inline int32_t DotI8Avx2Row(const int8_t* a,
                                                            const int8_t* b,
                                                            size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // 16 int8 -> 16 int16 each side; madd multiplies int16 pairs into exact
    // int32 partial sums (|-128 * -128| * 2 fits int32 with headroom).
    const __m256i wa = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i wb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  int32_t sum = _mm_cvtsi128_si32(s);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

__attribute__((target("avx2"))) int32_t DotI8Avx2(const int8_t* a,
                                                  const int8_t* b, size_t n) {
  return DotI8Avx2Row(a, b, n);
}

__attribute__((target("avx512f"))) inline float DotAvx512Row(const float* a,
                                                             const float* b,
                                                             size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float sum = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx512f"))) float DotAvx512(const float* a,
                                                   const float* b, size_t n) {
  return DotAvx512Row(a, b, n);
}

__attribute__((target("avx512f"))) void DotBatchAvx512(const float* query,
                                                       const float* rows,
                                                       size_t n_rows,
                                                       size_t dims,
                                                       float* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = DotAvx512Row(query, rows + r * dims, dims);
  }
}

__attribute__((target("avx512f,avx512bw"))) int32_t DotI8Avx512(
    const int8_t* a, const int8_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i wa = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m512i wb = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(wa, wb));
  }
  int32_t sum = static_cast<int32_t>(_mm512_reduce_add_epi32(acc));
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

#endif  // LAMINAR_SIMD_X86

// ---------------------------------------------------------------------------
// NEON tier (aarch64: the ISA is baseline, no runtime probe needed).
// ---------------------------------------------------------------------------
#if LAMINAR_SIMD_NEON

inline float DotNeonRow(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum =
      vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float DotNeon(const float* a, const float* b, size_t n) {
  return DotNeonRow(a, b, n);
}

void DotBatchNeon(const float* query, const float* rows, size_t n_rows,
                  size_t dims, float* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = DotNeonRow(query, rows + r * dims, dims);
  }
}

int32_t DotI8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    acc = vpadalq_s16(vpadalq_s16(acc, lo), hi);
  }
  int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

#endif  // LAMINAR_SIMD_NEON

float DotScalarImpl(const float* a, const float* b, size_t n) {
  return DotScalar(a, b, n);
}

void DotBatchScalar(const float* query, const float* rows, size_t n_rows,
                    size_t dims, float* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = DotScalar(query, rows + r * dims, dims);
  }
}

int32_t DotI8ScalarImpl(const int8_t* a, const int8_t* b, size_t n) {
  return DotI8Scalar(a, b, n);
}

using DotFn = float (*)(const float*, const float*, size_t);
using DotBatchFn = void (*)(const float*, const float*, size_t, size_t,
                            float*);
using DotI8Fn = int32_t (*)(const int8_t*, const int8_t*, size_t);

struct KernelTable {
  DotFn dot = &DotScalarImpl;
  DotBatchFn dot_batch = &DotBatchScalar;
  DotI8Fn dot_i8 = &DotI8ScalarImpl;
  Tier tier = Tier::kScalar;
};

KernelTable TableFor(Tier tier) {
  KernelTable t;
  switch (tier) {
#if LAMINAR_SIMD_X86
    case Tier::kAvx512:
      t = {&DotAvx512, &DotBatchAvx512, &DotI8Avx512, Tier::kAvx512};
      break;
    case Tier::kAvx2:
      t = {&DotAvx2, &DotBatchAvx2, &DotI8Avx2, Tier::kAvx2};
      break;
#endif
#if LAMINAR_SIMD_NEON
    case Tier::kNeon:
      t = {&DotNeon, &DotBatchNeon, &DotI8Neon, Tier::kNeon};
      break;
#endif
    default:
      break;  // scalar defaults already in place
  }
  return t;
}

Tier Detect() {
#if LAMINAR_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
  return Tier::kScalar;
#elif LAMINAR_SIMD_NEON
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

Tier ParseTierName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(name, "neon") == 0) return Tier::kNeon;
  if (std::strcmp(name, "avx2") == 0) return Tier::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return Tier::kAvx512;
  return Detect();  // "auto" or anything unrecognized
}

/// Clamp a requested tier to hardware support. Requests for a different
/// architecture's tier (e.g. neon on x86) fall back to scalar rather than
/// silently upgrading.
Tier Clamp(Tier requested) {
  const Tier detected = Detect();
  if (requested == Tier::kScalar) return Tier::kScalar;
  if (requested == detected) return requested;
#if LAMINAR_SIMD_X86
  if (requested == Tier::kAvx2 && detected == Tier::kAvx512) {
    return Tier::kAvx2;  // narrower x86 tier on a wider x86 host is fine
  }
#endif
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    return detected;  // asked for wider than the host has
  }
  return Tier::kScalar;
}

/// The active kernel table. Initialized on first use (honoring LAMINAR_SIMD)
/// and replaced wholesale by SetTier. Individual function-pointer loads are
/// relaxed atomics so first-use races between readers are benign — every
/// candidate value is a valid kernel.
std::atomic<const KernelTable*> g_table{nullptr};

const KernelTable* InitTable() {
  static KernelTable storage;  // process-lifetime; SetTier rewrites it
  Tier tier = Detect();
  if (const char* env = std::getenv("LAMINAR_SIMD")) {
    tier = Clamp(ParseTierName(env));
  }
  storage = TableFor(tier);
  const KernelTable* expected = nullptr;
  g_table.compare_exchange_strong(expected, &storage,
                                  std::memory_order_acq_rel);
  return g_table.load(std::memory_order_acquire);
}

inline const KernelTable* Table() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  return t != nullptr ? t : InitTable();
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kNeon:
      return "neon";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

Tier DetectedTier() { return Detect(); }

Tier ActiveTier() { return Table()->tier; }

Tier SetTier(Tier tier) {
  const Tier chosen = Clamp(tier);
  const KernelTable* current = Table();  // ensures storage exists
  // Rewrite the single process-wide table in place: not safe against
  // concurrently executing kernels (documented), but keeps every later
  // reader on one coherent table without allocation.
  *const_cast<KernelTable*>(current) = TableFor(chosen);
  return chosen;
}

float Dot(const float* a, const float* b, size_t n) {
  return Table()->dot(a, b, n);
}

void DotBatch(const float* query, const float* rows, size_t n_rows,
              size_t dims, float* out) {
  Table()->dot_batch(query, rows, n_rows, dims, out);
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return Table()->dot_i8(a, b, n);
}

}  // namespace laminar::simd
