// Runtime-dispatched SIMD kernels for the vector search hot path (ISSUE 10).
//
// Every semantic query — flat scan, HNSW beam search, and the exact rerank —
// funnels through one dot-product kernel, so this layer detects the widest
// vector unit the host offers (AVX-512F/BW, AVX2+FMA, or NEON) once at
// startup and routes three kernels through it:
//
//   Dot       one float32 dot product
//   DotBatch  one query against N contiguous float32 rows
//   DotI8     int8 x int8 -> int32 (the SQ8 quantized-row kernel; exact
//             integer arithmetic, so every tier returns the same value)
//
// The portable fallback is the same 4x-unrolled scalar loop the codebase has
// always used (embed::DotUnrolled's arithmetic, replicated here as DotScalar
// so laminar_simd has no dependencies). Float results may differ from the
// scalar tier in the final ULPs on AVX tiers (FMA contracts the
// multiply-add), but a given tier is deterministic: the same inputs always
// produce the same bits, and DotBatch row i is bit-identical to Dot on that
// row — the property the exact-rerank parity contract rests on.
//
// Dispatch is process-wide. The environment variable LAMINAR_SIMD
// (scalar|avx2|avx512|neon|auto) pins a tier at startup — the force-scalar
// override the kernel test suite runs under — and SetTier() does the same
// programmatically for benches. SetTier is not safe concurrently with
// in-flight kernels; call it at startup or from single-threaded test/bench
// code only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace laminar::simd {

/// Instruction-set tiers, widest last. Ordering is meaningful: dispatch
/// picks the largest supported value.
enum class Tier {
  kScalar = 0,  ///< portable 4x-unrolled loop (always available)
  kNeon = 1,    ///< aarch64 NEON (128-bit)
  kAvx2 = 2,    ///< x86 AVX2 + FMA (256-bit)
  kAvx512 = 3,  ///< x86 AVX-512 F+BW (512-bit)
};

/// "scalar" | "neon" | "avx2" | "avx512".
const char* TierName(Tier tier);

/// Widest tier this CPU supports (scalar when nothing wider is available).
Tier DetectedTier();

/// The tier kernels currently dispatch to. Resolved on first use from
/// DetectedTier() clamped by the LAMINAR_SIMD environment override.
Tier ActiveTier();

/// Forces dispatch onto `tier`, clamped to what the CPU supports; returns
/// the tier actually selected. kScalar always succeeds. Not thread-safe
/// against concurrently running kernels.
Tier SetTier(Tier tier);

/// Portable scalar reference kernel: byte-for-byte the arithmetic of
/// embed::DotUnrolled (four independent accumulators, scalar tail), kept
/// inline here so the scalar tier and the parity tests share one definition.
inline float DotScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Scalar int8 reference: plain int32 accumulation, exact.
inline int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

/// Dispatched float32 dot product over `n` elements (no alignment
/// requirement on either pointer).
float Dot(const float* a, const float* b, size_t n);

/// Dispatched one-query-vs-N-rows scan: out[i] = Dot(query, rows + i*dims)
/// bit-for-bit (each row runs through the same per-row kernel as Dot).
void DotBatch(const float* query, const float* rows, size_t n_rows,
              size_t dims, float* out);

/// Dispatched int8 x int8 -> int32 dot product; exact on every tier.
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

}  // namespace laminar::simd
