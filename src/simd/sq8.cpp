#include "simd/sq8.hpp"

#include <algorithm>
#include <cmath>

namespace laminar::simd {

void QuantizeRow(const float* row, size_t dims, int8_t* codes, float* scale,
                 float* offset) {
  float lo = row[0], hi = row[0];
  for (size_t i = 1; i < dims; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  const float mid = 0.5f * (lo + hi);
  const float half = hi - mid;  // >= 0
  if (!(half > 0.0f)) {
    // Constant row: codes 0 everywhere, offset carries the value exactly.
    std::fill(codes, codes + dims, static_cast<int8_t>(0));
    *scale = 0.0f;
    *offset = mid;
    return;
  }
  const float s = half / 127.0f;
  const float inv = 127.0f / half;
  for (size_t i = 0; i < dims; ++i) {
    const float c = std::round((row[i] - mid) * inv);
    codes[i] = static_cast<int8_t>(
        std::clamp(c, -127.0f, 127.0f));
  }
  *scale = s;
  *offset = mid;
}

void QuantizeQuery(const float* query, size_t dims, Sq8Query* out) {
  out->codes.resize(dims);
  float amax = 0.0f;
  for (size_t i = 0; i < dims; ++i) amax = std::max(amax, std::fabs(query[i]));
  if (!(amax > 0.0f)) {
    std::fill(out->codes.begin(), out->codes.end(), static_cast<int8_t>(0));
    out->scale = 0.0f;
    out->code_sum = 0;
    return;
  }
  const float inv = 127.0f / amax;
  int32_t sum = 0;
  for (size_t i = 0; i < dims; ++i) {
    const float c = std::round(query[i] * inv);
    const int8_t code =
        static_cast<int8_t>(std::clamp(c, -127.0f, 127.0f));
    out->codes[i] = code;
    sum += code;
  }
  out->scale = amax / 127.0f;
  out->code_sum = sum;
}

}  // namespace laminar::simd
