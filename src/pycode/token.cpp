#include "pycode/token.hpp"

#include <array>
#include <algorithm>

namespace laminar::pycode {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kName: return "NAME";
    case TokenType::kKeyword: return "KEYWORD";
    case TokenType::kNumber: return "NUMBER";
    case TokenType::kString: return "STRING";
    case TokenType::kOp: return "OP";
    case TokenType::kNewline: return "NEWLINE";
    case TokenType::kIndent: return "INDENT";
    case TokenType::kDedent: return "DEDENT";
    case TokenType::kEnd: return "END";
  }
  return "?";
}

bool IsPythonKeyword(std::string_view word) {
  static constexpr std::array<std::string_view, 35> kKeywords = {
      "False",  "None",   "True",    "and",    "as",     "assert", "async",
      "await",  "break",  "class",   "continue", "def",  "del",    "elif",
      "else",   "except", "finally", "for",    "from",   "global", "if",
      "import", "in",     "is",      "lambda", "nonlocal", "not",  "or",
      "pass",   "raise",  "return",  "try",    "while",  "with",   "yield"};
  return std::find(kKeywords.begin(), kKeywords.end(), word) != kKeywords.end();
}

}  // namespace laminar::pycode
