#include "pycode/ast.hpp"

namespace laminar::pycode {
namespace {

void SExprInto(std::string& out, const Node& node) {
  if (node.leaf) {
    switch (node.token.type) {
      case TokenType::kNewline: out += "<NL>"; return;
      case TokenType::kIndent: out += "<IND>"; return;
      case TokenType::kDedent: out += "<DED>"; return;
      case TokenType::kEnd: out += "<END>"; return;
      default: out += node.token.text; return;
    }
  }
  out += '(';
  out += node.kind;
  for (const auto& c : node.children) {
    out += ' ';
    SExprInto(out, *c);
  }
  out += ')';
}

}  // namespace

std::string Node::ToSExpr() const {
  std::string out;
  SExprInto(out, *this);
  return out;
}

}  // namespace laminar::pycode
