// Token model for the Python-subset front end.
//
// Laminar 2.0 used ANTLR-generated Python lexers/parsers to build parse
// trees for Aroma. We replace that generated code with a hand-written,
// dependency-free lexer producing the same token classes a grammar-based
// lexer would: names, keywords, literals, operators, and the INDENT/DEDENT/
// NEWLINE structure tokens Python's grammar needs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace laminar::pycode {

enum class TokenType {
  kName,      ///< identifier (not a keyword)
  kKeyword,   ///< def, class, if, return, ...
  kNumber,    ///< integer/float literal, original spelling kept
  kString,    ///< string literal including quotes/prefix
  kOp,        ///< operator or punctuation, e.g. "+", "**=", "("
  kNewline,   ///< logical line end
  kIndent,    ///< indentation increase
  kDedent,    ///< indentation decrease
  kEnd,       ///< end of input
};

std::string_view TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< source spelling ("" for INDENT/DEDENT/END)
  int line = 0;      ///< 1-based source line
  int col = 0;       ///< 0-based source column

  bool Is(TokenType t) const { return type == t; }
  bool Is(TokenType t, std::string_view s) const {
    return type == t && text == s;
  }
  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOp(std::string_view op) const {
    return type == TokenType::kOp && text == op;
  }
};

/// True for Python keywords recognized by the subset grammar.
bool IsPythonKeyword(std::string_view word);

}  // namespace laminar::pycode
