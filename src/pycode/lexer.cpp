#include "pycode/lexer.hpp"

#include <array>
#include <cctype>
#include <string>

namespace laminar::pycode {
namespace {

// Multi-character operators, longest first so maximal munch works by probing
// in order.
constexpr std::array<std::string_view, 24> kOps3 = {
    "**=", "//=", ">>=", "<<=", "...",
    // 2-char (probed after 3-char)
    "**", "//", ">>", "<<", "<=", ">=", "==", "!=", "->", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", ":=", "@="};

constexpr std::string_view kSingleOps = "+-*/%@<>=&|^~()[]{},:.;";

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { indents_.push_back(0); }

  Result<std::vector<Token>> Run() {
    while (true) {
      Status st = LexLine();
      if (!st.ok()) return st;
      if (at_end_emitted_) break;
    }
    return std::move(tokens_);
  }

 private:
  bool Eof() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 0;
    } else {
      ++col_;
    }
    return c;
  }

  void Emit(TokenType type, std::string text, int line, int col) {
    tokens_.push_back(Token{type, std::move(text), line, col});
  }

  Status ErrorAt(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", col " + std::to_string(col_));
  }

  // Lexes one physical-line-start: handles indentation, then tokens until a
  // logical newline (respecting bracket nesting and line continuations).
  Status LexLine() {
    if (Eof()) {
      FinishIndents();
      return Status::Ok();
    }
    // Measure indentation of this physical line.
    int indent = 0;
    size_t scan = pos_;
    while (scan < src_.size() && (src_[scan] == ' ' || src_[scan] == '\t')) {
      indent += src_[scan] == '\t' ? 8 - (indent % 8) : 1;
      ++scan;
    }
    // Blank line or comment-only line: skip entirely (no NEWLINE token).
    if (scan >= src_.size() || src_[scan] == '\n' || src_[scan] == '#' ||
        src_[scan] == '\r') {
      while (!Eof() && Peek() != '\n') Advance();
      if (!Eof()) Advance();  // consume '\n'
      if (Eof()) FinishIndents();
      return Status::Ok();
    }
    // Apply indentation tokens.
    while (pos_ < scan) Advance();
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      Emit(TokenType::kIndent, "", line_, col_);
    } else {
      while (indent < indents_.back()) {
        indents_.pop_back();
        Emit(TokenType::kDedent, "", line_, col_);
      }
      if (indent != indents_.back()) {
        return ErrorAt("inconsistent dedent");
      }
    }
    // Lex tokens until logical end of line.
    while (true) {
      if (Eof()) {
        Emit(TokenType::kNewline, "", line_, col_);
        FinishIndents();
        return Status::Ok();
      }
      char c = Peek();
      if (c == '\n') {
        Advance();
        if (bracket_depth_ == 0) {
          Emit(TokenType::kNewline, "", line_, col_);
          if (Eof()) FinishIndents();
          return Status::Ok();
        }
        continue;  // implicit joining inside brackets
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
        continue;
      }
      if (c == '#') {
        while (!Eof() && Peek() != '\n') Advance();
        continue;
      }
      if (c == '\\' && Peek(1) == '\n') {  // explicit continuation
        Advance();
        Advance();
        continue;
      }
      Status st = LexToken();
      if (!st.ok()) return st;
    }
  }

  void FinishIndents() {
    if (at_end_emitted_) return;
    while (indents_.back() > 0) {
      indents_.pop_back();
      Emit(TokenType::kDedent, "", line_, col_);
    }
    Emit(TokenType::kEnd, "", line_, col_);
    at_end_emitted_ = true;
  }

  Status LexToken() {
    int tline = line_;
    int tcol = col_;
    char c = Peek();
    unsigned char uc = static_cast<unsigned char>(c);

    // String literal (with optional prefix letters r/b/f/u in any case).
    if (c == '"' || c == '\'') return LexString("", tline, tcol);
    if (std::isalpha(uc) || c == '_') {
      size_t start = pos_;
      while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
        Advance();
      }
      std::string word(src_.substr(start, pos_ - start));
      if ((Peek() == '"' || Peek() == '\'') && word.size() <= 2 &&
          IsStringPrefix(word)) {
        return LexString(word, tline, tcol);
      }
      TokenType type =
          IsPythonKeyword(word) ? TokenType::kKeyword : TokenType::kName;
      Emit(type, std::move(word), tline, tcol);
      return Status::Ok();
    }
    if (std::isdigit(uc) || (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexNumber(tline, tcol);
    }
    // Operators: try 3-char, then 2-char, then 1-char.
    for (std::string_view op : kOps3) {
      if (op.size() <= src_.size() - pos_ && src_.substr(pos_, op.size()) == op) {
        for (size_t i = 0; i < op.size(); ++i) Advance();
        UpdateBrackets(op);
        Emit(TokenType::kOp, std::string(op), tline, tcol);
        return Status::Ok();
      }
    }
    if (kSingleOps.find(c) != std::string_view::npos) {
      Advance();
      std::string op(1, c);
      UpdateBrackets(op);
      Emit(TokenType::kOp, std::move(op), tline, tcol);
      return Status::Ok();
    }
    return ErrorAt(std::string("unexpected character '") + c + "'");
  }

  static bool IsStringPrefix(std::string_view word) {
    for (char c : word) {
      char l = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (l != 'r' && l != 'b' && l != 'f' && l != 'u') return false;
    }
    return true;
  }

  void UpdateBrackets(std::string_view op) {
    if (op == "(" || op == "[" || op == "{") ++bracket_depth_;
    if ((op == ")" || op == "]" || op == "}") && bracket_depth_ > 0) {
      --bracket_depth_;
    }
  }

  Status LexString(const std::string& prefix, int tline, int tcol) {
    std::string text = prefix;
    char quote = Peek();
    bool triple = Peek(1) == quote && Peek(2) == quote;
    int n = triple ? 3 : 1;
    for (int i = 0; i < n; ++i) text += Advance();
    while (true) {
      if (Eof()) return ErrorAt("unterminated string literal");
      char c = Peek();
      if (c == '\\') {
        text += Advance();
        if (Eof()) return ErrorAt("unterminated escape in string");
        text += Advance();
        continue;
      }
      if (!triple && c == '\n') return ErrorAt("newline in string literal");
      if (c == quote) {
        if (!triple) {
          text += Advance();
          break;
        }
        if (Peek(1) == quote && Peek(2) == quote) {
          for (int i = 0; i < 3; ++i) text += Advance();
          break;
        }
      }
      text += Advance();
    }
    Emit(TokenType::kString, std::move(text), tline, tcol);
    return Status::Ok();
  }

  Status LexNumber(int tline, int tcol) {
    size_t start = pos_;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X' || Peek(1) == 'o' ||
                          Peek(1) == 'O' || Peek(1) == 'b' || Peek(1) == 'B')) {
      Advance();
      Advance();
      while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
        Advance();
      }
    } else {
      while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
        Advance();
      }
      if (Peek() == '.') {
        Advance();
        while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      }
      if (Peek() == 'e' || Peek() == 'E') {
        size_t save = pos_;
        Advance();
        if (Peek() == '+' || Peek() == '-') Advance();
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
        } else {
          pos_ = save;  // 'e' belongs to a following name, unusual but safe
        }
      }
      if (Peek() == 'j' || Peek() == 'J') Advance();  // complex literal
    }
    Emit(TokenType::kNumber, std::string(src_.substr(start, pos_ - start)),
         tline, tcol);
    return Status::Ok();
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 0;
  int bracket_depth_ = 0;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
  bool at_end_emitted_ = false;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace laminar::pycode
