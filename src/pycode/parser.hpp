// Recursive-descent parser for the Python subset used by Laminar PEs.
//
// Covers everything the corpus generator, the example PEs and typical
// dispel4py code need: classes, functions (plain & decorated), all common
// statements, full expression grammar with comprehensions, slices, lambdas,
// starred args, and chained comparisons.
//
// Two entry points:
//  * Parse        — strict; any syntax error is reported.
//  * ParseLenient — for partial snippets (Aroma queries with dropped code):
//    falls back to per-logical-line fragment trees for unparseable regions so
//    that feature extraction still sees most of the structure, mirroring how
//    Aroma handles incomplete code.
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "pycode/ast.hpp"

namespace laminar::pycode {

/// Strict parse of a complete module.
Result<NodePtr> Parse(std::string_view source);

/// Parse that never fails on syntactically broken snippets: regions that do
/// not parse become flat "fragment" nodes holding their tokens. Returns an
/// error only if the input produces no tokens at all.
Result<NodePtr> ParseLenient(std::string_view source);

}  // namespace laminar::pycode
