// Parse-tree model for the Python subset.
//
// Unlike a semantic AST, this is a *parse tree* in Aroma's sense: every
// source token survives as a leaf, and internal nodes carry the grammar-rule
// name. Aroma's simplified parse trees (SPTs) are derived from this shape by
// keeping keyword/operator leaves verbatim and generalizing the rest.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pycode/token.hpp"

namespace laminar::pycode {

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  /// Grammar rule name for internal nodes ("func_def", "call", ...);
  /// empty for leaves.
  std::string kind;
  /// Valid iff leaf.
  Token token;
  bool leaf = false;
  std::vector<NodePtr> children;

  static NodePtr Leaf(Token t) {
    auto n = std::make_unique<Node>();
    n->leaf = true;
    n->token = std::move(t);
    return n;
  }
  static NodePtr Internal(std::string k) {
    auto n = std::make_unique<Node>();
    n->kind = std::move(k);
    return n;
  }

  void Add(NodePtr child) { children.push_back(std::move(child)); }
  void AddLeaf(Token t) { children.push_back(Leaf(std::move(t))); }

  /// First source line covered by this subtree (0 if empty).
  int FirstLine() const {
    if (leaf) return token.line;
    for (const auto& c : children) {
      int l = c->FirstLine();
      if (l) return l;
    }
    return 0;
  }
  /// Last source line covered by this subtree (0 if empty).
  int LastLine() const {
    if (leaf) return token.line;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      int l = (*it)->LastLine();
      if (l) return l;
    }
    return 0;
  }

  /// Pre-order visit over all nodes (including leaves).
  void Visit(const std::function<void(const Node&)>& fn) const {
    fn(*this);
    for (const auto& c : children) c->Visit(fn);
  }

  /// Number of nodes in the subtree.
  size_t TreeSize() const {
    size_t n = 1;
    for (const auto& c : children) n += c->TreeSize();
    return n;
  }

  /// Collects leaf tokens left-to-right.
  void CollectTokens(std::vector<const Token*>& out) const {
    if (leaf) {
      out.push_back(&token);
      return;
    }
    for (const auto& c : children) c->CollectTokens(out);
  }

  /// Multi-line structural dump for debugging and parser tests:
  /// internal nodes as "(kind child child)", leaves as their spelling.
  std::string ToSExpr() const;
};

}  // namespace laminar::pycode
