// Python-subset lexer: indentation-aware tokenization with implicit line
// joining inside brackets, comments, and single/triple-quoted strings.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "pycode/token.hpp"

namespace laminar::pycode {

/// Tokenizes `source`. On success the stream always ends with kEnd and is
/// balanced: every kIndent has a matching kDedent. Errors report line/col.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace laminar::pycode
