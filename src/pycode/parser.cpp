#include "pycode/parser.hpp"

#include <stdexcept>
#include <utility>

#include "pycode/lexer.hpp"

namespace laminar::pycode {
namespace {

/// Internal control-flow exception; converted to Status at the API boundary.
struct ParseErrorEx : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, bool lenient)
      : tokens_(std::move(tokens)), lenient_(lenient) {}

  NodePtr ParseModule() {
    auto module = Node::Internal("module");
    while (!At(TokenType::kEnd)) {
      if (At(TokenType::kNewline)) {  // stray blank logical lines
        ++pos_;
        continue;
      }
      module->Add(ParseStatementRecovering());
    }
    return module;
  }

 private:
  // ---- token cursor ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenType t) const { return Peek().type == t; }
  bool AtOp(std::string_view op) const { return Peek().IsOp(op); }
  bool AtKw(std::string_view kw) const { return Peek().IsKeyword(kw); }
  Token Take() { return tokens_[pos_ < tokens_.size() ? pos_++ : pos_]; }

  [[noreturn]] void Fail(const std::string& msg) const {
    const Token& t = Peek();
    throw ParseErrorEx(msg + " (got " + std::string(TokenTypeName(t.type)) +
                       " '" + t.text + "' at line " + std::to_string(t.line) +
                       ")");
  }

  Token ExpectOp(std::string_view op) {
    if (!AtOp(op)) Fail("expected '" + std::string(op) + "'");
    return Take();
  }
  Token ExpectKw(std::string_view kw) {
    if (!AtKw(kw)) Fail("expected keyword '" + std::string(kw) + "'");
    return Take();
  }
  Token ExpectName() {
    if (!At(TokenType::kName)) Fail("expected identifier");
    return Take();
  }
  void ExpectNewline(Node& into) {
    (void)into;
    if (At(TokenType::kNewline)) {
      Take();  // structure tokens stay out of the tree
      return;
    }
    if (At(TokenType::kEnd) && lenient_) return;  // truncated snippet
    if (AtOp(";")) return;  // handled by caller loop
    Fail("expected end of line");
  }

  // ---- statement-level recovery (lenient mode) ----
  NodePtr ParseStatementRecovering() {
    if (!lenient_) return ParseStatement();
    size_t start = pos_;
    try {
      return ParseStatement();
    } catch (const ParseErrorEx&) {
      pos_ = start;
      auto frag = Node::Internal("fragment");
      // Consume tokens through the end of this logical line; swallow
      // structure tokens so the outer loop stays aligned. Dropped code can
      // leave a bracket unbalanced, which makes the lexer join every
      // following physical line into this logical one — so also stop when
      // the *physical* line changes, keeping later lines recoverable.
      int frag_line = Peek().line;
      while (!At(TokenType::kEnd)) {
        if (Peek().type != TokenType::kNewline && Peek().line > frag_line &&
            !frag->children.empty()) {
          break;  // next physical line: give the parser another chance
        }
        Token t = Take();
        if (t.type == TokenType::kNewline) break;
        if (t.type == TokenType::kIndent || t.type == TokenType::kDedent) continue;
        frag->AddLeaf(std::move(t));
      }
      if (frag->children.empty()) {
        // Guarantee progress even on a structure-only line.
        if (!At(TokenType::kEnd)) ++pos_;
      }
      return frag;
    }
  }

  // ---- statements ----
  NodePtr ParseStatement() {
    if (AtOp("@")) return ParseDecorated();
    if (AtKw("def")) return ParseFuncDef();
    if (AtKw("class")) return ParseClassDef();
    if (AtKw("if")) return ParseIf();
    if (AtKw("while")) return ParseWhile();
    if (AtKw("for")) return ParseFor();
    if (AtKw("try")) return ParseTry();
    if (AtKw("with")) return ParseWith();
    if (AtKw("async")) return ParseAsync();
    return ParseSimpleStatementLine();
  }

  NodePtr ParseAsync() {
    auto node = Node::Internal("async_stmt");
    node->AddLeaf(ExpectKw("async"));
    if (AtKw("def")) node->Add(ParseFuncDef());
    else if (AtKw("for")) node->Add(ParseFor());
    else if (AtKw("with")) node->Add(ParseWith());
    else Fail("expected def/for/with after 'async'");
    return node;
  }

  NodePtr ParseDecorated() {
    auto node = Node::Internal("decorated");
    while (AtOp("@")) {
      auto dec = Node::Internal("decorator");
      dec->AddLeaf(ExpectOp("@"));
      dec->Add(ParseAtomExpr());  // dotted name with optional call
      ExpectNewline(*dec);
      node->Add(std::move(dec));
    }
    if (AtKw("def")) node->Add(ParseFuncDef());
    else if (AtKw("class")) node->Add(ParseClassDef());
    else if (AtKw("async")) node->Add(ParseAsync());
    else Fail("expected def or class after decorator");
    return node;
  }

  NodePtr ParseFuncDef() {
    auto node = Node::Internal("func_def");
    node->AddLeaf(ExpectKw("def"));
    node->AddLeaf(ExpectName());
    node->Add(ParseParams());
    if (AtOp("->")) {
      auto ret = Node::Internal("return_annotation");
      ret->AddLeaf(Take());
      ret->Add(ParseTest());
      node->Add(std::move(ret));
    }
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    return node;
  }

  NodePtr ParseParams() {
    auto params = Node::Internal("params");
    params->AddLeaf(ExpectOp("("));
    bool first = true;
    while (!AtOp(")")) {
      if (!first) params->AddLeaf(ExpectOp(","));
      first = false;
      if (AtOp(")")) break;  // trailing comma
      auto param = Node::Internal("param");
      if (AtOp("*") || AtOp("**")) param->AddLeaf(Take());
      if (At(TokenType::kName)) param->AddLeaf(Take());
      if (AtOp(":")) {  // annotation
        param->AddLeaf(Take());
        param->Add(ParseTest());
      }
      if (AtOp("=")) {  // default
        param->AddLeaf(Take());
        param->Add(ParseTest());
      }
      params->Add(std::move(param));
    }
    params->AddLeaf(ExpectOp(")"));
    return params;
  }

  NodePtr ParseClassDef() {
    auto node = Node::Internal("class_def");
    node->AddLeaf(ExpectKw("class"));
    node->AddLeaf(ExpectName());
    if (AtOp("(")) {
      auto bases = Node::Internal("bases");
      bases->AddLeaf(Take());
      bool first = true;
      while (!AtOp(")")) {
        if (!first) bases->AddLeaf(ExpectOp(","));
        first = false;
        if (AtOp(")")) break;
        // allow keyword args (metaclass=...)
        if (At(TokenType::kName) && Peek(1).IsOp("=")) {
          auto kw = Node::Internal("kwarg");
          kw->AddLeaf(Take());
          kw->AddLeaf(Take());
          kw->Add(ParseTest());
          bases->Add(std::move(kw));
        } else {
          bases->Add(ParseTest());
        }
      }
      bases->AddLeaf(ExpectOp(")"));
      node->Add(std::move(bases));
    }
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    return node;
  }

  NodePtr ParseIf() {
    auto node = Node::Internal("if_stmt");
    node->AddLeaf(ExpectKw("if"));
    node->Add(ParseTest());
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    while (AtKw("elif")) {
      auto clause = Node::Internal("elif_clause");
      clause->AddLeaf(Take());
      clause->Add(ParseTest());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    if (AtKw("else")) {
      auto clause = Node::Internal("else_clause");
      clause->AddLeaf(Take());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    return node;
  }

  NodePtr ParseWhile() {
    auto node = Node::Internal("while_stmt");
    node->AddLeaf(ExpectKw("while"));
    node->Add(ParseTest());
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    if (AtKw("else")) {
      auto clause = Node::Internal("else_clause");
      clause->AddLeaf(Take());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    return node;
  }

  NodePtr ParseFor() {
    auto node = Node::Internal("for_stmt");
    node->AddLeaf(ExpectKw("for"));
    node->Add(ParseTargetList());
    node->AddLeaf(ExpectKw("in"));
    node->Add(ParseTestList());
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    if (AtKw("else")) {
      auto clause = Node::Internal("else_clause");
      clause->AddLeaf(Take());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    return node;
  }

  NodePtr ParseTry() {
    auto node = Node::Internal("try_stmt");
    node->AddLeaf(ExpectKw("try"));
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    while (AtKw("except")) {
      auto clause = Node::Internal("except_clause");
      clause->AddLeaf(Take());
      if (!AtOp(":")) {
        clause->Add(ParseTest());
        if (AtKw("as")) {
          clause->AddLeaf(Take());
          clause->AddLeaf(ExpectName());
        }
      }
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    if (AtKw("else")) {
      auto clause = Node::Internal("else_clause");
      clause->AddLeaf(Take());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    if (AtKw("finally")) {
      auto clause = Node::Internal("finally_clause");
      clause->AddLeaf(Take());
      clause->AddLeaf(ExpectOp(":"));
      clause->Add(ParseSuite());
      node->Add(std::move(clause));
    }
    return node;
  }

  NodePtr ParseWith() {
    auto node = Node::Internal("with_stmt");
    node->AddLeaf(ExpectKw("with"));
    while (true) {
      auto item = Node::Internal("with_item");
      item->Add(ParseTest());
      if (AtKw("as")) {
        item->AddLeaf(Take());
        item->Add(ParseTarget());
      }
      node->Add(std::move(item));
      if (AtOp(",")) {
        node->AddLeaf(Take());
        continue;
      }
      break;
    }
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseSuite());
    return node;
  }

  NodePtr ParseSuite() {
    auto suite = Node::Internal("suite");
    if (At(TokenType::kNewline)) {
      Take();  // NEWLINE (structure tokens stay out of the tree)
      if (!At(TokenType::kIndent)) {
        if (lenient_) return suite;  // truncated: empty body
        Fail("expected indented block");
      }
      Take();  // INDENT
      while (!At(TokenType::kDedent) && !At(TokenType::kEnd)) {
        if (At(TokenType::kNewline)) {
          Take();
          continue;
        }
        suite->Add(ParseStatementRecovering());
      }
      if (At(TokenType::kDedent)) Take();
      return suite;
    }
    // Inline suite: simple statements on the same line.
    suite->Add(ParseSimpleStatementLine());
    return suite;
  }

  /// One logical line of ';'-separated simple statements.
  NodePtr ParseSimpleStatementLine() {
    auto line = Node::Internal("stmt_line");
    while (true) {
      line->Add(ParseSmallStatement());
      if (AtOp(";")) {
        line->AddLeaf(Take());
        if (At(TokenType::kNewline)) break;
        continue;
      }
      break;
    }
    ExpectNewline(*line);
    // A single-statement line collapses to the statement itself: keeps trees
    // compact and SPT features focused.
    if (line->children.size() == 1) return std::move(line->children[0]);
    return line;
  }

  NodePtr ParseSmallStatement() {
    if (AtKw("return")) {
      auto node = Node::Internal("return_stmt");
      node->AddLeaf(Take());
      if (!At(TokenType::kNewline) && !AtOp(";") && !At(TokenType::kEnd)) {
        node->Add(ParseTestList());
      }
      return node;
    }
    if (AtKw("pass") || AtKw("break") || AtKw("continue")) {
      auto node = Node::Internal(Peek().text + "_stmt");
      node->AddLeaf(Take());
      return node;
    }
    if (AtKw("import")) return ParseImport();
    if (AtKw("from")) return ParseFromImport();
    if (AtKw("raise")) {
      auto node = Node::Internal("raise_stmt");
      node->AddLeaf(Take());
      if (!At(TokenType::kNewline) && !AtOp(";") && !At(TokenType::kEnd)) {
        node->Add(ParseTest());
        if (AtKw("from")) {
          node->AddLeaf(Take());
          node->Add(ParseTest());
        }
      }
      return node;
    }
    if (AtKw("assert")) {
      auto node = Node::Internal("assert_stmt");
      node->AddLeaf(Take());
      node->Add(ParseTest());
      if (AtOp(",")) {
        node->AddLeaf(Take());
        node->Add(ParseTest());
      }
      return node;
    }
    if (AtKw("global") || AtKw("nonlocal")) {
      auto node = Node::Internal(Peek().text + "_stmt");
      node->AddLeaf(Take());
      node->AddLeaf(ExpectName());
      while (AtOp(",")) {
        node->AddLeaf(Take());
        node->AddLeaf(ExpectName());
      }
      return node;
    }
    if (AtKw("del")) {
      auto node = Node::Internal("del_stmt");
      node->AddLeaf(Take());
      node->Add(ParseTargetList());
      return node;
    }
    if (AtKw("yield")) {
      auto node = Node::Internal("yield_stmt");
      node->Add(ParseYieldExpr());
      return node;
    }
    return ParseExprStatement();
  }

  NodePtr ParseImport() {
    auto node = Node::Internal("import_stmt");
    node->AddLeaf(ExpectKw("import"));
    while (true) {
      node->Add(ParseDottedName());
      if (AtKw("as")) {
        node->AddLeaf(Take());
        node->AddLeaf(ExpectName());
      }
      if (AtOp(",")) {
        node->AddLeaf(Take());
        continue;
      }
      break;
    }
    return node;
  }

  NodePtr ParseFromImport() {
    auto node = Node::Internal("from_import_stmt");
    node->AddLeaf(ExpectKw("from"));
    while (AtOp(".")) node->AddLeaf(Take());  // relative import dots
    if (At(TokenType::kName)) node->Add(ParseDottedName());
    node->AddLeaf(ExpectKw("import"));
    if (AtOp("*")) {
      node->AddLeaf(Take());
      return node;
    }
    bool paren = AtOp("(");
    if (paren) node->AddLeaf(Take());
    while (true) {
      node->AddLeaf(ExpectName());
      if (AtKw("as")) {
        node->AddLeaf(Take());
        node->AddLeaf(ExpectName());
      }
      if (AtOp(",")) {
        node->AddLeaf(Take());
        if (paren && AtOp(")")) break;
        continue;
      }
      break;
    }
    if (paren) node->AddLeaf(ExpectOp(")"));
    return node;
  }

  NodePtr ParseDottedName() {
    auto node = Node::Internal("dotted_name");
    node->AddLeaf(ExpectName());
    while (AtOp(".") && Peek(1).Is(TokenType::kName)) {
      node->AddLeaf(Take());
      node->AddLeaf(Take());
    }
    if (node->children.size() == 1) return std::move(node->children[0]);
    return node;
  }

  NodePtr ParseExprStatement() {
    NodePtr first = ParseTestListStar();
    // Annotated assignment: target ':' type ['=' value]
    if (AtOp(":")) {
      auto node = Node::Internal("ann_assign");
      node->Add(std::move(first));
      node->AddLeaf(Take());
      node->Add(ParseTest());
      if (AtOp("=")) {
        node->AddLeaf(Take());
        node->Add(ParseTestListStar());
      }
      return node;
    }
    static constexpr std::string_view kAug[] = {
        "+=", "-=", "*=", "/=", "//=", "%=", "**=",
        ">>=", "<<=", "&=", "|=", "^=", "@="};
    for (std::string_view op : kAug) {
      if (AtOp(op)) {
        auto node = Node::Internal("aug_assign");
        node->Add(std::move(first));
        node->AddLeaf(Take());
        node->Add(ParseTestListStar());
        return node;
      }
    }
    if (AtOp("=")) {
      auto node = Node::Internal("assign");
      node->Add(std::move(first));
      while (AtOp("=")) {
        node->AddLeaf(Take());
        node->Add(ParseTestListStar());
      }
      return node;
    }
    auto node = Node::Internal("expr_stmt");
    node->Add(std::move(first));
    return node;
  }

  // ---- targets ----
  NodePtr ParseTarget() { return ParseAtomExpr(); }

  NodePtr ParseTargetList() {
    auto list = Node::Internal("target_list");
    if (AtOp("(")) {  // tuple-target in parens
      list->AddLeaf(Take());
      list->Add(ParseTargetList());
      list->AddLeaf(ExpectOp(")"));
      return list;
    }
    list->Add(ParseTarget());
    while (AtOp(",")) {
      list->AddLeaf(Take());
      if (AtKw("in") || AtOp("=") || At(TokenType::kNewline)) break;
      list->Add(ParseTarget());
    }
    if (list->children.size() == 1) return std::move(list->children[0]);
    return list;
  }

  // ---- expressions ----
  NodePtr ParseTestList() {
    NodePtr first = ParseTest();
    if (!AtOp(",")) return first;
    auto tuple = Node::Internal("tuple");
    tuple->Add(std::move(first));
    while (AtOp(",")) {
      tuple->AddLeaf(Take());
      if (EndsExpression()) break;
      tuple->Add(ParseTest());
    }
    return tuple;
  }

  /// Like ParseTestList but allows leading '*' items (assignment RHS).
  NodePtr ParseTestListStar() {
    NodePtr first = ParseTestStar();
    if (!AtOp(",")) return first;
    auto tuple = Node::Internal("tuple");
    tuple->Add(std::move(first));
    while (AtOp(",")) {
      tuple->AddLeaf(Take());
      if (EndsExpression()) break;
      tuple->Add(ParseTestStar());
    }
    return tuple;
  }

  NodePtr ParseTestStar() {
    if (AtOp("*")) {
      auto node = Node::Internal("star_expr");
      node->AddLeaf(Take());
      node->Add(ParseTest());
      return node;
    }
    return ParseTest();
  }

  bool EndsExpression() const {
    return At(TokenType::kNewline) || At(TokenType::kEnd) || AtOp(")") ||
           AtOp("]") || AtOp("}") || AtOp("=") || AtOp(":") || AtOp(";");
  }

  NodePtr ParseTest() {
    if (AtKw("lambda")) return ParseLambda();
    NodePtr expr = ParseOrTest();
    if (AtKw("if")) {
      auto node = Node::Internal("ternary");
      node->Add(std::move(expr));
      node->AddLeaf(Take());
      node->Add(ParseOrTest());
      node->AddLeaf(ExpectKw("else"));
      node->Add(ParseTest());
      return node;
    }
    return expr;
  }

  NodePtr ParseLambda() {
    auto node = Node::Internal("lambda");
    node->AddLeaf(ExpectKw("lambda"));
    auto params = Node::Internal("params");
    bool first = true;
    while (!AtOp(":")) {
      if (!first) params->AddLeaf(ExpectOp(","));
      first = false;
      auto param = Node::Internal("param");
      if (AtOp("*") || AtOp("**")) param->AddLeaf(Take());
      param->AddLeaf(ExpectName());
      if (AtOp("=")) {
        param->AddLeaf(Take());
        param->Add(ParseTest());
      }
      params->Add(std::move(param));
    }
    node->Add(std::move(params));
    node->AddLeaf(ExpectOp(":"));
    node->Add(ParseTest());
    return node;
  }

  NodePtr ParseYieldExpr() {
    auto node = Node::Internal("yield_expr");
    node->AddLeaf(ExpectKw("yield"));
    if (AtKw("from")) {
      node->AddLeaf(Take());
      node->Add(ParseTest());
    } else if (!EndsExpression() && !AtOp(",")) {
      node->Add(ParseTestList());
    }
    return node;
  }

  NodePtr ParseOrTest() {
    NodePtr left = ParseAndTest();
    while (AtKw("or")) {
      auto node = Node::Internal("or_expr");
      node->Add(std::move(left));
      node->AddLeaf(Take());
      node->Add(ParseAndTest());
      left = std::move(node);
    }
    return left;
  }

  NodePtr ParseAndTest() {
    NodePtr left = ParseNotTest();
    while (AtKw("and")) {
      auto node = Node::Internal("and_expr");
      node->Add(std::move(left));
      node->AddLeaf(Take());
      node->Add(ParseNotTest());
      left = std::move(node);
    }
    return left;
  }

  NodePtr ParseNotTest() {
    if (AtKw("not")) {
      auto node = Node::Internal("not_expr");
      node->AddLeaf(Take());
      node->Add(ParseNotTest());
      return node;
    }
    return ParseComparison();
  }

  bool AtCompOp() const {
    return AtOp("<") || AtOp(">") || AtOp("==") || AtOp("!=") || AtOp("<=") ||
           AtOp(">=") || AtKw("in") || AtKw("is") ||
           (AtKw("not") && Peek(1).IsKeyword("in"));
  }

  NodePtr ParseComparison() {
    NodePtr left = ParseBitOr();
    if (!AtCompOp()) return left;
    auto node = Node::Internal("comparison");
    node->Add(std::move(left));
    while (AtCompOp()) {
      if (AtKw("not")) {  // not in
        node->AddLeaf(Take());
        node->AddLeaf(ExpectKw("in"));
      } else if (AtKw("is")) {
        node->AddLeaf(Take());
        if (AtKw("not")) node->AddLeaf(Take());
      } else {
        node->AddLeaf(Take());
      }
      node->Add(ParseBitOr());
    }
    return node;
  }

  NodePtr ParseBinaryLevel(const std::vector<std::string_view>& ops,
                           NodePtr (Parser::*next)()) {
    NodePtr left = (this->*next)();
    while (true) {
      bool matched = false;
      for (std::string_view op : ops) {
        if (AtOp(op)) {
          auto node = Node::Internal("bin_op");
          node->Add(std::move(left));
          node->AddLeaf(Take());
          node->Add((this->*next)());
          left = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return left;
    }
  }

  NodePtr ParseBitOr() { return ParseBinaryLevel({"|"}, &Parser::ParseBitXor); }
  NodePtr ParseBitXor() { return ParseBinaryLevel({"^"}, &Parser::ParseBitAnd); }
  NodePtr ParseBitAnd() { return ParseBinaryLevel({"&"}, &Parser::ParseShift); }
  NodePtr ParseShift() {
    return ParseBinaryLevel({"<<", ">>"}, &Parser::ParseArith);
  }
  NodePtr ParseArith() {
    return ParseBinaryLevel({"+", "-"}, &Parser::ParseTerm);
  }
  NodePtr ParseTerm() {
    return ParseBinaryLevel({"*", "/", "//", "%", "@"}, &Parser::ParseFactor);
  }

  NodePtr ParseFactor() {
    if (AtOp("+") || AtOp("-") || AtOp("~")) {
      auto node = Node::Internal("unary_op");
      node->AddLeaf(Take());
      node->Add(ParseFactor());
      return node;
    }
    return ParsePower();
  }

  NodePtr ParsePower() {
    NodePtr base = ParseAwait();
    if (AtOp("**")) {
      auto node = Node::Internal("power");
      node->Add(std::move(base));
      node->AddLeaf(Take());
      node->Add(ParseFactor());
      return node;
    }
    return base;
  }

  NodePtr ParseAwait() {
    if (AtKw("await")) {
      auto node = Node::Internal("await_expr");
      node->AddLeaf(Take());
      node->Add(ParseAtomExpr());
      return node;
    }
    return ParseAtomExpr();
  }

  NodePtr ParseAtomExpr() {
    NodePtr atom = ParseAtom();
    while (true) {
      if (AtOp("(")) {
        auto call = Node::Internal("call");
        call->Add(std::move(atom));
        call->Add(ParseCallArgs());
        atom = std::move(call);
      } else if (AtOp("[")) {
        auto sub = Node::Internal("subscript");
        sub->Add(std::move(atom));
        sub->AddLeaf(Take());
        sub->Add(ParseSubscriptList());
        sub->AddLeaf(ExpectOp("]"));
        atom = std::move(sub);
      } else if (AtOp(".") && Peek(1).Is(TokenType::kName)) {
        auto attr = Node::Internal("attribute");
        attr->Add(std::move(atom));
        attr->AddLeaf(Take());
        attr->AddLeaf(Take());
        atom = std::move(attr);
      } else {
        return atom;
      }
    }
  }

  NodePtr ParseCallArgs() {
    auto args = Node::Internal("args");
    args->AddLeaf(ExpectOp("("));
    bool first = true;
    while (!AtOp(")")) {
      if (!first) args->AddLeaf(ExpectOp(","));
      first = false;
      if (AtOp(")")) break;  // trailing comma
      if (AtOp("*") || AtOp("**")) {
        auto star = Node::Internal("star_arg");
        star->AddLeaf(Take());
        star->Add(ParseTest());
        args->Add(std::move(star));
        continue;
      }
      if (At(TokenType::kName) && Peek(1).IsOp("=")) {
        auto kw = Node::Internal("kwarg");
        kw->AddLeaf(Take());
        kw->AddLeaf(Take());
        kw->Add(ParseTest());
        args->Add(std::move(kw));
        continue;
      }
      NodePtr value = ParseTest();
      if (AtKw("for")) {  // generator expression argument
        auto comp = Node::Internal("comprehension");
        comp->Add(std::move(value));
        ParseCompClauses(*comp);
        args->Add(std::move(comp));
        continue;
      }
      args->Add(std::move(value));
    }
    args->AddLeaf(ExpectOp(")"));
    return args;
  }

  NodePtr ParseSubscriptList() {
    auto first = ParseSubscriptItem();
    if (!AtOp(",")) return first;
    auto tuple = Node::Internal("tuple");
    tuple->Add(std::move(first));
    while (AtOp(",")) {
      tuple->AddLeaf(Take());
      if (AtOp("]")) break;
      tuple->Add(ParseSubscriptItem());
    }
    return tuple;
  }

  NodePtr ParseSubscriptItem() {
    auto slice = Node::Internal("slice");
    bool is_slice = false;
    if (!AtOp(":")) {
      slice->Add(ParseTest());
    }
    if (AtOp(":")) {
      is_slice = true;
      slice->AddLeaf(Take());
      if (!AtOp(":") && !AtOp("]") && !AtOp(",")) slice->Add(ParseTest());
      if (AtOp(":")) {
        slice->AddLeaf(Take());
        if (!AtOp("]") && !AtOp(",")) slice->Add(ParseTest());
      }
    }
    if (!is_slice) return std::move(slice->children[0]);
    return slice;
  }

  void ParseCompClauses(Node& comp) {
    while (AtKw("for") || AtKw("if") || AtKw("async")) {
      if (AtKw("async")) {
        comp.AddLeaf(Take());
        continue;
      }
      if (AtKw("for")) {
        auto clause = Node::Internal("comp_for");
        clause->AddLeaf(Take());
        clause->Add(ParseTargetList());
        clause->AddLeaf(ExpectKw("in"));
        clause->Add(ParseOrTest());
        comp.Add(std::move(clause));
      } else {
        auto clause = Node::Internal("comp_if");
        clause->AddLeaf(Take());
        clause->Add(ParseOrTest());
        comp.Add(std::move(clause));
      }
    }
  }

  NodePtr ParseAtom() {
    if (At(TokenType::kName)) return Node::Leaf(Take());
    if (At(TokenType::kNumber)) return Node::Leaf(Take());
    if (At(TokenType::kString)) {
      // Adjacent string literals concatenate.
      NodePtr first = Node::Leaf(Take());
      if (!At(TokenType::kString)) return first;
      auto group = Node::Internal("string_group");
      group->Add(std::move(first));
      while (At(TokenType::kString)) group->AddLeaf(Take());
      return group;
    }
    if (AtKw("True") || AtKw("False") || AtKw("None")) {
      return Node::Leaf(Take());
    }
    if (AtKw("yield")) return ParseYieldExpr();
    if (AtKw("lambda")) return ParseLambda();
    if (AtOp("(")) return ParseParenAtom();
    if (AtOp("[")) return ParseListAtom();
    if (AtOp("{")) return ParseBraceAtom();
    if (AtOp("...")) return Node::Leaf(Take());
    Fail("expected expression");
  }

  NodePtr ParseParenAtom() {
    Token open = Take();
    if (AtOp(")")) {  // empty tuple
      auto tup = Node::Internal("tuple");
      tup->AddLeaf(std::move(open));
      tup->AddLeaf(Take());
      return tup;
    }
    NodePtr first = ParseTestStar();
    if (AtKw("for")) {  // generator expression
      auto comp = Node::Internal("comprehension");
      comp->AddLeaf(std::move(open));
      comp->Add(std::move(first));
      ParseCompClauses(*comp);
      comp->AddLeaf(ExpectOp(")"));
      return comp;
    }
    if (AtOp(",")) {  // tuple
      auto tup = Node::Internal("tuple");
      tup->AddLeaf(std::move(open));
      tup->Add(std::move(first));
      while (AtOp(",")) {
        tup->AddLeaf(Take());
        if (AtOp(")")) break;
        tup->Add(ParseTestStar());
      }
      tup->AddLeaf(ExpectOp(")"));
      return tup;
    }
    auto paren = Node::Internal("paren_expr");
    paren->AddLeaf(std::move(open));
    paren->Add(std::move(first));
    paren->AddLeaf(ExpectOp(")"));
    return paren;
  }

  NodePtr ParseListAtom() {
    auto list = Node::Internal("list");
    list->AddLeaf(ExpectOp("["));
    if (AtOp("]")) {
      list->AddLeaf(Take());
      return list;
    }
    NodePtr first = ParseTestStar();
    if (AtKw("for")) {
      auto comp = Node::Internal("list_comprehension");
      comp->AddLeaf(std::move(list->children[0]->token));
      comp->Add(std::move(first));
      ParseCompClauses(*comp);
      comp->AddLeaf(ExpectOp("]"));
      return comp;
    }
    list->Add(std::move(first));
    while (AtOp(",")) {
      list->AddLeaf(Take());
      if (AtOp("]")) break;
      list->Add(ParseTestStar());
    }
    list->AddLeaf(ExpectOp("]"));
    return list;
  }

  NodePtr ParseBraceAtom() {
    Token open = ExpectOp("{");
    if (AtOp("}")) {  // empty dict
      auto dict = Node::Internal("dict");
      dict->AddLeaf(std::move(open));
      dict->AddLeaf(Take());
      return dict;
    }
    if (AtOp("**")) return ParseDictRest(std::move(open), nullptr);
    NodePtr first = ParseTestStar();
    if (AtOp(":")) return ParseDictRest(std::move(open), std::move(first));
    // Set literal or set comprehension.
    if (AtKw("for")) {
      auto comp = Node::Internal("set_comprehension");
      comp->AddLeaf(std::move(open));
      comp->Add(std::move(first));
      ParseCompClauses(*comp);
      comp->AddLeaf(ExpectOp("}"));
      return comp;
    }
    auto set = Node::Internal("set");
    set->AddLeaf(std::move(open));
    set->Add(std::move(first));
    while (AtOp(",")) {
      set->AddLeaf(Take());
      if (AtOp("}")) break;
      set->Add(ParseTestStar());
    }
    set->AddLeaf(ExpectOp("}"));
    return set;
  }

  NodePtr ParseDictRest(Token open, NodePtr first_key) {
    auto dict = Node::Internal("dict");
    dict->AddLeaf(std::move(open));
    bool first = true;
    NodePtr pending_key = std::move(first_key);
    while (true) {
      if (!first && !pending_key) {
        if (!AtOp(",")) break;
        dict->AddLeaf(Take());
        if (AtOp("}")) break;
      }
      if (AtOp("**")) {
        auto star = Node::Internal("star_arg");
        star->AddLeaf(Take());
        star->Add(ParseTest());
        dict->Add(std::move(star));
        first = false;
        continue;
      }
      auto item = Node::Internal("dict_item");
      item->Add(pending_key ? std::move(pending_key) : ParseTest());
      pending_key = nullptr;
      item->AddLeaf(ExpectOp(":"));
      item->Add(ParseTest());
      if (first && AtKw("for")) {  // dict comprehension
        auto comp = Node::Internal("dict_comprehension");
        comp->Add(std::move(item));
        ParseCompClauses(*comp);
        comp->AddLeaf(ExpectOp("}"));
        // dict-> only held the open brace; move it in front.
        comp->children.insert(comp->children.begin(),
                              std::move(dict->children[0]));
        return comp;
      }
      dict->Add(std::move(item));
      first = false;
    }
    dict->AddLeaf(ExpectOp("}"));
    return dict;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool lenient_;
};

Result<NodePtr> ParseWithMode(std::string_view source, bool lenient) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) {
    if (!lenient) return tokens.status();
    // Lenient fallback for unlexable snippets: lex line by line, skipping
    // lines that still fail, and build flat fragment trees.
    auto module = Node::Internal("module");
    int line_no = 0;
    size_t start = 0;
    std::string_view rest = source;
    while (start <= rest.size()) {
      size_t nl = rest.find('\n', start);
      std::string_view line = rest.substr(
          start, nl == std::string_view::npos ? std::string_view::npos
                                              : nl - start);
      ++line_no;
      Result<std::vector<Token>> line_tokens = Lex(line);
      if (line_tokens.ok()) {
        auto frag = Node::Internal("fragment");
        for (Token& t : line_tokens.value()) {
          if (t.type == TokenType::kName || t.type == TokenType::kKeyword ||
              t.type == TokenType::kNumber || t.type == TokenType::kString ||
              t.type == TokenType::kOp) {
            t.line = line_no;
            frag->AddLeaf(std::move(t));
          }
        }
        if (!frag->children.empty()) module->Add(std::move(frag));
      }
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
    if (module->children.empty()) {
      return Status::ParseError("snippet produced no tokens");
    }
    return Result<NodePtr>(std::move(module));
  }
  try {
    Parser parser(std::move(tokens.value()), lenient);
    NodePtr module = parser.ParseModule();
    if (lenient && module->children.empty()) {
      return Status::ParseError("snippet produced no statements");
    }
    return Result<NodePtr>(std::move(module));
  } catch (const ParseErrorEx& e) {
    return Status::ParseError(e.what());
  }
}

}  // namespace

Result<NodePtr> Parse(std::string_view source) {
  return ParseWithMode(source, /*lenient=*/false);
}

Result<NodePtr> ParseLenient(std::string_view source) {
  return ParseWithMode(source, /*lenient=*/true);
}

}  // namespace laminar::pycode
