// Process-wide observability for the Laminar stack (ROADMAP: production
// operation needs first-class metrics before any tuning is trustworthy).
//
// Three primitives, all cheap enough for hot paths:
//
//  * Counter    — monotonically increasing, sharded across cache lines so
//                 concurrent increments never contend on one atomic.
//  * Gauge      — a settable signed level (pool sizes, queue depths).
//  * Histogram  — fixed upper-bound buckets of relaxed atomics; percentile
//                 summaries (p50/p95/p99) are interpolated at scrape time,
//                 never maintained on the record path.
//
// Handles are obtained from a MetricsRegistry (usually the process Global()
// one) and stay valid for the registry's lifetime, so instrumented code
// resolves the name->metric map once and then touches only atomics.
//
// ScopedSpan adds tracing: RAII timed spans that nest through a thread-local
// stack (execute -> cold_start -> mapping enact -> pe process) and land in a
// bounded ring buffer (TraceBuffer) for the /stats endpoint.
//
// Exposition: Prometheus text format (GET /metrics) and JSON (POST /stats).
// Naming convention: laminar_<subsystem>_<name>{label="value"} with _total
// suffixed counters and _ms suffixed latency histograms (see README).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.hpp"

namespace laminar::telemetry {

/// Adds `delta` to an atomic double (CAS loop: fetch_add on atomic<double>
/// is C++20 but not universally lowered to hardware yet).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotonic counter. Increments are relaxed fetch_adds on one of 16
/// cacheline-aligned shards chosen per thread, so the hot path is a single
/// uncontended atomic add (~5ns); reads sum the shards.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    shards_[ThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  /// Threads get a stable shard via a round-robin slot assigned on first use.
  static size_t ThreadShard() {
    static std::atomic<size_t> next_slot{0};
    thread_local const size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    return slot & (kShards - 1);
  }

  std::array<Shard, kShards> shards_;
};

/// Settable signed level.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Observe() is a short linear scan over the upper
/// bounds plus one relaxed fetch_add — lock-free and allocation-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +Inf bucket is
  /// appended. Defaults to DefaultLatencyBucketsMs() when empty.
  explicit Histogram(std::vector<double> upper_bounds = {});

  void Observe(double value) {
    size_t i = 0;
    const size_t n = bounds_.size();
    while (i < n && value > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    AtomicAddDouble(sum_, value);
  }

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds (exclusive of +Inf)
    std::vector<uint64_t> counts;  ///< per-bucket, bounds.size()+1 entries
    uint64_t count = 0;
    double sum = 0.0;

    double Mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Quantile in [0,1], linearly interpolated inside the winning bucket.
    /// Values in the +Inf bucket report the last finite bound.
    double Percentile(double q) const;
  };

  Snapshot snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in milliseconds: 1µs .. 10s, roughly 1-2.5-5 per
/// decade — covers counter-grade ops through cold starts.
const std::vector<double>& DefaultLatencyBucketsMs();

/// One completed span as stored in the trace ring.
struct SpanRecord {
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  uint32_t depth = 0;      ///< 0 = root
  int64_t start_us = 0;    ///< monotonic clock (common/clock.hpp epoch)
  int64_t duration_us = 0;
  uint64_t thread_id = 0;
};

/// Bounded ring of completed spans, oldest overwritten first. Recording is
/// mutex-guarded (spans complete at call-site rate, not per-tuple rate).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1024);

  void Record(SpanRecord record);
  /// Oldest-first copy of the retained spans.
  std::vector<SpanRecord> Snapshot() const;
  /// Total spans ever recorded (>= Snapshot().size()).
  uint64_t TotalRecorded() const;
  /// JSON array of the most recent `max_spans` spans, oldest first.
  Value ToJson(size_t max_spans = 64) const;
  void Reset();
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;       ///< write index once the ring is full
  uint64_t total_ = 0;
};

/// RAII timed span. Nests via a thread-local span stack: a span started
/// while another is alive on the same thread records it as parent. On
/// destruction the record lands in `buffer` (default: the global registry's
/// trace buffer) and, when given, the elapsed milliseconds are observed
/// into `latency_ms`.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, Histogram* latency_ms = nullptr,
                      TraceBuffer* buffer = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  double ElapsedMs() const;

 private:
  std::string name_;
  Histogram* latency_ms_;
  TraceBuffer* buffer_;
  uint64_t span_id_;
  uint64_t parent_id_;
  uint32_t depth_;
  int64_t start_us_;
};

/// Name -> metric map with stable handles, plus the process trace buffer.
/// GetX calls are idempotent: the same (name, labels) pair always returns
/// the same handle. `labels` is the rendered Prometheus label list without
/// braces, e.g. `op="get"` — empty for unlabelled metrics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem instruments into.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name, std::string_view labels = "",
                          std::vector<double> upper_bounds = {});

  /// nullptr when the metric was never registered.
  const Counter* FindCounter(std::string_view name,
                             std::string_view labels = "") const;
  const Histogram* FindHistogram(std::string_view name,
                                 std::string_view labels = "") const;

  /// Prometheus text exposition (one # TYPE line per family, histogram
  /// _bucket/_sum/_count expansion, +Inf bucket included).
  std::string RenderPrometheus() const;

  /// JSON exposition: {counters:{}, gauges:{}, histograms:{name:{count,sum,
  /// mean,p50,p95,p99}}} keyed by name{labels}.
  Value RenderJson() const;

  /// Zeroes every metric and clears the trace buffer; handles stay valid.
  void Reset();

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

 private:
  using MetricKey = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_;
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_;
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_;
  TraceBuffer trace_;
};

}  // namespace laminar::telemetry
