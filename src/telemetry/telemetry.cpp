#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/clock.hpp"

namespace laminar::telemetry {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// `name{labels}` or bare `name` when unlabelled.
std::string MetricId(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// Label list for a histogram series with `le` appended.
std::string BucketLabels(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "le=\"" + le + "\"";
  return labels + ",le=\"" + le + "\"";
}

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

// ---------------------------------------------------------------- Histogram

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,
      2.5,   5.0,    10.0,  25.0, 50.0,  100.0, 250.0, 500.0, 1000.0,
      2500.0, 5000.0, 10000.0};
  return kBuckets;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(upper_bounds.empty() ? DefaultLatencyBucketsMs()
                                   : std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: the best point estimate is the last finite bound.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    if (in_bucket == 0) return upper;
    const double fraction =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// -------------------------------------------------------------- TraceBuffer

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(SpanRecord record) {
  std::scoped_lock lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // `next_` is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceBuffer::TotalRecorded() const {
  std::scoped_lock lock(mu_);
  return total_;
}

Value TraceBuffer::ToJson(size_t max_spans) const {
  std::vector<SpanRecord> spans = Snapshot();
  const size_t start = spans.size() > max_spans ? spans.size() - max_spans : 0;
  Value arr = Value::MakeArray();
  for (size_t i = start; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    Value v = Value::MakeObject();
    v["name"] = s.name;
    v["spanId"] = static_cast<int64_t>(s.span_id);
    v["parentId"] = static_cast<int64_t>(s.parent_id);
    v["depth"] = static_cast<int64_t>(s.depth);
    v["startUs"] = s.start_us;
    v["durationUs"] = s.duration_us;
    arr.push_back(std::move(v));
  }
  return arr;
}

void TraceBuffer::Reset() {
  std::scoped_lock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

// --------------------------------------------------------------- ScopedSpan

namespace {
std::atomic<uint64_t> g_next_span_id{1};
thread_local uint64_t tls_current_span = 0;
thread_local uint32_t tls_span_depth = 0;
}  // namespace

ScopedSpan::ScopedSpan(std::string_view name, Histogram* latency_ms,
                       TraceBuffer* buffer)
    : name_(name),
      latency_ms_(latency_ms),
      buffer_(buffer != nullptr ? buffer : &MetricsRegistry::Global().trace()),
      span_id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_id_(tls_current_span),
      depth_(tls_span_depth),
      start_us_(NowMicros()) {
  tls_current_span = span_id_;
  ++tls_span_depth;
}

ScopedSpan::~ScopedSpan() {
  const int64_t duration_us = NowMicros() - start_us_;
  tls_current_span = parent_id_;
  --tls_span_depth;
  if (latency_ms_ != nullptr) {
    latency_ms_->Observe(static_cast<double>(duration_us) / 1000.0);
  }
  SpanRecord record;
  record.name = std::move(name_);
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.start_us = start_us_;
  record.duration_us = duration_us;
  record.thread_id = CurrentThreadId();
  buffer_->Record(std::move(record));
}

double ScopedSpan::ElapsedMs() const {
  return static_cast<double>(NowMicros() - start_us_) / 1000.0;
}

// ---------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels,
                                         std::vector<double> upper_bounds) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            std::string_view labels) const {
  std::scoped_lock lock(mu_);
  auto it = counters_.find({std::string(name), std::string(labels)});
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                std::string_view labels) const {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find({std::string(name), std::string(labels)});
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::scoped_lock lock(mu_);
  std::string out;
  out.reserve(4096);
  std::string last_family;

  auto type_line = [&](const std::string& name, const char* type) {
    if (name == last_family) return;
    last_family = name;
    out += "# TYPE " + name + " " + type + "\n";
  };

  for (const auto& [key, counter] : counters_) {
    type_line(key.first, "counter");
    out += MetricId(key.first, key.second) + " " +
           std::to_string(counter->Value()) + "\n";
  }
  last_family.clear();
  for (const auto& [key, gauge] : gauges_) {
    type_line(key.first, "gauge");
    out += MetricId(key.first, key.second) + " " +
           std::to_string(gauge->Value()) + "\n";
  }
  last_family.clear();
  for (const auto& [key, histogram] : histograms_) {
    type_line(key.first, "histogram");
    const Histogram::Snapshot snap = histogram->snapshot();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.counts[i];
      out += key.first + "_bucket{" +
             BucketLabels(key.second, FormatDouble(snap.bounds[i])) + "} " +
             std::to_string(cumulative) + "\n";
    }
    out += key.first + "_bucket{" + BucketLabels(key.second, "+Inf") + "} " +
           std::to_string(snap.count) + "\n";
    out += MetricId(key.first + "_sum", key.second) + " " +
           FormatDouble(snap.sum) + "\n";
    out += MetricId(key.first + "_count", key.second) + " " +
           std::to_string(snap.count) + "\n";
  }
  return out;
}

Value MetricsRegistry::RenderJson() const {
  std::scoped_lock lock(mu_);
  Value root = Value::MakeObject();
  Value counters = Value::MakeObject();
  for (const auto& [key, counter] : counters_) {
    counters[MetricId(key.first, key.second)] =
        static_cast<int64_t>(counter->Value());
  }
  root["counters"] = std::move(counters);

  Value gauges = Value::MakeObject();
  for (const auto& [key, gauge] : gauges_) {
    gauges[MetricId(key.first, key.second)] = gauge->Value();
  }
  root["gauges"] = std::move(gauges);

  Value histograms = Value::MakeObject();
  for (const auto& [key, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    Value h = Value::MakeObject();
    h["count"] = static_cast<int64_t>(snap.count);
    h["sum"] = snap.sum;
    h["mean"] = snap.Mean();
    h["p50"] = snap.Percentile(0.50);
    h["p95"] = snap.Percentile(0.95);
    h["p99"] = snap.Percentile(0.99);
    histograms[MetricId(key.first, key.second)] = std::move(h);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

void MetricsRegistry::Reset() {
  std::scoped_lock lock(mu_);
  for (auto& [key, counter] : counters_) counter->Reset();
  for (auto& [key, gauge] : gauges_) gauge->Reset();
  for (auto& [key, histogram] : histograms_) histogram->Reset();
  trace_.Reset();
}

}  // namespace laminar::telemetry
