// The Laminar 2.0 registry schema (paper Fig. 6 / Table II): User, Workflow,
// ProcessingElement, Execution, Response, plus the WorkflowPE link table
// that normalizes the many-to-many between workflows and reusable PEs.
// Code and embeddings live in CLOB columns; names are indexed for literal
// search; (workflowId, peId) pairs and usernames are unique.
#pragma once

#include "registry/database.hpp"

namespace laminar::registry {

inline constexpr const char kUserTable[] = "user";
inline constexpr const char kWorkflowTable[] = "workflow";
inline constexpr const char kPeTable[] = "processing_element";
inline constexpr const char kWorkflowPeTable[] = "workflow_pe";
inline constexpr const char kExecutionTable[] = "execution";
inline constexpr const char kResponseTable[] = "response";

/// Creates all Laminar 2.0 tables in `db` (which must be empty of them).
Status CreateLaminarSchema(Database& db);

/// The Laminar *1.0* schema variant used by bench_registry's ablation:
/// code/embeddings in bounded String columns, no secondary indexes, no link
/// table. Tables get a "v1_" prefix so both schemas can coexist.
Status CreateLegacySchema(Database& db);

}  // namespace laminar::registry
