// Embedded relational table — the storage unit of the Laminar registry.
//
// Models the MySQL features the paper's schema update (§IV-D, Fig. 6)
// relies on: typed columns, VARCHAR-style bounded strings vs CLOBs
// (character large objects) for code and embeddings, auto-increment primary
// keys, unique constraints and secondary hash indexes. The VARCHAR bound is
// real: Laminar 1.0 stored Python code in a String field "which limited
// storage size" — bench_registry reproduces exactly that failure mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"

namespace laminar::registry {

enum class ColumnType {
  kInt,
  kDouble,
  kBool,
  kString,  ///< bounded text (VARCHAR); see TableSchema::string_limit
  kClob,    ///< unbounded character large object
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool nullable = true;
};

struct ForeignKeySpec {
  std::string column;     ///< local column holding the referenced id
  std::string ref_table;  ///< referenced table (by its primary key)
};

struct TableSchema {
  std::string name;
  /// Auto-increment integer primary key column (always present, named here).
  std::string primary_key = "id";
  std::vector<ColumnSpec> columns;  ///< non-key columns
  std::vector<std::string> unique_columns;
  std::vector<std::string> indexed_columns;  ///< secondary hash indexes
  std::vector<ForeignKeySpec> foreign_keys;
  /// Maximum length of ColumnType::kString values (MySQL VARCHAR(255)
  /// default — the Laminar 1.0 limitation).
  size_t string_limit = 255;
};

/// Read/write row representation: a Value object keyed by column name.
using Row = Value;

/// Sink for the registry's append-only mutation log. Database installs one
/// on every table when the WAL is enabled; each *committed* mutation (after
/// validation) appends exactly one record. Ops: "insert" carries the full
/// row (primary key included), "update" the partial field set, "erase" only
/// the id, "clear" nothing. Restore paths (LoadRows/RestoreRow) never log.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual void Append(const std::string& table, std::string_view op,
                      int64_t id, const Value* payload) = 0;
};

/// Lookup statistics used by bench_registry to show index effect.
struct TableStats {
  uint64_t index_lookups = 0;
  uint64_t full_scans = 0;
  uint64_t rows_scanned = 0;
};

/// Internal counterpart of TableStats: the read path (FindBy/Scan) bumps
/// these from const methods, and the server now runs read endpoints under a
/// shared lock, so concurrent readers must not race on plain integers.
struct AtomicTableStats {
  std::atomic<uint64_t> index_lookups{0};
  std::atomic<uint64_t> full_scans{0};
  std::atomic<uint64_t> rows_scanned{0};
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Validates column types/limits/uniqueness, assigns the next primary key
  /// and stores the row. Returns the new id.
  Result<int64_t> Insert(Row row);

  Result<Row> Get(int64_t id) const;
  bool Exists(int64_t id) const { return rows_.contains(id); }

  /// Merges `fields` into the row (validating types/uniqueness).
  Status Update(int64_t id, const Row& fields);
  bool Erase(int64_t id);

  /// Equality lookup. Uses the hash index when the column is indexed or
  /// unique; falls back to a full scan otherwise (and counts it).
  std::vector<Row> FindBy(const std::string& column, const Value& value) const;

  /// Predicate scan over all rows, ascending id order.
  std::vector<Row> Scan(const std::function<bool(const Row&)>& pred) const;
  /// All rows, ascending id order.
  std::vector<Row> All() const;

  void Clear();
  TableStats stats() const {
    TableStats out;
    out.index_lookups = stats_.index_lookups.load(std::memory_order_relaxed);
    out.full_scans = stats_.full_scans.load(std::memory_order_relaxed);
    out.rows_scanned = stats_.rows_scanned.load(std::memory_order_relaxed);
    return out;
  }

  /// Persistence hooks used by Database.
  Value ToJson() const;
  Status LoadRows(const Value& rows_array);

  /// WAL-replay insert: the row already carries its primary key. Re-indexes,
  /// advances next_id_ past the id, replaces any existing row. Not logged.
  Status RestoreRow(Row row);

  /// Monotonic mutation counter: bumped by every Insert/Update/Erase/Clear/
  /// LoadRows/RestoreRow. Snapshots use it as a dirty marker — a table whose
  /// version matches the last serialized one can reuse the cached text.
  uint64_t version() const { return version_; }

  /// Installs (or removes, with nullptr) the mutation-log sink.
  void SetWalSink(WalSink* sink) { wal_ = sink; }

 private:
  /// Clear without WAL logging — the restore paths (LoadRows) rebuild state
  /// that is already durable elsewhere.
  void ClearNoLog();
  const ColumnSpec* FindColumn(const std::string& name) const;
  Status ValidateTypes(const Row& row, bool partial) const;
  Status CheckUnique(const Row& row, int64_t ignore_id) const;
  void IndexRow(int64_t id, const Row& row);
  void DeindexRow(int64_t id, const Row& row);
  static std::string IndexKey(const Value& v);

  TableSchema schema_;
  std::map<int64_t, Row> rows_;  // ordered for deterministic scans
  int64_t next_id_ = 1;
  uint64_t version_ = 0;
  WalSink* wal_ = nullptr;
  /// column -> value-key -> row ids.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<int64_t>>>
      indexes_;
  mutable AtomicTableStats stats_;
};

}  // namespace laminar::registry
