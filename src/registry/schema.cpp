#include "registry/schema.hpp"

namespace laminar::registry {

Status CreateLaminarSchema(Database& db) {
  {
    TableSchema user;
    user.name = kUserTable;
    user.columns = {
        {"userName", ColumnType::kString, /*nullable=*/false},
        {"password", ColumnType::kString, false},
        {"createdAtMs", ColumnType::kInt, true},
    };
    user.unique_columns = {"userName"};
    if (Status st = db.CreateTable(std::move(user)); !st.ok()) return st;
  }
  {
    TableSchema wf;
    wf.name = kWorkflowTable;
    wf.columns = {
        {"userId", ColumnType::kInt, false},
        {"workflowName", ColumnType::kString, false},
        {"description", ColumnType::kClob, true},
        {"descriptionEmbedding", ColumnType::kClob, true},
        {"workflowCode", ColumnType::kClob, false},
        {"entryPoint", ColumnType::kClob, true},
        {"sptEmbedding", ColumnType::kClob, true},
        // Owning tenant namespace; nullable so pre-tenancy snapshots/WALs
        // load unchanged (missing reads back as the default tenant).
        {"tenant", ColumnType::kString, true},
    };
    wf.indexed_columns = {"workflowName", "userId"};
    wf.foreign_keys = {{"userId", kUserTable}};
    if (Status st = db.CreateTable(std::move(wf)); !st.ok()) return st;
  }
  {
    TableSchema pe;
    pe.name = kPeTable;
    pe.columns = {
        {"peName", ColumnType::kString, false},
        {"description", ColumnType::kClob, true},
        {"descriptionEmbedding", ColumnType::kClob, true},
        {"peCode", ColumnType::kClob, false},
        {"sptEmbedding", ColumnType::kClob, true},
        {"peType", ColumnType::kString, true},
        {"tenant", ColumnType::kString, true},
    };
    pe.indexed_columns = {"peName"};
    if (Status st = db.CreateTable(std::move(pe)); !st.ok()) return st;
  }
  {
    TableSchema link;
    link.name = kWorkflowPeTable;
    link.columns = {
        {"workflowId", ColumnType::kInt, false},
        {"peId", ColumnType::kInt, false},
    };
    link.indexed_columns = {"workflowId", "peId"};
    link.foreign_keys = {{"workflowId", kWorkflowTable}, {"peId", kPeTable}};
    if (Status st = db.CreateTable(std::move(link)); !st.ok()) return st;
  }
  {
    TableSchema exec;
    exec.name = kExecutionTable;
    exec.columns = {
        {"workflowId", ColumnType::kInt, false},
        {"userId", ColumnType::kInt, false},
        {"mapping", ColumnType::kString, true},
        {"status", ColumnType::kString, true},
        {"startedAtMs", ColumnType::kInt, true},
        {"finishedAtMs", ColumnType::kInt, true},
    };
    exec.indexed_columns = {"workflowId", "userId"};
    exec.foreign_keys = {{"workflowId", kWorkflowTable},
                         {"userId", kUserTable}};
    if (Status st = db.CreateTable(std::move(exec)); !st.ok()) return st;
  }
  {
    TableSchema resp;
    resp.name = kResponseTable;
    resp.columns = {
        {"executionId", ColumnType::kInt, false},
        {"output", ColumnType::kClob, true},
        {"lineCount", ColumnType::kInt, true},
    };
    resp.indexed_columns = {"executionId"};
    resp.foreign_keys = {{"executionId", kExecutionTable}};
    if (Status st = db.CreateTable(std::move(resp)); !st.ok()) return st;
  }
  return Status::Ok();
}

Status CreateLegacySchema(Database& db) {
  {
    TableSchema user;
    user.name = "v1_user";
    user.columns = {
        {"userName", ColumnType::kString, false},
        {"password", ColumnType::kString, false},
    };
    user.unique_columns = {"userName"};
    if (Status st = db.CreateTable(std::move(user)); !st.ok()) return st;
  }
  {
    // Laminar 1.0: denormalized, code as a bounded String field, no
    // secondary indexes — every name lookup is a scan, and large PEs simply
    // do not fit.
    TableSchema pe;
    pe.name = "v1_processing_element";
    pe.columns = {
        {"peName", ColumnType::kString, false},
        {"description", ColumnType::kString, true},
        {"peCode", ColumnType::kString, false},
        {"descriptionEmbedding", ColumnType::kString, true},
        {"workflowName", ColumnType::kString, true},  // denormalized
    };
    pe.string_limit = 255;
    if (Status st = db.CreateTable(std::move(pe)); !st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace laminar::registry
