// Embedded relational database: named tables + foreign-key enforcement +
// whole-database JSON persistence. Stands in for the MySQL instance behind
// the Laminar registry (DESIGN.md substitution table).
//
// Persistence model (ISSUE 5):
//  * Snapshots are two-phase. CaptureSnapshot() runs under the caller's
//    *read* lock and only copies row data (or reuses cached serialized text
//    for tables unchanged since the last snapshot — per-table dirty tracking
//    via Table::version()). WriteSnapshot() then serializes and writes
//    OUTSIDE any registry lock, to a uniquely named temp file + atomic
//    rename, so a crash mid-save can never corrupt the previous snapshot
//    and concurrent searches never wait on disk I/O.
//  * An optional write-ahead log (EnableWal) appends every committed
//    mutation as one JSON line tagged with a monotonic sequence number.
//    Snapshots embed the sequence they cover ("__wal_seq"); LoadFromFile
//    replays only the WAL suffix past that point, so a crash between
//    snapshots loses nothing. WriteSnapshot compacts the log down to the
//    un-snapshotted suffix.
//
// Locking contract: table reads/mutations are guarded by the owner's lock
// (the server's shared_mutex). The persistence caches and the WAL stream
// have their own internal mutex, so CaptureSnapshot/WriteSnapshot may run
// from concurrent readers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "registry/table.hpp"

namespace laminar::registry {

/// How aggressively WAL appends reach stable storage. The default (kNone)
/// leaves flushing to the OS page cache — appends are crash-consistent with
/// respect to the *process* (write(2) completes before the commit returns)
/// but a machine crash can lose the tail. kInterval runs a background
/// flusher that fsyncs every `fsync_interval_ms`; kPerRecord fsyncs inside
/// every append (durable but slowest).
enum class WalFsyncMode { kNone, kInterval, kPerRecord };

struct WalOptions {
  WalFsyncMode fsync = WalFsyncMode::kNone;
  int fsync_interval_ms = 50;  ///< cadence for WalFsyncMode::kInterval
};

/// Observable WAL state for /stats and /replication/status: how far the log
/// has been written vs how far it is known durable on disk.
struct WalStatus {
  bool enabled = false;
  std::string fsync_mode = "none";
  uint64_t appended_seq = 0;  ///< last sequence handed to write(2)
  uint64_t durable_seq = 0;   ///< last sequence covered by fsync/snapshot
  uint64_t records = 0;       ///< records appended by this process
  uint64_t bytes = 0;         ///< bytes appended by this process
};

/// Fires once per appended record, under the WAL's internal mutex, with the
/// exact line written to disk (no trailing newline). Observers see records
/// in sequence order; they must not call back into the Database.
using WalObserver = std::function<void(uint64_t seq, const std::string& line)>;

class Database {
 public:
  Database();
  ~Database();

  Status CreateTable(TableSchema schema);
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Insert with foreign-key checks (Table::Insert alone does not see other
  /// tables).
  Result<int64_t> Insert(const std::string& table, Row row);
  /// Update with foreign-key checks on any changed FK columns.
  Status Update(const std::string& table, int64_t id, const Row& fields);
  /// Erase, refusing while other rows still reference this one.
  Status Erase(const std::string& table, int64_t id);

  /// Serializes every table (schema names + rows) to pretty JSON.
  std::string Dump() const;

  /// Phase 1 of a save: copy-on-read capture of every table, cheap enough
  /// to run under a shared lock. Tables unchanged since the last
  /// WriteSnapshot reuse their cached serialized text instead of copying.
  struct Snapshot {
    struct TableSnap {
      std::string name;
      uint64_t version = 0;
      bool cached = false;  ///< `text` reused from the serialization cache
      std::string text;     ///< serialized table JSON (cached tables)
      Value data;           ///< copied table JSON (dirty tables)
    };
    std::vector<TableSnap> tables;
    uint64_t wal_seq = 0;  ///< last mutation sequence the snapshot covers
  };
  Snapshot CaptureSnapshot() const;

  /// Serializes a captured snapshot to the exact document WriteSnapshot
  /// persists ("__wal_seq" + every table). Runs outside any registry lock;
  /// mutates `snapshot` only by filling dirty tables' serialized text. Used
  /// directly by replication leaders to answer /replication/snapshot.
  std::string SerializeSnapshot(Snapshot& snapshot) const;

  /// Phase 2: serializes dirty tables, assembles the document, writes a
  /// unique temp file and renames it over `path`. Runs outside any registry
  /// lock; refreshes the serialization cache on success. The WAL is
  /// compacted only when `path` is the recovery snapshot path declared via
  /// Recover() — a save anywhere else must leave the log intact, because
  /// its records are the only durable copy the next Recover() can see.
  Status WriteSnapshot(Snapshot snapshot, const std::string& path) const;

  /// CaptureSnapshot + WriteSnapshot in one call (callers that do not split
  /// phases across lock scopes). Atomic like WriteSnapshot.
  Status SaveToFile(const std::string& path) const;

  /// Restores rows into the already-created tables of this database, then
  /// replays the enabled WAL's suffix (records newer than the snapshot).
  Status LoadFromFile(const std::string& path);

  /// Restores rows from an in-memory snapshot document (the exact bytes a
  /// WriteSnapshot produced — e.g. received over the wire during replica
  /// bootstrap). Returns the "__wal_seq" the snapshot covers. Does NOT
  /// replay any local WAL; callers that want suffix replay use
  /// LoadFromFile/Recover.
  Result<uint64_t> LoadFromText(const std::string& text);

  /// Opens `path` for appending one JSON line per committed mutation.
  /// Does not replay — see Recover(). Idempotent per path (options of the
  /// already-open writer are kept).
  Status EnableWal(const std::string& path, WalOptions options = {});
  void DisableWal();
  bool wal_enabled() const;
  /// Empty when no WAL is enabled.
  std::string wal_path() const;
  /// Durability counters (zeroed defaults when no WAL is enabled).
  WalStatus wal_status() const;
  /// Registers the per-append hook (replication leaders feed their shipping
  /// ring from it). Applies to the current writer and any future EnableWal.
  void SetWalObserver(WalObserver observer);

  /// Applies one WAL record (insert/update/erase/clear) to the named table.
  /// Public because a read replica applies records received from its leader
  /// through exactly the recovery path; on a replica no local WAL is
  /// enabled, so applying is never re-logged.
  Status ApplyWalRecord(const Value& record);

  /// Crash recovery in one call: loads `snapshot_path` when it exists (a
  /// missing snapshot is not an error — first boot), enables the WAL (seeded
  /// past the snapshot's sequence), then replays the suffix of `wal_path`.
  /// Also records `snapshot_path` as the recovery snapshot: only snapshots
  /// written back to that path compact the WAL (see WriteSnapshot).
  /// `wal_options` configures the durability mode of the WAL it enables.
  Status Recover(const std::string& snapshot_path, const std::string& wal_path,
                 WalOptions wal_options = {});

 private:
  class WalWriter;

  Status CheckForeignKeys(const Table& table, const Row& row) const;
  /// Applies records with seq > min_seq. A torn trailing line (crash mid-
  /// append) ends the replay without error, but an unparseable record with
  /// intact records after it is mid-file corruption: the replay fails
  /// loudly, reporting the offending line and the last good sequence, so a
  /// half-applied registry never masquerades as a clean recovery.
  Status ReplayWal(const std::string& path, uint64_t min_seq);

  std::vector<std::pair<std::string, std::unique_ptr<Table>>> tables_;
  /// name -> index into tables_; lookup is O(1), creation order (which
  /// persistence and FK checks rely on) stays in the vector.
  std::unordered_map<std::string, size_t> table_slots_;

  /// Serialization cache: table name -> (version, serialized text). Guarded
  /// by persist_mu_ (its own lock — snapshot writers run off the registry
  /// lock and concurrent captures run under shared locks).
  mutable std::mutex persist_mu_;
  mutable std::unordered_map<std::string, std::pair<uint64_t, std::string>>
      serialized_cache_;

  std::unique_ptr<WalWriter> wal_;
  WalObserver wal_observer_;
  /// The snapshot path Recover() reads at boot. WriteSnapshot compacts the
  /// WAL only when writing here (empty: never compact).
  std::string recovery_snapshot_path_;
};

}  // namespace laminar::registry
