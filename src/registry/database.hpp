// Embedded relational database: named tables + foreign-key enforcement +
// whole-database JSON persistence. Stands in for the MySQL instance behind
// the Laminar registry (DESIGN.md substitution table).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "registry/table.hpp"

namespace laminar::registry {

class Database {
 public:
  Status CreateTable(TableSchema schema);
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Insert with foreign-key checks (Table::Insert alone does not see other
  /// tables).
  Result<int64_t> Insert(const std::string& table, Row row);
  /// Update with foreign-key checks on any changed FK columns.
  Status Update(const std::string& table, int64_t id, const Row& fields);
  /// Erase, refusing while other rows still reference this one.
  Status Erase(const std::string& table, int64_t id);

  /// Serializes every table (schema names + rows) to pretty JSON.
  std::string Dump() const;
  Status SaveToFile(const std::string& path) const;
  /// Restores rows into the already-created tables of this database.
  Status LoadFromFile(const std::string& path);

 private:
  Status CheckForeignKeys(const Table& table, const Row& row) const;

  std::vector<std::pair<std::string, std::unique_ptr<Table>>> tables_;
};

}  // namespace laminar::registry
