#include "registry/repository.hpp"

#include <chrono>

namespace laminar::registry {
namespace {

int64_t NowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

PeRecord RowToPe(const Row& row) {
  PeRecord pe;
  pe.id = row.GetInt("id");
  pe.name = row.GetString("peName");
  pe.description = row.GetString("description");
  pe.description_embedding = row.GetString("descriptionEmbedding");
  pe.code = row.GetString("peCode");
  pe.spt_embedding = row.GetString("sptEmbedding");
  pe.type = row.GetString("peType");
  pe.tenant = row.GetString("tenant");
  return pe;
}

WorkflowRecord RowToWorkflow(const Row& row) {
  WorkflowRecord wf;
  wf.id = row.GetInt("id");
  wf.user_id = row.GetInt("userId");
  wf.name = row.GetString("workflowName");
  wf.description = row.GetString("description");
  wf.description_embedding = row.GetString("descriptionEmbedding");
  wf.code = row.GetString("workflowCode");
  wf.entry_point = row.GetString("entryPoint");
  wf.spt_embedding = row.GetString("sptEmbedding");
  wf.tenant = row.GetString("tenant");
  return wf;
}

ExecutionRecord RowToExecution(const Row& row) {
  ExecutionRecord e;
  e.id = row.GetInt("id");
  e.workflow_id = row.GetInt("workflowId");
  e.user_id = row.GetInt("userId");
  e.mapping = row.GetString("mapping");
  e.status = row.GetString("status");
  e.started_at_ms = row.GetInt("startedAtMs");
  e.finished_at_ms = row.GetInt("finishedAtMs");
  return e;
}

}  // namespace

Result<int64_t> Repository::CreateUser(const std::string& name,
                                       const std::string& password) {
  Row row = Value::MakeObject();
  row["userName"] = name;
  row["password"] = password;
  row["createdAtMs"] = NowMs();
  return db_->Insert(kUserTable, std::move(row));
}

Result<UserRecord> Repository::GetUserByName(const std::string& name) const {
  std::vector<Row> rows =
      db_->GetTable(kUserTable)->FindBy("userName", Value(name));
  if (rows.empty()) return Status::NotFound("no user '" + name + "'");
  UserRecord u;
  u.id = rows[0].GetInt("id");
  u.user_name = rows[0].GetString("userName");
  u.password = rows[0].GetString("password");
  return u;
}

Result<UserRecord> Repository::GetUser(int64_t id) const {
  Result<Row> row = db_->GetTable(kUserTable)->Get(id);
  if (!row.ok()) return row.status();
  UserRecord u;
  u.id = row->GetInt("id");
  u.user_name = row->GetString("userName");
  u.password = row->GetString("password");
  return u;
}

Result<int64_t> Repository::CreatePe(const PeRecord& pe) {
  Row row = Value::MakeObject();
  row["peName"] = pe.name;
  row["description"] = pe.description;
  row["descriptionEmbedding"] = pe.description_embedding;
  row["peCode"] = pe.code;
  row["sptEmbedding"] = pe.spt_embedding;
  row["peType"] = pe.type;
  row["tenant"] = pe.tenant;
  return db_->Insert(kPeTable, std::move(row));
}

Result<PeRecord> Repository::GetPe(int64_t id) const {
  Result<Row> row = db_->GetTable(kPeTable)->Get(id);
  if (!row.ok()) return row.status();
  return RowToPe(row.value());
}

Result<PeRecord> Repository::GetPeByName(const std::string& name) const {
  std::vector<Row> rows = db_->GetTable(kPeTable)->FindBy("peName", Value(name));
  if (rows.empty()) return Status::NotFound("no PE named '" + name + "'");
  return RowToPe(rows.back());  // most recently registered wins
}

Status Repository::UpdatePe(int64_t id, const Row& fields) {
  return db_->Update(kPeTable, id, fields);
}

Status Repository::RemovePe(int64_t id) {
  // Drop link rows first (cascade).
  Table* links = db_->GetTable(kWorkflowPeTable);
  for (const Row& link : links->FindBy("peId", Value(id))) {
    links->Erase(link.GetInt("id"));
  }
  return db_->Erase(kPeTable, id);
}

std::vector<PeRecord> Repository::AllPes() const {
  std::vector<PeRecord> out;
  for (const Row& row : db_->GetTable(kPeTable)->All()) {
    out.push_back(RowToPe(row));
  }
  return out;
}

Result<int64_t> Repository::CreateWorkflow(const WorkflowRecord& wf) {
  Row row = Value::MakeObject();
  row["userId"] = wf.user_id;
  row["workflowName"] = wf.name;
  row["description"] = wf.description;
  row["descriptionEmbedding"] = wf.description_embedding;
  row["workflowCode"] = wf.code;
  row["entryPoint"] = wf.entry_point;
  row["sptEmbedding"] = wf.spt_embedding;
  row["tenant"] = wf.tenant;
  return db_->Insert(kWorkflowTable, std::move(row));
}

Result<WorkflowRecord> Repository::GetWorkflow(int64_t id) const {
  Result<Row> row = db_->GetTable(kWorkflowTable)->Get(id);
  if (!row.ok()) return row.status();
  return RowToWorkflow(row.value());
}

Result<WorkflowRecord> Repository::GetWorkflowByName(
    const std::string& name) const {
  std::vector<Row> rows =
      db_->GetTable(kWorkflowTable)->FindBy("workflowName", Value(name));
  if (rows.empty()) return Status::NotFound("no workflow named '" + name + "'");
  return RowToWorkflow(rows.back());
}

Status Repository::UpdateWorkflow(int64_t id, const Row& fields) {
  return db_->Update(kWorkflowTable, id, fields);
}

Status Repository::RemoveWorkflow(int64_t id) {
  Table* links = db_->GetTable(kWorkflowPeTable);
  for (const Row& link : links->FindBy("workflowId", Value(id))) {
    links->Erase(link.GetInt("id"));
  }
  // Cascade executions + responses.
  Table* execs = db_->GetTable(kExecutionTable);
  Table* resps = db_->GetTable(kResponseTable);
  for (const Row& exec : execs->FindBy("workflowId", Value(id))) {
    int64_t exec_id = exec.GetInt("id");
    for (const Row& resp : resps->FindBy("executionId", Value(exec_id))) {
      resps->Erase(resp.GetInt("id"));
    }
    execs->Erase(exec_id);
  }
  return db_->Erase(kWorkflowTable, id);
}

std::vector<WorkflowRecord> Repository::AllWorkflows() const {
  std::vector<WorkflowRecord> out;
  for (const Row& row : db_->GetTable(kWorkflowTable)->All()) {
    out.push_back(RowToWorkflow(row));
  }
  return out;
}

Status Repository::LinkPe(int64_t workflow_id, int64_t pe_id) {
  Row row = Value::MakeObject();
  row["workflowId"] = workflow_id;
  row["peId"] = pe_id;
  Result<int64_t> id = db_->Insert(kWorkflowPeTable, std::move(row));
  return id.ok() ? Status::Ok() : id.status();
}

std::vector<PeRecord> Repository::PesOfWorkflow(int64_t workflow_id) const {
  std::vector<PeRecord> out;
  const Table* links = db_->GetTable(kWorkflowPeTable);
  for (const Row& link : links->FindBy("workflowId", Value(workflow_id))) {
    Result<Row> pe = db_->GetTable(kPeTable)->Get(link.GetInt("peId"));
    if (pe.ok()) out.push_back(RowToPe(pe.value()));
  }
  return out;
}

std::vector<int64_t> Repository::WorkflowsUsingPe(int64_t pe_id) const {
  std::vector<int64_t> out;
  const Table* links = db_->GetTable(kWorkflowPeTable);
  for (const Row& link : links->FindBy("peId", Value(pe_id))) {
    out.push_back(link.GetInt("workflowId"));
  }
  return out;
}

Result<int64_t> Repository::CreateExecution(int64_t workflow_id,
                                            int64_t user_id,
                                            const std::string& mapping) {
  Row row = Value::MakeObject();
  row["workflowId"] = workflow_id;
  row["userId"] = user_id;
  row["mapping"] = mapping;
  row["status"] = "running";
  row["startedAtMs"] = NowMs();
  return db_->Insert(kExecutionTable, std::move(row));
}

Status Repository::FinishExecution(int64_t execution_id,
                                   const std::string& status,
                                   const std::string& output,
                                   int64_t line_count) {
  Row fields = Value::MakeObject();
  fields["status"] = status;
  fields["finishedAtMs"] = NowMs();
  Status st = db_->Update(kExecutionTable, execution_id, fields);
  if (!st.ok()) return st;
  Row resp = Value::MakeObject();
  resp["executionId"] = execution_id;
  resp["output"] = output;
  resp["lineCount"] = line_count;
  Result<int64_t> id = db_->Insert(kResponseTable, std::move(resp));
  return id.ok() ? Status::Ok() : id.status();
}

Result<ExecutionRecord> Repository::GetExecution(int64_t id) const {
  Result<Row> row = db_->GetTable(kExecutionTable)->Get(id);
  if (!row.ok()) return row.status();
  return RowToExecution(row.value());
}

std::vector<ExecutionRecord> Repository::ExecutionsOfWorkflow(
    int64_t workflow_id) const {
  std::vector<ExecutionRecord> out;
  for (const Row& row : db_->GetTable(kExecutionTable)
                            ->FindBy("workflowId", Value(workflow_id))) {
    out.push_back(RowToExecution(row));
  }
  return out;
}

Status Repository::RemoveAll() {
  db_->GetTable(kResponseTable)->Clear();
  db_->GetTable(kExecutionTable)->Clear();
  db_->GetTable(kWorkflowPeTable)->Clear();
  db_->GetTable(kWorkflowTable)->Clear();
  db_->GetTable(kPeTable)->Clear();
  return Status::Ok();
}

}  // namespace laminar::registry
