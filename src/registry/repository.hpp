// Typed data-access layer over the Laminar schema — the "models / data
// access" tier of the paper's server architecture (§III). Services speak
// these record structs; only this file knows column names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "registry/schema.hpp"

namespace laminar::registry {

struct UserRecord {
  int64_t id = 0;
  std::string user_name;
  std::string password;
};

struct PeRecord {
  int64_t id = 0;
  std::string name;
  std::string description;
  std::string description_embedding;  ///< JSON float array
  std::string code;
  std::string spt_embedding;  ///< JSON {hash: count}
  std::string type;           ///< e.g. "IterativePE"
  /// Owning tenant namespace; empty means the default tenant (rows written
  /// before tenancy existed read back as default — Rows are schemaless, so
  /// old snapshots/WALs simply lack the column).
  std::string tenant;
};

struct WorkflowRecord {
  int64_t id = 0;
  int64_t user_id = 0;
  std::string name;
  std::string description;
  std::string description_embedding;
  std::string code;
  std::string entry_point;
  std::string spt_embedding;
  /// Owning tenant namespace; empty = default (see PeRecord::tenant).
  std::string tenant;
};

struct ExecutionRecord {
  int64_t id = 0;
  int64_t workflow_id = 0;
  int64_t user_id = 0;
  std::string mapping;
  std::string status;
  int64_t started_at_ms = 0;
  int64_t finished_at_ms = 0;
};

/// CRUD facade; all methods are thin and synchronous. The repository does
/// not own the database.
class Repository {
 public:
  explicit Repository(Database& db) : db_(&db) {}

  // Users.
  Result<int64_t> CreateUser(const std::string& name,
                             const std::string& password);
  Result<UserRecord> GetUserByName(const std::string& name) const;
  Result<UserRecord> GetUser(int64_t id) const;

  // Processing elements.
  Result<int64_t> CreatePe(const PeRecord& pe);
  Result<PeRecord> GetPe(int64_t id) const;
  Result<PeRecord> GetPeByName(const std::string& name) const;
  Status UpdatePe(int64_t id, const Row& fields);
  Status RemovePe(int64_t id);
  std::vector<PeRecord> AllPes() const;

  // Workflows.
  Result<int64_t> CreateWorkflow(const WorkflowRecord& wf);
  Result<WorkflowRecord> GetWorkflow(int64_t id) const;
  Result<WorkflowRecord> GetWorkflowByName(const std::string& name) const;
  Status UpdateWorkflow(int64_t id, const Row& fields);
  Status RemoveWorkflow(int64_t id);
  std::vector<WorkflowRecord> AllWorkflows() const;

  // Workflow <-> PE links.
  Status LinkPe(int64_t workflow_id, int64_t pe_id);
  std::vector<PeRecord> PesOfWorkflow(int64_t workflow_id) const;
  std::vector<int64_t> WorkflowsUsingPe(int64_t pe_id) const;

  // Executions + responses.
  Result<int64_t> CreateExecution(int64_t workflow_id, int64_t user_id,
                                  const std::string& mapping);
  Status FinishExecution(int64_t execution_id, const std::string& status,
                         const std::string& output, int64_t line_count);
  Result<ExecutionRecord> GetExecution(int64_t id) const;
  std::vector<ExecutionRecord> ExecutionsOfWorkflow(int64_t workflow_id) const;

  /// Deletes all PEs, workflows, links, executions and responses (the CLI's
  /// remove_all). Users survive.
  Status RemoveAll();

  Database& db() { return *db_; }

 private:
  Database* db_;
};

}  // namespace laminar::registry
