#include "registry/table.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace laminar::registry {
namespace {

telemetry::Counter& OpCounter(const char* op) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_registry_ops_total", std::string("op=\"") + op + "\"");
}

bool TypeMatches(ColumnType type, const Value& v) {
  switch (type) {
    case ColumnType::kInt: return v.is_int();
    case ColumnType::kDouble: return v.is_number();
    case ColumnType::kBool: return v.is_bool();
    case ColumnType::kString:
    case ColumnType::kClob: return v.is_string();
  }
  return false;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  for (const std::string& col : schema_.unique_columns) {
    indexes_[col];  // unique columns are always indexed
  }
  for (const std::string& col : schema_.indexed_columns) {
    indexes_[col];
  }
}

const ColumnSpec* Table::FindColumn(const std::string& name) const {
  for (const ColumnSpec& c : schema_.columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string Table::IndexKey(const Value& v) { return v.ToJson(); }

Status Table::ValidateTypes(const Row& row, bool partial) const {
  if (!row.is_object()) {
    return Status::InvalidArgument("row must be an object");
  }
  for (const auto& [key, value] : row.as_object()) {
    if (key == schema_.primary_key) {
      return Status::InvalidArgument("primary key '" + key +
                                     "' is assigned by the table");
    }
    const ColumnSpec* col = FindColumn(key);
    if (col == nullptr) {
      return Status::InvalidArgument("unknown column '" + key + "' in table " +
                                     schema_.name);
    }
    if (value.is_null()) {
      if (!col->nullable) {
        return Status::InvalidArgument("column '" + key + "' is not nullable");
      }
      continue;
    }
    if (!TypeMatches(col->type, value)) {
      return Status::InvalidArgument("type mismatch for column '" + key +
                                     "' in table " + schema_.name);
    }
    if (col->type == ColumnType::kString &&
        value.as_string().size() > schema_.string_limit) {
      return Status::InvalidArgument(
          "value for String column '" + key + "' exceeds VARCHAR(" +
          std::to_string(schema_.string_limit) +
          ") — use a Clob column for large objects");
    }
  }
  if (!partial) {
    for (const ColumnSpec& col : schema_.columns) {
      if (!col.nullable && !row.contains(col.name)) {
        return Status::InvalidArgument("missing non-nullable column '" +
                                       col.name + "' in table " +
                                       schema_.name);
      }
    }
  }
  return Status::Ok();
}

Status Table::CheckUnique(const Row& row, int64_t ignore_id) const {
  for (const std::string& col : schema_.unique_columns) {
    const Value& v = row.at(col);
    if (v.is_null()) continue;
    auto idx = indexes_.find(col);
    if (idx == indexes_.end()) continue;
    auto it = idx->second.find(IndexKey(v));
    if (it == idx->second.end()) continue;
    for (int64_t id : it->second) {
      if (id != ignore_id) {
        return Status::AlreadyExists("duplicate value for unique column '" +
                                     col + "' in table " + schema_.name);
      }
    }
  }
  return Status::Ok();
}

void Table::IndexRow(int64_t id, const Row& row) {
  for (auto& [col, buckets] : indexes_) {
    const Value& v = row.at(col);
    if (v.is_null()) continue;
    buckets[IndexKey(v)].push_back(id);
  }
}

void Table::DeindexRow(int64_t id, const Row& row) {
  for (auto& [col, buckets] : indexes_) {
    const Value& v = row.at(col);
    if (v.is_null()) continue;
    auto it = buckets.find(IndexKey(v));
    if (it == buckets.end()) continue;
    std::erase(it->second, id);
    if (it->second.empty()) buckets.erase(it);
  }
}

Result<int64_t> Table::Insert(Row row) {
  Status st = ValidateTypes(row, /*partial=*/false);
  if (!st.ok()) return st;
  st = CheckUnique(row, /*ignore_id=*/-1);
  if (!st.ok()) return st;
  static telemetry::Counter& inserts = OpCounter("insert");
  inserts.Inc();
  int64_t id = next_id_++;
  row[schema_.primary_key] = id;
  IndexRow(id, row);
  auto [it, unused] = rows_.emplace(id, std::move(row));
  ++version_;
  if (wal_ != nullptr) wal_->Append(schema_.name, "insert", id, &it->second);
  return id;
}

Result<Row> Table::Get(int64_t id) const {
  static telemetry::Counter& gets = OpCounter("get");
  gets.Inc();
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(id) + " in table " +
                            schema_.name);
  }
  return it->second;
}

Status Table::Update(int64_t id, const Row& fields) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(id) + " in table " +
                            schema_.name);
  }
  Status st = ValidateTypes(fields, /*partial=*/true);
  if (!st.ok()) return st;
  // Merge into a candidate and re-check uniqueness.
  Row merged = it->second;
  for (const auto& [key, value] : fields.as_object()) {
    merged[key] = value;
  }
  st = CheckUnique(merged, id);
  if (!st.ok()) return st;
  static telemetry::Counter& updates = OpCounter("update");
  updates.Inc();
  DeindexRow(id, it->second);
  it->second = std::move(merged);
  IndexRow(id, it->second);
  ++version_;
  if (wal_ != nullptr) wal_->Append(schema_.name, "update", id, &fields);
  return Status::Ok();
}

bool Table::Erase(int64_t id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  static telemetry::Counter& erases = OpCounter("erase");
  erases.Inc();
  DeindexRow(id, it->second);
  rows_.erase(it);
  ++version_;
  if (wal_ != nullptr) wal_->Append(schema_.name, "erase", id, nullptr);
  return true;
}

std::vector<Row> Table::FindBy(const std::string& column,
                               const Value& value) const {
  static telemetry::Counter& index_lookups = OpCounter("find_indexed");
  static telemetry::Counter& scans = OpCounter("find_scan");
  std::vector<Row> out;
  auto idx = indexes_.find(column);
  if (idx != indexes_.end()) {
    stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
    index_lookups.Inc();
    auto it = idx->second.find(IndexKey(value));
    if (it != idx->second.end()) {
      std::vector<int64_t> ids = it->second;
      std::sort(ids.begin(), ids.end());
      for (int64_t id : ids) out.push_back(rows_.at(id));
    }
    return out;
  }
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  scans.Inc();
  for (const auto& [id, row] : rows_) {
    if (row.at(column) == value) out.push_back(row);
  }
  stats_.rows_scanned.fetch_add(rows_.size(), std::memory_order_relaxed);
  return out;
}

std::vector<Row> Table::Scan(const std::function<bool(const Row&)>& pred) const {
  static telemetry::Counter& scans = OpCounter("scan");
  scans.Inc();
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  std::vector<Row> out;
  for (const auto& [id, row] : rows_) {
    if (pred(row)) out.push_back(row);
  }
  stats_.rows_scanned.fetch_add(rows_.size(), std::memory_order_relaxed);
  return out;
}

std::vector<Row> Table::All() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) out.push_back(row);
  return out;
}

void Table::Clear() {
  ClearNoLog();
  if (wal_ != nullptr) wal_->Append(schema_.name, "clear", 0, nullptr);
}

void Table::ClearNoLog() {
  rows_.clear();
  for (auto& [col, buckets] : indexes_) buckets.clear();
  next_id_ = 1;
  ++version_;
}

Value Table::ToJson() const {
  Value obj = Value::MakeObject();
  obj["next_id"] = next_id_;
  Value rows = Value::MakeArray();
  for (const auto& [id, row] : rows_) rows.push_back(row);
  obj["rows"] = std::move(rows);
  return obj;
}

Status Table::LoadRows(const Value& table_obj) {
  ClearNoLog();  // restoring a snapshot is not a logged mutation
  int64_t max_id = 0;
  for (const Value& row : table_obj.at("rows").as_array()) {
    if (!row.is_object()) {
      return Status::ParseError("table row is not an object");
    }
    int64_t id = row.GetInt(schema_.primary_key, -1);
    if (id < 1) return Status::ParseError("row missing primary key");
    IndexRow(id, row);
    rows_.emplace(id, row);
    max_id = std::max(max_id, id);
  }
  int64_t stored_next = table_obj.GetInt("next_id", max_id + 1);
  next_id_ = std::max(stored_next, max_id + 1);
  return Status::Ok();
}

Status Table::RestoreRow(Row row) {
  if (!row.is_object()) {
    return Status::ParseError("restored row is not an object");
  }
  int64_t id = row.GetInt(schema_.primary_key, -1);
  if (id < 1) return Status::ParseError("restored row missing primary key");
  auto it = rows_.find(id);
  if (it != rows_.end()) {
    DeindexRow(id, it->second);
    rows_.erase(it);
  }
  IndexRow(id, row);
  rows_.emplace(id, std::move(row));
  next_id_ = std::max(next_id_, id + 1);
  ++version_;
  return Status::Ok();
}

}  // namespace laminar::registry
