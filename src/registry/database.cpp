#include "registry/database.hpp"

#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace laminar::registry {

Status Database::CreateTable(TableSchema schema) {
  if (GetTable(schema.name) != nullptr) {
    return Status::AlreadyExists("table '" + schema.name + "' already exists");
  }
  for (const ForeignKeySpec& fk : schema.foreign_keys) {
    if (GetTable(fk.ref_table) == nullptr) {
      return Status::InvalidArgument("foreign key references unknown table '" +
                                     fk.ref_table + "'");
    }
  }
  std::string name = schema.name;
  tables_.emplace_back(name, std::make_unique<Table>(std::move(schema)));
  return Status::Ok();
}

Table* Database::GetTable(const std::string& name) {
  for (auto& [n, t] : tables_) {
    if (n == name) return t.get();
  }
  return nullptr;
}

const Table* Database::GetTable(const std::string& name) const {
  for (const auto& [n, t] : tables_) {
    if (n == name) return t.get();
  }
  return nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [n, t] : tables_) names.push_back(n);
  return names;
}

Status Database::CheckForeignKeys(const Table& table, const Row& row) const {
  for (const ForeignKeySpec& fk : table.schema().foreign_keys) {
    const Value& v = row.at(fk.column);
    if (v.is_null()) continue;
    const Table* ref = GetTable(fk.ref_table);
    if (ref == nullptr || !ref->Exists(v.as_int())) {
      return Status::InvalidArgument(
          "foreign key violation: " + table.schema().name + "." + fk.column +
          " -> " + fk.ref_table + " id " + std::to_string(v.as_int()));
    }
  }
  return Status::Ok();
}

Result<int64_t> Database::Insert(const std::string& table, Row row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Status st = CheckForeignKeys(*t, row);
  if (!st.ok()) return st;
  return t->Insert(std::move(row));
}

Status Database::Update(const std::string& table, int64_t id,
                        const Row& fields) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Status st = CheckForeignKeys(*t, fields);
  if (!st.ok()) return st;
  return t->Update(id, fields);
}

Status Database::Erase(const std::string& table, int64_t id) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  // Refuse while referenced.
  for (const auto& [name, other] : tables_) {
    for (const ForeignKeySpec& fk : other->schema().foreign_keys) {
      if (fk.ref_table != table) continue;
      std::vector<Row> refs = other->FindBy(fk.column, Value(id));
      if (!refs.empty()) {
        return Status::FailedPrecondition(
            "row " + std::to_string(id) + " of '" + table +
            "' is still referenced by table '" + name + "'");
      }
    }
  }
  if (!t->Erase(id)) {
    return Status::NotFound("no row " + std::to_string(id) + " in '" + table +
                            "'");
  }
  return Status::Ok();
}

std::string Database::Dump() const {
  Value root = Value::MakeObject();
  for (const auto& [name, table] : tables_) {
    root[name] = table->ToJson();
  }
  return root.ToJsonPretty();
}

Status Database::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open '" + path + "' for write");
  out << Dump();
  return out.good() ? Status::Ok()
                    : Status::Unavailable("write to '" + path + "' failed");
}

Status Database::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Value> parsed = json::Parse(buffer.str());
  if (!parsed.ok()) return parsed.status();
  for (auto& [name, table] : tables_) {
    const Value& table_obj = parsed->at(name);
    if (table_obj.is_null()) continue;  // table absent in snapshot
    Status st = table->LoadRows(table_obj);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace laminar::registry
