#include "registry/database.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/clock.hpp"
#include "common/json.hpp"

namespace laminar::registry {
namespace {

/// Writes `text` to a uniquely named temp file next to `path` and renames
/// it over `path`. POSIX rename is atomic within a filesystem, so readers
/// (and a crash at any point) observe either the old complete file or the
/// new complete file — never a torn mix. The temp name carries a
/// process-wide counter: saves run off-lock, so two concurrent writers to
/// the same destination must never share a temp file (one could otherwise
/// rename the other's half-written bytes into place).
Status WriteFileAtomic(const std::string& path, const std::string& text) {
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open '" + tmp + "' for write");
    }
    out << text;
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::Unavailable("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("rename '" + tmp + "' -> '" + path +
                               "' failed");
  }
  return Status::Ok();
}

/// write(2) with EINTR retry until the whole buffer is out. Failures are
/// swallowed (like the previous ofstream-based writer); durability beyond
/// the page cache is the fsync policy's job, not the append's.
void WriteAllFd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

/// Append-only mutation log. One JSON object per line:
///   {"seq":N,"ts":MS,"table":"...","op":"insert|update|erase|clear","id":N,
///    "data":{...}}
/// (`ts` is wall-clock milliseconds at append time, so a replica applying
/// the record can report replication lag across processes.)
///
/// Appends are serialized by an internal mutex (registry mutations already
/// hold the owner's exclusive lock; compaction runs off-lock concurrently
/// with nothing but other persistence calls). `muted` suppresses logging
/// while the database itself replays the log.
///
/// Writes go through a raw O_APPEND fd so the durability modes are real:
/// kPerRecord fsyncs inside the append, kInterval runs a background flusher
/// that fsyncs on a cadence while holding only `file_mu_` — appends (under
/// `mu_`) never wait on the disk. `file_mu_` guards the fd's lifetime:
/// anything that closes/reopens it (Compact, destruction) holds both locks.
class Database::WalWriter : public WalSink {
 public:
  WalWriter(std::string path, WalOptions options)
      : path_(std::move(path)), options_(options) {}

  ~WalWriter() override {
    {
      std::scoped_lock lock(mu_);
      stopping_ = true;
    }
    flush_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    std::scoped_lock lock(mu_, file_mu_);
    CloseFdLocked();
  }

  Status Open() {
    std::scoped_lock lock(mu_, file_mu_);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
      return Status::Unavailable("cannot open WAL '" + path_ +
                                 "' for append");
    }
    if (options_.fsync == WalFsyncMode::kInterval && !flusher_.joinable()) {
      flusher_ = std::thread([this] { FlusherLoop(); });
    }
    return Status::Ok();
  }

  void Append(const std::string& table, std::string_view op, int64_t id,
              const Value* payload) override {
    std::scoped_lock lock(mu_);
    if (muted_ || fd_ < 0) return;
    const uint64_t seq = next_seq_++;
    Value record = Value::MakeObject();
    record["seq"] = static_cast<int64_t>(seq);
    record["ts"] = NowWallMillis();
    record["table"] = table;
    record["op"] = std::string(op);
    if (id != 0) record["id"] = id;
    if (payload != nullptr) record["data"] = *payload;
    std::string line = record.ToJson();
    line += '\n';
    WriteAllFd(fd_, line);
    appended_seq_ = seq;
    ++records_;
    bytes_ += line.size();
    if (options_.fsync == WalFsyncMode::kPerRecord) {
      ::fsync(fd_);
      if (seq > durable_seq_) durable_seq_ = seq;
    }
    if (observer_) {
      line.pop_back();  // observers get the record without the newline
      observer_(seq, line);
    }
  }

  /// Drops every record with seq <= `covered_seq` (they are contained in
  /// the snapshot just written). Rewrites via tmp + rename like snapshots.
  /// Refuses on mid-file corruption — rewriting would silently drop the
  /// intact records after the corrupt one (a torn final line is fine).
  Status Compact(uint64_t covered_seq) {
    std::scoped_lock lock(mu_, file_mu_);
    std::string kept;
    {
      std::ifstream in(path_);
      std::string line;
      uint64_t line_no = 0;
      uint64_t bad_line = 0;
      while (in && std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        if (bad_line != 0) {
          return Status::ParseError(
              "WAL '" + path_ + "' corrupt at line " +
              std::to_string(bad_line) +
              ": intact records follow, refusing to compact");
        }
        Result<Value> record = json::Parse(line);
        if (!record.ok()) {
          bad_line = line_no;  // torn tail unless more records follow
          continue;
        }
        if (static_cast<uint64_t>(record->GetInt("seq", 0)) > covered_seq) {
          kept += line;
          kept += '\n';
        }
      }
    }
    CloseFdLocked();
    Status st = WriteFileAtomic(path_, kept);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (st.ok() && fd_ < 0) {
      st = Status::Unavailable("cannot reopen WAL '" + path_ + "'");
    }
    // Everything <= covered_seq is durable via the snapshot just written.
    if (st.ok() && covered_seq > durable_seq_) durable_seq_ = covered_seq;
    return st;
  }

  void SetMuted(bool muted) {
    std::scoped_lock lock(mu_);
    muted_ = muted;
  }

  void SetObserver(WalObserver observer) {
    std::scoped_lock lock(mu_);
    observer_ = std::move(observer);
  }

  void EnsureSeqAbove(uint64_t seq) {
    std::scoped_lock lock(mu_);
    if (next_seq_ <= seq) next_seq_ = seq + 1;
  }

  uint64_t LastAssignedSeq() {
    std::scoped_lock lock(mu_);
    return next_seq_ - 1;
  }

  WalStatus StatusNow() {
    std::scoped_lock lock(mu_);
    WalStatus status;
    status.enabled = true;
    status.fsync_mode = options_.fsync == WalFsyncMode::kPerRecord
                            ? "per_record"
                            : options_.fsync == WalFsyncMode::kInterval
                                  ? "interval"
                                  : "none";
    status.appended_seq = appended_seq_ != 0 ? appended_seq_ : next_seq_ - 1;
    status.durable_seq = durable_seq_;
    status.records = records_;
    status.bytes = bytes_;
    return status;
  }

  const std::string& path() const { return path_; }

 private:
  void CloseFdLocked() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void FlusherLoop() {
    std::unique_lock lock(mu_);
    while (!stopping_) {
      flush_cv_.wait_for(
          lock, std::chrono::milliseconds(
                    std::max(1, options_.fsync_interval_ms)));
      if (stopping_) break;
      const uint64_t target = appended_seq_;
      if (target <= durable_seq_ || fd_ < 0) continue;
      lock.unlock();
      {
        // fd_ is stable under file_mu_ alone; appends proceed meanwhile.
        std::scoped_lock file_lock(file_mu_);
        if (fd_ >= 0) ::fsync(fd_);
      }
      lock.lock();
      if (target > durable_seq_) durable_seq_ = target;
    }
  }

  std::string path_;
  WalOptions options_;
  std::mutex mu_;
  std::mutex file_mu_;  ///< fd lifetime; held (without mu_) during fsync
  std::condition_variable flush_cv_;
  std::thread flusher_;
  bool stopping_ = false;
  int fd_ = -1;
  bool muted_ = false;
  uint64_t next_seq_ = 1;
  uint64_t appended_seq_ = 0;
  uint64_t durable_seq_ = 0;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  WalObserver observer_;
};

Database::Database() = default;

Database::~Database() = default;

Status Database::CreateTable(TableSchema schema) {
  if (GetTable(schema.name) != nullptr) {
    return Status::AlreadyExists("table '" + schema.name + "' already exists");
  }
  for (const ForeignKeySpec& fk : schema.foreign_keys) {
    if (GetTable(fk.ref_table) == nullptr) {
      return Status::InvalidArgument("foreign key references unknown table '" +
                                     fk.ref_table + "'");
    }
  }
  std::string name = schema.name;
  tables_.emplace_back(name, std::make_unique<Table>(std::move(schema)));
  table_slots_[name] = tables_.size() - 1;
  if (wal_ != nullptr) tables_.back().second->SetWalSink(wal_.get());
  return Status::Ok();
}

Table* Database::GetTable(const std::string& name) {
  auto it = table_slots_.find(name);
  return it == table_slots_.end() ? nullptr : tables_[it->second].second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = table_slots_.find(name);
  return it == table_slots_.end() ? nullptr : tables_[it->second].second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [n, t] : tables_) names.push_back(n);
  return names;
}

Status Database::CheckForeignKeys(const Table& table, const Row& row) const {
  for (const ForeignKeySpec& fk : table.schema().foreign_keys) {
    const Value& v = row.at(fk.column);
    if (v.is_null()) continue;
    const Table* ref = GetTable(fk.ref_table);
    if (ref == nullptr || !ref->Exists(v.as_int())) {
      return Status::InvalidArgument(
          "foreign key violation: " + table.schema().name + "." + fk.column +
          " -> " + fk.ref_table + " id " + std::to_string(v.as_int()));
    }
  }
  return Status::Ok();
}

Result<int64_t> Database::Insert(const std::string& table, Row row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Status st = CheckForeignKeys(*t, row);
  if (!st.ok()) return st;
  return t->Insert(std::move(row));
}

Status Database::Update(const std::string& table, int64_t id,
                        const Row& fields) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  Status st = CheckForeignKeys(*t, fields);
  if (!st.ok()) return st;
  return t->Update(id, fields);
}

Status Database::Erase(const std::string& table, int64_t id) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  // Refuse while referenced.
  for (const auto& [name, other] : tables_) {
    for (const ForeignKeySpec& fk : other->schema().foreign_keys) {
      if (fk.ref_table != table) continue;
      std::vector<Row> refs = other->FindBy(fk.column, Value(id));
      if (!refs.empty()) {
        return Status::FailedPrecondition(
            "row " + std::to_string(id) + " of '" + table +
            "' is still referenced by table '" + name + "'");
      }
    }
  }
  if (!t->Erase(id)) {
    return Status::NotFound("no row " + std::to_string(id) + " in '" + table +
                            "'");
  }
  return Status::Ok();
}

std::string Database::Dump() const {
  Value root = Value::MakeObject();
  for (const auto& [name, table] : tables_) {
    root[name] = table->ToJson();
  }
  return root.ToJsonPretty();
}

Database::Snapshot Database::CaptureSnapshot() const {
  Snapshot snapshot;
  snapshot.tables.reserve(tables_.size());
  if (wal_ != nullptr) snapshot.wal_seq = wal_->LastAssignedSeq();
  std::scoped_lock lock(persist_mu_);
  for (const auto& [name, table] : tables_) {
    Snapshot::TableSnap snap;
    snap.name = name;
    snap.version = table->version();
    auto cached = serialized_cache_.find(name);
    if (cached != serialized_cache_.end() &&
        cached->second.first == snap.version) {
      snap.cached = true;
      snap.text = cached->second.second;  // clean table: reuse, no row copy
    } else {
      snap.data = table->ToJson();  // dirty table: copy rows only
    }
    snapshot.tables.push_back(std::move(snap));
  }
  return snapshot;
}

std::string Database::SerializeSnapshot(Snapshot& snapshot) const {
  // Serialize dirty tables outside any registry lock — this is the
  // expensive part of a save and it touches only the captured copies.
  for (Snapshot::TableSnap& snap : snapshot.tables) {
    if (!snap.cached) snap.text = snap.data.ToJson();
  }
  std::string doc = "{\n\"__wal_seq\": " + std::to_string(snapshot.wal_seq);
  for (const Snapshot::TableSnap& snap : snapshot.tables) {
    doc += ",\n";
    doc += Value(snap.name).ToJson();
    doc += ": ";
    doc += snap.text;
  }
  doc += "\n}\n";
  return doc;
}

Status Database::WriteSnapshot(Snapshot snapshot,
                               const std::string& path) const {
  std::string doc = SerializeSnapshot(snapshot);
  Status st = WriteFileAtomic(path, doc);
  if (!st.ok()) return st;
  {
    std::scoped_lock lock(persist_mu_);
    for (Snapshot::TableSnap& snap : snapshot.tables) {
      serialized_cache_[snap.name] = {snap.version, std::move(snap.text)};
    }
  }
  // Everything up to wal_seq is now durable — but only in THIS file.
  // Compacting is safe only when the snapshot is the one Recover() will
  // read at next boot; after a save to any other path, records between the
  // recovery snapshot's sequence and wal_seq exist nowhere else, so the
  // log must keep them.
  if (wal_ != nullptr && !recovery_snapshot_path_.empty() &&
      path == recovery_snapshot_path_) {
    return wal_->Compact(snapshot.wal_seq);
  }
  return Status::Ok();
}

Status Database::SaveToFile(const std::string& path) const {
  return WriteSnapshot(CaptureSnapshot(), path);
}

Result<uint64_t> Database::LoadFromText(const std::string& text) {
  Result<Value> parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  for (auto& [name, table] : tables_) {
    const Value& table_obj = parsed->at(name);
    if (table_obj.is_null()) continue;  // table absent in snapshot
    Status st = table->LoadRows(table_obj);
    if (!st.ok()) return st;
  }
  const uint64_t snapshot_seq =
      static_cast<uint64_t>(parsed->GetInt("__wal_seq", 0));
  if (wal_ != nullptr) wal_->EnsureSeqAbove(snapshot_seq);
  return snapshot_seq;
}

Status Database::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<uint64_t> snapshot_seq = LoadFromText(buffer.str());
  if (!snapshot_seq.ok()) return snapshot_seq.status();
  if (wal_ != nullptr) {
    return ReplayWal(wal_->path(), snapshot_seq.value());
  }
  return Status::Ok();
}

Status Database::EnableWal(const std::string& path, WalOptions options) {
  if (wal_ != nullptr && wal_->path() == path) return Status::Ok();
  auto writer = std::make_unique<WalWriter>(path, options);
  Status st = writer->Open();
  if (!st.ok()) return st;
  wal_ = std::move(writer);
  if (wal_observer_) wal_->SetObserver(wal_observer_);
  for (auto& [name, table] : tables_) table->SetWalSink(wal_.get());
  return Status::Ok();
}

void Database::DisableWal() {
  for (auto& [name, table] : tables_) table->SetWalSink(nullptr);
  wal_.reset();
}

bool Database::wal_enabled() const { return wal_ != nullptr; }

std::string Database::wal_path() const {
  return wal_ != nullptr ? wal_->path() : std::string();
}

WalStatus Database::wal_status() const {
  return wal_ != nullptr ? wal_->StatusNow() : WalStatus{};
}

void Database::SetWalObserver(WalObserver observer) {
  wal_observer_ = std::move(observer);
  if (wal_ != nullptr) wal_->SetObserver(wal_observer_);
}

Status Database::Recover(const std::string& snapshot_path,
                         const std::string& wal_path,
                         WalOptions wal_options) {
  uint64_t snapshot_seq = 0;
  if (!snapshot_path.empty() && std::filesystem::exists(snapshot_path)) {
    std::ifstream in(snapshot_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Value> parsed = json::Parse(buffer.str());
    if (!parsed.ok()) return parsed.status();
    for (auto& [name, table] : tables_) {
      const Value& table_obj = parsed->at(name);
      if (table_obj.is_null()) continue;
      Status st = table->LoadRows(table_obj);
      if (!st.ok()) return st;
    }
    snapshot_seq = static_cast<uint64_t>(parsed->GetInt("__wal_seq", 0));
  }
  recovery_snapshot_path_ = snapshot_path;
  // Enable the log BEFORE replaying, exactly like LoadFromFile: the replay
  // then advances the live writer's sequence past the snapshot and every
  // record it applies (the sink is muted during replay, so nothing is
  // re-appended). Replaying first would leave the fresh writer at seq 1,
  // and every post-recovery mutation would reuse sequence numbers the
  // snapshot already covers — silently skipped by the next recovery's
  // suffix filter, and compacted away as if durable.
  Status st = EnableWal(wal_path, wal_options);
  if (!st.ok()) return st;
  wal_->EnsureSeqAbove(snapshot_seq);
  return ReplayWal(wal_path, snapshot_seq);
}

Status Database::ReplayWal(const std::string& path, uint64_t min_seq) {
  std::ifstream in(path);
  if (!in) return Status::Ok();  // no log yet: nothing to replay
  if (wal_ != nullptr) wal_->SetMuted(true);
  uint64_t max_seq = min_seq;
  uint64_t last_good_seq = 0;
  uint64_t line_no = 0;
  uint64_t bad_line = 0;  // first unparseable line (0 = none seen)
  Status st = Status::Ok();
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (bad_line != 0) {
      // Intact records AFTER an unparseable one: that is not a crash
      // mid-append but mid-file corruption. Replaying past the hole would
      // silently drop committed mutations, so recovery must fail loudly.
      st = Status::ParseError(
          "WAL '" + path + "' corrupt at line " + std::to_string(bad_line) +
          " (last good seq " + std::to_string(last_good_seq) +
          "): intact records follow the corrupt one");
      break;
    }
    Result<Value> record = json::Parse(line);
    // A torn trailing line is the expected shape of a crash mid-append:
    // tolerated, as long as nothing parseable comes after it.
    if (!record.ok()) {
      bad_line = line_no;
      continue;
    }
    const uint64_t seq = static_cast<uint64_t>(record->GetInt("seq", 0));
    last_good_seq = seq;
    if (seq <= min_seq) continue;  // covered by the loaded snapshot
    st = ApplyWalRecord(record.value());
    if (!st.ok()) break;
    if (seq > max_seq) max_seq = seq;
  }
  if (wal_ != nullptr) {
    wal_->EnsureSeqAbove(max_seq);
    wal_->SetMuted(false);
  }
  return st;
}

Status Database::ApplyWalRecord(const Value& record) {
  const std::string table_name = record.GetString("table");
  Table* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::ParseError("WAL record references unknown table '" +
                              table_name + "'");
  }
  const std::string op = record.GetString("op");
  const int64_t id = record.GetInt("id", 0);
  if (op == "insert") return table->RestoreRow(record.at("data"));
  if (op == "update") return table->Update(id, record.at("data"));
  if (op == "erase") {
    (void)table->Erase(id);  // already-gone rows are not a replay failure
    return Status::Ok();
  }
  if (op == "clear") {
    table->Clear();
    return Status::Ok();
  }
  return Status::ParseError("WAL record has unknown op '" + op + "'");
}

}  // namespace laminar::registry
