#include "search/search_service.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

/// Query-kind instrumentation: laminar_search_queries_total{kind=...} and a
/// latency histogram laminar_search_query_ms{kind=...}, plus a trace span.
struct QueryMetrics {
  telemetry::Counter& queries;
  telemetry::Histogram& latency_ms;

  static QueryMetrics For(const char* kind) {
    auto& reg = telemetry::MetricsRegistry::Global();
    const std::string label = std::string("kind=\"") + kind + "\"";
    return QueryMetrics{
        reg.GetCounter("laminar_search_queries_total", label),
        reg.GetHistogram("laminar_search_query_ms", label)};
  }
};

telemetry::Counter& EncodeCounter(const char* model) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_embed_encodes_total", std::string("model=\"") + model + "\"");
}

}  // namespace

SearchService::SearchService(registry::Repository& repo, SearchConfig config)
    : repo_(&repo),
      config_(config),
      unixcoder_(config.unixcoder),
      reacc_(config.reacc),
      aroma_(config.aroma) {}

Status SearchService::AddPe(int64_t pe_id) {
  Result<registry::PeRecord> pe = repo_->GetPe(pe_id);
  if (!pe.ok()) return pe.status();
  Doc doc;
  doc.name = pe->name;
  doc.description = pe->description;
  doc.text_embedding = pe->description_embedding.empty()
                           ? unixcoder_.EncodeText(pe->description)
                           : embed::FromJson(pe->description_embedding);
  if (doc.text_embedding.empty()) {
    doc.text_embedding = unixcoder_.EncodeText(pe->description);
  }
  EncodeCounter("reacc").Inc();
  doc.code_embedding = reacc_.EncodeCode(pe->code);
  pe_docs_[pe_id] = std::move(doc);
  // The Aroma index ignores snippets with no extractable features (e.g.
  // registration of an empty stub) rather than failing the registration.
  (void)aroma_.AddSnippet(pe_id, pe->code);
  return Status::Ok();
}

Status SearchService::AddWorkflow(int64_t workflow_id) {
  Result<registry::WorkflowRecord> wf = repo_->GetWorkflow(workflow_id);
  if (!wf.ok()) return wf.status();
  Doc doc;
  doc.name = wf->name;
  doc.description = wf->description;
  doc.text_embedding = wf->description_embedding.empty()
                           ? unixcoder_.EncodeText(wf->description)
                           : embed::FromJson(wf->description_embedding);
  if (doc.text_embedding.empty()) {
    doc.text_embedding = unixcoder_.EncodeText(wf->description);
  }
  doc.code_embedding = reacc_.EncodeCode(wf->code);
  workflow_docs_[workflow_id] = std::move(doc);
  return Status::Ok();
}

void SearchService::RemovePe(int64_t pe_id) {
  pe_docs_.erase(pe_id);
  aroma_.RemoveSnippet(pe_id);
}

void SearchService::RemoveWorkflow(int64_t workflow_id) {
  workflow_docs_.erase(workflow_id);
}

void SearchService::Clear() {
  pe_docs_.clear();
  workflow_docs_.clear();
  // AromaEngine has no bulk clear; rebuild it.
  aroma_ = spt::AromaEngine(config_.aroma);
}

Status SearchService::ReindexAll() {
  Clear();
  for (const registry::PeRecord& pe : repo_->AllPes()) {
    Status st = AddPe(pe.id);
    if (!st.ok()) return st;
  }
  for (const registry::WorkflowRecord& wf : repo_->AllWorkflows()) {
    Status st = AddWorkflow(wf.id);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

std::vector<SearchHit> SearchService::LiteralSearch(const std::string& term,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("literal");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.literal", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  const auto& docs = target == SearchTarget::kPe ? pe_docs_ : workflow_docs_;
  std::vector<SearchHit> hits;
  for (const auto& [id, doc] : docs) {
    bool name_match = strings::ContainsIgnoreCase(doc.name, term);
    bool desc_match = strings::ContainsIgnoreCase(doc.description, term);
    if (!name_match && !desc_match) continue;
    SearchHit hit;
    hit.id = id;
    hit.name = doc.name;
    hit.description = doc.description;
    hit.score = name_match ? 2.0 : 1.0;  // name matches rank first
    hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

std::vector<SearchHit> SearchService::RankByCosine(
    const embed::Vector& query, const std::unordered_map<int64_t, Doc>& docs,
    bool use_code_embedding, size_t limit) const {
  std::vector<SearchHit> hits;
  hits.reserve(docs.size());
  for (const auto& [id, doc] : docs) {
    const embed::Vector& target =
        use_code_embedding ? doc.code_embedding : doc.text_embedding;
    double score = embed::Cosine(query, target);
    SearchHit hit;
    hit.id = id;
    hit.name = doc.name;
    hit.description = doc.description;
    hit.score = score;
    hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

std::vector<SearchHit> SearchService::SemanticSearch(const std::string& query,
                                                     SearchTarget target,
                                                     size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("semantic");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.semantic", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  EncodeCounter("unixcoder").Inc();
  embed::Vector q = unixcoder_.EncodeText(query);
  return RankByCosine(
      q, target == SearchTarget::kPe ? pe_docs_ : workflow_docs_,
      /*use_code_embedding=*/false, limit);
}

std::vector<SearchHit> SearchService::CodeSearchLlm(const std::string& code,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("llm");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.llm", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  EncodeCounter("reacc").Inc();
  embed::Vector q = reacc_.EncodeCode(code);
  return RankByCosine(
      q, target == SearchTarget::kPe ? pe_docs_ : workflow_docs_,
      /*use_code_embedding=*/true, limit);
}

Result<std::vector<spt::Completion>> SearchService::CodeCompletion(
    const std::string& partial_code, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("complete");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.complete", &qm.latency_ms);
  return aroma_.Complete(partial_code, limit);
}

Result<std::vector<RecommendationHit>> SearchService::CodeRecommendation(
    const std::string& code, SearchTarget target, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("recommend");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.recommend", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  if (target == SearchTarget::kPe) {
    Result<std::vector<spt::Recommendation>> recs = aroma_.Recommend(code);
    if (!recs.ok()) return recs.status();
    std::vector<RecommendationHit> out;
    for (const spt::Recommendation& rec : recs.value()) {
      if (out.size() >= limit) break;
      RecommendationHit hit;
      hit.id = rec.snippet_id;
      auto doc = pe_docs_.find(rec.snippet_id);
      if (doc != pe_docs_.end()) {
        hit.name = doc->second.name;
        hit.description = doc->second.description;
      }
      hit.score = rec.score;
      hit.similar_code = rec.recommended_code;
      out.push_back(std::move(hit));
    }
    return out;
  }

  // Workflow recommendation (§VI-A): find similar PEs, then rank the
  // workflows containing them by occurrence count. Uses the raw structural
  // search (not the clustered recommendations — clustering would collapse
  // several similar PEs of one workflow into a single occurrence).
  Result<std::vector<spt::SptIndex::Hit>> pe_hits =
      aroma_.Search(code, /*k=*/4 * limit + 8, spt::Metric::kOverlap);
  if (!pe_hits.ok()) return pe_hits.status();
  std::map<int64_t, RecommendationHit> by_workflow;
  for (const spt::SptIndex::Hit& pe_hit : pe_hits.value()) {
    if (pe_hit.score < config_.recommend_min_score) continue;
    for (int64_t wf_id : repo_->WorkflowsUsingPe(pe_hit.doc_id)) {
      RecommendationHit& hit = by_workflow[wf_id];
      if (hit.id == 0) {
        hit.id = wf_id;
        auto doc = workflow_docs_.find(wf_id);
        if (doc != workflow_docs_.end()) {
          hit.name = doc->second.name;
          hit.description = doc->second.description;
        }
        hit.occurrences = 0;
      }
      ++hit.occurrences;
      hit.score = std::max(hit.score, pe_hit.score);
      if (hit.similar_code.empty()) {
        auto pe_doc = pe_docs_.find(pe_hit.doc_id);
        if (pe_doc != pe_docs_.end()) hit.similar_code = pe_doc->second.name;
      }
    }
  }
  std::vector<RecommendationHit> out;
  out.reserve(by_workflow.size());
  for (auto& [id, hit] : by_workflow) out.push_back(std::move(hit));
  std::sort(out.begin(), out.end(),
            [](const RecommendationHit& a, const RecommendationHit& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace laminar::search
