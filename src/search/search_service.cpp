#include "search/search_service.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

/// Query-kind instrumentation: laminar_search_queries_total{kind=...} and a
/// latency histogram laminar_search_query_ms{kind=...}, plus a trace span.
struct QueryMetrics {
  telemetry::Counter& queries;
  telemetry::Histogram& latency_ms;

  static QueryMetrics For(const char* kind) {
    auto& reg = telemetry::MetricsRegistry::Global();
    const std::string label = std::string("kind=\"") + kind + "\"";
    return QueryMetrics{
        reg.GetCounter("laminar_search_queries_total", label),
        reg.GetHistogram("laminar_search_query_ms", label)};
  }
};

telemetry::Counter& EncodeCounter(const char* model) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_embed_encodes_total", std::string("model=\"") + model + "\"");
}

/// Stamps the per-index telemetry label ("peText" etc.) onto the shared
/// vector-index options so laminar_ann_* metrics separate by index.
VectorIndex::Options Labeled(VectorIndex::Options options, const char* label) {
  options.label = label;
  return options;
}

}  // namespace

SearchService::SearchService(registry::Repository& repo, SearchConfig config)
    : repo_(&repo),
      config_(config),
      unixcoder_(config.unixcoder),
      reacc_(config.reacc),
      aroma_(config.aroma),
      pe_text_index_(config.unixcoder.dims,
                     Labeled(config.vector_index, "peText")),
      pe_code_index_(config.reacc.dims, Labeled(config.vector_index, "peCode")),
      workflow_text_index_(config.unixcoder.dims,
                           Labeled(config.vector_index, "workflowText")),
      workflow_code_index_(config.reacc.dims,
                           Labeled(config.vector_index, "workflowCode")),
      query_cache_(config.query_cache_capacity) {}

embed::Vector SearchService::TextEmbeddingFor(
    const std::string& stored_json, const std::string& description) const {
  if (!stored_json.empty()) {
    embed::Vector stored = embed::FromJson(stored_json);
    if (!stored.empty()) return stored;
  }
  EncodeCounter("unixcoder").Inc();
  return unixcoder_.EncodeText(description);
}

SearchService::PreparedPe SearchService::PreparePe(
    std::string name, std::string description,
    const std::string& stored_embedding_json, std::string code) const {
  PreparedPe prepared;
  prepared.name = std::move(name);
  prepared.description = std::move(description);
  prepared.code = std::move(code);
  prepared.text_embedding =
      TextEmbeddingFor(stored_embedding_json, prepared.description);
  EncodeCounter("reacc").Inc();
  prepared.code_embedding = reacc_.EncodeCode(prepared.code);
  // Snippets with no extractable features (e.g. an empty stub) are simply
  // not indexed for recommendation rather than failing the registration.
  Result<spt::FeatureBag> bag = aroma_.Featurize(prepared.code);
  if (bag.ok() && bag->total > 0) {
    prepared.features = std::move(bag.value());
    prepared.has_features = true;
  }
  return prepared;
}

SearchService::PreparedWorkflow SearchService::PrepareWorkflow(
    std::string name, std::string description,
    const std::string& stored_embedding_json, const std::string& code) const {
  PreparedWorkflow prepared;
  prepared.name = std::move(name);
  prepared.description = std::move(description);
  prepared.text_embedding =
      TextEmbeddingFor(stored_embedding_json, prepared.description);
  EncodeCounter("reacc").Inc();
  prepared.code_embedding = reacc_.EncodeCode(code);
  return prepared;
}

void SearchService::CommitPe(int64_t pe_id, PreparedPe prepared) {
  pe_text_index_.Upsert(pe_id, prepared.text_embedding);
  pe_code_index_.Upsert(pe_id, prepared.code_embedding);
  if (prepared.has_features) {
    (void)aroma_.AddSnippetWithFeatures(pe_id, prepared.code,
                                        std::move(prepared.features));
  }
  pe_docs_[pe_id] =
      Doc{std::move(prepared.name), std::move(prepared.description)};
}

void SearchService::CommitWorkflow(int64_t workflow_id,
                                   PreparedWorkflow prepared) {
  workflow_text_index_.Upsert(workflow_id, prepared.text_embedding);
  workflow_code_index_.Upsert(workflow_id, prepared.code_embedding);
  workflow_docs_[workflow_id] =
      Doc{std::move(prepared.name), std::move(prepared.description)};
}

void SearchService::UpdatePeDescription(int64_t pe_id, std::string description,
                                        embed::Vector text_embedding) {
  pe_text_index_.Upsert(pe_id, text_embedding);
  auto it = pe_docs_.find(pe_id);
  if (it != pe_docs_.end()) it->second.description = std::move(description);
}

void SearchService::UpdateWorkflowDescription(int64_t workflow_id,
                                              std::string description,
                                              embed::Vector text_embedding) {
  workflow_text_index_.Upsert(workflow_id, text_embedding);
  auto it = workflow_docs_.find(workflow_id);
  if (it != workflow_docs_.end()) it->second.description = std::move(description);
}

Status SearchService::AddPe(int64_t pe_id) {
  Result<registry::PeRecord> pe = repo_->GetPe(pe_id);
  if (!pe.ok()) return pe.status();
  CommitPe(pe_id, PreparePe(pe->name, pe->description,
                            pe->description_embedding, pe->code));
  return Status::Ok();
}

Status SearchService::AddWorkflow(int64_t workflow_id) {
  Result<registry::WorkflowRecord> wf = repo_->GetWorkflow(workflow_id);
  if (!wf.ok()) return wf.status();
  CommitWorkflow(workflow_id, PrepareWorkflow(wf->name, wf->description,
                                              wf->description_embedding,
                                              wf->code));
  return Status::Ok();
}

void SearchService::RemovePe(int64_t pe_id) {
  pe_docs_.erase(pe_id);
  pe_text_index_.Remove(pe_id);
  pe_code_index_.Remove(pe_id);
  aroma_.RemoveSnippet(pe_id);
}

void SearchService::RemoveWorkflow(int64_t workflow_id) {
  workflow_docs_.erase(workflow_id);
  workflow_text_index_.Remove(workflow_id);
  workflow_code_index_.Remove(workflow_id);
}

void SearchService::Clear() {
  pe_docs_.clear();
  workflow_docs_.clear();
  pe_text_index_.Clear();
  pe_code_index_.Clear();
  workflow_text_index_.Clear();
  workflow_code_index_.Clear();
  query_cache_.Clear();
  // AromaEngine has no bulk clear; rebuild it.
  aroma_ = spt::AromaEngine(config_.aroma);
}

void SearchService::BeginBulkIndexing() {
  pe_text_index_.BeginBulk();
  pe_code_index_.BeginBulk();
  workflow_text_index_.BeginBulk();
  workflow_code_index_.BeginBulk();
}

void SearchService::EndBulkIndexing(ThreadPool* pool) {
  pe_text_index_.EndBulk(pool);
  pe_code_index_.EndBulk(pool);
  workflow_text_index_.EndBulk(pool);
  workflow_code_index_.EndBulk(pool);
}

std::vector<std::pair<std::string, VectorIndexStats>>
SearchService::IndexStats() const {
  return {{"peText", pe_text_index_.stats()},
          {"peCode", pe_code_index_.stats()},
          {"workflowText", workflow_text_index_.stats()},
          {"workflowCode", workflow_code_index_.stats()}};
}

Status SearchService::ReindexAll(ThreadPool* pool) {
  const auto start = std::chrono::steady_clock::now();
  Clear();
  const std::vector<registry::PeRecord> pes = repo_->AllPes();
  const std::vector<registry::WorkflowRecord> wfs = repo_->AllWorkflows();
  // Prepare fans out (encodes + SPT featurization are const and
  // thread-safe); commits run serially on this thread because index
  // mutations rely on the caller's exclusive lock. Bulk mode defers ANN
  // graph maintenance so EndBulkIndexing can build each graph once, with
  // the level inserts themselves fanned out over the pool.
  BeginBulkIndexing();
  std::vector<PreparedPe> pe_prepared(pes.size());
  ParallelFor(pool, pes.size(), [&](size_t i) {
    pe_prepared[i] = PreparePe(pes[i].name, pes[i].description,
                               pes[i].description_embedding, pes[i].code);
  });
  for (size_t i = 0; i < pes.size(); ++i) {
    CommitPe(pes[i].id, std::move(pe_prepared[i]));
  }
  std::vector<PreparedWorkflow> wf_prepared(wfs.size());
  ParallelFor(pool, wfs.size(), [&](size_t i) {
    wf_prepared[i] = PrepareWorkflow(wfs[i].name, wfs[i].description,
                                     wfs[i].description_embedding,
                                     wfs[i].code);
  });
  for (size_t i = 0; i < wfs.size(); ++i) {
    CommitWorkflow(wfs[i].id, std::move(wf_prepared[i]));
  }
  EndBulkIndexing(pool);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  telemetry::MetricsRegistry::Global()
      .GetGauge("laminar_search_bulk_build_ms")
      .Set(elapsed.count());
  return Status::Ok();
}

std::vector<SearchHit> SearchService::LiteralSearch(const std::string& term,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("literal");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.literal", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  const auto& docs = target == SearchTarget::kPe ? pe_docs_ : workflow_docs_;
  std::vector<SearchHit> hits;
  for (const auto& [id, doc] : docs) {
    bool name_match = strings::ContainsIgnoreCase(doc.name, term);
    bool desc_match = strings::ContainsIgnoreCase(doc.description, term);
    if (!name_match && !desc_match) continue;
    SearchHit hit;
    hit.id = id;
    hit.name = doc.name;
    hit.description = doc.description;
    hit.score = name_match ? 2.0 : 1.0;  // name matches rank first
    hits.push_back(std::move(hit));
  }
  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  // Bounded selection: O(n) partition to the winning `limit` instead of a
  // full O(n log n) sort of every match.
  if (hits.size() > limit) {
    std::nth_element(hits.begin(),
                     hits.begin() + static_cast<std::ptrdiff_t>(limit),
                     hits.end(), better);
    hits.resize(limit);
  }
  std::sort(hits.begin(), hits.end(), better);
  return hits;
}

std::vector<SearchHit> SearchService::RankTopK(
    const embed::Vector& query, const VectorIndex& index,
    const std::unordered_map<int64_t, Doc>& docs, size_t limit) const {
  std::vector<SearchHit> hits;
  hits.reserve(std::min(limit, index.size()));
  for (const ScoredId& scored : index.TopK(query, limit)) {
    SearchHit hit;
    hit.id = scored.id;
    hit.score = scored.score;
    auto doc = docs.find(scored.id);
    if (doc != docs.end()) {
      hit.name = doc->second.name;
      hit.description = doc->second.description;
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<SearchHit> SearchService::SemanticSearch(const std::string& query,
                                                     SearchTarget target,
                                                     size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("semantic");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.semantic", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  embed::Vector q = query_cache_.GetOrCompute("unixcoder", query, [&] {
    EncodeCounter("unixcoder").Inc();
    return unixcoder_.EncodeText(query);
  });
  return target == SearchTarget::kPe
             ? RankTopK(q, pe_text_index_, pe_docs_, limit)
             : RankTopK(q, workflow_text_index_, workflow_docs_, limit);
}

std::vector<SearchHit> SearchService::CodeSearchLlm(const std::string& code,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("llm");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.llm", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  embed::Vector q = query_cache_.GetOrCompute("reacc", code, [&] {
    EncodeCounter("reacc").Inc();
    return reacc_.EncodeCode(code);
  });
  return target == SearchTarget::kPe
             ? RankTopK(q, pe_code_index_, pe_docs_, limit)
             : RankTopK(q, workflow_code_index_, workflow_docs_, limit);
}

Result<std::vector<spt::Completion>> SearchService::CodeCompletion(
    const std::string& partial_code, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("complete");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.complete", &qm.latency_ms);
  return aroma_.Complete(partial_code, limit);
}

Result<std::vector<RecommendationHit>> SearchService::CodeRecommendation(
    const std::string& code, SearchTarget target, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("recommend");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.recommend", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  if (target == SearchTarget::kPe) {
    Result<std::vector<spt::Recommendation>> recs = aroma_.Recommend(code);
    if (!recs.ok()) return recs.status();
    std::vector<RecommendationHit> out;
    for (const spt::Recommendation& rec : recs.value()) {
      if (out.size() >= limit) break;
      RecommendationHit hit;
      hit.id = rec.snippet_id;
      auto doc = pe_docs_.find(rec.snippet_id);
      if (doc != pe_docs_.end()) {
        hit.name = doc->second.name;
        hit.description = doc->second.description;
      }
      hit.score = rec.score;
      hit.similar_code = rec.recommended_code;
      out.push_back(std::move(hit));
    }
    return out;
  }

  // Workflow recommendation (§VI-A): find similar PEs, then rank the
  // workflows containing them by occurrence count. Uses the raw structural
  // search (not the clustered recommendations — clustering would collapse
  // several similar PEs of one workflow into a single occurrence).
  Result<std::vector<spt::SptIndex::Hit>> pe_hits =
      aroma_.Search(code, /*k=*/4 * limit + 8, spt::Metric::kOverlap);
  if (!pe_hits.ok()) return pe_hits.status();
  std::map<int64_t, RecommendationHit> by_workflow;
  for (const spt::SptIndex::Hit& pe_hit : pe_hits.value()) {
    if (pe_hit.score < config_.recommend_min_score) continue;
    for (int64_t wf_id : repo_->WorkflowsUsingPe(pe_hit.doc_id)) {
      RecommendationHit& hit = by_workflow[wf_id];
      if (hit.id == 0) {
        hit.id = wf_id;
        auto doc = workflow_docs_.find(wf_id);
        if (doc != workflow_docs_.end()) {
          hit.name = doc->second.name;
          hit.description = doc->second.description;
        }
        hit.occurrences = 0;
      }
      ++hit.occurrences;
      hit.score = std::max(hit.score, pe_hit.score);
      if (hit.similar_code.empty()) {
        auto pe_doc = pe_docs_.find(pe_hit.doc_id);
        if (pe_doc != pe_docs_.end()) hit.similar_code = pe_doc->second.name;
      }
    }
  }
  std::vector<RecommendationHit> out;
  out.reserve(by_workflow.size());
  for (auto& [id, hit] : by_workflow) out.push_back(std::move(hit));
  auto better = [](const RecommendationHit& a, const RecommendationHit& b) {
    if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  // Bounded top-k selection, like the other ranked paths.
  if (out.size() > limit) {
    std::nth_element(out.begin(),
                     out.begin() + static_cast<std::ptrdiff_t>(limit),
                     out.end(), better);
    out.resize(limit);
  }
  std::sort(out.begin(), out.end(), better);
  return out;
}

}  // namespace laminar::search
