#include "search/search_service.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

/// Query-kind instrumentation: laminar_search_queries_total{kind=...} and a
/// latency histogram laminar_search_query_ms{kind=...}, plus a trace span.
struct QueryMetrics {
  telemetry::Counter& queries;
  telemetry::Histogram& latency_ms;

  static QueryMetrics For(const char* kind) {
    auto& reg = telemetry::MetricsRegistry::Global();
    const std::string label = std::string("kind=\"") + kind + "\"";
    return QueryMetrics{
        reg.GetCounter("laminar_search_queries_total", label),
        reg.GetHistogram("laminar_search_query_ms", label)};
  }
};

telemetry::Counter& EncodeCounter(const char* model) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_embed_encodes_total", std::string("model=\"") + model + "\"");
}

}  // namespace

SearchService::SearchService(registry::Repository& repo, SearchConfig config)
    : repo_(&repo),
      config_(config),
      unixcoder_(config.unixcoder),
      reacc_(config.reacc),
      aroma_(config.aroma),
      pe_text_index_(config.unixcoder.dims, config.vector_index),
      pe_code_index_(config.reacc.dims, config.vector_index),
      workflow_text_index_(config.unixcoder.dims, config.vector_index),
      workflow_code_index_(config.reacc.dims, config.vector_index),
      query_cache_(config.query_cache_capacity) {}

embed::Vector SearchService::TextEmbeddingFor(
    const std::string& stored_json, const std::string& description) const {
  if (!stored_json.empty()) {
    embed::Vector stored = embed::FromJson(stored_json);
    if (!stored.empty()) return stored;
  }
  EncodeCounter("unixcoder").Inc();
  return unixcoder_.EncodeText(description);
}

Status SearchService::AddPe(int64_t pe_id) {
  Result<registry::PeRecord> pe = repo_->GetPe(pe_id);
  if (!pe.ok()) return pe.status();
  Doc doc;
  doc.name = pe->name;
  doc.description = pe->description;
  pe_text_index_.Upsert(pe_id,
                        TextEmbeddingFor(pe->description_embedding,
                                         pe->description));
  EncodeCounter("reacc").Inc();
  pe_code_index_.Upsert(pe_id, reacc_.EncodeCode(pe->code));
  pe_docs_[pe_id] = std::move(doc);
  // The Aroma index ignores snippets with no extractable features (e.g.
  // registration of an empty stub) rather than failing the registration.
  (void)aroma_.AddSnippet(pe_id, pe->code);
  return Status::Ok();
}

Status SearchService::AddWorkflow(int64_t workflow_id) {
  Result<registry::WorkflowRecord> wf = repo_->GetWorkflow(workflow_id);
  if (!wf.ok()) return wf.status();
  Doc doc;
  doc.name = wf->name;
  doc.description = wf->description;
  workflow_text_index_.Upsert(workflow_id,
                              TextEmbeddingFor(wf->description_embedding,
                                               wf->description));
  EncodeCounter("reacc").Inc();
  workflow_code_index_.Upsert(workflow_id, reacc_.EncodeCode(wf->code));
  workflow_docs_[workflow_id] = std::move(doc);
  return Status::Ok();
}

void SearchService::RemovePe(int64_t pe_id) {
  pe_docs_.erase(pe_id);
  pe_text_index_.Remove(pe_id);
  pe_code_index_.Remove(pe_id);
  aroma_.RemoveSnippet(pe_id);
}

void SearchService::RemoveWorkflow(int64_t workflow_id) {
  workflow_docs_.erase(workflow_id);
  workflow_text_index_.Remove(workflow_id);
  workflow_code_index_.Remove(workflow_id);
}

void SearchService::Clear() {
  pe_docs_.clear();
  workflow_docs_.clear();
  pe_text_index_.Clear();
  pe_code_index_.Clear();
  workflow_text_index_.Clear();
  workflow_code_index_.Clear();
  query_cache_.Clear();
  // AromaEngine has no bulk clear; rebuild it.
  aroma_ = spt::AromaEngine(config_.aroma);
}

Status SearchService::ReindexAll() {
  Clear();
  for (const registry::PeRecord& pe : repo_->AllPes()) {
    Status st = AddPe(pe.id);
    if (!st.ok()) return st;
  }
  for (const registry::WorkflowRecord& wf : repo_->AllWorkflows()) {
    Status st = AddWorkflow(wf.id);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

std::vector<SearchHit> SearchService::LiteralSearch(const std::string& term,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("literal");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.literal", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  const auto& docs = target == SearchTarget::kPe ? pe_docs_ : workflow_docs_;
  std::vector<SearchHit> hits;
  for (const auto& [id, doc] : docs) {
    bool name_match = strings::ContainsIgnoreCase(doc.name, term);
    bool desc_match = strings::ContainsIgnoreCase(doc.description, term);
    if (!name_match && !desc_match) continue;
    SearchHit hit;
    hit.id = id;
    hit.name = doc.name;
    hit.description = doc.description;
    hit.score = name_match ? 2.0 : 1.0;  // name matches rank first
    hits.push_back(std::move(hit));
  }
  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  // Bounded selection: O(n) partition to the winning `limit` instead of a
  // full O(n log n) sort of every match.
  if (hits.size() > limit) {
    std::nth_element(hits.begin(),
                     hits.begin() + static_cast<std::ptrdiff_t>(limit),
                     hits.end(), better);
    hits.resize(limit);
  }
  std::sort(hits.begin(), hits.end(), better);
  return hits;
}

std::vector<SearchHit> SearchService::RankTopK(
    const embed::Vector& query, const VectorIndex& index,
    const std::unordered_map<int64_t, Doc>& docs, size_t limit) const {
  std::vector<SearchHit> hits;
  hits.reserve(std::min(limit, index.size()));
  for (const ScoredId& scored : index.TopK(query, limit)) {
    SearchHit hit;
    hit.id = scored.id;
    hit.score = scored.score;
    auto doc = docs.find(scored.id);
    if (doc != docs.end()) {
      hit.name = doc->second.name;
      hit.description = doc->second.description;
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<SearchHit> SearchService::SemanticSearch(const std::string& query,
                                                     SearchTarget target,
                                                     size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("semantic");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.semantic", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  embed::Vector q = query_cache_.GetOrCompute("unixcoder", query, [&] {
    EncodeCounter("unixcoder").Inc();
    return unixcoder_.EncodeText(query);
  });
  return target == SearchTarget::kPe
             ? RankTopK(q, pe_text_index_, pe_docs_, limit)
             : RankTopK(q, workflow_text_index_, workflow_docs_, limit);
}

std::vector<SearchHit> SearchService::CodeSearchLlm(const std::string& code,
                                                    SearchTarget target,
                                                    size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("llm");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.llm", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  embed::Vector q = query_cache_.GetOrCompute("reacc", code, [&] {
    EncodeCounter("reacc").Inc();
    return reacc_.EncodeCode(code);
  });
  return target == SearchTarget::kPe
             ? RankTopK(q, pe_code_index_, pe_docs_, limit)
             : RankTopK(q, workflow_code_index_, workflow_docs_, limit);
}

Result<std::vector<spt::Completion>> SearchService::CodeCompletion(
    const std::string& partial_code, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("complete");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.complete", &qm.latency_ms);
  return aroma_.Complete(partial_code, limit);
}

Result<std::vector<RecommendationHit>> SearchService::CodeRecommendation(
    const std::string& code, SearchTarget target, size_t limit) const {
  static QueryMetrics qm = QueryMetrics::For("recommend");
  qm.queries.Inc();
  telemetry::ScopedSpan span("search.recommend", &qm.latency_ms);
  if (limit == 0) limit = config_.default_limit;
  if (target == SearchTarget::kPe) {
    Result<std::vector<spt::Recommendation>> recs = aroma_.Recommend(code);
    if (!recs.ok()) return recs.status();
    std::vector<RecommendationHit> out;
    for (const spt::Recommendation& rec : recs.value()) {
      if (out.size() >= limit) break;
      RecommendationHit hit;
      hit.id = rec.snippet_id;
      auto doc = pe_docs_.find(rec.snippet_id);
      if (doc != pe_docs_.end()) {
        hit.name = doc->second.name;
        hit.description = doc->second.description;
      }
      hit.score = rec.score;
      hit.similar_code = rec.recommended_code;
      out.push_back(std::move(hit));
    }
    return out;
  }

  // Workflow recommendation (§VI-A): find similar PEs, then rank the
  // workflows containing them by occurrence count. Uses the raw structural
  // search (not the clustered recommendations — clustering would collapse
  // several similar PEs of one workflow into a single occurrence).
  Result<std::vector<spt::SptIndex::Hit>> pe_hits =
      aroma_.Search(code, /*k=*/4 * limit + 8, spt::Metric::kOverlap);
  if (!pe_hits.ok()) return pe_hits.status();
  std::map<int64_t, RecommendationHit> by_workflow;
  for (const spt::SptIndex::Hit& pe_hit : pe_hits.value()) {
    if (pe_hit.score < config_.recommend_min_score) continue;
    for (int64_t wf_id : repo_->WorkflowsUsingPe(pe_hit.doc_id)) {
      RecommendationHit& hit = by_workflow[wf_id];
      if (hit.id == 0) {
        hit.id = wf_id;
        auto doc = workflow_docs_.find(wf_id);
        if (doc != workflow_docs_.end()) {
          hit.name = doc->second.name;
          hit.description = doc->second.description;
        }
        hit.occurrences = 0;
      }
      ++hit.occurrences;
      hit.score = std::max(hit.score, pe_hit.score);
      if (hit.similar_code.empty()) {
        auto pe_doc = pe_docs_.find(pe_hit.doc_id);
        if (pe_doc != pe_docs_.end()) hit.similar_code = pe_doc->second.name;
      }
    }
  }
  std::vector<RecommendationHit> out;
  out.reserve(by_workflow.size());
  for (auto& [id, hit] : by_workflow) out.push_back(std::move(hit));
  auto better = [](const RecommendationHit& a, const RecommendationHit& b) {
    if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  // Bounded top-k selection, like the other ranked paths.
  if (out.size() > limit) {
    std::nth_element(out.begin(),
                     out.begin() + static_cast<std::ptrdiff_t>(limit),
                     out.end(), better);
    out.resize(limit);
  }
  std::sort(out.begin(), out.end(), better);
  return out;
}

}  // namespace laminar::search
