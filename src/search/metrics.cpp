#include "search/metrics.hpp"

#include <algorithm>

namespace laminar::search {

std::vector<PrPoint> PrecisionRecallCurve(
    const std::vector<std::vector<int64_t>>& ranked_per_query,
    const std::vector<std::unordered_set<int64_t>>& relevant_per_query,
    size_t max_k) {
  std::vector<PrPoint> curve;
  size_t queries = std::min(ranked_per_query.size(), relevant_per_query.size());
  for (size_t k = 1; k <= max_k; ++k) {
    double precision_sum = 0.0;
    double recall_sum = 0.0;
    size_t counted = 0;
    for (size_t q = 0; q < queries; ++q) {
      const auto& relevant = relevant_per_query[q];
      if (relevant.empty()) continue;
      const auto& ranked = ranked_per_query[q];
      size_t upto = std::min(k, ranked.size());
      size_t hits = 0;
      for (size_t i = 0; i < upto; ++i) {
        if (relevant.contains(ranked[i])) ++hits;
      }
      // Precision uses the *requested* k (an empty tail counts against the
      // system, as in the paper's fixed-size result lists).
      precision_sum += static_cast<double>(hits) / static_cast<double>(k);
      recall_sum +=
          static_cast<double>(hits) / static_cast<double>(relevant.size());
      ++counted;
    }
    if (counted == 0) break;
    PrPoint p;
    p.k = k;
    p.precision = precision_sum / static_cast<double>(counted);
    p.recall = recall_sum / static_cast<double>(counted);
    p.f1 = (p.precision + p.recall) > 0
               ? 2 * p.precision * p.recall / (p.precision + p.recall)
               : 0.0;
    curve.push_back(p);
  }
  return curve;
}

PrPoint BestF1(const std::vector<PrPoint>& curve) {
  PrPoint best;
  for (const PrPoint& p : curve) {
    if (p.f1 > best.f1) best = p;
  }
  return best;
}

double MeanReciprocalRank(
    const std::vector<std::vector<int64_t>>& ranked_per_query,
    const std::vector<std::unordered_set<int64_t>>& relevant_per_query) {
  size_t queries = std::min(ranked_per_query.size(), relevant_per_query.size());
  double sum = 0.0;
  size_t counted = 0;
  for (size_t q = 0; q < queries; ++q) {
    if (relevant_per_query[q].empty()) continue;
    ++counted;
    const auto& ranked = ranked_per_query[q];
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (relevant_per_query[q].contains(ranked[i])) {
        sum += 1.0 / static_cast<double>(i + 1);
        break;
      }
    }
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace laminar::search
