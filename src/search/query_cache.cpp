#include "search/query_cache.hpp"

#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

telemetry::Counter& HitCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_search_query_cache_hits_total");
  return c;
}

telemetry::Counter& MissCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_search_query_cache_misses_total");
  return c;
}

}  // namespace

QueryEmbeddingCache::QueryEmbeddingCache(size_t capacity)
    : capacity_(capacity) {
  // Touch both counters up front so GET /metrics exposes the series (at 0)
  // as soon as a search service exists, not only after the first query.
  HitCounter();
  MissCounter();
}

embed::Vector QueryEmbeddingCache::GetOrCompute(
    std::string_view model, std::string_view text,
    const std::function<embed::Vector()>& encode) {
  std::string key;
  key.reserve(model.size() + 1 + text.size());
  key.append(model);
  key.push_back('\0');  // unambiguous (model, text) separator
  key.append(text);

  uint64_t miss_generation = 0;
  if (capacity_ > 0) {
    std::scoped_lock lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      HitCounter().Inc();
      return it->second->embedding;
    }
    ++misses_;
    miss_generation = generation_;
  } else {
    std::scoped_lock lock(mu_);
    ++misses_;
  }
  MissCounter().Inc();

  // Encode outside the lock: misses must not serialize behind each other.
  embed::Vector embedding = encode();
  if (capacity_ == 0) return embedding;

  std::scoped_lock lock(mu_);
  if (generation_ != miss_generation) {
    // Clear() ran while we were encoding: the result reflects pre-Clear
    // state, so hand it to the caller but do not store it.
    return embedding;
  }
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // A concurrent miss already stored this key; refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second);
    return embedding;
  }
  lru_.push_front(Entry{std::move(key), embedding});
  by_key_[lru_.front().key] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return embedding;
}

QueryEmbeddingCache::Stats QueryEmbeddingCache::stats() const {
  std::scoped_lock lock(mu_);
  return Stats{hits_, misses_, lru_.size()};
}

void QueryEmbeddingCache::Clear() {
  std::scoped_lock lock(mu_);
  lru_.clear();
  by_key_.clear();
  ++generation_;  // invalidate in-flight off-lock encodes (see header)
}

}  // namespace laminar::search
