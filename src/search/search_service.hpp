// The registry search & recommendation service (paper §V and §VI): literal
// search, semantic (text-to-code) search over UniXcoder-style description
// embeddings, LLM code-to-code search (ReACC baseline), and SPT structural
// code recommendation (Aroma).
//
// The service keeps in-memory indexes (flat SoA embedding indexes + the
// Aroma feature index) synchronized with the registry via Add/Remove hooks,
// just as the paper's server precomputes and stores embeddings at
// registration time (§V-B). Embeddings are L2-normalized into VectorIndex
// rows at registration, so every query is one contiguous dot-product scan
// reduced by a bounded top-k heap (see vector_index.hpp).
//
// Concurrency contract: the query methods (LiteralSearch, SemanticSearch,
// CodeSearchLlm, CodeCompletion, CodeRecommendation) are safe to call
// concurrently with each other — the server runs them under a shared lock.
// Index mutations (Add*/Remove*/Clear/ReindexAll) require external
// exclusive locking, which the server's write path provides.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "embed/codet5_sim.hpp"
#include "embed/reacc_sim.hpp"
#include "embed/unixcoder_sim.hpp"
#include "registry/repository.hpp"
#include "search/query_cache.hpp"
#include "search/vector_index.hpp"
#include "spt/recommend.hpp"

namespace laminar::search {

/// What to search over, mirroring the CLI's [workflow|pe] argument.
enum class SearchTarget { kPe, kWorkflow };

struct SearchHit {
  int64_t id = 0;
  std::string name;
  std::string description;
  double score = 0.0;
};

struct RecommendationHit {
  int64_t id = 0;
  std::string name;
  std::string description;
  double score = 0.0;
  std::string similar_code;  ///< pruned snippet (spt) or full code (llm)
  size_t occurrences = 1;    ///< for workflow recommendations
};

struct SearchConfig {
  size_t default_limit = 5;           ///< paper: top five results
  double recommend_min_score = 6.0;   ///< paper §VI-A default threshold
  /// LRU capacity of the (model, query text) -> embedding cache; 0 disables
  /// it. Hits/misses surface as laminar_search_query_cache_*_total.
  size_t query_cache_capacity = 256;
  /// Embedding-index knobs: sharded-scan thresholds plus the ANN strategy
  /// (flat | hnsw | auto) and HNSW shape (see VectorIndexOptions). Applied
  /// to all four indexes; /stats surfaces them under search.vectorIndex.
  VectorIndex::Options vector_index;
  embed::UnixcoderConfig unixcoder;
  embed::ReaccConfig reacc;
  spt::AromaConfig aroma;
};

class SearchService {
 public:
  SearchService(registry::Repository& repo, SearchConfig config = {});

  /// Two-phase registration (ISSUE 5). Prepare* runs every expensive step —
  /// description/code encodes and the SPT parse+featurization — against
  /// const, thread-safe encoder state, so the server calls it on the
  /// request thread under only a *shared* lock: prepares overlap each other
  /// and every read, and the shared hold keeps Clear()/ReindexAll() (which
  /// replace the engines under the exclusive lock) from swapping state
  /// mid-encode.
  /// Commit* then only upserts the precomputed rows, a few map/vector writes
  /// short enough to sit in the exclusive section. The committed state is
  /// identical to what AddPe/AddWorkflow build (same encoders, same feature
  /// options), and the in-memory FeatureBag keeps the line occurrences that
  /// a JSON round-trip through the sptEmbedding column would lose.
  struct PreparedPe {
    std::string name;
    std::string description;
    std::string code;
    embed::Vector text_embedding;
    embed::Vector code_embedding;
    bool has_features = false;  ///< false: snippet yielded no SPT features
    spt::FeatureBag features;
  };
  struct PreparedWorkflow {
    std::string name;
    std::string description;
    embed::Vector text_embedding;
    embed::Vector code_embedding;
  };
  PreparedPe PreparePe(std::string name, std::string description,
                       const std::string& stored_embedding_json,
                       std::string code) const;
  PreparedWorkflow PrepareWorkflow(std::string name, std::string description,
                                   const std::string& stored_embedding_json,
                                   const std::string& code) const;
  /// Require external exclusive locking, like every index mutation.
  void CommitPe(int64_t pe_id, PreparedPe prepared);
  void CommitWorkflow(int64_t workflow_id, PreparedWorkflow prepared);

  /// Description-only re-index: replaces the stored doc text and the text
  /// embedding (encoded off-lock by the caller) without touching the code
  /// or SPT indexes — they depend only on the unchanged code.
  void UpdatePeDescription(int64_t pe_id, std::string description,
                           embed::Vector text_embedding);
  void UpdateWorkflowDescription(int64_t workflow_id, std::string description,
                                 embed::Vector text_embedding);

  /// Index maintenance — the server calls these on registration/removal.
  /// AddPe/AddWorkflow read the record back from the repository.
  Status AddPe(int64_t pe_id);
  Status AddWorkflow(int64_t workflow_id);
  void RemovePe(int64_t pe_id);
  void RemoveWorkflow(int64_t workflow_id);
  void Clear();
  /// Bulk-ingest fast path: between BeginBulkIndexing and EndBulkIndexing
  /// the vector indexes skip per-Upsert ANN graph maintenance; EndBulk then
  /// builds each graph once, fanning the level inserts out over `pool` via
  /// ParallelFor, and records the wall time into the
  /// laminar_search_bulk_build_ms gauge. No-ops while the indexes are flat.
  /// Same external-exclusive-locking contract as every index mutation.
  void BeginBulkIndexing();
  void EndBulkIndexing(ThreadPool* pool);
  /// Rebuilds everything from the repository. With a pool, the prepare
  /// phase (encodes + SPT featurization) fans out across pool threads plus
  /// the caller via ParallelFor; commits stay on the calling thread, so the
  /// external-exclusive-locking contract is unchanged. Sets the
  /// laminar_search_bulk_build_ms gauge.
  Status ReindexAll(ThreadPool* pool = nullptr);

  /// §V-A literal search: case-insensitive term match on names and
  /// descriptions.
  std::vector<SearchHit> LiteralSearch(const std::string& term,
                                       SearchTarget target,
                                       size_t limit = 0) const;

  /// §V-B semantic text-to-code search: cosine between the encoded query
  /// and stored description embeddings.
  std::vector<SearchHit> SemanticSearch(const std::string& query,
                                        SearchTarget target,
                                        size_t limit = 0) const;

  /// Laminar 1.0 code-to-code search (--embedding_type llm): cosine between
  /// ReACC code embeddings.
  std::vector<SearchHit> CodeSearchLlm(const std::string& code,
                                       SearchTarget target,
                                       size_t limit = 0) const;

  /// Code completion: continuation lines of registered PEs whose prefix
  /// structurally matches the partial snippet.
  Result<std::vector<spt::Completion>> CodeCompletion(
      const std::string& partial_code, size_t limit = 3) const;

  /// §VI code recommendation (--embedding_type spt, the default): Aroma
  /// structural search over PE SPTs. For kWorkflow, similar PEs are mapped
  /// to the workflows containing them, ranked by occurrence count.
  Result<std::vector<RecommendationHit>> CodeRecommendation(
      const std::string& code, SearchTarget target, size_t limit = 0) const;

  const SearchConfig& config() const { return config_; }
  const embed::UnixcoderSim& text_encoder() const { return unixcoder_; }
  const embed::ReaccSim& code_encoder() const { return reacc_; }
  const spt::AromaEngine& aroma() const { return aroma_; }

  /// Cache hit/miss totals for the query-embedding LRU.
  QueryEmbeddingCache::Stats query_cache_stats() const {
    return query_cache_.stats();
  }

  /// Per-vector-index footprint/strategy snapshots for /stats, keyed by the
  /// index label ("peText", "peCode", "workflowText", "workflowCode").
  std::vector<std::pair<std::string, VectorIndexStats>> IndexStats() const;

 private:
  struct Doc {
    std::string name;
    std::string description;
  };
  /// Scores `query` against `index` (flat SoA top-k scan) and joins the
  /// winning ids with their metadata. Ranking order matches the legacy
  /// full-sort path: score descending, ties by ascending id.
  std::vector<SearchHit> RankTopK(
      const embed::Vector& query, const VectorIndex& index,
      const std::unordered_map<int64_t, Doc>& docs, size_t limit) const;
  /// Shared AddPe/AddWorkflow embedding step: prefers the stored embedding,
  /// encodes the description at most once otherwise (counted per model).
  embed::Vector TextEmbeddingFor(const std::string& stored_json,
                                 const std::string& description) const;

  registry::Repository* repo_;
  SearchConfig config_;
  embed::UnixcoderSim unixcoder_;
  embed::ReaccSim reacc_;
  spt::AromaEngine aroma_;  ///< indexes PE snippets by pe id
  std::unordered_map<int64_t, Doc> pe_docs_;
  std::unordered_map<int64_t, Doc> workflow_docs_;
  // Flat normalized-embedding indexes, one per (corpus, embedding kind).
  VectorIndex pe_text_index_;
  VectorIndex pe_code_index_;
  VectorIndex workflow_text_index_;
  VectorIndex workflow_code_index_;
  mutable QueryEmbeddingCache query_cache_;
};

}  // namespace laminar::search
