#include "search/vector_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/clock.hpp"
#include "embed/embedding.hpp"
#include "simd/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::search {
namespace {

/// The legacy ranking order: score descending, ties broken by ascending id.
inline bool Better(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded min-heap insert: `heap` is a std::*_heap ordered by Better, so
/// the front is the worst retained candidate. O(log k) per displacement,
/// O(1) for the common no-op case of a candidate worse than the floor.
inline void HeapPush(std::vector<ScoredId>& heap, size_t k, ScoredId cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), Better);
    return;
  }
  if (!Better(cand, heap.front())) return;
  std::pop_heap(heap.begin(), heap.end(), Better);
  heap.back() = cand;
  std::push_heap(heap.begin(), heap.end(), Better);
}

/// Flat-mode capacity shrink policy: once live rows drop to a quarter of
/// the allocated capacity (and the allocation is big enough to matter),
/// return the slack to the allocator so a million-row index that churns
/// down to thousands doesn't pin the high-water mark forever.
constexpr size_t kShrinkMinCapacity = 1024;

/// hnsw mode never compacts below this many tombstones — rebuilding a tiny
/// graph on every few removes would cost more than the dead rows do.
constexpr size_t kCompactMinDead = 64;

// Per-thread query scratch. TopK and BruteForceTopK own separate buffers
// because the ANN recall probe runs BruteForceTopK *inside* TopK while
// TopK's normalized query is still live; the SQ8 query scratch is shared by
// the quantized paths, which never nest.
std::vector<float>& TopKScratch() {
  thread_local std::vector<float> buf;
  return buf;
}

std::vector<float>& BruteForceScratch() {
  thread_local std::vector<float> buf;
  return buf;
}

simd::Sq8Query& Sq8Scratch() {
  thread_local simd::Sq8Query q;
  return q;
}

}  // namespace

const char* ToString(IndexStrategy strategy) {
  switch (strategy) {
    case IndexStrategy::kFlat:
      return "flat";
    case IndexStrategy::kHnsw:
      return "hnsw";
    case IndexStrategy::kAuto:
      break;
  }
  return "auto";
}

IndexStrategy ParseIndexStrategy(std::string_view name) {
  if (name == "flat") return IndexStrategy::kFlat;
  if (name == "hnsw") return IndexStrategy::kHnsw;
  return IndexStrategy::kAuto;
}

VectorIndex::VectorIndex(size_t dims, Options options)
    : dims_(dims), options_(std::move(options)) {
  // One process-wide gauge recording which kernel tier queries run on:
  // laminar_simd_dispatch{tier="<name>"} = 1.
  static std::once_flag dispatch_once;
  std::call_once(dispatch_once, [] {
    const std::string labels =
        std::string("tier=\"") + simd::TierName(simd::ActiveTier()) + "\"";
    telemetry::MetricsRegistry::Global()
        .GetGauge("laminar_simd_dispatch", labels)
        .Set(1);
  });
  if (options_.strategy == IndexStrategy::kHnsw) {
    ann_active_ = true;
    hnsw_ = std::make_unique<ann::HnswIndex>(dims_, options_.hnsw);
    EnsureAnnTelemetry();
  }
  if (options_.quantize) EnsureQuantTelemetry();
}

void VectorIndex::WriteRow(float* row,
                           std::span<const float> embedding) const {
  const float norm =
      embedding.size() == dims_ ? embed::Norm(embedding) : 0.0f;
  if (norm > 0.0f) {
    for (size_t i = 0; i < dims_; ++i) row[i] = embedding[i] / norm;
  } else {
    // Zero or size-mismatched input: an all-zero row scores 0 against every
    // query, matching what embed::Cosine returned for such pairs.
    std::fill(row, row + dims_, 0.0f);
  }
}

void VectorIndex::AppendRow(int64_t id, std::span<const float> embedding) {
  ids_.push_back(id);
  data_.resize(data_.size() + dims_);
  dead_.push_back(0);
  WriteRow(data_.data() + (ids_.size() - 1) * dims_, embedding);
  QuantizeSlot(ids_.size() - 1);
}

void VectorIndex::QuantizeSlot(size_t slot) {
  if (!options_.quantize) return;
  if (qcodes_.size() < ids_.size() * dims_) {
    qcodes_.resize(ids_.size() * dims_);
    qscales_.resize(ids_.size());
    qoffsets_.resize(ids_.size());
  }
  simd::QuantizeRow(data_.data() + slot * dims_, dims_,
                    qcodes_.data() + slot * dims_, &qscales_[slot],
                    &qoffsets_[slot]);
  if (quant_bytes_gauge_ != nullptr) {
    quant_bytes_gauge_->Set(static_cast<int64_t>(
        qcodes_.size() + (qscales_.size() + qoffsets_.size()) *
                             sizeof(float)));
  }
}

void VectorIndex::RebuildQuantMirror() {
  if (!options_.quantize) return;
  qcodes_.resize(ids_.size() * dims_);
  qscales_.resize(ids_.size());
  qoffsets_.resize(ids_.size());
  qcodes_.shrink_to_fit();
  qscales_.shrink_to_fit();
  qoffsets_.shrink_to_fit();
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    simd::QuantizeRow(data_.data() + slot * dims_, dims_,
                      qcodes_.data() + slot * dims_, &qscales_[slot],
                      &qoffsets_[slot]);
  }
  if (quant_bytes_gauge_ != nullptr) {
    quant_bytes_gauge_->Set(static_cast<int64_t>(
        qcodes_.size() + (qscales_.size() + qoffsets_.size()) *
                             sizeof(float)));
  }
}

void VectorIndex::SetQuantize(bool on) {
  if (options_.quantize == on) return;
  options_.quantize = on;
  if (on) {
    EnsureQuantTelemetry();
    RebuildQuantMirror();
    return;
  }
  qcodes_.clear();
  qcodes_.shrink_to_fit();
  qscales_.clear();
  qscales_.shrink_to_fit();
  qoffsets_.clear();
  qoffsets_.shrink_to_fit();
  if (quant_bytes_gauge_ != nullptr) quant_bytes_gauge_->Set(0);
}

bool VectorIndex::DebugQuantConsistent() const {
  if (!options_.quantize) return true;
  if (qcodes_.size() != ids_.size() * dims_ ||
      qscales_.size() != ids_.size() || qoffsets_.size() != ids_.size()) {
    return false;
  }
  std::vector<int8_t> codes(dims_);
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    float scale = 0.0f, offset = 0.0f;
    simd::QuantizeRow(data_.data() + slot * dims_, dims_, codes.data(),
                      &scale, &offset);
    if (scale != qscales_[slot] || offset != qoffsets_[slot]) return false;
    if (dims_ != 0 && std::memcmp(codes.data(), qcodes_.data() + slot * dims_,
                                  dims_) != 0) {
      return false;
    }
  }
  return true;
}

size_t VectorIndex::RerankDepth(size_t k) const {
  const double f =
      options_.rerank_overfetch < 1.0 ? 1.0 : options_.rerank_overfetch;
  return static_cast<size_t>(std::ceil(f * static_cast<double>(k)));
}

void VectorIndex::Upsert(int64_t id, std::span<const float> embedding) {
  if (!ann_active_) {
    size_t slot;
    auto it = slot_of_.find(id);
    if (it != slot_of_.end()) {
      slot = it->second;
    } else {
      slot = ids_.size();
      ids_.push_back(id);
      data_.resize(data_.size() + dims_);
      slot_of_.emplace(id, slot);
    }
    WriteRow(data_.data() + slot * dims_, embedding);
    QuantizeSlot(slot);
    if (options_.strategy == IndexStrategy::kAuto && !bulk_ &&
        ids_.size() >= options_.ann_threshold) {
      ActivateAnn(nullptr);
    }
    return;
  }

  // hnsw mode: rows are append-only (graph nodes keep their row binding), so
  // a replace tombstones the old node and appends a fresh one for the id.
  auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    dead_[it->second] = 1;
    ++dead_count_;
    it->second = ids_.size();
  } else {
    slot_of_.emplace(id, ids_.size());
  }
  AppendRow(id, embedding);
  if (!bulk_) {
    // Incremental link-in; skipped when the graph is stale (mid-bulk inserts
    // that never saw EndBulk) — queries fall back to the exact scan then.
    if (hnsw_->node_count() + 1 == ids_.size()) {
      hnsw_->Add(data_.data());
      if (graph_bytes_gauge_ != nullptr) {
        graph_bytes_gauge_->Set(
            static_cast<int64_t>(hnsw_->memory_bytes()));
      }
    }
    MaybeCompact(nullptr);
  }
}

bool VectorIndex::Remove(int64_t id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  if (ann_active_) {
    dead_[it->second] = 1;
    ++dead_count_;
    slot_of_.erase(it);
    if (!bulk_) MaybeCompact(nullptr);
    return true;
  }
  const size_t slot = it->second;
  const size_t last = ids_.size() - 1;
  const bool quant = QuantReady();
  if (slot != last) {
    ids_[slot] = ids_[last];
    std::copy(data_.begin() + last * dims_, data_.begin() + (last + 1) * dims_,
              data_.begin() + slot * dims_);
    if (quant) {
      std::copy(qcodes_.begin() + last * dims_,
                qcodes_.begin() + (last + 1) * dims_,
                qcodes_.begin() + slot * dims_);
      qscales_[slot] = qscales_[last];
      qoffsets_[slot] = qoffsets_[last];
    }
    slot_of_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  data_.resize(data_.size() - dims_);
  if (quant) {
    qcodes_.resize(qcodes_.size() - dims_);
    qscales_.pop_back();
    qoffsets_.pop_back();
  }
  slot_of_.erase(it);
  if (ids_.capacity() >= kShrinkMinCapacity &&
      ids_.size() * 4 <= ids_.capacity()) {
    data_.shrink_to_fit();
    ids_.shrink_to_fit();
    qcodes_.shrink_to_fit();
    qscales_.shrink_to_fit();
    qoffsets_.shrink_to_fit();
  }
  return true;
}

void VectorIndex::Clear() {
  data_.clear();
  ids_.clear();
  slot_of_.clear();
  dead_.clear();
  qcodes_.clear();
  qscales_.clear();
  qoffsets_.clear();
  dead_count_ = 0;
  bulk_ = false;
  if (options_.strategy != IndexStrategy::kHnsw) ann_active_ = false;
  if (hnsw_) hnsw_->Clear();
  if (graph_bytes_gauge_ != nullptr) graph_bytes_gauge_->Set(0);
  if (quant_bytes_gauge_ != nullptr) quant_bytes_gauge_->Set(0);
}

void VectorIndex::BeginBulk() { bulk_ = true; }

void VectorIndex::EndBulk(ThreadPool* pool) {
  bulk_ = false;
  if (!ann_active_) {
    if (options_.strategy == IndexStrategy::kAuto &&
        ids_.size() >= options_.ann_threshold) {
      ActivateAnn(pool);
    }
    return;
  }
  if (dead_count_ >= kCompactMinDead &&
      static_cast<double>(dead_count_) >
          options_.max_dead_fraction * static_cast<double>(ids_.size())) {
    Compact(pool);  // re-densifies and rebuilds the graph in one pass
    return;
  }
  if (hnsw_->node_count() != ids_.size()) BuildGraph(pool);
}

void VectorIndex::ActivateAnn(ThreadPool* pool) {
  if (ann_active_) return;
  ann_active_ = true;
  if (!hnsw_) hnsw_ = std::make_unique<ann::HnswIndex>(dims_, options_.hnsw);
  EnsureAnnTelemetry();
  dead_.assign(ids_.size(), 0);
  dead_count_ = 0;
  BuildGraph(pool);
}

void VectorIndex::BuildGraph(ThreadPool* pool) {
  Stopwatch timer;
  hnsw_->Build(data_.data(), ids_.size(), pool);
  ++graph_builds_;
  if (build_ms_ != nullptr) build_ms_->Observe(timer.ElapsedMillis());
  if (graph_bytes_gauge_ != nullptr) {
    graph_bytes_gauge_->Set(static_cast<int64_t>(hnsw_->memory_bytes()));
  }
}

void VectorIndex::Compact(ThreadPool* pool) {
  std::vector<float> data;
  std::vector<int64_t> ids;
  data.reserve(size() * dims_);
  ids.reserve(size());
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    if (dead_[slot] != 0) continue;
    ids.push_back(ids_[slot]);
    data.insert(data.end(), data_.begin() + slot * dims_,
                data_.begin() + (slot + 1) * dims_);
  }
  data_ = std::move(data);
  ids_ = std::move(ids);
  slot_of_.clear();
  slot_of_.reserve(ids_.size());
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    slot_of_.emplace(ids_[slot], slot);
  }
  dead_.assign(ids_.size(), 0);
  dead_count_ = 0;
  ++compactions_;
  RebuildQuantMirror();
  BuildGraph(pool);
}

void VectorIndex::MaybeCompact(ThreadPool* pool) {
  if (!ann_active_ || ids_.empty()) return;
  if (dead_count_ < kCompactMinDead) return;
  if (static_cast<double>(dead_count_) <=
      options_.max_dead_fraction * static_cast<double>(ids_.size())) {
    return;
  }
  Compact(pool);
}

void VectorIndex::EnsureAnnTelemetry() {
  if (search_ms_ != nullptr) return;
  const std::string labels =
      options_.label.empty() ? std::string()
                             : "index=\"" + options_.label + "\"";
  auto& registry = telemetry::MetricsRegistry::Global();
  build_ms_ = &registry.GetHistogram("laminar_ann_build_ms", labels);
  search_ms_ = &registry.GetHistogram("laminar_ann_search_ms", labels);
  graph_bytes_gauge_ = &registry.GetGauge("laminar_ann_graph_bytes", labels);
  probes_total_ =
      &registry.GetCounter("laminar_ann_recall_probes_total", labels);
  probe_hits_ =
      &registry.GetCounter("laminar_ann_recall_probe_hits_total", labels);
  probe_expected_ =
      &registry.GetCounter("laminar_ann_recall_probe_expected_total", labels);
}

void VectorIndex::EnsureQuantTelemetry() {
  if (quant_bytes_gauge_ != nullptr) return;
  const std::string labels =
      options_.label.empty() ? std::string()
                             : "index=\"" + options_.label + "\"";
  auto& registry = telemetry::MetricsRegistry::Global();
  quant_bytes_gauge_ = &registry.GetGauge("laminar_quant_bytes", labels);
  quant_searches_ =
      &registry.GetCounter("laminar_quant_searches_total", labels);
  quant_rerank_rows_ =
      &registry.GetCounter("laminar_quant_rerank_rows_total", labels);
}

VectorIndexStats VectorIndex::stats() const {
  VectorIndexStats s;
  s.rows = size();
  s.nodes = ids_.size();
  s.dims = dims_;
  s.bytes = data_.capacity() * sizeof(float) +
            ids_.capacity() * sizeof(int64_t) + dead_.capacity() +
            slot_of_.size() *
                (sizeof(int64_t) + sizeof(size_t) + sizeof(void*));
  s.graph_bytes = (ann_active_ && hnsw_) ? hnsw_->memory_bytes() : 0;
  s.quant_bytes =
      qcodes_.capacity() +
      (qscales_.capacity() + qoffsets_.capacity()) * sizeof(float);
  s.ann = ann_active_;
  s.quantized = QuantReady();
  s.compactions = compactions_;
  s.graph_builds = graph_builds_;
  return s;
}

std::span<const float> VectorIndex::NormalizedQuery(
    std::span<const float> query, std::vector<float>& scratch) const {
  if (query.size() != dims_) return {};
  float norm = embed::Norm(query);
  if (norm <= 0.0f) return {};
  scratch.resize(dims_);
  for (size_t i = 0; i < dims_; ++i) scratch[i] = query[i] / norm;
  return {scratch.data(), dims_};
}

template <typename ScoreAt>
void VectorIndex::ScoreRange(size_t begin, size_t end, size_t k,
                             const ScoreAt& score_at,
                             std::vector<ScoredId>& heap) const {
  const uint8_t* dead = dead_.empty() ? nullptr : dead_.data();
  for (size_t slot = begin; slot < end; ++slot) {
    if (dead != nullptr && dead[slot] != 0) continue;
    HeapPush(heap, k, {ids_[slot], score_at(slot)});
  }
}

template <typename ScoreAt>
std::vector<ScoredId> VectorIndex::ScanTopK(size_t k,
                                            const ScoreAt& score_at) const {
  const size_t n = ids_.size();
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t threads = std::min(options_.max_threads, hw);
  std::vector<ScoredId> heap;
  if (n < options_.parallel_threshold || threads <= 1) {
    heap.reserve(std::min(k, n));
    ScoreRange(0, n, k, score_at, heap);
  } else {
    const size_t chunk = (n + threads - 1) / threads;
    std::vector<std::vector<ScoredId>> local(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      workers.emplace_back([this, &score_at, &local, t, begin, end, k] {
        local[t].reserve(std::min(k, end - begin));
        ScoreRange(begin, end, k, score_at, local[t]);
      });
    }
    for (std::thread& w : workers) w.join();
    for (std::vector<ScoredId>& shard : local) {
      for (ScoredId cand : shard) HeapPush(heap, k, cand);
    }
  }
  std::sort(heap.begin(), heap.end(), Better);
  return heap;
}

std::vector<ScoredId> VectorIndex::ZeroQueryTopK(size_t k) const {
  // Zero or size-mismatched query: every row scores 0, so the legacy order
  // is simply ascending id.
  std::vector<ScoredId> out;
  out.reserve(size());
  const uint8_t* dead = dead_.empty() ? nullptr : dead_.data();
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    if (dead != nullptr && dead[slot] != 0) continue;
    out.push_back({ids_[slot], 0.0f});
  }
  std::sort(out.begin(), out.end(), Better);
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<ScoredId> VectorIndex::ExactTopK(std::span<const float> q,
                                             size_t k) const {
  const float* query = q.data();
  const float* rows = data_.data();
  const size_t dims = dims_;
  return ScanTopK(k, [query, rows, dims](size_t slot) {
    return simd::Dot(query, rows + slot * dims, dims);
  });
}

std::vector<ScoredId> VectorIndex::QuantFlatTopK(std::span<const float> q,
                                                 size_t k) const {
  // Candidate pass over the SQ8 mirror (4x less memory streamed than the
  // float rows), over-fetched so the exact rerank below can recover rows the
  // quantization mis-ranked near the boundary.
  const size_t depth = RerankDepth(k);
  if (depth >= size()) return ExactTopK(q, k);
  simd::Sq8Query& q8 = Sq8Scratch();
  simd::QuantizeQuery(q.data(), dims_, &q8);
  if (q8.scale == 0.0f) return ExactTopK(q, k);
  const simd::Sq8View view = QuantView();
  const simd::Sq8Query* q8p = &q8;
  std::vector<ScoredId> cands = ScanTopK(depth, [q8p, view](size_t slot) {
    return simd::Sq8Score(*q8p, view, slot);
  });
  // Exact rerank: every returned score is recomputed with the dispatched
  // float kernel over the original rows, so (id, score) pairs are
  // bit-identical to what the unquantized scan returns for those ids.
  for (ScoredId& c : cands) {
    const size_t slot = slot_of_.find(c.id)->second;
    c.score = simd::Dot(q.data(), data_.data() + slot * dims_, dims_);
  }
  std::sort(cands.begin(), cands.end(), Better);
  if (cands.size() > k) cands.resize(k);
  if (quant_searches_ != nullptr) {
    quant_searches_->Inc();
    quant_rerank_rows_->Inc(static_cast<int64_t>(std::min(depth, size())));
  }
  return cands;
}

std::vector<ScoredId> VectorIndex::AnnTopK(std::span<const float> raw_query,
                                           std::span<const float> q,
                                           size_t k) const {
  Stopwatch timer;
  const size_t ef = std::max(options_.hnsw.ef_search, k);
  std::vector<ann::Candidate> cands;
  const uint8_t* dead = dead_.empty() ? nullptr : dead_.data();
  bool quant_used = false;
  if (QuantReady()) {
    // Quantized traversal: the beam walks the SQ8 mirror with the int8
    // kernel, widened to at least the rerank depth so the exact rerank has
    // enough over-fetch to absorb quantization mis-rankings.
    simd::Sq8Query& q8 = Sq8Scratch();
    simd::QuantizeQuery(q.data(), dims_, &q8);
    if (q8.scale != 0.0f) {
      const size_t qef = std::max(ef, RerankDepth(k));
      hnsw_->SearchSq8(QuantView(), q8, dead, qef, cands);
      quant_used = true;
    }
  }
  if (!quant_used) {
    hnsw_->Search(data_.data(), dead, q.data(), ef, cands);
  }
  // Exact rerank: the graph only *proposes* ids — every returned score is
  // recomputed right here with the same kernel over the same rows the flat
  // scan reads, so (id, score) pairs are bit-identical to the exact path.
  std::vector<ScoredId> out;
  out.reserve(cands.size());
  for (const ann::Candidate& c : cands) {
    const float* row = data_.data() + static_cast<size_t>(c.node) * dims_;
    out.push_back({ids_[static_cast<size_t>(c.node)],
                   simd::Dot(q.data(), row, dims_)});
  }
  std::sort(out.begin(), out.end(), Better);
  if (out.size() > k) out.resize(k);
  if (search_ms_ != nullptr) search_ms_->Observe(timer.ElapsedMillis());
  if (quant_used && quant_searches_ != nullptr) {
    quant_searches_->Inc();
    quant_rerank_rows_->Inc(static_cast<int64_t>(cands.size()));
  }

  const size_t interval = options_.recall_probe_interval;
  if (interval > 0 && probes_total_ != nullptr &&
      probe_tick_.fetch_add(1, std::memory_order_relaxed) % interval ==
          interval - 1) {
    // Recall probe: run the exact scan for the same query and count how many
    // of its ids the ANN result contains. Scraped as hits/expected, this is
    // a live recall@k estimate with ~1/interval overhead.
    std::vector<ScoredId> want = BruteForceTopK(raw_query, k);
    std::unordered_set<int64_t> want_ids;
    want_ids.reserve(want.size());
    for (const ScoredId& w : want) want_ids.insert(w.id);
    uint64_t hits = 0;
    for (const ScoredId& g : out) hits += want_ids.count(g.id);
    probes_total_->Inc();
    probe_expected_->Inc(want.size());
    probe_hits_->Inc(hits);
  }
  return out;
}

std::vector<ScoredId> VectorIndex::TopK(std::span<const float> query,
                                        size_t k) const {
  if (k == 0 || size() == 0) return {};
  std::span<const float> q = NormalizedQuery(query, TopKScratch());
  if (q.empty()) return ZeroQueryTopK(k);
  // The ANN path needs a current graph (bulk ingest leaves it stale until
  // EndBulk) and only pays off below full retrieval; otherwise scan.
  if (ann_active_ && hnsw_ != nullptr &&
      hnsw_->node_count() == ids_.size() && k < size()) {
    return AnnTopK(query, q, k);
  }
  if (QuantReady()) return QuantFlatTopK(q, k);
  return ExactTopK(q, k);
}

std::vector<ScoredId> VectorIndex::BruteForceTopK(std::span<const float> query,
                                                  size_t k) const {
  if (k == 0 || size() == 0) return {};
  std::span<const float> q = NormalizedQuery(query, BruteForceScratch());
  std::vector<ScoredId> out;
  out.reserve(size());
  const uint8_t* dead = dead_.empty() ? nullptr : dead_.data();
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    if (dead != nullptr && dead[slot] != 0) continue;
    float score = q.empty() ? 0.0f
                            : simd::Dot(q.data(),
                                        data_.data() + slot * dims_, dims_);
    out.push_back({ids_[slot], score});
  }
  std::sort(out.begin(), out.end(), Better);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace laminar::search
