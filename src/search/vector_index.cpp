#include "search/vector_index.hpp"

#include <algorithm>
#include <thread>

#include "embed/embedding.hpp"

namespace laminar::search {
namespace {

/// The legacy ranking order: score descending, ties broken by ascending id.
inline bool Better(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded min-heap insert: `heap` is a std::*_heap ordered by Better, so
/// the front is the worst retained candidate. O(log k) per displacement,
/// O(1) for the common no-op case of a candidate worse than the floor.
inline void HeapPush(std::vector<ScoredId>& heap, size_t k, ScoredId cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), Better);
    return;
  }
  if (!Better(cand, heap.front())) return;
  std::pop_heap(heap.begin(), heap.end(), Better);
  heap.back() = cand;
  std::push_heap(heap.begin(), heap.end(), Better);
}

}  // namespace

VectorIndex::VectorIndex(size_t dims, Options options)
    : dims_(dims), options_(options) {}

void VectorIndex::Upsert(int64_t id, std::span<const float> embedding) {
  size_t slot;
  auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    slot = it->second;
  } else {
    slot = ids_.size();
    ids_.push_back(id);
    data_.resize(data_.size() + dims_);
    slot_of_.emplace(id, slot);
  }
  float* row = data_.data() + slot * dims_;
  float norm =
      embedding.size() == dims_ ? embed::Norm(embedding) : 0.0f;
  if (norm > 0.0f) {
    for (size_t i = 0; i < dims_; ++i) row[i] = embedding[i] / norm;
  } else {
    // Zero or size-mismatched input: an all-zero row scores 0 against every
    // query, matching what embed::Cosine returned for such pairs.
    std::fill(row, row + dims_, 0.0f);
  }
}

bool VectorIndex::Remove(int64_t id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  size_t slot = it->second;
  size_t last = ids_.size() - 1;
  if (slot != last) {
    ids_[slot] = ids_[last];
    std::copy(data_.begin() + last * dims_, data_.begin() + (last + 1) * dims_,
              data_.begin() + slot * dims_);
    slot_of_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  data_.resize(data_.size() - dims_);
  slot_of_.erase(it);
  return true;
}

void VectorIndex::Clear() {
  data_.clear();
  ids_.clear();
  slot_of_.clear();
}

std::vector<float> VectorIndex::NormalizedQuery(
    std::span<const float> query) const {
  if (query.size() != dims_) return {};
  float norm = embed::Norm(query);
  if (norm <= 0.0f) return {};
  std::vector<float> q(query.begin(), query.end());
  for (float& x : q) x /= norm;
  return q;
}

void VectorIndex::ScoreRange(const float* query, size_t begin, size_t end,
                             size_t k, std::vector<ScoredId>& heap) const {
  const float* row = data_.data() + begin * dims_;
  for (size_t slot = begin; slot < end; ++slot, row += dims_) {
    HeapPush(heap, k, {ids_[slot], embed::DotUnrolled(query, row, dims_)});
  }
}

std::vector<ScoredId> VectorIndex::TopK(std::span<const float> query,
                                        size_t k) const {
  if (k == 0 || ids_.empty()) return {};
  std::vector<float> q = NormalizedQuery(query);
  if (q.empty()) {
    // Zero or size-mismatched query: every row scores 0, so the legacy order
    // is simply ascending id.
    std::vector<ScoredId> out;
    out.reserve(ids_.size());
    for (int64_t id : ids_) out.push_back({id, 0.0f});
    std::sort(out.begin(), out.end(), Better);
    if (out.size() > k) out.resize(k);
    return out;
  }

  const size_t n = ids_.size();
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t threads = std::min(options_.max_threads, hw);
  std::vector<ScoredId> heap;
  if (n < options_.parallel_threshold || threads <= 1) {
    heap.reserve(std::min(k, n));
    ScoreRange(q.data(), 0, n, k, heap);
  } else {
    const size_t chunk = (n + threads - 1) / threads;
    std::vector<std::vector<ScoredId>> local(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      workers.emplace_back([this, &q, &local, t, begin, end, k] {
        local[t].reserve(std::min(k, end - begin));
        ScoreRange(q.data(), begin, end, k, local[t]);
      });
    }
    for (std::thread& w : workers) w.join();
    for (std::vector<ScoredId>& shard : local) {
      for (ScoredId cand : shard) HeapPush(heap, k, cand);
    }
  }
  std::sort(heap.begin(), heap.end(), Better);
  return heap;
}

std::vector<ScoredId> VectorIndex::BruteForceTopK(std::span<const float> query,
                                                  size_t k) const {
  if (k == 0 || ids_.empty()) return {};
  std::vector<float> q = NormalizedQuery(query);
  std::vector<ScoredId> out;
  out.reserve(ids_.size());
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    float score = q.empty() ? 0.0f
                            : embed::DotUnrolled(
                                  q.data(), data_.data() + slot * dims_, dims_);
    out.push_back({ids_[slot], score});
  }
  std::sort(out.begin(), out.end(), Better);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace laminar::search
