// Read-optimized dense vector index for the search hot path (ROADMAP: the
// query path must run as fast as the hardware allows under concurrent
// traffic).
//
// Design, in the shape Serverless-Lucene-style read-optimized indexes take
// (PAPERS.md): embeddings are L2-normalized once at insert time so cosine
// similarity degenerates to a plain dot product, and rows live in one flat
// structure-of-arrays float block (row-major, `dims` floats per row) with a
// parallel id side-array. A query is then a single linear pass over
// contiguous memory — no per-pair norm recomputation, no hash-map pointer
// chasing — scored with a 4x-unrolled dot kernel and reduced with a bounded
// top-k min-heap instead of a full sort. Corpora past `parallel_threshold`
// rows are scanned in shards on std::thread workers, each keeping a local
// heap, merged at the end.
//
// Past `ann_threshold` rows the exact scan stops scaling (O(N·d) per query
// cannot carry a million-PE corpus), so the index also carries a pluggable
// strategy: `flat` keeps the dense exact scan, `hnsw` routes TopK through a
// laminar::ann::HnswIndex graph over the *same* row storage, and `auto`
// (default) starts flat and switches to hnsw once the row count crosses the
// threshold (one-way: once a graph is built it stays, so the policy never
// thrashes around the boundary). The ANN path is two-stage — graph beam
// search for candidates, then an exact dot-product rerank through the same
// unrolled kernel — so every returned score is bit-identical to what the
// flat scan computes for that id, and ties break identically. In hnsw mode
// rows are append-only with tombstoned removals (graph nodes must keep
// their row binding); compaction rebuilds dense storage and the graph once
// tombstones exceed `max_dead_fraction`.
//
// Quantization (ISSUE 10): with `quantize` on, the index also keeps an SQ8
// mirror of the row block — int8 codes plus a per-row affine (scale,
// offset), ~0.28x the float32 bytes — kept in sync through every mutation.
// Candidate generation (the flat scan's first pass and the HNSW beam
// traversal) then scores against the mirror with the dispatched int8
// kernel, and an over-fetched exact float32 rerank (`rerank_overfetch * k`
// candidates) recomputes every returned score with the same dispatched
// float kernel the unquantized paths run. Quantization therefore changes
// *which* ids can be missed (recall), never the score attached to a
// returned id — the bit-identical contract holds in every mode.
//
// Concurrency contract: all const methods are safe to call concurrently
// with each other (the server's shared-lock read path relies on this);
// mutations (Upsert/Remove/Clear/Begin+EndBulk) require external exclusive
// locking, which the server's write path provides.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ann/hnsw.hpp"
#include "simd/sq8.hpp"

namespace laminar {
class ThreadPool;
}

namespace laminar::telemetry {
class Counter;
class Gauge;
class Histogram;
}  // namespace laminar::telemetry

namespace laminar::search {

struct ScoredId {
  int64_t id = 0;
  float score = 0.0f;
};

/// Which top-k engine a VectorIndex runs queries through.
enum class IndexStrategy {
  kFlat,  ///< exact scan only, regardless of corpus size
  kHnsw,  ///< ANN graph from the first row
  kAuto,  ///< flat until `ann_threshold` rows, then hnsw (one-way switch)
};

const char* ToString(IndexStrategy strategy);
/// Parses "flat" | "hnsw" | "auto" (anything else -> kAuto).
IndexStrategy ParseIndexStrategy(std::string_view name);

struct VectorIndexOptions {
  /// Row count above which the exact TopK shards the scan across threads.
  size_t parallel_threshold = 4096;
  /// Upper bound on scan shards (also bounded by hardware_concurrency).
  size_t max_threads = 8;
  /// flat | hnsw | auto (see IndexStrategy).
  IndexStrategy strategy = IndexStrategy::kAuto;
  /// Live-row count at which kAuto builds the ANN graph.
  size_t ann_threshold = 32768;
  /// HNSW graph shape (M / ef_construction / ef_search / seed).
  ann::HnswConfig hnsw;
  /// Tombstone fraction that triggers compaction in hnsw mode.
  double max_dead_fraction = 0.25;
  /// Every Nth ANN query also runs the exact scan and records the id
  /// overlap into laminar_ann_recall_probe_* counters (0 disables probes).
  size_t recall_probe_interval = 1024;
  /// Maintain the SQ8 int8 mirror and route candidate generation through it
  /// (see the header comment). Returned scores stay bit-identical to the
  /// unquantized paths; only recall can differ, bounded by the rerank
  /// over-fetch below.
  bool quantize = false;
  /// Over-fetch factor for the exact rerank when quantize is on: the
  /// candidate stage keeps ceil(rerank_overfetch * k) approximate winners
  /// (and widens the HNSW beam to at least that), then the float kernel
  /// reranks them and truncates to k. Values < 1 are treated as 1.
  double rerank_overfetch = 4.0;
  /// Telemetry label (`index="<label>"`) for laminar_ann_* metrics; empty
  /// leaves the metrics unlabelled (standalone/test indexes).
  std::string label;
};

/// Point-in-time footprint/shape snapshot for /stats.
struct VectorIndexStats {
  size_t rows = 0;         ///< live rows (excludes tombstones)
  size_t nodes = 0;        ///< stored rows including tombstones
  size_t dims = 0;
  size_t bytes = 0;        ///< row + id + tombstone storage (capacity)
  size_t graph_bytes = 0;  ///< HNSW graph footprint (0 while flat)
  size_t quant_bytes = 0;  ///< SQ8 mirror footprint (0 when quantize off)
  bool ann = false;        ///< true once queries route through the graph
  bool quantized = false;  ///< true while the SQ8 mirror serves candidates
  uint64_t compactions = 0;
  uint64_t graph_builds = 0;
};

class VectorIndex {
 public:
  using Options = VectorIndexOptions;

  explicit VectorIndex(size_t dims, Options options = {});

  /// Inserts or replaces the row for `id`. The embedding is copied and
  /// L2-normalized; a zero vector or a vector of the wrong dimensionality
  /// is stored as an all-zero row, which scores 0 against every query —
  /// the same result the legacy embed::Cosine path produced for zero or
  /// size-mismatched pairs. In hnsw mode a replace tombstones the old row
  /// and appends a fresh one (graph nodes are immutable bindings).
  void Upsert(int64_t id, std::span<const float> embedding);

  /// Removes the row. Flat mode swap-and-pops (order is not preserved) and
  /// returns capacity to the allocator after large churn; hnsw mode
  /// tombstones the node and compacts once `max_dead_fraction` of stored
  /// rows are dead. Returns false when the id was never inserted.
  bool Remove(int64_t id);

  void Clear();

  /// Suspends per-Upsert graph maintenance (bulk ingest fast path). Between
  /// BeginBulk and EndBulk, Upsert/Remove only touch row storage; EndBulk
  /// then builds the ANN graph once, fanned out over `pool` via
  /// ParallelFor. Safe to call in flat mode (EndBulk is then a no-op).
  void BeginBulk();
  void EndBulk(ThreadPool* pool);

  size_t size() const { return ids_.size() - dead_count_; }
  bool empty() const { return size() == 0; }
  size_t dims() const { return dims_; }
  const Options& options() const { return options_; }
  /// True once queries route through the ANN graph.
  bool ann_active() const { return ann_active_; }
  /// True while candidate generation runs against the SQ8 mirror.
  bool quantize_active() const { return options_.quantize; }

  /// Turns the SQ8 mirror on or off at runtime (a mutation: external
  /// exclusive locking required). Enabling on a populated index quantizes
  /// every stored row; disabling drops the mirror and returns queries to
  /// the pure float paths. Benches use this to measure float vs SQ8 over
  /// one set of rows and one built graph.
  void SetQuantize(bool on);

  /// Test hook: re-quantizes every live row and compares against the
  /// stored mirror. True when the mirror is bit-exact (or quantize is off).
  bool DebugQuantConsistent() const;

  VectorIndexStats stats() const;

  /// Top `k` rows by cosine similarity against `query` (which is normalized
  /// internally; callers pass raw encoder output). Results are sorted by
  /// score descending, ties broken by ascending id — the exact order the
  /// legacy full-sort path produced. k >= size() returns every row. In hnsw
  /// mode the graph proposes candidates and the exact kernel reranks, so
  /// returned (id, score) pairs are bit-identical to the flat scan's values
  /// for those ids; k >= size() falls back to the exact scan outright.
  std::vector<ScoredId> TopK(std::span<const float> query, size_t k) const;

  /// Reference implementation retained for benches, parity tests and recall
  /// probes: scores every live row, fully sorts, truncates. Exact in every
  /// mode.
  std::vector<ScoredId> BruteForceTopK(std::span<const float> query,
                                       size_t k) const;

 private:
  /// Normalizes `query` into `scratch` and returns a view of it (empty for
  /// zero/mismatched queries). The scratch buffers are thread_local in the
  /// implementation — TopK and BruteForceTopK each own one, so the per-query
  /// heap allocation the old signature forced is gone while nested calls
  /// (the recall probe runs BruteForceTopK inside TopK) and concurrent
  /// const callers stay safe.
  std::span<const float> NormalizedQuery(std::span<const float> query,
                                         std::vector<float>& scratch) const;
  /// Bounded top-k scan over all slots, sharded past parallel_threshold;
  /// `score_at(slot) -> float` supplies the per-row score (exact float or
  /// SQ8 approximate). Results are sorted by (score desc, id asc).
  template <typename ScoreAt>
  std::vector<ScoredId> ScanTopK(size_t k, const ScoreAt& score_at) const;
  template <typename ScoreAt>
  void ScoreRange(size_t begin, size_t end, size_t k, const ScoreAt& score_at,
                  std::vector<ScoredId>& heap) const;
  std::vector<ScoredId> ExactTopK(std::span<const float> q, size_t k) const;
  /// Quantized flat path: SQ8 candidate scan, exact over-fetched rerank.
  std::vector<ScoredId> QuantFlatTopK(std::span<const float> q,
                                      size_t k) const;
  std::vector<ScoredId> AnnTopK(std::span<const float> raw_query,
                                std::span<const float> q, size_t k) const;
  /// All live rows at score 0 in ascending-id order (zero/mismatched query).
  std::vector<ScoredId> ZeroQueryTopK(size_t k) const;
  void AppendRow(int64_t id, std::span<const float> embedding);
  void WriteRow(float* row, std::span<const float> embedding) const;
  /// Switches an auto-strategy index onto the graph path (builds it).
  void ActivateAnn(ThreadPool* pool);
  /// Full graph (re)build over current rows; records build telemetry.
  void BuildGraph(ThreadPool* pool);
  /// Drops tombstoned rows, re-densifies storage, rebuilds the graph.
  void Compact(ThreadPool* pool);
  void MaybeCompact(ThreadPool* pool);
  void EnsureAnnTelemetry();
  void EnsureQuantTelemetry();
  /// (Re)quantizes the row at `slot` into the SQ8 mirror; no-op with
  /// quantize off. Grows the mirror arrays as needed.
  void QuantizeSlot(size_t slot);
  /// Quantizes every stored slot (SetQuantize(true) on a populated index,
  /// Compact's rebuild).
  void RebuildQuantMirror();
  bool QuantReady() const {
    return options_.quantize && qcodes_.size() == ids_.size() * dims_;
  }
  /// ceil(rerank_overfetch * k), the candidate depth the rerank consumes.
  size_t RerankDepth(size_t k) const;
  simd::Sq8View QuantView() const {
    return {qcodes_.data(), qscales_.data(), qoffsets_.data(), dims_};
  }

  size_t dims_;
  Options options_;
  std::vector<float> data_;  ///< node_count * dims_, row-major, unit rows
  std::vector<int64_t> ids_;
  std::unordered_map<int64_t, size_t> slot_of_;  ///< id -> live slot/node
  std::vector<uint8_t> dead_;  ///< hnsw mode: 1 = tombstoned node
  // SQ8 mirror (populated only with options_.quantize on): node-major int8
  // codes plus the per-row affine side arrays — see simd/sq8.hpp.
  std::vector<int8_t> qcodes_;
  std::vector<float> qscales_;
  std::vector<float> qoffsets_;
  size_t dead_count_ = 0;
  bool ann_active_ = false;
  bool bulk_ = false;
  uint64_t compactions_ = 0;
  uint64_t graph_builds_ = 0;
  std::unique_ptr<ann::HnswIndex> hnsw_;
  /// Rolling ANN-query tick driving the every-Nth recall probe.
  mutable std::atomic<uint64_t> probe_tick_{0};
  // laminar_ann_* handles, resolved once at graph activation.
  telemetry::Histogram* build_ms_ = nullptr;
  telemetry::Histogram* search_ms_ = nullptr;
  telemetry::Gauge* graph_bytes_gauge_ = nullptr;
  telemetry::Counter* probes_total_ = nullptr;
  telemetry::Counter* probe_hits_ = nullptr;
  telemetry::Counter* probe_expected_ = nullptr;
  // laminar_quant_* handles, resolved when the SQ8 mirror first activates.
  telemetry::Gauge* quant_bytes_gauge_ = nullptr;
  telemetry::Counter* quant_searches_ = nullptr;
  telemetry::Counter* quant_rerank_rows_ = nullptr;
};

}  // namespace laminar::search
