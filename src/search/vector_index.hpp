// Read-optimized dense vector index for the search hot path (ROADMAP: the
// query path must run as fast as the hardware allows under concurrent
// traffic).
//
// Design, in the shape Serverless-Lucene-style read-optimized indexes take
// (PAPERS.md): embeddings are L2-normalized once at insert time so cosine
// similarity degenerates to a plain dot product, and rows live in one flat
// structure-of-arrays float block (row-major, `dims` floats per row) with a
// parallel id side-array. A query is then a single linear pass over
// contiguous memory — no per-pair norm recomputation, no hash-map pointer
// chasing — scored with a 4x-unrolled dot kernel and reduced with a bounded
// top-k min-heap instead of a full sort. Corpora past `parallel_threshold`
// rows are scanned in shards on std::thread workers, each keeping a local
// heap, merged at the end.
//
// Concurrency contract: all const methods are safe to call concurrently
// with each other (the server's shared-lock read path relies on this);
// mutations (Upsert/Remove/Clear) require external exclusive locking, which
// the server's write path provides.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace laminar::search {

struct ScoredId {
  int64_t id = 0;
  float score = 0.0f;
};

struct VectorIndexOptions {
  /// Row count above which TopK shards the scan across threads.
  size_t parallel_threshold = 4096;
  /// Upper bound on scan shards (also bounded by hardware_concurrency).
  size_t max_threads = 8;
};

class VectorIndex {
 public:
  using Options = VectorIndexOptions;

  explicit VectorIndex(size_t dims, Options options = {});

  /// Inserts or replaces the row for `id`. The embedding is copied and
  /// L2-normalized; a zero vector or a vector of the wrong dimensionality
  /// is stored as an all-zero row, which scores 0 against every query —
  /// the same result the legacy embed::Cosine path produced for zero or
  /// size-mismatched pairs.
  void Upsert(int64_t id, std::span<const float> embedding);

  /// Removes the row (swap-and-pop; order is not preserved). Returns false
  /// when the id was never inserted.
  bool Remove(int64_t id);

  void Clear();

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  size_t dims() const { return dims_; }

  /// Top `k` rows by cosine similarity against `query` (which is normalized
  /// internally; callers pass raw encoder output). Results are sorted by
  /// score descending, ties broken by ascending id — the exact order the
  /// legacy full-sort path produced. k >= size() returns every row.
  std::vector<ScoredId> TopK(std::span<const float> query, size_t k) const;

  /// Reference implementation retained for benches and parity tests: scores
  /// every row, fully sorts, truncates. Same results as TopK, brute force.
  std::vector<ScoredId> BruteForceTopK(std::span<const float> query,
                                       size_t k) const;

 private:
  std::vector<float> NormalizedQuery(std::span<const float> query) const;
  void ScoreRange(const float* query, size_t begin, size_t end, size_t k,
                  std::vector<ScoredId>& heap) const;

  size_t dims_;
  Options options_;
  std::vector<float> data_;  ///< size() * dims_, row-major, unit rows
  std::vector<int64_t> ids_;
  std::unordered_map<int64_t, size_t> slot_of_;
};

}  // namespace laminar::search
