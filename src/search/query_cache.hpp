// Small LRU cache for query embeddings, keyed on (model, query text).
// Interactive search traffic repeats queries heavily (SlsReuse, PAPERS.md:
// retrieval latency dominates reuse UX), and the encoders are the most
// expensive step of a cached-index query — a hit skips the encode entirely.
//
// Thread-safe: GetOrCompute may be called concurrently from the server's
// shared-lock read path, so the cache takes its own internal mutex (held
// only around map/list bookkeeping, never while encoding). Hits and misses
// are counted into laminar_search_query_cache_{hits,misses}_total.
#pragma once

#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "embed/embedding.hpp"

namespace laminar::search {

class QueryEmbeddingCache {
 public:
  /// `capacity` of 0 disables caching (every lookup is a recorded miss).
  explicit QueryEmbeddingCache(size_t capacity);

  /// Returns the cached embedding for (model, text), or runs `encode`,
  /// stores the result and returns it. Concurrent misses for the same key
  /// may both encode (the encoders are deterministic, so either result is
  /// valid); the last store wins.
  embed::Vector GetOrCompute(std::string_view model, std::string_view text,
                             const std::function<embed::Vector()>& encode);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  void Clear();
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    embed::Vector embedding;
  };

  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  /// Bumped by Clear(). A miss captures the generation before its off-lock
  /// encode and drops the store if Clear() ran in between — otherwise an
  /// embedding computed against pre-Clear encoder state would be
  /// resurrected into the freshly emptied cache (Clear accompanies registry
  /// reloads that replace the encoders, so such entries are stale, not just
  /// redundant).
  uint64_t generation_ = 0;
};

}  // namespace laminar::search
