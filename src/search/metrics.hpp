// Ranked-retrieval metrics for the paper's evaluation figures (11-13):
// precision/recall/F1 at result-set size k, averaged over queries, traced
// into a precision-recall curve by sweeping k.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace laminar::search {

struct PrPoint {
  size_t k = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes the macro-averaged PR curve: for each k in 1..max_k, precision
/// and recall of the top-k of every query's ranked list against its
/// relevant set, averaged over queries. Queries with empty relevant sets
/// are skipped.
std::vector<PrPoint> PrecisionRecallCurve(
    const std::vector<std::vector<int64_t>>& ranked_per_query,
    const std::vector<std::unordered_set<int64_t>>& relevant_per_query,
    size_t max_k);

/// Highest F1 on the curve (the paper's headline "best F1" numbers).
PrPoint BestF1(const std::vector<PrPoint>& curve);

/// Mean reciprocal rank of the first relevant result.
double MeanReciprocalRank(
    const std::vector<std::vector<int64_t>>& ranked_per_query,
    const std::vector<std::unordered_set<int64_t>>& relevant_per_query);

}  // namespace laminar::search
