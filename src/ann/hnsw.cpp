#include "ann/hnsw.hpp"

#include <algorithm>
#include <cmath>

#include "common/hashing.hpp"
#include "common/thread_pool.hpp"
#include "simd/simd.hpp"
#include "simd/sq8.hpp"

namespace laminar::ann {
namespace {

/// Exact float scorer: the dispatched SIMD dot over the caller's row block —
/// the same kernel (same bits) the flat scan and the rerank stage run.
struct FloatScore {
  const float* rows;
  const float* query;
  size_t dims;
  float operator()(int32_t node) const {
    return simd::Dot(query, rows + static_cast<size_t>(node) * dims, dims);
  }
};

/// SQ8 scorer: approximate dot from the quantized mirror via the exact
/// integer kernel (see simd/sq8.hpp for the affine algebra).
struct Sq8ScoreFn {
  const simd::Sq8View* view;
  const simd::Sq8Query* query;
  float operator()(int32_t node) const {
    return simd::Sq8Score(*query, *view, static_cast<size_t>(node));
  }
};

constexpr size_t kStripes = 1024;  // power of two; see stripe index mask
constexpr int kMaxLevel = 30;

/// Ranking order shared with the exact scan: score descending, ties by
/// ascending node. The node tiebreak makes serial builds and searches fully
/// deterministic.
inline bool BetterCand(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.node < b.node;
}

/// Comparator for the expansion frontier: a max-heap keyed on score only
/// (front = most promising unexpanded candidate).
inline bool FrontierLess(const Candidate& a, const Candidate& b) {
  return a.score < b.score;
}

/// Epoch-stamped visited set. Thread-local so concurrent readers never
/// share scratch state; the epoch bump makes reuse O(1) instead of a
/// per-query memset.
struct VisitedSet {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Begin(size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {  // wrapped: stale stamps could collide, wipe them
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
  }
  bool TestAndSet(int32_t node) {
    uint32_t& s = stamp[static_cast<size_t>(node)];
    if (s == epoch) return true;
    s = epoch;
    return false;
  }
};

thread_local VisitedSet tl_visited;
thread_local std::vector<int32_t> tl_neighbors;

}  // namespace

HnswIndex::HnswIndex(size_t dims, HnswConfig config)
    : dims_(dims), config_(config), stripes_(kStripes) {
  if (config_.M < 2) config_.M = 2;
  if (config_.ef_construction < config_.M) {
    config_.ef_construction = config_.M;
  }
  m0_ = 2 * config_.M;
}

void HnswIndex::Clear() {
  levels_.clear();
  levels_.shrink_to_fit();
  links0_.clear();
  links0_.shrink_to_fit();
  upper_.clear();
  entry_.store(-1, std::memory_order_release);
}

int HnswIndex::RandomLevel(size_t node) const {
  // Hash of (seed, node): the same node index always draws the same level,
  // so rebuilds produce the same level structure in any build order.
  uint64_t h = hashing::SplitMix64(
      config_.seed ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < 1e-12) u = 1e-12;
  const double ml = 1.0 / std::log(static_cast<double>(config_.M));
  const int level = static_cast<int>(-std::log(u) * ml);
  return std::min(level, kMaxLevel);
}

int32_t* HnswIndex::LinkBlock(int32_t node, int level) {
  if (level == 0) {
    return links0_.data() + static_cast<size_t>(node) * (m0_ + 1);
  }
  return upper_.find(node)->second.data() +
         static_cast<size_t>(level - 1) * (config_.M + 1);
}

const int32_t* HnswIndex::LinkBlock(int32_t node, int level) const {
  if (level == 0) {
    return links0_.data() + static_cast<size_t>(node) * (m0_ + 1);
  }
  return upper_.find(node)->second.data() +
         static_cast<size_t>(level - 1) * (config_.M + 1);
}

size_t HnswIndex::CopyLinks(int32_t node, int level, bool synchronized,
                            int32_t* buf) const {
  const int32_t* blk = LinkBlock(node, level);
  if (!synchronized) {
    const size_t n = static_cast<size_t>(blk[0]);
    std::copy(blk + 1, blk + 1 + n, buf);
    return n;
  }
  SpinLock& lock = stripes_[static_cast<size_t>(node) & (kStripes - 1)];
  lock.lock();
  const size_t n = static_cast<size_t>(blk[0]);
  std::copy(blk + 1, blk + 1 + n, buf);
  lock.unlock();
  return n;
}

template <typename Score>
Candidate HnswIndex::GreedyStep(const Score& score, Candidate start,
                                int level, bool synchronized) const {
  if (tl_neighbors.size() < m0_) tl_neighbors.resize(m0_);
  int32_t* neigh = tl_neighbors.data();
  bool improved = true;
  while (improved) {
    improved = false;
    const size_t n = CopyLinks(start.node, level, synchronized, neigh);
    for (size_t i = 0; i < n; ++i) {
      const int32_t nb = neigh[i];
      const float s = score(nb);
      if (s > start.score) {
        start = Candidate{nb, s};
        improved = true;
      }
    }
  }
  return start;
}

template <typename Score>
void HnswIndex::SearchLayer(const Score& score, int level, size_t ef,
                            const uint8_t* dead, bool synchronized,
                            std::vector<Candidate>& eps) const {
  VisitedSet& visited = tl_visited;
  visited.Begin(levels_.size());

  // `frontier` is a max-heap of unexpanded candidates (front = best);
  // `results` is bounded by ef and ordered by BetterCand with the *worst*
  // retained candidate at the front, like the exact scan's top-k heap.
  std::vector<Candidate> frontier;
  std::vector<Candidate> results;
  frontier.reserve(2 * ef);
  results.reserve(ef + 1);
  for (const Candidate& ep : eps) {
    if (visited.TestAndSet(ep.node)) continue;
    frontier.push_back(ep);
    std::push_heap(frontier.begin(), frontier.end(), FrontierLess);
    if (dead == nullptr || dead[ep.node] == 0) {
      results.push_back(ep);
      std::push_heap(results.begin(), results.end(), BetterCand);
      if (results.size() > ef) {
        std::pop_heap(results.begin(), results.end(), BetterCand);
        results.pop_back();
      }
    }
  }

  std::vector<int32_t> neigh(m0_);
  while (!frontier.empty()) {
    const Candidate best = frontier.front();
    if (results.size() >= ef && !BetterCand(best, results.front())) break;
    std::pop_heap(frontier.begin(), frontier.end(), FrontierLess);
    frontier.pop_back();

    const size_t n = CopyLinks(best.node, level, synchronized, neigh.data());
    for (size_t i = 0; i < n; ++i) {
      const int32_t nb = neigh[i];
      if (visited.TestAndSet(nb)) continue;
      const Candidate cand{nb, score(nb)};
      if (results.size() >= ef && !BetterCand(cand, results.front())) {
        continue;  // cannot enter the result set; not worth expanding
      }
      frontier.push_back(cand);
      std::push_heap(frontier.begin(), frontier.end(), FrontierLess);
      if (dead == nullptr || dead[nb] == 0) {
        results.push_back(cand);
        std::push_heap(results.begin(), results.end(), BetterCand);
        if (results.size() > ef) {
          std::pop_heap(results.begin(), results.end(), BetterCand);
          results.pop_back();
        }
      }
    }
  }
  std::sort(results.begin(), results.end(), BetterCand);
  eps = std::move(results);
}

void HnswIndex::SelectNeighbors(const float* rows,
                                std::vector<Candidate>& cands,
                                size_t m) const {
  if (cands.size() <= m) return;
  // Diversity pruning (paper Algorithm 4): a candidate is kept only when it
  // is closer to the base point than to every already-selected neighbor,
  // which spreads links across directions instead of clustering them. Slots
  // the pruning leaves empty are refilled from the pruned set in score
  // order (keep-pruned-connections), preserving degree on clustered data.
  std::vector<Candidate> selected;
  std::vector<Candidate> pruned;
  selected.reserve(m);
  for (const Candidate& c : cands) {
    if (selected.size() >= m) break;
    const float* crow = rows + static_cast<size_t>(c.node) * dims_;
    bool diverse = true;
    for (const Candidate& s : selected) {
      const float to_selected = simd::Dot(
          crow, rows + static_cast<size_t>(s.node) * dims_, dims_);
      if (to_selected > c.score) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(c);
    } else if (pruned.size() < m) {
      pruned.push_back(c);
    }
  }
  for (const Candidate& p : pruned) {
    if (selected.size() >= m) break;
    selected.push_back(p);
  }
  cands = std::move(selected);
}

void HnswIndex::AddBacklink(const float* rows, int32_t target, int32_t node,
                            float score, int level, bool synchronized) {
  if (target == node) return;
  const size_t cap = level == 0 ? m0_ : config_.M;
  auto link = [&] {
    int32_t* blk = LinkBlock(target, level);
    const int32_t cnt = blk[0];
    for (int32_t i = 1; i <= cnt; ++i) {
      if (blk[i] == node) return;  // parallel build raced the same pair
    }
    if (static_cast<size_t>(cnt) < cap) {
      blk[cnt + 1] = node;
      blk[0] = cnt + 1;
      return;
    }
    // Full: re-select the target's neighbor set over existing + new.
    const float* trow = rows + static_cast<size_t>(target) * dims_;
    std::vector<Candidate> cands;
    cands.reserve(static_cast<size_t>(cnt) + 1);
    cands.push_back(Candidate{node, score});
    for (int32_t i = 1; i <= cnt; ++i) {
      cands.push_back(Candidate{
          blk[i], simd::Dot(trow, rows + static_cast<size_t>(blk[i]) * dims_,
                            dims_)});
    }
    std::sort(cands.begin(), cands.end(), BetterCand);
    SelectNeighbors(rows, cands, cap);
    blk[0] = static_cast<int32_t>(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      blk[1 + i] = cands[i].node;
    }
  };
  if (!synchronized) {
    link();
    return;
  }
  SpinLock& lock = stripes_[static_cast<size_t>(target) & (kStripes - 1)];
  lock.lock();
  link();
  lock.unlock();
}

void HnswIndex::InsertNode(const float* rows, int32_t node,
                           bool synchronized) {
  const float* qrow = rows + static_cast<size_t>(node) * dims_;
  const FloatScore score{rows, qrow, dims_};
  const int level = levels_[static_cast<size_t>(node)];
  const int32_t entry = entry_.load(std::memory_order_acquire);
  const int top = levels_[static_cast<size_t>(entry)];
  Candidate curr{entry, score(entry)};
  for (int l = top; l > level; --l) {
    curr = GreedyStep(score, curr, l, synchronized);
  }
  std::vector<Candidate> eps{curr};
  for (int l = std::min(level, top); l >= 0; --l) {
    SearchLayer(score, l, config_.ef_construction, nullptr, synchronized,
                eps);
    std::vector<Candidate> selected = eps;
    // A concurrent insert may already have linked back to this node, making
    // it reachable from its own beam — never self-link.
    selected.erase(std::remove_if(selected.begin(), selected.end(),
                                  [node](const Candidate& c) {
                                    return c.node == node;
                                  }),
                   selected.end());
    SelectNeighbors(rows, selected, l == 0 ? m0_ : config_.M);
    if (synchronized) {
      SpinLock& lock = stripes_[static_cast<size_t>(node) & (kStripes - 1)];
      lock.lock();
      int32_t* blk = LinkBlock(node, l);
      blk[0] = static_cast<int32_t>(selected.size());
      for (size_t i = 0; i < selected.size(); ++i) blk[1 + i] = selected[i].node;
      lock.unlock();
    } else {
      int32_t* blk = LinkBlock(node, l);
      blk[0] = static_cast<int32_t>(selected.size());
      for (size_t i = 0; i < selected.size(); ++i) blk[1 + i] = selected[i].node;
    }
    for (const Candidate& s : selected) {
      AddBacklink(rows, s.node, node, s.score, l, synchronized);
    }
    if (eps.empty()) eps.push_back(curr);  // keep a seed for the next level
  }
  if (level > top) {
    // This node out-leveled the current entry point: promote it. Checked
    // again under the mutex because parallel builds race promotions.
    std::scoped_lock lock(entry_mu_);
    const int32_t e = entry_.load(std::memory_order_relaxed);
    if (e < 0 || level > levels_[static_cast<size_t>(e)]) {
      entry_.store(node, std::memory_order_release);
    }
  }
}

void HnswIndex::Add(const float* rows) {
  const int32_t node = static_cast<int32_t>(levels_.size());
  const int level = RandomLevel(static_cast<size_t>(node));
  levels_.push_back(level);
  links0_.resize(links0_.size() + m0_ + 1, 0);
  if (level > 0) {
    upper_.emplace(node, std::vector<int32_t>(
                             static_cast<size_t>(level) * (config_.M + 1), 0));
  }
  if (entry_.load(std::memory_order_relaxed) < 0) {
    entry_.store(node, std::memory_order_release);
    return;
  }
  InsertNode(rows, node, /*synchronized=*/false);
}

void HnswIndex::Build(const float* rows, size_t n, ThreadPool* pool) {
  Clear();
  if (n == 0) return;
  // Levels and the entry point are fixed before any link is written, so the
  // parallel phase never grows a container (no rehash under concurrency —
  // workers only fill pre-sized blocks behind striped locks).
  levels_.resize(n);
  size_t entry = 0;
  for (size_t i = 0; i < n; ++i) {
    levels_[i] = RandomLevel(i);
    if (levels_[i] > levels_[entry]) entry = i;
  }
  links0_.assign(n * (m0_ + 1), 0);
  for (size_t i = 0; i < n; ++i) {
    if (levels_[i] > 0) {
      upper_.emplace(static_cast<int32_t>(i),
                     std::vector<int32_t>(
                         static_cast<size_t>(levels_[i]) * (config_.M + 1),
                         0));
    }
  }
  entry_.store(static_cast<int32_t>(entry), std::memory_order_release);
  const bool parallel = pool != nullptr && pool->size() > 0 && n > 2;
  ParallelFor(pool, n, [&](size_t i) {
    if (i == entry) return;  // the entry point is the seed node
    InsertNode(rows, static_cast<int32_t>(i), parallel);
  });
}

template <typename Score>
void HnswIndex::SearchImpl(const Score& score, const uint8_t* dead, size_t ef,
                           std::vector<Candidate>& out) const {
  out.clear();
  const int32_t entry = entry_.load(std::memory_order_acquire);
  if (entry < 0 || ef == 0) return;
  Candidate curr{entry, score(entry)};
  for (int l = levels_[static_cast<size_t>(entry)]; l > 0; --l) {
    curr = GreedyStep(score, curr, l, /*synchronized=*/false);
  }
  std::vector<Candidate> eps{curr};
  SearchLayer(score, /*level=*/0, ef, dead, /*synchronized=*/false, eps);
  out = std::move(eps);
}

void HnswIndex::Search(const float* rows, const uint8_t* dead,
                       const float* query, size_t ef,
                       std::vector<Candidate>& out) const {
  SearchImpl(FloatScore{rows, query, dims_}, dead, ef, out);
}

void HnswIndex::SearchSq8(const simd::Sq8View& view, const simd::Sq8Query& query,
                          const uint8_t* dead, size_t ef,
                          std::vector<Candidate>& out) const {
  SearchImpl(Sq8ScoreFn{&view, &query}, dead, ef, out);
}

size_t HnswIndex::memory_bytes() const {
  size_t bytes = levels_.capacity() * sizeof(int32_t) +
                 links0_.capacity() * sizeof(int32_t);
  for (const auto& [node, block] : upper_) {
    (void)node;
    bytes += sizeof(int32_t) * block.capacity();
  }
  // Hash-map node overhead (bucket array + node headers), approximate.
  bytes += upper_.size() * (sizeof(void*) * 4 + sizeof(int32_t));
  return bytes;
}

}  // namespace laminar::ann
