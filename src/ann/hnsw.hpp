// Approximate-nearest-neighbor graph index (HNSW, Malkov & Yashunin 2018)
// for the million-PE search tier (ROADMAP item 1; the paper's Senatus-citing
// future work). This class owns only the *graph*: the L2-normalized rows
// live in the caller's flat storage (search::VectorIndex `data_`), and every
// float distance evaluated here is the same dispatched simd::Dot kernel over
// the same floats the exact scan uses — which is what makes the two-stage
// query path (ANN candidate generation, exact dot-product rerank) return
// scores bit-identical to the flat path. SearchSq8 swaps the traversal onto
// the caller's SQ8 quantized row mirror (int8 codes + per-row affine) for
// 4x less memory streamed per hop; its scores are approximate, so callers
// over-fetch and rerank through the exact float kernel.
//
// Layout: node ids are dense indexes into the caller's row storage. Level-0
// links sit in one flat count-prefixed array (node-major blocks of
// 2M+1 int32); the ~1/M fraction of nodes with upper levels keep their
// per-level blocks in a side map. Levels are assigned by hashing the node
// id with the config seed, so a rebuild assigns the same levels regardless
// of build order or thread count.
//
// Concurrency contract: Search() and the other const methods are safe to
// call concurrently with each other (no shared mutable state; the visited
// set is a thread-local epoch-stamped scratch buffer). Mutations (Add,
// Build, Clear) require external exclusive locking — the same contract as
// VectorIndex. Build() itself fans the inserts out across a ThreadPool,
// synchronizing link-list access internally with striped spinlocks, so a
// bulk build exploits every core while staying within the external
// exclusive section.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simd/sq8.hpp"

namespace laminar {
class ThreadPool;
}

namespace laminar::ann {

struct HnswConfig {
  /// Max links per node on levels >= 1; level 0 keeps up to 2*M.
  size_t M = 16;
  /// Beam width while inserting: wider = better graph, slower build.
  size_t ef_construction = 128;
  /// Default beam width at query time (callers may widen per query to k).
  size_t ef_search = 96;
  /// Namespaces the per-node level hash so graph shape is reproducible.
  uint64_t seed = 0xa117e57a7e5eedULL;
};

/// One scored graph node: `score` is the exact dot product between the
/// query and the node's stored (unit-norm) row.
struct Candidate {
  int32_t node = -1;
  float score = 0.0f;
};

class HnswIndex {
 public:
  explicit HnswIndex(size_t dims, HnswConfig config = {});

  /// Appends node `node_count()` and links it into the graph (serial
  /// incremental insert). `rows` is the base of the caller's row storage and
  /// must already contain the new node's row; the pointer is taken fresh on
  /// every call because the caller's vector may reallocate between inserts.
  void Add(const float* rows);

  /// Rebuilds the graph over rows [0, n) from scratch. Level assignment and
  /// the entry point are fixed up front; the per-node link construction
  /// then fans out over `pool` (plus the calling thread) via ParallelFor.
  /// A null pool builds serially, which is also deterministic.
  void Build(const float* rows, size_t n, ThreadPool* pool);

  /// Beam search for up to `ef` live candidates near `query` (unit-norm,
  /// `dims` floats). Tombstoned nodes (`dead[node] != 0`) still route the
  /// traversal but are excluded from results; pass dead = nullptr when every
  /// node is live. Results come back sorted by score descending, ties by
  /// ascending node, each scored with the exact dot kernel.
  void Search(const float* rows, const uint8_t* dead, const float* query,
              size_t ef, std::vector<Candidate>& out) const;

  /// Search over the SQ8 quantized mirror of the rows (ISSUE 10): the
  /// traversal scores every hop with the dispatched int8 kernel against
  /// `view` instead of streaming full-width float rows, shrinking the
  /// working set 4x. Returned scores are *approximate* — callers must
  /// rerank the candidates through the exact float kernel (VectorIndex
  /// over-fetches for exactly that reason). Same dead/ordering semantics
  /// as Search.
  void SearchSq8(const simd::Sq8View& view, const simd::Sq8Query& query,
                 const uint8_t* dead, size_t ef,
                 std::vector<Candidate>& out) const;

  void Clear();

  size_t node_count() const { return levels_.size(); }
  int entry_node() const { return entry_.load(std::memory_order_relaxed); }
  int max_level() const {
    int e = entry_.load(std::memory_order_relaxed);
    return e < 0 ? -1 : levels_[static_cast<size_t>(e)];
  }
  size_t dims() const { return dims_; }
  const HnswConfig& config() const { return config_; }

  /// Heap footprint of the graph structure (links + levels), excluding the
  /// caller-owned row storage.
  size_t memory_bytes() const;

 private:
  struct alignas(64) SpinLock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
  };

  int RandomLevel(size_t node) const;
  int32_t* LinkBlock(int32_t node, int level);
  const int32_t* LinkBlock(int32_t node, int level) const;
  /// Copies node's neighbor list at `level` into `buf` (sized >= 2M),
  /// returning the count. Takes the node's stripe lock when `synchronized`.
  size_t CopyLinks(int32_t node, int level, bool synchronized,
                   int32_t* buf) const;
  /// Greedy ef=1 descent step at `level` starting from `start`. `score` is
  /// a Score(int32_t node) -> float functor (exact float kernel or the SQ8
  /// approximate kernel) — the traversal shape is identical either way.
  template <typename Score>
  Candidate GreedyStep(const Score& score, Candidate start, int level,
                       bool synchronized) const;
  /// Beam search at one level. `eps` seeds the beam; results (up to ef,
  /// filtered by `dead`) replace it, sorted by score descending.
  template <typename Score>
  void SearchLayer(const Score& score, int level, size_t ef,
                   const uint8_t* dead, bool synchronized,
                   std::vector<Candidate>& eps) const;
  /// Shared Search/SearchSq8 body: greedy descent over the upper levels,
  /// then the level-0 beam.
  template <typename Score>
  void SearchImpl(const Score& score, const uint8_t* dead, size_t ef,
                  std::vector<Candidate>& out) const;
  /// Algorithm-4 diversity pruning to at most `m` neighbors, refilling from
  /// the pruned set when diversity leaves slots empty.
  void SelectNeighbors(const float* rows, std::vector<Candidate>& cands,
                       size_t m) const;
  /// Links `node` into every level <= its own (the body of Add/Build).
  void InsertNode(const float* rows, int32_t node, bool synchronized);
  void AddBacklink(const float* rows, int32_t target, int32_t node,
                   float score, int level, bool synchronized);

  size_t dims_;
  HnswConfig config_;
  size_t m0_;                    ///< level-0 link capacity (2*M)
  std::vector<int32_t> levels_;  ///< per-node top level
  std::vector<int32_t> links0_;  ///< node-major [count, n0, n1, ...] blocks
  /// Nodes with level >= 1: per-level [count, ...] blocks, concatenated.
  std::unordered_map<int32_t, std::vector<int32_t>> upper_;
  std::atomic<int32_t> entry_{-1};  ///< highest-level node; -1 = empty
  std::mutex entry_mu_;             ///< guards entry_ promotion
  /// Per-node striped locks for link lists during parallel Build.
  mutable std::vector<SpinLock> stripes_;
};

}  // namespace laminar::ann
