// Tenant namespaces and admission control at the server boundary
// (ROADMAP item 3; Ripple's declarative resource handling in PAPERS.md is
// the model: callers declare a tenant, the platform enforces quotas).
//
// A tenant is a short namespace string attached to every request — either a
// `"tenant"` field in the JSON body (wins) or an `x-laminar-tenant` header.
// Requests that name neither run as the `default` tenant, which preserves
// the whole pre-tenancy behavior: default-tenant rows are visible to
// everyone, default quotas are unlimited unless configured, and default
// runs keep the legacy `wf:N:*` broker key prefix.
//
// AdmissionController owns the boundary checks:
//  - a token-bucket request rate per tenant (requests_per_sec/burst),
//    returning kResourceExhausted with a retry-after hint when drained —
//    the server maps this to HTTP 429 with a `retryAfterMs` body field;
//  - registered-row quotas (max_pes/max_workflows) checked against live
//    per-tenant counts that the server maintains under its exclusive lock
//    and rebuilds from the repository after load/recovery;
//  - per-tenant run-outcome counters for the /stats tenants block.
//
// Run scheduling (concurrency caps, fair queueing) lives in
// engine::FairRunQueue; the TenantQuotas fields max_concurrent_runs,
// max_queued_runs and weight are handed to it per /execute.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/value.hpp"

namespace laminar::server {

/// Implicit namespace of requests that do not name a tenant.
inline constexpr std::string_view kDefaultTenant = "default";

/// All limits default to 0 = unlimited, so an unconfigured server behaves
/// exactly as before tenancy existed.
struct TenantQuotas {
  int64_t max_pes = 0;        ///< registered PE rows
  int64_t max_workflows = 0;  ///< registered workflow rows
  int max_concurrent_runs = 0;
  int max_queued_runs = 0;
  double requests_per_sec = 0.0;  ///< token-bucket refill rate
  double burst = 0.0;             ///< bucket capacity (0 = requests_per_sec)
  double weight = 1.0;            ///< fair-share weight in the run queue
};

/// Tenant names become metric label values and broker key segments, so the
/// charset and length are strict: [A-Za-z0-9._-]{1,64}.
bool ValidTenantName(std::string_view name);

class AdmissionController {
 public:
  AdmissionController(TenantQuotas defaults,
                      std::map<std::string, TenantQuotas> overrides);

  /// Effective quotas: the per-tenant override when present, else defaults.
  const TenantQuotas& QuotasFor(const std::string& tenant) const;

  /// Token-bucket rate gate, called once per request (except /health and
  /// /metrics). On refusal returns kResourceExhausted and sets
  /// `retry_after_ms` to when a token will be available.
  Status AdmitRequest(const std::string& tenant, double* retry_after_ms);

  /// Row-quota checks. `additional` is how many rows the operation wants to
  /// add. Callers must hold the server's exclusive lock for the
  /// check-then-commit to be atomic; the early advisory checks on the
  /// shared-lock path are allowed to race (the commit re-checks).
  Status AdmitPes(const std::string& tenant, int64_t additional) const;
  Status AdmitWorkflows(const std::string& tenant, int64_t additional) const;

  /// Row accounting (server exclusive lock held).
  void OnPesChanged(const std::string& tenant, int64_t delta);
  void OnWorkflowsChanged(const std::string& tenant, int64_t delta);
  /// Replaces all row counts (after /registry/load, remove_all, recovery).
  void ResetRowCounts(std::map<std::string, std::pair<int64_t, int64_t>>
                          pe_and_workflow_counts);

  /// Run-outcome accounting for /stats reconciliation with ##END## totals.
  void RecordRunOutcome(const std::string& tenant, bool ok);

  /// The /stats "tenants" block: requests/throttled/row/run counters keyed
  /// by tenant. Merged by the server with FairRunQueue::Snapshot().
  Value StatsJson() const;

 private:
  struct TenantCounters {
    double tokens = 0.0;
    int64_t last_refill_us = 0;
    bool bucket_primed = false;
    uint64_t requests = 0;
    uint64_t throttled = 0;
    int64_t pes = 0;
    int64_t workflows = 0;
    uint64_t runs_succeeded = 0;
    uint64_t runs_failed = 0;
  };

  const TenantQuotas defaults_;
  const std::map<std::string, TenantQuotas> overrides_;
  mutable std::mutex mu_;
  std::map<std::string, TenantCounters> tenants_;
};

}  // namespace laminar::server
