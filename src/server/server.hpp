// The Laminar server (paper §III): coordinates clients, registry, search and
// the execution engine. Organized like the paper's layering — this class is
// the controller tier; registry::Repository is the data-access tier;
// search::SearchService / ExecutionEngine are the service tier.
//
// The server is transport-agnostic: Handle() implements the protocol and can
// be bound as the handler of any number of HttpConnections (batch or
// streaming). Locking discipline: one std::shared_mutex guards the registry
// tier — mutations take it exclusively, while read-only endpoints (search,
// completion, recommendation, get/list, stats) take shared locks so
// concurrent searches run in parallel and never queue behind each other or
// behind registry writes. Workflow execution runs outside the lock.
//
// Endpoints (all POST, JSON bodies):
//   /users/register {userName,password}            -> {userId}
//   /users/login    {userName,password}            -> {token,userId}
//   /pes/register   {name?,code,description?}      -> {peId,name,description}
//   /registry/bulk_register {pes:[{name?,code,description?},...]}
//                                                  -> {peIds,registered,errors}
//   /pes/get        {id|name}                      -> PE record
//   /pes/describe   {id}                           -> {description,code}
//   /pes/update_description {id,description}       -> {}
//   /pes/remove     {id}                           -> {}
//   /workflows/register {name,code?,spec,description?,pes:[...]}
//                                                  -> {workflowId,peIds}
//   /workflows/get  {id|name}                      -> workflow record
//   /workflows/pes  {id}                           -> {pes:[...]}
//   /workflows/update_description {id,description} -> {}
//   /workflows/remove {id}                         -> {}
//   /registry/list  {}                             -> {pes,workflows}
//   /registry/remove_all {}                        -> {}
//   /search/literal  {target,term,limit?}          -> {hits}
//   /search/semantic {target,query,limit?}         -> {hits}
//   /search/code     {target,code,embedding_type?,limit?} -> {hits}
//   /resources/upload (multipart body)             -> {stored}
//   /execute {workflowId|spec,mapping,input,processes,resources,verbose}
//       -> streamed stdout lines, then "##END## {stats}" chunk whose
//          "totals" object is read from the telemetry registry
//          (HTTP 428 + {missing:[...]} when resources must be uploaded)
//   /stats {}    -> registry counts + cache/broker/engine stats + telemetry
//                   ("totals", "metrics", "trace") from the same registry
//                   the ##END## chunk reads, so the two cannot disagree
//   /metrics     -> Prometheus text exposition (GET; text/plain, not JSON)
//   /health {}                                     -> {status:"ok"}
//
// Every request is counted into laminar_server_requests_total{path=...} and
// timed into laminar_server_request_ms{path=...} (unknown paths collapse to
// path="other" so the label set stays bounded).
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>

#include "common/thread_pool.hpp"
#include "embed/codet5_sim.hpp"
#include "engine/engine.hpp"
#include "engine/run_queue.hpp"
#include "net/http.hpp"
#include "registry/repository.hpp"
#include "search/search_service.hpp"
#include "server/admission.hpp"
#include "server/replication.hpp"

namespace laminar::server {

struct ServerConfig {
  engine::EngineConfig engine;
  /// Search tier, including the vector-index knobs (`search.vector_index`:
  /// parallel_threshold, max_threads, strategy flat|hnsw|auto, HNSW shape).
  /// The chosen values are surfaced under /stats "search.vectorIndex".
  search::SearchConfig search;
  /// Name of the implicit user owning unauthenticated registrations.
  std::string default_user = "laminar";
  /// Helper threads for the ingest pool: /registry/bulk_register prepares
  /// and bulk index rebuilds fan out across them (plus the calling thread).
  /// 0 disables the pool — everything still works, just serially.
  size_t ingest_threads = 4;
  /// When non-empty, every committed registry mutation is appended to this
  /// write-ahead log, and construction recovers snapshot_path + WAL suffix
  /// (a missing snapshot/WAL is a normal first boot, not an error).
  std::string wal_path;
  /// Snapshot consulted by startup recovery when wal_path is set.
  std::string snapshot_path;
  /// WAL durability: "none" (default — the OS flushes on its own schedule;
  /// crash-consistent but the tail may be lost on power failure), "interval"
  /// (a background thread fsyncs every wal_fsync_interval_ms without
  /// blocking appends), or "per_record" (fsync inside every append — full
  /// durability, slowest). /stats "wal" reports appendedSeq vs durableSeq.
  std::string wal_fsync = "none";
  int wal_fsync_interval_ms = 50;
  /// "host:port" of a leader to replicate from. Non-empty turns this server
  /// into a read-only follower: it bootstraps from the leader's snapshot,
  /// tails its WAL, serves every read endpoint, and answers mutations and
  /// /execute with HTTP 421 pointing at the leader. wal_path/snapshot_path
  /// are ignored on a follower (its registry is a replica, not an origin).
  std::string replica_of;
  /// Follower bounded-staleness contract: when > 0, read endpoints answer
  /// 503 unless the follower confirmed it was caught up with the leader
  /// within this many milliseconds. Must exceed the replication fetch
  /// long-poll (1 s) or an idle follower flaps stale. 0 = always serve.
  int max_replica_lag_ms = 0;
  /// Multi-tenant admission (ROADMAP item 3). `tenant_quotas` applies to
  /// every tenant without an entry in `tenant_overrides`; the zero-valued
  /// defaults mean "unlimited", so an unconfigured server admits everything
  /// exactly as before tenancy existed.
  TenantQuotas tenant_quotas;
  std::map<std::string, TenantQuotas> tenant_overrides;
  /// Concurrent /execute enactments (FairRunQueue slots). 0 = inherit
  /// engine.max_concurrent so the queue never adds a second bottleneck.
  int run_workers = 0;
  /// Global queued-run cap across all tenants; 0 = unlimited.
  size_t run_queue_depth = 0;
};

class LaminarServer {
 public:
  explicit LaminarServer(ServerConfig config = {});

  /// The protocol handler; bind into HttpConnection as the StreamHandler.
  void Handle(const net::HttpRequest& request, net::StreamResponder& out);

  /// Convenience for binding: a StreamHandler closure over this server.
  net::StreamHandler HandlerFn();

  registry::Repository& repository() { return repo_; }
  search::SearchService& search() { return search_; }
  engine::ExecutionEngine& engine() { return engine_; }

  /// Marker prefixing the final stats chunk of an /execute stream.
  static constexpr std::string_view kEndMarker = "##END## ";

 private:
  void Reply(net::StreamResponder& out, int status, const Value& body);

  /// Two-phase registration (ISSUE 5). Prepare* runs the expensive work —
  /// CodeT5 summarization, UniXcoder/ReACC encodes, the SPT parse and
  /// featurization — on the request thread with NO registry lock held;
  /// Commit* inserts the row and upserts the precomputed vectors inside a
  /// short exclusive section. Concurrent writers therefore serialize only
  /// on the cheap commits instead of on each other's model inference.
  struct PreparedPeReg {
    registry::PeRecord record;
    search::SearchService::PreparedPe index;
  };
  Result<PreparedPeReg> PreparePeRegistration(const Value& pe_obj,
                                              const std::string& tenant) const;
  /// Requires mu_ held exclusively. Enforces the tenant PE quota and keeps
  /// the admission controller's row counts in step with the repository.
  Result<int64_t> CommitPeRegistration(PreparedPeReg prepared);
  /// Rebuilds the admission controller's per-tenant row counts from the
  /// repository (after recovery, /registry/load, /registry/remove_all).
  /// Requires mu_ held exclusively (or constructor single-threadedness).
  void ResetTenantRowCounts();

  Value PeToJson(const registry::PeRecord& pe, bool with_code) const;
  Value WorkflowToJson(const registry::WorkflowRecord& wf,
                       bool with_code) const;
  int64_t AuthUser(const net::HttpRequest& request);

  // Endpoint implementations (registry lock held by caller where needed).
  // Handle() is a thin telemetry wrapper (request counter + latency span)
  // around the actual dispatch in HandleInternal().
  void HandleInternal(const net::HttpRequest& request,
                      net::StreamResponder& out);
  void HandleExecute(const Value& body, int64_t user_id,
                     const std::string& tenant, net::StreamResponder& out);

  // Replication plumbing (see replication.hpp for the protocol).
  /// Follower bootstrap hook: loads the leader snapshot document, rebuilds
  /// the search indexes and tenant row counts. Takes mu_ exclusively.
  Result<uint64_t> BootstrapFromSnapshot(const std::string& snapshot_doc);
  /// Follower apply hook: one fetch batch through Database::ApplyWalRecord
  /// under a single exclusive lock, maintaining search incrementally.
  Status ApplyReplicatedRecords(const std::vector<Value>& records);
  /// The /replication/status (and /stats "replication") body.
  Value ReplicationStatusJson() const;

  ServerConfig config_;
  registry::Database db_;
  registry::Repository repo_;
  search::SearchService search_;
  engine::ExecutionEngine engine_;
  /// Boundary quota/rate checks + per-tenant counters (own internal lock).
  AdmissionController admission_;
  /// Tenant-fair bounded dispatch for /execute (own internal lock).
  engine::FairRunQueue run_queue_;
  embed::CodeT5Sim codet5_;
  /// Helpers for bulk-ingest prepare fan-out (null when ingest_threads=0).
  std::unique_ptr<ThreadPool> ingest_pool_;
  /// Guards db_/repo_/search_/tokens_: shared for read-only endpoints,
  /// exclusive for mutations (see IsReadOnlyEndpoint in server.cpp).
  std::shared_mutex mu_;
  std::unordered_map<std::string, int64_t> tokens_;
  int64_t default_user_id_ = 0;
  uint64_t next_token_ = 1;
  /// Leader-side shipping ring (null unless wal_path set and not a
  /// follower). Fed by the Database WAL observer.
  std::unique_ptr<ReplicationHub> repl_hub_;
  /// Follower-side tailer (null unless replica_of set). Declared LAST so
  /// its destructor joins the replication thread before any member it
  /// touches (db_, search_, admission_, mu_) is destroyed.
  std::unique_ptr<ReplicationFollower> repl_follower_;
};

}  // namespace laminar::server
