#include "server/replication.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "net/tcp.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::server {
namespace {

telemetry::Counter& ReplCounter(const char* name, const char* role) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      name, std::string("role=\"") + role + "\"");
}

telemetry::Histogram& LagHistogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::Global().GetHistogram("laminar_repl_lag_ms");
  return h;
}

telemetry::Gauge& LagSeqGauge() {
  static telemetry::Gauge& g =
      telemetry::MetricsRegistry::Global().GetGauge("laminar_repl_lag_seq");
  return g;
}

}  // namespace

// ---- ReplicationHub (leader) ---------------------------------------------

ReplicationHub::ReplicationHub(std::string wal_path, uint64_t head_seq,
                               size_t ring_capacity)
    : wal_path_(std::move(wal_path)),
      capacity_(std::max<size_t>(1, ring_capacity)),
      head_seq_(head_seq) {}

void ReplicationHub::Publish(uint64_t seq, std::string line) {
  std::scoped_lock lock(mu_);
  head_seq_ = std::max(head_seq_, seq);
  ring_.emplace_back(seq, std::move(line));
  if (ring_.size() > capacity_) ring_.pop_front();
  cv_.notify_all();
}

uint64_t ReplicationHub::head_seq() const {
  std::scoped_lock lock(mu_);
  return head_seq_;
}

uint64_t ReplicationHub::fetches() const {
  std::scoped_lock lock(mu_);
  return fetches_;
}

uint64_t ReplicationHub::records_shipped() const {
  std::scoped_lock lock(mu_);
  return records_shipped_;
}

ReplicationHub::FetchResult ReplicationHub::Fetch(uint64_t from_seq,
                                                  size_t max_records,
                                                  int wait_ms) {
  max_records = std::clamp<size_t>(max_records, 1, 4096);
  wait_ms = std::clamp(wait_ms, 0, 10'000);
  FetchResult out;
  std::unique_lock lock(mu_);
  ++fetches_;
  if (head_seq_ <= from_seq && wait_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [&] { return head_seq_ > from_seq; });
  }
  out.head_seq = head_seq_;
  if (head_seq_ <= from_seq) return out;  // caught up: empty long-poll
  if (!ring_.empty() && ring_.front().first <= from_seq + 1) {
    for (const auto& [seq, line] : ring_) {
      if (seq <= from_seq) continue;
      out.lines.push_back(line);
      if (out.lines.size() >= max_records) break;
    }
    records_shipped_ += out.lines.size();
    for (const std::string& line : out.lines) {
      ReplCounter("laminar_repl_bytes_total", "leader").Inc(line.size());
    }
    ReplCounter("laminar_repl_records_total", "leader").Inc(out.lines.size());
    return out;
  }
  // Ring miss: the requested suffix starts behind the buffered window. The
  // WAL file still has it unless a snapshot compacted it away. Disk reads
  // run outside the lock so publishers (and therefore registry commits)
  // never wait on this path.
  lock.unlock();
  uint64_t expected = from_seq + 1;
  bool saw_parse_failure = false;
  {
    std::ifstream in(wal_path_);
    std::string line;
    while (in && std::getline(in, line) && out.lines.size() < max_records) {
      if (line.empty()) continue;
      Result<Value> record = json::Parse(line);
      if (!record.ok()) {
        // Concurrent append can expose a half-written tail; serve what we
        // have and let the next fetch pick up from the ring.
        saw_parse_failure = true;
        break;
      }
      const uint64_t seq =
          static_cast<uint64_t>(record->GetInt("seq", 0));
      if (seq <= from_seq) continue;
      if (seq != expected) {
        out.lines.clear();
        out.need_snapshot = true;  // compacted past the follower's position
        break;
      }
      out.lines.push_back(line);
      ++expected;
    }
  }
  if (out.lines.empty() && !out.need_snapshot && !saw_parse_failure) {
    // Nothing on disk past from_seq although head says there should be:
    // the suffix lived only in records compacted away before this follower
    // asked. Only a snapshot can resynchronize it.
    out.need_snapshot = true;
  }
  lock.lock();
  out.head_seq = head_seq_;
  records_shipped_ += out.lines.size();
  if (!out.lines.empty()) {
    size_t bytes = 0;
    for (const std::string& l : out.lines) bytes += l.size();
    ReplCounter("laminar_repl_bytes_total", "leader").Inc(bytes);
    ReplCounter("laminar_repl_records_total", "leader").Inc(out.lines.size());
  }
  return out;
}

// ---- ReplicationFollower -------------------------------------------------

ReplicationFollower::ReplicationFollower(FollowerConfig config, Hooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks)) {}

ReplicationFollower::~ReplicationFollower() { Stop(); }

void ReplicationFollower::Start() {
  std::scoped_lock lock(mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ReplicationFollower::Stop() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
    if (live_conn_ != nullptr) live_conn_->Close();  // unblock the long-poll
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

ReplicationFollower::StatusSnapshot ReplicationFollower::status() const {
  std::scoped_lock lock(mu_);
  return state_;
}

bool ReplicationFollower::IsFresh(int64_t max_lag_ms) const {
  std::scoped_lock lock(mu_);
  if (!state_.bootstrapped || state_.last_fresh_wall_ms == 0) return false;
  return NowWallMillis() - state_.last_fresh_wall_ms <= max_lag_ms;
}

void ReplicationFollower::Loop() {
  while (true) {
    {
      std::scoped_lock lock(mu_);
      if (stopping_) return;
    }
    RunSession();
    // A session ends on leader loss or a protocol error; pause briefly so a
    // dead leader is not hammered (RunSession's own connect retries already
    // back off during startup races).
    std::unique_lock lock(mu_);
    if (stopping_) return;
    stop_cv_.wait_for(lock, std::chrono::milliseconds(100),
                      [&] { return stopping_; });
    if (stopping_) return;
  }
}

void ReplicationFollower::RunSession() {
  net::TcpConnectOptions copts;
  copts.timeout_ms = config_.connect_timeout_ms;
  copts.attempts = std::max(1, config_.connect_attempts);
  Result<std::unique_ptr<net::ByteStream>> stream =
      net::TcpConnect(config_.leader_host, config_.leader_port, copts);
  if (!stream.ok()) return;
  auto conn = std::make_unique<net::HttpConnection>(
      std::move(stream.value()), net::HttpConnection::Mode::kStreaming);
  bool need_bootstrap;
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    live_conn_ = conn.get();
    state_.connected = true;
    need_bootstrap = !state_.bootstrapped;
  }
  auto leave = [&] {
    std::scoped_lock lock(mu_);
    live_conn_ = nullptr;
    state_.connected = false;
  };
  while (true) {
    {
      std::scoped_lock lock(mu_);
      if (stopping_) break;
    }
    if (need_bootstrap) {
      net::HttpRequest req;
      req.path = "/replication/snapshot";
      req.body = "{}";
      Result<std::pair<int, std::string>> resp = conn->Call(req);
      if (!resp.ok() || resp->first != 200) break;
      Result<uint64_t> seq = hooks_.bootstrap(resp->second);
      if (!seq.ok()) {
        log::Error("repl", "snapshot bootstrap failed: " +
                               seq.status().ToString());
        break;
      }
      {
        std::scoped_lock lock(mu_);
        state_.bootstrapped = true;
        state_.applied_seq = seq.value();
        // Loading the snapshot IS a confirmed catch-up: it covers the
        // leader's head as of capture, so freshness starts now rather than
        // after the first (long-polled) fetch returns.
        state_.leader_seq = std::max(state_.leader_seq, seq.value());
        state_.last_fresh_wall_ms = NowWallMillis();
        ++state_.bootstraps;
        state_.bytes_received += resp->second.size();
      }
      ReplCounter("laminar_repl_bytes_total", "follower")
          .Inc(resp->second.size());
      need_bootstrap = false;
      continue;
    }
    uint64_t from;
    {
      std::scoped_lock lock(mu_);
      from = state_.applied_seq;
    }
    Value fetch_body = Value::MakeObject();
    fetch_body["fromSeq"] = static_cast<int64_t>(from);
    fetch_body["maxRecords"] =
        static_cast<int64_t>(config_.fetch_max_records);
    fetch_body["waitMs"] = static_cast<int64_t>(config_.fetch_wait_ms);
    net::HttpRequest req;
    req.path = "/replication/fetch";
    req.body = fetch_body.ToJson();
    Result<std::pair<int, std::string>> resp = conn->Call(req);
    if (!resp.ok() || resp->first != 200) break;
    Result<Value> parsed = json::Parse(resp->second);
    if (!parsed.ok()) break;
    const uint64_t head_seq =
        static_cast<uint64_t>(parsed->GetInt("headSeq", 0));
    if (parsed->GetBool("needSnapshot", false)) {
      // The leader compacted past our position (or we fell behind its
      // ring+file window): only a fresh snapshot can resynchronize.
      std::scoped_lock lock(mu_);
      state_.bootstrapped = false;
      need_bootstrap = true;
      continue;
    }
    std::vector<Value> records;
    size_t batch_bytes = 0;
    bool gap = false;
    uint64_t expected = from + 1;
    for (const Value& line : parsed->at("lines").as_array()) {
      Result<Value> record = json::Parse(line.as_string());
      if (!record.ok()) {
        gap = true;
        break;
      }
      const uint64_t seq =
          static_cast<uint64_t>(record->GetInt("seq", 0));
      if (seq != expected) {
        gap = true;
        break;
      }
      ++expected;
      batch_bytes += line.as_string().size();
      records.push_back(std::move(record.value()));
    }
    if (gap) {
      // The WAL sequence is contiguous by construction, so a hole here
      // means this replica's view diverged; rebuild it from a snapshot
      // rather than applying records past the hole.
      std::scoped_lock lock(mu_);
      ++state_.gaps;
      state_.bootstrapped = false;
      need_bootstrap = true;
      continue;
    }
    double last_lag_ms = 0.0;
    if (!records.empty()) {
      Status st = hooks_.apply(records);
      if (!st.ok()) {
        log::Error("repl", "apply failed at seq " +
                               std::to_string(from + 1) + ": " +
                               st.ToString() + "; re-bootstrapping");
        std::scoped_lock lock(mu_);
        ++state_.gaps;
        state_.bootstrapped = false;
        need_bootstrap = true;
        continue;
      }
      const int64_t now_ms = NowWallMillis();
      for (const Value& record : records) {
        const int64_t ts = record.GetInt("ts", 0);
        if (ts > 0) {
          last_lag_ms = std::max(0.0, static_cast<double>(now_ms - ts));
          LagHistogram().Observe(last_lag_ms);
        }
      }
      ReplCounter("laminar_repl_records_total", "follower")
          .Inc(records.size());
      ReplCounter("laminar_repl_bytes_total", "follower").Inc(batch_bytes);
    }
    {
      std::scoped_lock lock(mu_);
      state_.applied_seq = expected - 1;
      state_.leader_seq = head_seq;
      state_.records_applied += records.size();
      state_.bytes_received += batch_bytes;
      if (!records.empty()) state_.last_record_lag_ms = last_lag_ms;
      if (state_.applied_seq >= head_seq) {
        state_.last_fresh_wall_ms = NowWallMillis();
        state_.last_record_lag_ms = records.empty() ? 0.0 : last_lag_ms;
      }
      LagSeqGauge().Set(head_seq > state_.applied_seq
                            ? static_cast<int64_t>(head_seq -
                                                   state_.applied_seq)
                            : 0);
    }
  }
  conn->Close();
  leave();
}

}  // namespace laminar::server
