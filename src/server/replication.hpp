// WAL-shipping registry replication (ROADMAP item 2's distribution half).
//
// One leader binary ships its per-mutation JSON WAL to N read-only
// followers over the existing framed TCP transport; followers bootstrap
// from a leader snapshot and then tail the log, applying every record
// through the registry's recovery path and reindexing search incrementally,
// so `/search/*`, `/pes/get`, `/workflows/get` and `/stats` are served from
// any replica while all mutations stay on the leader.
//
// Protocol (three POST endpoints on the leader, admission-exempt like
// /health — a bench's per-tenant rate caps must never throttle the
// replication stream itself):
//   /replication/snapshot {}            -> the raw snapshot document (the
//       same bytes WriteSnapshot persists, "__wal_seq" embedded)
//   /replication/fetch {fromSeq,maxRecords?,waitMs?} ->
//       {lines:[...], headSeq, needSnapshot} — WAL lines with
//       seq > fromSeq, long-polling up to waitMs when the follower is
//       caught up; needSnapshot=true when fromSeq predates what the leader
//       still has (ring evicted + WAL compacted), telling the follower to
//       re-bootstrap
//   /replication/status {}              -> role, sequences, lag counters
//
// The long-lived framed stream is the follower's persistent HttpConnection:
// each fetch is one bounded request/response on it, so disconnects are
// detected by the normal codec EOF path and the follower reconnects with
// the capped-backoff TcpConnect.
//
// Leader side: ReplicationHub — an in-memory ring of the most recent
// (seq, line) records fed by the Database's WAL observer (called under the
// WAL mutex, so publishing preserves sequence order), with a WAL-file
// fallback for fetches that start behind the ring.
//
// Follower side: ReplicationFollower — one background thread owning the
// leader connection: bootstrap (snapshot -> Database::LoadFromText ->
// search reindex), then the tail loop. Sequence contiguity is asserted on
// every applied batch; a gap (which the protocol should never produce)
// forces a re-bootstrap rather than a silently diverged replica. The
// follower runs with NO local WAL, so applying is never re-logged and a
// restarted follower always re-bootstraps from the leader.
//
// Telemetry (process-wide):
//   laminar_repl_records_total{role="leader"|"follower"}
//   laminar_repl_bytes_total{role="leader"|"follower"}
//   laminar_repl_lag_ms      (histogram, follower: apply time - record ts)
//   laminar_repl_lag_seq     (gauge, follower: leader head - applied)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "net/http.hpp"

namespace laminar::server {

/// Leader-side shipping buffer. Publish() is called from the Database's
/// WAL observer (under the WAL mutex — strictly in sequence order);
/// Fetch() serves follower long-polls.
class ReplicationHub {
 public:
  /// `wal_path` is the fallback source for fetches older than the ring;
  /// `head_seq` seeds the newest-known sequence (the WAL's last assigned
  /// sequence after recovery). `ring_capacity` bounds buffered records.
  ReplicationHub(std::string wal_path, uint64_t head_seq,
                 size_t ring_capacity = 8192);

  void Publish(uint64_t seq, std::string line);

  struct FetchResult {
    std::vector<std::string> lines;  ///< WAL records, ascending seq
    uint64_t head_seq = 0;           ///< newest sequence the leader assigned
    /// True when records past `from_seq` are gone from both the ring and
    /// the (compacted) WAL file: the follower must re-bootstrap.
    bool need_snapshot = false;
  };

  /// Records with seq > from_seq, at most max_records. Blocks up to
  /// `wait_ms` when the caller is already caught up (long-poll).
  FetchResult Fetch(uint64_t from_seq, size_t max_records, int wait_ms);

  uint64_t head_seq() const;
  /// Fetches served / records shipped (for /replication/status).
  uint64_t fetches() const;
  uint64_t records_shipped() const;

 private:
  const std::string wal_path_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<uint64_t, std::string>> ring_;
  uint64_t head_seq_ = 0;
  uint64_t fetches_ = 0;
  uint64_t records_shipped_ = 0;
};

struct FollowerConfig {
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;
  /// Long-poll hold the follower asks the leader for per fetch.
  int fetch_wait_ms = 1000;
  /// Per-fetch record cap (bounds the exclusive-lock apply batch).
  size_t fetch_max_records = 512;
  /// Per-attempt connect timeout and retry budget for (re)connects.
  int connect_timeout_ms = 10'000;
  int connect_attempts = 10;
};

/// Background replication client: owns the leader connection and drives
/// bootstrap + tail. The owning server supplies the two hooks that touch
/// registry state; both are invoked from the follower thread and must do
/// their own (exclusive) locking.
class ReplicationFollower {
 public:
  struct Hooks {
    /// Loads a snapshot document into the registry, reindexes search, and
    /// returns the "__wal_seq" the snapshot covers.
    std::function<Result<uint64_t>(const std::string& snapshot_doc)> bootstrap;
    /// Applies one fetch batch of parsed WAL records (ascending seq,
    /// contiguity already verified) and maintains the search indexes.
    std::function<Status(const std::vector<Value>& records)> apply;
  };

  ReplicationFollower(FollowerConfig config, Hooks hooks);
  ~ReplicationFollower();

  void Start();
  void Stop();

  struct StatusSnapshot {
    bool connected = false;
    bool bootstrapped = false;
    uint64_t applied_seq = 0;
    uint64_t leader_seq = 0;  ///< head the last fetch response reported
    uint64_t records_applied = 0;
    uint64_t bytes_received = 0;
    uint64_t bootstraps = 0;  ///< snapshot loads (1 + forced re-bootstraps)
    uint64_t gaps = 0;        ///< sequence-contiguity violations observed
    /// Wall-clock ms when the follower last confirmed it was caught up
    /// (applied_seq == leader head); 0 until first confirmed.
    int64_t last_fresh_wall_ms = 0;
    /// Lag of the most recently applied record (apply time - record ts).
    double last_record_lag_ms = 0.0;
  };
  StatusSnapshot status() const;

  /// Bounded-staleness contract: fresh means the follower confirmed it was
  /// caught up with the leader within the last `max_lag_ms` milliseconds.
  /// An un-bootstrapped (or never-confirmed) follower is infinitely stale.
  bool IsFresh(int64_t max_lag_ms) const;

 private:
  void Loop();
  /// One leader session: connect, bootstrap if needed, tail until error.
  void RunSession();

  const FollowerConfig config_;
  const Hooks hooks_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  StatusSnapshot state_;
  /// The session's connection while one is live — Stop() closes it so a
  /// blocked long-poll Call returns immediately. Guarded by mu_.
  net::HttpConnection* live_conn_ = nullptr;
};

}  // namespace laminar::server
