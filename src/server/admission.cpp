#include "server/admission.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::server {
namespace {

std::string TenantLabel(const std::string& tenant) {
  return "tenant=\"" + tenant + '"';
}

telemetry::Counter& RequestCounter(const std::string& tenant) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_tenant_requests_total", TenantLabel(tenant));
}

telemetry::Counter& ThrottledCounter(const std::string& tenant) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_tenant_throttled_total", TenantLabel(tenant));
}

telemetry::Gauge& RowGauge(const std::string& tenant, const char* kind) {
  return telemetry::MetricsRegistry::Global().GetGauge(
      "laminar_tenant_rows",
      TenantLabel(tenant) + ",kind=\"" + kind + '"');
}

}  // namespace

bool ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

AdmissionController::AdmissionController(
    TenantQuotas defaults, std::map<std::string, TenantQuotas> overrides)
    : defaults_(defaults), overrides_(std::move(overrides)) {}

const TenantQuotas& AdmissionController::QuotasFor(
    const std::string& tenant) const {
  auto it = overrides_.find(tenant);
  return it != overrides_.end() ? it->second : defaults_;
}

Status AdmissionController::AdmitRequest(const std::string& tenant,
                                         double* retry_after_ms) {
  const TenantQuotas& quotas = QuotasFor(tenant);
  {
    std::scoped_lock lock(mu_);
    TenantCounters& c = tenants_[tenant];
    ++c.requests;
    if (quotas.requests_per_sec > 0.0) {
      const double capacity = quotas.burst > 0.0 ? quotas.burst
                                                 : quotas.requests_per_sec;
      int64_t now_us = NowMicros();
      if (!c.bucket_primed) {
        c.tokens = capacity;
        c.bucket_primed = true;
      } else {
        double elapsed_s =
            static_cast<double>(now_us - c.last_refill_us) / 1e6;
        c.tokens = std::min(capacity,
                            c.tokens + elapsed_s * quotas.requests_per_sec);
      }
      c.last_refill_us = now_us;
      if (c.tokens < 1.0) {
        ++c.throttled;
        if (retry_after_ms != nullptr) {
          *retry_after_ms =
              (1.0 - c.tokens) / quotas.requests_per_sec * 1000.0;
        }
        ThrottledCounter(tenant).Inc();
        RequestCounter(tenant).Inc();
        return Status::ResourceExhausted("tenant '" + tenant +
                                         "' request rate limit exceeded");
      }
      c.tokens -= 1.0;
    }
  }
  RequestCounter(tenant).Inc();
  return Status::Ok();
}

Status AdmissionController::AdmitPes(const std::string& tenant,
                                     int64_t additional) const {
  const TenantQuotas& quotas = QuotasFor(tenant);
  if (quotas.max_pes <= 0) return Status::Ok();
  std::scoped_lock lock(mu_);
  auto it = tenants_.find(tenant);
  int64_t current = it != tenants_.end() ? it->second.pes : 0;
  if (current + additional > quotas.max_pes) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' PE quota exceeded (" +
        std::to_string(current) + "/" + std::to_string(quotas.max_pes) + ")");
  }
  return Status::Ok();
}

Status AdmissionController::AdmitWorkflows(const std::string& tenant,
                                           int64_t additional) const {
  const TenantQuotas& quotas = QuotasFor(tenant);
  if (quotas.max_workflows <= 0) return Status::Ok();
  std::scoped_lock lock(mu_);
  auto it = tenants_.find(tenant);
  int64_t current = it != tenants_.end() ? it->second.workflows : 0;
  if (current + additional > quotas.max_workflows) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' workflow quota exceeded (" +
        std::to_string(current) + "/" + std::to_string(quotas.max_workflows) +
        ")");
  }
  return Status::Ok();
}

void AdmissionController::OnPesChanged(const std::string& tenant,
                                       int64_t delta) {
  {
    std::scoped_lock lock(mu_);
    TenantCounters& c = tenants_[tenant];
    c.pes = std::max<int64_t>(0, c.pes + delta);
  }
  RowGauge(tenant, "pe").Add(delta);
}

void AdmissionController::OnWorkflowsChanged(const std::string& tenant,
                                             int64_t delta) {
  {
    std::scoped_lock lock(mu_);
    TenantCounters& c = tenants_[tenant];
    c.workflows = std::max<int64_t>(0, c.workflows + delta);
  }
  RowGauge(tenant, "workflow").Add(delta);
}

void AdmissionController::ResetRowCounts(
    std::map<std::string, std::pair<int64_t, int64_t>>
        pe_and_workflow_counts) {
  std::scoped_lock lock(mu_);
  for (auto& [tenant, c] : tenants_) {
    RowGauge(tenant, "pe").Set(0);
    RowGauge(tenant, "workflow").Set(0);
    c.pes = 0;
    c.workflows = 0;
  }
  for (const auto& [tenant, counts] : pe_and_workflow_counts) {
    TenantCounters& c = tenants_[tenant];
    c.pes = counts.first;
    c.workflows = counts.second;
    RowGauge(tenant, "pe").Set(counts.first);
    RowGauge(tenant, "workflow").Set(counts.second);
  }
}

void AdmissionController::RecordRunOutcome(const std::string& tenant,
                                           bool ok) {
  {
    std::scoped_lock lock(mu_);
    TenantCounters& c = tenants_[tenant];
    if (ok) {
      ++c.runs_succeeded;
    } else {
      ++c.runs_failed;
    }
  }
  telemetry::MetricsRegistry::Global()
      .GetCounter("laminar_tenant_exec_total",
                  TenantLabel(tenant) + ",outcome=\"" +
                      (ok ? "ok" : "error") + '"')
      .Inc();
}

Value AdmissionController::StatsJson() const {
  std::scoped_lock lock(mu_);
  Value out = Value::MakeObject();
  for (const auto& [tenant, c] : tenants_) {
    Value t = Value::MakeObject();
    t["requests"] = static_cast<int64_t>(c.requests);
    t["throttled"] = static_cast<int64_t>(c.throttled);
    t["pes"] = c.pes;
    t["workflows"] = c.workflows;
    t["runsSucceeded"] = static_cast<int64_t>(c.runs_succeeded);
    t["runsFailed"] = static_cast<int64_t>(c.runs_failed);
    out[tenant] = std::move(t);
  }
  return out;
}

}  // namespace laminar::server
