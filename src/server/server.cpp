#include "server/server.hpp"

#include <cmath>
#include <mutex>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "dataflow/mapping.hpp"
#include "net/multipart.hpp"
#include "net/tcp.hpp"
#include "pycode/parser.hpp"
#include "simd/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::server {
namespace {

int StatusToHttp(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kParseError: return 400;
    case StatusCode::kPermissionDenied: return 401;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kFailedPrecondition: return 428;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 408;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

Value ErrorBody(const Status& st) {
  Value body = Value::MakeObject();
  body["error"] = st.ToString();
  return body;
}

search::SearchTarget ParseTarget(const Value& body) {
  return body.GetString("target", "pe") == "workflow"
             ? search::SearchTarget::kWorkflow
             : search::SearchTarget::kPe;
}

/// Tenant resolution (ROADMAP item 3): an explicit `"tenant"` body field
/// wins, then the `x-laminar-tenant` header; requests naming neither run as
/// the default tenant, preserving all pre-tenancy behavior.
Result<std::string> ResolveTenant(const net::HttpRequest& request,
                                  const Value& body) {
  std::string tenant = body.GetString("tenant");
  if (tenant.empty()) tenant = request.headers.GetString("x-laminar-tenant");
  if (tenant.empty()) return std::string(kDefaultTenant);
  if (!ValidTenantName(tenant)) {
    return Status::InvalidArgument(
        "invalid tenant name '" + tenant + "' (want [A-Za-z0-9._-], 1-64 chars)");
  }
  return tenant;
}

/// Normalizes a stored row tenant: rows written before tenancy existed have
/// no tenant column and read back as "".
std::string_view RowTenant(const std::string& stored) {
  return stored.empty() ? kDefaultTenant : std::string_view(stored);
}

/// Visibility rule for registry rows: default-tenant rows are shared with
/// everyone (the pre-tenancy registry keeps working for all callers), the
/// default tenant sees everything (it doubles as the operator view), and
/// otherwise rows are private to their owning tenant.
bool TenantCanSee(const std::string& requester, const std::string& row_tenant) {
  if (requester == kDefaultTenant) return true;
  std::string_view owner = RowTenant(row_tenant);
  return owner == kDefaultTenant || owner == requester;
}

/// Boundary validation of /execute run options (the bugfix sweep): every
/// numeric knob is type-, range- and finiteness-checked *before* any value
/// is cast into RunOptions, so NaN/negative deadlines or zero batch sizes
/// can never reach the mapping layer's int64 casts and divide-style loops.
/// Errors name the offending field so clients can self-correct.
Status ValidateRunOptions(const Value& body) {
  auto bad = [](std::string_view field, std::string_view why) {
    return Status::InvalidArgument("invalid run option '" + std::string(field) +
                                   "': " + std::string(why));
  };
  auto check_number = [&](std::string_view field, double lo,
                          double hi) -> Status {
    const Value& v = body.at(field);
    if (v.is_null()) return Status::Ok();  // absent -> default applies
    if (!v.is_number()) return bad(field, "must be a number");
    const double d = v.as_double();
    if (!std::isfinite(d)) return bad(field, "must be finite");
    if (d < lo || d > hi) {
      return bad(field, "out of range [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + "]");
    }
    return Status::Ok();
  };
  auto check_integer = [&](std::string_view field, int64_t lo,
                           int64_t hi) -> Status {
    const Value& v = body.at(field);
    if (v.is_null()) return Status::Ok();
    if (!v.is_number()) return bad(field, "must be an integer");
    const double d = v.as_double();
    if (!std::isfinite(d) || d != std::floor(d)) {
      return bad(field, "must be an integer");
    }
    if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
      return bad(field, "out of range [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + "]");
    }
    return Status::Ok();
  };
  // Durations: finite and non-negative (0 = disabled). The upper bound is
  // ~285 years in ms — far past meaningful, but it keeps ms->us conversions
  // comfortably inside int64.
  constexpr double kMaxMs = 9.0e12;
  for (std::string_view f :
       {"deadline_ms", "send_batch_max_delay_ms", "retry_backoff_ms"}) {
    Status st = check_number(f, 0.0, kMaxMs);
    if (!st.ok()) return st;
  }
  // Counts: strictly positive and bounded.
  for (std::string_view f : {"processes", "initial_workers", "max_workers"}) {
    Status st = check_integer(f, 1, 4096);
    if (!st.ok()) return st;
  }
  for (std::string_view f : {"send_batch_size", "recv_batch_size"}) {
    Status st = check_integer(f, 1, 1 << 20);
    if (!st.ok()) return st;
  }
  Status st = check_integer("max_retries", 0, 1000);
  if (!st.ok()) return st;
  return check_integer("priority", -100, 100);
}

/// Class name of the first class definition in the code (the registered PE's
/// canonical name when the client did not provide one).
std::string ExtractClassName(const std::string& code) {
  Result<pycode::NodePtr> parsed = pycode::ParseLenient(code);
  if (!parsed.ok()) return {};
  std::string name;
  parsed.value()->Visit([&](const pycode::Node& n) {
    if (!name.empty() || n.leaf || n.kind != "class_def") return;
    bool saw_kw = false;
    for (const auto& c : n.children) {
      if (c->leaf && c->token.IsKeyword("class")) {
        saw_kw = true;
        continue;
      }
      if (saw_kw && c->leaf && c->token.type == pycode::TokenType::kName) {
        name = c->token.text;
        return;
      }
    }
  });
  return name;
}

/// Per-phase ingest instrumentation (ISSUE 5): encode = the off-lock
/// prepare work (summaries, embeddings, SPT featurization), commit = the
/// exclusive-lock row insert + index upsert.
telemetry::Histogram& IngestHistogram(const char* phase) {
  return telemetry::MetricsRegistry::Global().GetHistogram(
      "laminar_server_ingest_ms",
      std::string("phase=\"") + phase + "\"");
}

telemetry::Counter& IngestCounter(const char* phase) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_server_ingest_total",
      std::string("phase=\"") + phase + "\"");
}

/// Endpoints that only read registry/search state. These run under a shared
/// lock so any number of them proceed concurrently; everything else takes
/// the lock exclusively. /users/login is a mutation (it mints a token).
/// The ingest endpoints (/pes/register, /workflows/register,
/// /registry/bulk_register, the update_description pair) and /registry/save
/// never reach this routing: they manage their own two-phase locking in
/// HandleInternal (prepare under a shared lock, disk writes off-lock,
/// short exclusive commit).
bool IsReadOnlyEndpoint(const std::string& path) {
  static constexpr std::string_view kReadOnly[] = {
      "/pes/get", "/pes/describe", "/workflows/get", "/workflows/describe",
      "/workflows/pes", "/workflows/executions", "/registry/list",
      "/search/literal", "/search/semantic", "/search/code",
      "/search/complete", "/stats"};
  for (std::string_view ro : kReadOnly) {
    if (path == ro) return true;
  }
  return false;
}

/// Label value for per-endpoint metrics: the path itself for known
/// endpoints, "other" for the rest so unknown paths cannot grow the label
/// set without bound.
std::string_view CanonicalPath(const std::string& path) {
  static constexpr std::string_view kKnown[] = {
      "/health", "/metrics", "/stats", "/execute", "/resources/upload",
      "/users/register", "/users/login", "/pes/register", "/pes/get",
      "/pes/describe", "/pes/update_description", "/pes/remove",
      "/workflows/register", "/workflows/get", "/workflows/describe",
      "/workflows/pes", "/workflows/executions",
      "/workflows/update_description", "/workflows/remove",
      "/registry/list", "/registry/remove_all", "/registry/save",
      "/registry/load", "/registry/bulk_register", "/search/literal",
      "/search/semantic", "/search/code", "/search/complete",
      "/replication/snapshot", "/replication/fetch", "/replication/status"};
  for (std::string_view known : kKnown) {
    if (path == known) return known;
  }
  return "other";
}

}  // namespace

LaminarServer::LaminarServer(ServerConfig config)
    : config_(std::move(config)),
      repo_(db_),
      search_(repo_, config_.search),
      engine_(config_.engine),
      admission_(config_.tenant_quotas, config_.tenant_overrides),
      run_queue_(config_.run_workers > 0 ? config_.run_workers
                                         : config_.engine.max_concurrent,
                 config_.run_queue_depth) {
  if (config_.ingest_threads > 0) {
    ingest_pool_ = std::make_unique<ThreadPool>(config_.ingest_threads);
  }
  Status st = registry::CreateLaminarSchema(db_);
  if (!st.ok()) {
    log::Error("server", "schema creation failed: " + st.ToString());
  }
  if (!config_.replica_of.empty() && !config_.wal_path.empty()) {
    log::Warn("server",
              "--replica-of set: ignoring wal_path/snapshot_path (a replica "
              "is not an origin; its registry is rebuilt from the leader)");
    config_.wal_path.clear();
    config_.snapshot_path.clear();
  }
  if (!config_.wal_path.empty()) {
    registry::WalOptions wal_options;
    if (config_.wal_fsync == "interval") {
      wal_options.fsync = registry::WalFsyncMode::kInterval;
    } else if (config_.wal_fsync == "per_record") {
      wal_options.fsync = registry::WalFsyncMode::kPerRecord;
    } else {
      if (config_.wal_fsync != "none" && !config_.wal_fsync.empty()) {
        log::Warn("server", "unknown wal_fsync '" + config_.wal_fsync +
                                "', using \"none\"");
      }
      wal_options.fsync = registry::WalFsyncMode::kNone;
    }
    wal_options.fsync_interval_ms = config_.wal_fsync_interval_ms;
    Status rec =
        db_.Recover(config_.snapshot_path, config_.wal_path, wal_options);
    if (!rec.ok()) {
      log::Error("server", "registry recovery failed: " + rec.ToString());
    }
    st = search_.ReindexAll(ingest_pool_.get());
    if (!st.ok()) {
      log::Error("server", "post-recovery reindex failed: " + st.ToString());
    }
    ResetTenantRowCounts();  // recovered rows count against tenant quotas
    // Leader side of replication: ship every committed WAL record into the
    // hub ring the moment it is appended (the observer runs under the WAL
    // mutex, so the ring sees records strictly in sequence order).
    repl_hub_ = std::make_unique<ReplicationHub>(
        config_.wal_path, db_.wal_status().appended_seq);
    db_.SetWalObserver([hub = repl_hub_.get()](uint64_t seq,
                                               const std::string& line) {
      hub->Publish(seq, line);
    });
  }
  Result<int64_t> uid = repo_.CreateUser(config_.default_user, "laminar");
  if (uid.ok()) {
    default_user_id_ = uid.value();
  } else {
    // Recovered registries already contain the default user.
    Result<registry::UserRecord> user =
        repo_.GetUserByName(config_.default_user);
    default_user_id_ = user.ok() ? user->id : 1;
  }
  if (!config_.replica_of.empty()) {
    Result<std::pair<std::string, uint16_t>> leader =
        net::ParseHostPort(config_.replica_of);
    if (!leader.ok()) {
      log::Error("server", "invalid --replica-of '" + config_.replica_of +
                               "': " + leader.status().ToString());
    } else {
      FollowerConfig fc;
      fc.leader_host = leader->first;
      fc.leader_port = leader->second;
      ReplicationFollower::Hooks hooks;
      hooks.bootstrap = [this](const std::string& doc) {
        return BootstrapFromSnapshot(doc);
      };
      hooks.apply = [this](const std::vector<Value>& records) {
        return ApplyReplicatedRecords(records);
      };
      repl_follower_ =
          std::make_unique<ReplicationFollower>(fc, std::move(hooks));
      repl_follower_->Start();
    }
  }
}

net::StreamHandler LaminarServer::HandlerFn() {
  return [this](const net::HttpRequest& req, net::StreamResponder& out) {
    Handle(req, out);
  };
}

void LaminarServer::Reply(net::StreamResponder& out, int status,
                          const Value& body) {
  out.SendChunk(body.ToJson());
  out.End(status);
}

int64_t LaminarServer::AuthUser(const net::HttpRequest& request) {
  std::string token = request.headers.GetString("authorization");
  if (!token.empty()) {
    auto it = tokens_.find(token);
    if (it != tokens_.end()) return it->second;
  }
  return default_user_id_;
}

Value LaminarServer::PeToJson(const registry::PeRecord& pe,
                              bool with_code) const {
  Value v = Value::MakeObject();
  v["peId"] = pe.id;
  v["peName"] = pe.name;
  v["description"] = pe.description;
  v["peType"] = pe.type;
  if (with_code) v["code"] = pe.code;
  return v;
}

Value LaminarServer::WorkflowToJson(const registry::WorkflowRecord& wf,
                                    bool with_code) const {
  Value v = Value::MakeObject();
  v["workflowId"] = wf.id;
  v["workflowName"] = wf.name;
  v["description"] = wf.description;
  v["entryPoint"] = wf.entry_point;
  if (with_code) v["code"] = wf.code;
  return v;
}

Result<LaminarServer::PreparedPeReg> LaminarServer::PreparePeRegistration(
    const Value& pe_obj, const std::string& tenant) const {
  PreparedPeReg prepared;
  registry::PeRecord& pe = prepared.record;
  pe.tenant = tenant;
  pe.code = pe_obj.GetString("code");
  if (pe.code.empty()) {
    return Status::InvalidArgument("PE registration requires 'code'");
  }
  pe.name = pe_obj.GetString("name");
  if (pe.name.empty()) pe.name = ExtractClassName(pe.code);
  if (pe.name.empty()) {
    return Status::InvalidArgument("cannot determine PE name from code");
  }
  pe.description = pe_obj.GetString("description");
  if (pe.description.empty()) {
    // §IV-C: auto-generate from the full class context.
    pe.description =
        codet5_.Summarize(pe.code, embed::DescriptionContext::kFullClass);
  }
  pe.type = pe_obj.GetString("type", "IterativePE");
  // One encode + one SPT featurization, shared by the stored columns and
  // the search indexes (the old path parsed the code twice: once for the
  // column, once inside the index add).
  prepared.index = search_.PreparePe(pe.name, pe.description,
                                     /*stored_embedding_json=*/"", pe.code);
  pe.description_embedding = embed::ToJson(prepared.index.text_embedding);
  if (prepared.index.has_features) {
    pe.spt_embedding = spt::FeatureBagToJson(prepared.index.features);
  }
  return prepared;
}

Result<int64_t> LaminarServer::CommitPeRegistration(PreparedPeReg prepared) {
  // Authoritative quota check: this runs under the exclusive lock, so the
  // check-then-increment is atomic even when the shared-lock advisory check
  // raced another registration.
  const std::string tenant = prepared.record.tenant;
  Status quota = admission_.AdmitPes(tenant, 1);
  if (!quota.ok()) return quota;
  Result<int64_t> id = repo_.CreatePe(prepared.record);
  if (!id.ok()) return id;
  search_.CommitPe(id.value(), std::move(prepared.index));
  admission_.OnPesChanged(tenant, 1);
  return id;
}

void LaminarServer::ResetTenantRowCounts() {
  std::map<std::string, std::pair<int64_t, int64_t>> counts;
  for (const registry::PeRecord& pe : repo_.AllPes()) {
    ++counts[std::string(RowTenant(pe.tenant))].first;
  }
  for (const registry::WorkflowRecord& wf : repo_.AllWorkflows()) {
    ++counts[std::string(RowTenant(wf.tenant))].second;
  }
  admission_.ResetRowCounts(std::move(counts));
}

Result<uint64_t> LaminarServer::BootstrapFromSnapshot(
    const std::string& snapshot_doc) {
  std::unique_lock lock(mu_);
  Result<uint64_t> seq = db_.LoadFromText(snapshot_doc);
  if (!seq.ok()) return seq;
  Status st = search_.ReindexAll(ingest_pool_.get());
  if (!st.ok()) return st;
  ResetTenantRowCounts();
  // The snapshot replaced every row, including the default user's.
  Result<registry::UserRecord> user = repo_.GetUserByName(config_.default_user);
  if (user.ok()) default_user_id_ = user->id;
  return seq;
}

Status LaminarServer::ApplyReplicatedRecords(
    const std::vector<Value>& records) {
  std::unique_lock lock(mu_);
  bool full_reindex = false;
  for (const Value& record : records) {
    const std::string table = record.GetString("table");
    const std::string op = record.GetString("op");
    const int64_t id = record.GetInt("id", 0);
    // An erase drops the row before we can ask who owned it, so capture the
    // owning tenant first to keep admission row counts in step.
    std::string erased_tenant;
    if (op == "erase" && table == registry::kPeTable) {
      Result<registry::PeRecord> pe = repo_.GetPe(id);
      if (pe.ok()) erased_tenant = std::string(RowTenant(pe->tenant));
    } else if (op == "erase" && table == registry::kWorkflowTable) {
      Result<registry::WorkflowRecord> wf = repo_.GetWorkflow(id);
      if (wf.ok()) erased_tenant = std::string(RowTenant(wf->tenant));
    }
    Status st = db_.ApplyWalRecord(record);
    if (!st.ok()) return st;
    if (op == "clear") {
      // Rebuilding after the batch covers every table's clear at once.
      full_reindex = true;
      continue;
    }
    // Incremental index maintenance mirrors what the leader's registration
    // paths do, reading the freshly applied row back from the repository —
    // stored embeddings are preferred over re-encoding, so a follower's
    // vectors are bit-identical to the leader's (the parity gate's basis).
    if (table == registry::kPeTable) {
      if (op == "insert") {
        (void)search_.AddPe(id);
        const std::string tenant(
            RowTenant(record.at("data").GetString("tenant")));
        admission_.OnPesChanged(tenant, 1);
      } else if (op == "update") {
        search_.RemovePe(id);
        (void)search_.AddPe(id);
      } else if (op == "erase") {
        search_.RemovePe(id);
        if (!erased_tenant.empty()) admission_.OnPesChanged(erased_tenant, -1);
      }
    } else if (table == registry::kWorkflowTable) {
      if (op == "insert") {
        (void)search_.AddWorkflow(id);
        const std::string tenant(
            RowTenant(record.at("data").GetString("tenant")));
        admission_.OnWorkflowsChanged(tenant, 1);
      } else if (op == "update") {
        search_.RemoveWorkflow(id);
        (void)search_.AddWorkflow(id);
      } else if (op == "erase") {
        search_.RemoveWorkflow(id);
        if (!erased_tenant.empty()) {
          admission_.OnWorkflowsChanged(erased_tenant, -1);
        }
      }
    }
  }
  if (full_reindex) {
    search_.Clear();
    Status st = search_.ReindexAll(ingest_pool_.get());
    if (!st.ok()) return st;
    ResetTenantRowCounts();
  }
  return Status::Ok();
}

Value LaminarServer::ReplicationStatusJson() const {
  Value v = Value::MakeObject();
  if (repl_follower_ != nullptr) {
    v["role"] = "follower";
    v["leader"] = config_.replica_of;
    ReplicationFollower::StatusSnapshot s = repl_follower_->status();
    v["connected"] = s.connected;
    v["bootstrapped"] = s.bootstrapped;
    v["appliedSeq"] = static_cast<int64_t>(s.applied_seq);
    v["leaderSeq"] = static_cast<int64_t>(s.leader_seq);
    v["lagSeq"] = static_cast<int64_t>(
        s.leader_seq > s.applied_seq ? s.leader_seq - s.applied_seq : 0);
    v["lagMs"] = s.last_record_lag_ms;
    v["freshWithinMs"] =
        s.last_fresh_wall_ms > 0
            ? static_cast<int64_t>(NowWallMillis() - s.last_fresh_wall_ms)
            : static_cast<int64_t>(-1);
    v["recordsApplied"] = static_cast<int64_t>(s.records_applied);
    v["bytesReceived"] = static_cast<int64_t>(s.bytes_received);
    v["bootstraps"] = static_cast<int64_t>(s.bootstraps);
    v["gaps"] = static_cast<int64_t>(s.gaps);
    v["maxReplicaLagMs"] = config_.max_replica_lag_ms;
  } else if (repl_hub_ != nullptr) {
    v["role"] = "leader";
    v["headSeq"] = static_cast<int64_t>(repl_hub_->head_seq());
    v["fetches"] = static_cast<int64_t>(repl_hub_->fetches());
    v["recordsShipped"] = static_cast<int64_t>(repl_hub_->records_shipped());
  } else {
    v["role"] = "none";
  }
  return v;
}

void LaminarServer::HandleExecute(const Value& body, int64_t user_id,
                                  const std::string& tenant,
                                  net::StreamResponder& out) {
  // Parse-boundary validation (bugfix): reject malformed run options with
  // 400 + the field name before anything is cast into RunOptions.
  if (Status valid = ValidateRunOptions(body); !valid.ok()) {
    Reply(out, 400, ErrorBody(valid));
    return;
  }
  engine::ExecuteRequest req;
  int64_t workflow_id = body.GetInt("workflowId", 0);
  {
    std::shared_lock lock(mu_);  // only reads the workflow record
    if (workflow_id != 0) {
      Result<registry::WorkflowRecord> wf = repo_.GetWorkflow(workflow_id);
      if (!wf.ok()) {
        Reply(out, 404, ErrorBody(wf.status()));
        return;
      }
      Result<Value> spec = json::Parse(wf->entry_point);
      if (!spec.ok()) {
        Reply(out, 500,
              ErrorBody(Status::Internal("workflow has no executable spec")));
        return;
      }
      req.workflow_spec = std::move(spec.value());
      req.workflow_code = wf->code;
    } else if (body.contains("spec")) {
      req.workflow_spec = body.at("spec");
    } else {
      Reply(out, 400,
            ErrorBody(Status::InvalidArgument(
                "execute requires 'workflowId' or 'spec'")));
      return;
    }
  }
  req.mapping = body.GetString("mapping", "simple");
  if (body.contains("input")) req.run_options.input = body.at("input");
  req.run_options.num_processes =
      static_cast<int>(body.GetInt("processes", 4));
  req.run_options.verbose = body.GetBool("verbose", false);
  // Dynamic-mapping pool and data-plane knobs; defaults come from the
  // RunOptions defaults so server and library cannot drift apart.
  const dataflow::RunOptions defaults;
  req.run_options.max_workers =
      static_cast<int>(body.GetInt("max_workers", 8));
  req.run_options.initial_workers = static_cast<int>(
      body.GetInt("initial_workers", defaults.initial_workers));
  req.run_options.send_batch_size = static_cast<int>(
      body.GetInt("send_batch_size", defaults.send_batch_size));
  req.run_options.recv_batch_size = static_cast<int>(
      body.GetInt("recv_batch_size", defaults.recv_batch_size));
  req.run_options.send_batch_max_delay_ms = body.GetDouble(
      "send_batch_max_delay_ms", defaults.send_batch_max_delay_ms);
  req.run_options.deadline_ms = body.GetDouble("deadline_ms", 0.0);
  req.run_options.max_retries =
      static_cast<int>(body.GetInt("max_retries", 0));
  req.run_options.retry_backoff_ms = body.GetDouble("retry_backoff_ms", 0.0);
  for (const Value& r : body.at("resources").as_array()) {
    engine::ResourceRef ref;
    ref.name = r.GetString("name");
    ref.content_hash = static_cast<uint64_t>(r.GetInt("hash"));
    req.resources.push_back(std::move(ref));
  }

  // §IV-F: answer with the missing-resource list before anything runs.
  std::vector<engine::ResourceRef> missing =
      engine_.MissingResources(req.resources);
  if (!missing.empty()) {
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    for (const engine::ResourceRef& m : missing) {
      Value e = Value::MakeObject();
      e["name"] = m.name;
      e["hash"] = static_cast<int64_t>(m.content_hash);
      arr.push_back(std::move(e));
    }
    resp["missing"] = std::move(arr);
    Reply(out, 428, resp);
    return;
  }

  // Tenant-fair bounded dispatch: acquire a run slot before touching the
  // engine. Rejections (queue depth / concurrency caps) come back as 429
  // with a retryAfterMs hint; a deadline that expires while queued is 408.
  const TenantQuotas& quotas = admission_.QuotasFor(tenant);
  engine::FairRunQueue::AcquireOptions acquire;
  acquire.weight = quotas.weight;
  acquire.max_concurrent = quotas.max_concurrent_runs;
  acquire.max_queued = quotas.max_queued_runs;
  acquire.priority = static_cast<int>(body.GetInt("priority", 0));
  acquire.deadline_us =
      dataflow::DeadlineMicrosFromNow(req.run_options.deadline_ms);
  double retry_after_ms = 0.0;
  Result<engine::FairRunQueue::Ticket> ticket =
      run_queue_.Acquire(tenant, acquire, &retry_after_ms);
  if (!ticket.ok()) {
    Value err = ErrorBody(ticket.status());
    if (ticket.status().code() == StatusCode::kResourceExhausted) {
      err["retryAfterMs"] = retry_after_ms;
    }
    Reply(out, StatusToHttp(ticket.status()), err);
    return;
  }
  // Non-default tenants get their broker run keys under t:<tenant>:wf:N:*,
  // so DelPrefix cleanup and any future per-tenant introspection can never
  // cross namespaces. The default tenant keeps the legacy wf:N:* keys.
  if (tenant != kDefaultTenant) {
    req.run_options.run_scope = "t:" + tenant + ":";
  }

  int64_t execution_id = 0;
  if (workflow_id != 0) {
    std::scoped_lock lock(mu_);
    Result<int64_t> eid =
        repo_.CreateExecution(workflow_id, user_id, req.mapping);
    if (eid.ok()) execution_id = eid.value();
  }

  // §IV-E: stream stdout lines as response chunks the moment they appear.
  engine::ExecuteStats stats;
  Result<dataflow::RunResult> result = engine_.Execute(
      req,
      [&out](const std::string& line) { out.SendChunk(line + "\n"); },
      &stats);
  admission_.RecordRunOutcome(tenant, result.ok());
  ticket->Release();  // free the run slot before the (possibly slow) reply

  Value end = Value::MakeObject();
  // Process-wide totals straight from the telemetry registry — the same
  // numbers /stats serves, so the stream and the endpoint cannot diverge.
  end["totals"] = engine::ExecutionTotalsJson();
  // Fault-containment summary: present on success and failure alike, so a
  // partial failure reaches the client as structured data (counts + sample
  // errors) rather than a dropped connection.
  end["failedTuples"] = static_cast<int64_t>(stats.failed_tuples);
  end["retries"] = static_cast<int64_t>(stats.retries);
  end["dlqDepth"] = static_cast<int64_t>(stats.dlq_depth);
  Value samples = Value::MakeArray();
  for (const std::string& e : stats.error_samples) samples.push_back(e);
  end["errorSamples"] = std::move(samples);
  if (!result.ok()) {
    end["error"] = result.status().ToString();
    end["tuples"] = static_cast<int64_t>(stats.tuples);
    end["runMs"] = stats.run_ms;
    if (execution_id != 0) {
      std::scoped_lock lock(mu_);
      (void)repo_.FinishExecution(execution_id, "failed",
                                  result.status().ToString(), 0);
    }
    out.SendChunk(std::string(kEndMarker) + end.ToJson());
    out.End(StatusToHttp(result.status()));
    return;
  }
  end["tuples"] = static_cast<int64_t>(stats.tuples);
  end["lines"] = static_cast<int64_t>(stats.lines);
  end["coldStart"] = stats.cold_start;
  end["runMs"] = stats.run_ms;
  end["peakWorkers"] = stats.peak_workers;
  end["executionId"] = execution_id;
  if (execution_id != 0) {
    std::string output;
    for (const std::string& line : result->output_lines) {
      output += line;
      output += '\n';
    }
    std::scoped_lock lock(mu_);
    (void)repo_.FinishExecution(
        execution_id, "succeeded", output,
        static_cast<int64_t>(result->output_lines.size()));
  }
  out.SendChunk(std::string(kEndMarker) + end.ToJson());
  out.End(200);
}

void LaminarServer::Handle(const net::HttpRequest& request,
                           net::StreamResponder& out) {
  auto& reg = telemetry::MetricsRegistry::Global();
  std::string label = "path=\"";
  label += CanonicalPath(request.path);
  label += '"';
  reg.GetCounter("laminar_server_requests_total", label).Inc();
  telemetry::ScopedSpan span(
      "server.request", &reg.GetHistogram("laminar_server_request_ms", label));
  HandleInternal(request, out);
}

void LaminarServer::HandleInternal(const net::HttpRequest& request,
                                   net::StreamResponder& out) {
  const std::string& path = request.path;

  // Prometheus text exposition (plain text, not a JSON reply).
  if (path == "/metrics") {
    out.SendChunk(telemetry::MetricsRegistry::Global().RenderPrometheus());
    out.End(200);
    return;
  }

  // Multipart endpoint first (binary body, not JSON). Tenant comes from the
  // header alone here — there is no JSON body to carry the field.
  if (path == "/resources/upload") {
    if (repl_follower_ != nullptr) {
      Value err = ErrorBody(Status::FailedPrecondition(
          "replica is read-only; upload resources to the leader"));
      err["leader"] = config_.replica_of;
      Reply(out, 421, err);
      return;
    }
    Result<std::string> upload_tenant =
        ResolveTenant(request, Value::MakeObject());
    if (!upload_tenant.ok()) {
      Reply(out, 400, ErrorBody(upload_tenant.status()));
      return;
    }
    double retry_after_ms = 0.0;
    if (Status admit = admission_.AdmitRequest(upload_tenant.value(),
                                               &retry_after_ms);
        !admit.ok()) {
      Value err = ErrorBody(admit);
      err["retryAfterMs"] = retry_after_ms;
      Reply(out, 429, err);
      return;
    }
    Result<std::vector<net::FilePart>> parts =
        net::DecodeMultipart(request.body);
    if (!parts.ok()) {
      Reply(out, 400, ErrorBody(parts.status()));
      return;
    }
    Value resp = Value::MakeObject();
    int64_t stored = 0;
    for (net::FilePart& part : parts.value()) {
      engine_.PutResource(part.name, std::move(part.content));
      ++stored;
    }
    resp["stored"] = stored;
    Reply(out, 200, resp);
    return;
  }

  Value body = Value::MakeObject();
  if (!request.body.empty()) {
    Result<Value> parsed = json::Parse(request.body);
    if (!parsed.ok()) {
      Reply(out, 400, ErrorBody(parsed.status()));
      return;
    }
    body = std::move(parsed.value());
  }

  // Liveness probe: never rate-limited, so monitors keep working when a
  // tenant floods the server.
  if (path == "/health") {
    Value resp = Value::MakeObject();
    resp["status"] = "ok";
    Reply(out, 200, resp);
    return;
  }

  // ── Replication (admission-exempt like /health: per-tenant rate caps
  // must never throttle the shipping stream that keeps replicas fresh, and
  // status must stay observable under load).
  if (path == "/replication/status") {
    Reply(out, 200, ReplicationStatusJson());
    return;
  }
  if (path == "/replication/snapshot" || path == "/replication/fetch") {
    if (repl_follower_ != nullptr) {
      // Chained replication is not supported: a follower has no WAL of its
      // own to ship, so it points would-be followers at the real leader.
      Value err = ErrorBody(Status::FailedPrecondition(
          "this node is itself a replica; replicate from the leader"));
      err["leader"] = config_.replica_of;
      Reply(out, 421, err);
      return;
    }
    if (repl_hub_ == nullptr) {
      Reply(out, 503,
            ErrorBody(Status::Unavailable(
                "replication requires a write-ahead log (start the leader "
                "with a wal_path)")));
      return;
    }
    if (path == "/replication/snapshot") {
      // Same two-phase discipline as /registry/save: capture under a shared
      // lock (cheap copy-on-read), serialize off-lock, and the response body
      // IS the raw snapshot document — the exact bytes WriteSnapshot would
      // persist, so followers reuse Database::LoadFromText unchanged.
      registry::Database::Snapshot snapshot;
      {
        std::shared_lock lock(mu_);
        snapshot = db_.CaptureSnapshot();
      }
      out.SendChunk(db_.SerializeSnapshot(snapshot));
      out.End(200);
      return;
    }
    const uint64_t from_seq =
        static_cast<uint64_t>(body.GetInt("fromSeq", 0));
    const size_t max_records =
        static_cast<size_t>(body.GetInt("maxRecords", 512));
    const int wait_ms = static_cast<int>(body.GetInt("waitMs", 0));
    ReplicationHub::FetchResult fetched =
        repl_hub_->Fetch(from_seq, max_records, wait_ms);
    Value resp = Value::MakeObject();
    Value lines = Value::MakeArray();
    for (std::string& line : fetched.lines) {
      lines.push_back(Value(std::move(line)));
    }
    resp["lines"] = std::move(lines);
    resp["headSeq"] = static_cast<int64_t>(fetched.head_seq);
    resp["needSnapshot"] = fetched.need_snapshot;
    Reply(out, 200, resp);
    return;
  }

  // ── Follower gate: a replica serves reads only. Mutations and /execute
  // get 421 + the leader's address (the client maps it to a retry against
  // the leader); when a bounded-staleness contract is configured, reads are
  // refused with 503 until the follower has confirmed it is caught up
  // within the window.
  if (repl_follower_ != nullptr) {
    if (!IsReadOnlyEndpoint(path)) {
      Value err = ErrorBody(Status::FailedPrecondition(
          "replica is read-only; send mutations and /execute to the leader"));
      err["leader"] = config_.replica_of;
      Reply(out, 421, err);
      return;
    }
    if (config_.max_replica_lag_ms > 0 &&
        !repl_follower_->IsFresh(config_.max_replica_lag_ms)) {
      ReplicationFollower::StatusSnapshot s = repl_follower_->status();
      Value err = ErrorBody(Status::Unavailable(
          "replica staleness exceeds maxReplicaLagMs"));
      err["maxReplicaLagMs"] = config_.max_replica_lag_ms;
      err["appliedSeq"] = static_cast<int64_t>(s.applied_seq);
      err["leaderSeq"] = static_cast<int64_t>(s.leader_seq);
      Reply(out, 503, err);
      return;
    }
  }

  // Every remaining endpoint is tenant-attributed and rate-gated: the
  // token bucket refuses with 429 + retryAfterMs before any lock is taken,
  // so a flooding tenant burns its own budget, not server threads.
  Result<std::string> tenant_r = ResolveTenant(request, body);
  if (!tenant_r.ok()) {
    Reply(out, 400, ErrorBody(tenant_r.status()));
    return;
  }
  const std::string& tenant = tenant_r.value();
  {
    double retry_after_ms = 0.0;
    if (Status admit = admission_.AdmitRequest(tenant, &retry_after_ms);
        !admit.ok()) {
      Value err = ErrorBody(admit);
      err["retryAfterMs"] = retry_after_ms;
      Reply(out, 429, err);
      return;
    }
  }

  if (path == "/execute") {
    int64_t user_id;
    {
      std::shared_lock lock(mu_);
      user_id = AuthUser(request);
    }
    HandleExecute(body, user_id, tenant, out);
    return;
  }

  // ── Ingest endpoints: two-phase (ISSUE 5). The expensive phase — CodeT5
  // summaries, UniXcoder/ReACC encodes, SPT parse+featurization — runs on
  // this request thread under only a *shared* lock, so concurrent
  // registrations overlap their model inference (and every search) and
  // serialize only on the short exclusive commit (row insert +
  // precomputed-vector upsert). The shared hold is still required: the
  // encoders are const, but /registry/load and /registry/remove_all
  // replace them via search_.Clear() under the exclusive lock, and the
  // prepare must not overlap that swap.

  if (path == "/pes/register") {
    // Advisory quota check before the expensive encode; the commit
    // re-checks authoritatively under the exclusive lock.
    if (Status quota = admission_.AdmitPes(tenant, 1); !quota.ok()) {
      Reply(out, StatusToHttp(quota), ErrorBody(quota));
      return;
    }
    Result<PreparedPeReg> prepared = [&] {
      telemetry::ScopedSpan span("ingest.encode", &IngestHistogram("encode"));
      IngestCounter("encode").Inc();
      std::shared_lock lock(mu_);
      return PreparePeRegistration(body, tenant);
    }();
    if (!prepared.ok()) {
      Reply(out, StatusToHttp(prepared.status()),
            ErrorBody(prepared.status()));
      return;
    }
    // Response fields, captured before the commit consumes the record: the
    // exclusive lock drops before the reply, so a repository read-back here
    // could race a concurrent /pes/remove of the freshly minted id.
    registry::PeRecord reply_record;
    reply_record.name = prepared->record.name;
    reply_record.description = prepared->record.description;
    reply_record.type = prepared->record.type;
    Result<int64_t> id = [&]() -> Result<int64_t> {
      telemetry::ScopedSpan span("ingest.commit", &IngestHistogram("commit"));
      IngestCounter("commit").Inc();
      std::scoped_lock lock(mu_);
      return CommitPeRegistration(std::move(prepared.value()));
    }();
    if (!id.ok()) {
      Reply(out, StatusToHttp(id.status()), ErrorBody(id.status()));
      return;
    }
    reply_record.id = id.value();
    Reply(out, 200, PeToJson(reply_record, /*with_code=*/false));
    return;
  }

  if (path == "/workflows/register") {
    registry::WorkflowRecord wf;
    {
      std::shared_lock lock(mu_);
      wf.user_id = AuthUser(request);
    }
    wf.tenant = tenant;
    // Advisory quota checks before any model inference runs; the exclusive
    // commit section re-checks both authoritatively.
    if (Status quota = admission_.AdmitWorkflows(tenant, 1); !quota.ok()) {
      Reply(out, StatusToHttp(quota), ErrorBody(quota));
      return;
    }
    if (Status quota = admission_.AdmitPes(
            tenant, static_cast<int64_t>(body.at("pes").size()));
        !quota.ok()) {
      Reply(out, StatusToHttp(quota), ErrorBody(quota));
      return;
    }
    wf.name = body.GetString("name");
    wf.code = body.GetString("code");
    wf.entry_point = body.at("spec").is_object()
                         ? body.at("spec").ToJson()
                         : body.GetString("spec");
    if (wf.name.empty()) {
      Reply(out, 400,
            ErrorBody(Status::InvalidArgument("workflow requires 'name'")));
      return;
    }
    // Phase 1: prepare every member PE, synthesize the workflow description
    // from the *prepared* PE descriptions (identical to what the commit
    // will store), then encode/featurize the workflow itself.
    std::vector<PreparedPeReg> member_pes;
    std::vector<std::string> pe_descriptions;
    search::SearchService::PreparedWorkflow wf_index;
    {
      telemetry::ScopedSpan span("ingest.encode", &IngestHistogram("encode"));
      IngestCounter("encode").Inc();
      std::shared_lock lock(mu_);  // excludes Clear()'s engine swap
      for (const Value& pe_obj : body.at("pes").as_array()) {
        Result<PreparedPeReg> prepared = PreparePeRegistration(pe_obj, tenant);
        if (!prepared.ok()) {
          Reply(out, StatusToHttp(prepared.status()),
                ErrorBody(prepared.status()));
          return;
        }
        pe_descriptions.push_back(prepared->record.description);
        member_pes.push_back(std::move(prepared.value()));
      }
      wf.description = body.GetString("description");
      if (wf.description.empty()) {
        // §IV-C: workflow descriptions synthesized from their PEs.
        wf.description = codet5_.SummarizeWorkflow(wf.name, pe_descriptions);
      }
      wf_index = search_.PrepareWorkflow(wf.name, wf.description,
                                         /*stored_embedding_json=*/"",
                                         wf.code);
      wf.description_embedding = embed::ToJson(wf_index.text_embedding);
      if (!wf.code.empty()) {
        Result<spt::FeatureBag> features = search_.aroma().Featurize(wf.code);
        if (features.ok()) {
          wf.spt_embedding = spt::FeatureBagToJson(features.value());
        }
      }
    }
    // Phase 2: one exclusive section commits the PEs, the workflow row, the
    // membership links and the precomputed workflow vectors.
    Value resp = Value::MakeObject();
    {
      telemetry::ScopedSpan span("ingest.commit", &IngestHistogram("commit"));
      IngestCounter("commit").Inc();
      std::scoped_lock lock(mu_);
      std::vector<int64_t> pe_ids;
      pe_ids.reserve(member_pes.size());
      for (PreparedPeReg& prepared : member_pes) {
        Result<int64_t> pe_id = CommitPeRegistration(std::move(prepared));
        if (!pe_id.ok()) {
          Reply(out, StatusToHttp(pe_id.status()), ErrorBody(pe_id.status()));
          return;
        }
        pe_ids.push_back(pe_id.value());
      }
      if (Status quota = admission_.AdmitWorkflows(tenant, 1); !quota.ok()) {
        Reply(out, StatusToHttp(quota), ErrorBody(quota));
        return;
      }
      Result<int64_t> wf_id = repo_.CreateWorkflow(wf);
      if (!wf_id.ok()) {
        Reply(out, StatusToHttp(wf_id.status()), ErrorBody(wf_id.status()));
        return;
      }
      admission_.OnWorkflowsChanged(tenant, 1);
      for (int64_t pe_id : pe_ids) {
        (void)repo_.LinkPe(wf_id.value(), pe_id);  // both rows just created
      }
      search_.CommitWorkflow(wf_id.value(), std::move(wf_index));
      resp["workflowId"] = wf_id.value();
      Value ids = Value::MakeArray();
      for (int64_t pe_id : pe_ids) ids.push_back(pe_id);
      resp["peIds"] = std::move(ids);
    }
    Reply(out, 200, resp);
    return;
  }

  if (path == "/registry/bulk_register") {
    if (!body.at("pes").is_array() || body.at("pes").size() == 0) {
      Reply(out, 400,
            ErrorBody(Status::InvalidArgument(
                "bulk_register requires a non-empty 'pes' array")));
      return;
    }
    const auto& pe_objs = body.at("pes").as_array();
    const size_t n = pe_objs.size();
    std::vector<std::unique_ptr<PreparedPeReg>> prepared(n);
    std::vector<std::string> prepare_errors(n);
    {
      telemetry::ScopedSpan span("ingest.encode", &IngestHistogram("encode"));
      IngestCounter("encode").Inc();
      // Items are independent and prepare touches only const encoder state,
      // so the fan-out needs no per-item locking. The shared lock held here
      // across the whole fan-out is what makes that safe: it keeps the
      // exclusive-lock holders that replace the engines (search_.Clear()
      // from /registry/load and /registry/remove_all) out until every pool
      // worker is done reading them.
      std::shared_lock lock(mu_);
      ParallelFor(ingest_pool_.get(), n, [&](size_t i) {
        Result<PreparedPeReg> r = PreparePeRegistration(pe_objs[i], tenant);
        if (r.ok()) {
          prepared[i] = std::make_unique<PreparedPeReg>(std::move(r.value()));
        } else {
          prepare_errors[i] = r.status().ToString();
        }
      });
    }
    Value ids = Value::MakeArray();
    Value errors = Value::MakeArray();
    int64_t registered = 0;
    int64_t quota_rejected = 0;
    auto record_error = [&errors](size_t index, const std::string& message) {
      Value e = Value::MakeObject();
      e["index"] = static_cast<int64_t>(index);
      e["error"] = message;
      errors.push_back(std::move(e));
    };
    {
      telemetry::ScopedSpan span("ingest.commit", &IngestHistogram("commit"));
      IngestCounter("commit").Inc();
      std::scoped_lock lock(mu_);
      // Bulk mode: the vector indexes defer per-Upsert ANN graph
      // maintenance across the commit loop; EndBulkIndexing then builds
      // each graph once, fanning the level inserts over the ingest pool.
      search_.BeginBulkIndexing();
      for (size_t i = 0; i < n; ++i) {
        if (prepared[i] == nullptr) {
          record_error(i, prepare_errors[i]);
          continue;
        }
        Result<int64_t> id = CommitPeRegistration(std::move(*prepared[i]));
        if (!id.ok()) {
          if (id.status().code() == StatusCode::kResourceExhausted) {
            ++quota_rejected;
          }
          record_error(i, id.status().ToString());
          continue;
        }
        ids.push_back(id.value());
        ++registered;
      }
      Stopwatch build_watch;
      search_.EndBulkIndexing(ingest_pool_.get());
      // Same gauge ReindexAll sets: the latest bulk index-build duration.
      telemetry::MetricsRegistry::Global()
          .GetGauge("laminar_search_bulk_build_ms")
          .Set(static_cast<int64_t>(build_watch.ElapsedMillis()));
    }
    Value resp = Value::MakeObject();
    resp["peIds"] = std::move(ids);
    resp["registered"] = registered;
    resp["errors"] = std::move(errors);
    // Per-item quota errors ride in `errors`; only a batch where *nothing*
    // registered because of quotas is itself a 429 (so partial successes
    // stay 200 and the client can inspect which items were rejected).
    Reply(out,
          (registered == 0 && quota_rejected > 0) ? 429 : 200,
          resp);
    return;
  }

  if (path == "/pes/update_description" ||
      path == "/workflows/update_description") {
    const int64_t id = body.GetInt("id");
    std::string description = body.GetString("description");
    // Phase 1: encode off-lock. The code and SPT indexes depend only on the
    // unchanged code, so the commit is a row update plus one text upsert —
    // no removal/re-add round trip.
    embed::Vector embedding;
    {
      telemetry::ScopedSpan span("ingest.encode", &IngestHistogram("encode"));
      IngestCounter("encode").Inc();
      std::shared_lock lock(mu_);  // excludes Clear()'s engine swap
      embedding = search_.text_encoder().EncodeText(description);
    }
    Value fields = Value::MakeObject();
    fields["description"] = description;
    fields["descriptionEmbedding"] = embed::ToJson(embedding);
    Status st;
    {
      telemetry::ScopedSpan span("ingest.commit", &IngestHistogram("commit"));
      IngestCounter("commit").Inc();
      std::scoped_lock lock(mu_);
      if (path == "/pes/update_description") {
        st = repo_.UpdatePe(id, fields);
        if (st.ok()) {
          search_.UpdatePeDescription(id, std::move(description),
                                      std::move(embedding));
        }
      } else {
        st = repo_.UpdateWorkflow(id, fields);
        if (st.ok()) {
          search_.UpdateWorkflowDescription(id, std::move(description),
                                            std::move(embedding));
        }
      }
    }
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    Reply(out, 200, Value::MakeObject());
    return;
  }

  if (path == "/registry/save") {
    std::string file = body.GetString("path");
    if (file.empty()) {
      Reply(out, 400,
            ErrorBody(Status::InvalidArgument("save requires 'path'")));
      return;
    }
    // Capture under a shared lock (row copies, or cached text for tables
    // unchanged since the last save), then serialize and write with no lock
    // held: searches and registrations keep flowing while disk I/O runs.
    registry::Database::Snapshot snapshot;
    {
      std::shared_lock lock(mu_);
      snapshot = db_.CaptureSnapshot();
    }
    Status st = db_.WriteSnapshot(std::move(snapshot), file);
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    Reply(out, 200, Value::MakeObject());
    return;
  }

  // Read-only endpoints share the lock (searches run concurrently with each
  // other); mutations serialize behind an exclusive hold.
  std::shared_lock<std::shared_mutex> read_lock(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> write_lock(mu_, std::defer_lock);
  if (IsReadOnlyEndpoint(path)) {
    read_lock.lock();
  } else {
    write_lock.lock();
  }

  if (path == "/users/register") {
    Result<int64_t> id = repo_.CreateUser(body.GetString("userName"),
                                          body.GetString("password"));
    if (!id.ok()) {
      Reply(out, StatusToHttp(id.status()), ErrorBody(id.status()));
      return;
    }
    Value resp = Value::MakeObject();
    resp["userId"] = id.value();
    Reply(out, 200, resp);
    return;
  }

  if (path == "/users/login") {
    Result<registry::UserRecord> user =
        repo_.GetUserByName(body.GetString("userName"));
    if (!user.ok() || user->password != body.GetString("password")) {
      Reply(out, 401,
            ErrorBody(Status::PermissionDenied("bad username or password")));
      return;
    }
    std::string token = "tok-" + std::to_string(next_token_++);
    tokens_[token] = user->id;
    Value resp = Value::MakeObject();
    resp["token"] = token;
    resp["userId"] = user->id;
    Reply(out, 200, resp);
    return;
  }

  if (path == "/pes/get" || path == "/pes/describe") {
    Result<registry::PeRecord> pe =
        body.contains("id") ? repo_.GetPe(body.GetInt("id"))
                            : repo_.GetPeByName(body.GetString("name"));
    if (!pe.ok() || !TenantCanSee(tenant, pe->tenant)) {
      Reply(out, 404,
            ErrorBody(pe.ok() ? Status::NotFound("no visible PE")
                              : pe.status()));
      return;
    }
    Reply(out, 200, PeToJson(pe.value(), /*with_code=*/true));
    return;
  }

  if (path == "/pes/remove") {
    int64_t id = body.GetInt("id");
    // Look up the record first: cross-tenant removals 404 like any other
    // invisible row, and a successful removal must decrement the *owning*
    // tenant's row count, not the requester's.
    Result<registry::PeRecord> pe = repo_.GetPe(id);
    if (!pe.ok() || !TenantCanSee(tenant, pe->tenant)) {
      Reply(out, 404,
            ErrorBody(pe.ok() ? Status::NotFound("no PE with id " +
                                                 std::to_string(id))
                              : pe.status()));
      return;
    }
    Status st = repo_.RemovePe(id);
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    search_.RemovePe(id);
    admission_.OnPesChanged(std::string(RowTenant(pe->tenant)), -1);
    Reply(out, 200, Value::MakeObject());
    return;
  }

  if (path == "/workflows/get" || path == "/workflows/describe") {
    Result<registry::WorkflowRecord> wf =
        body.contains("id")
            ? repo_.GetWorkflow(body.GetInt("id"))
            : repo_.GetWorkflowByName(body.GetString("name"));
    if (!wf.ok() || !TenantCanSee(tenant, wf->tenant)) {
      Reply(out, 404,
            ErrorBody(wf.ok() ? Status::NotFound("no visible workflow")
                              : wf.status()));
      return;
    }
    Reply(out, 200, WorkflowToJson(wf.value(), /*with_code=*/true));
    return;
  }

  if (path == "/workflows/pes") {
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    for (const registry::PeRecord& pe :
         repo_.PesOfWorkflow(body.GetInt("id"))) {
      arr.push_back(PeToJson(pe, /*with_code=*/false));
    }
    resp["pes"] = std::move(arr);
    Reply(out, 200, resp);
    return;
  }

  if (path == "/workflows/executions") {
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    for (const registry::ExecutionRecord& e :
         repo_.ExecutionsOfWorkflow(body.GetInt("id"))) {
      Value x = Value::MakeObject();
      x["executionId"] = e.id;
      x["mapping"] = e.mapping;
      x["status"] = e.status;
      x["startedAtMs"] = e.started_at_ms;
      x["finishedAtMs"] = e.finished_at_ms;
      arr.push_back(std::move(x));
    }
    resp["executions"] = std::move(arr);
    Reply(out, 200, resp);
    return;
  }

  if (path == "/workflows/remove") {
    int64_t id = body.GetInt("id");
    Result<registry::WorkflowRecord> wf = repo_.GetWorkflow(id);
    if (!wf.ok() || !TenantCanSee(tenant, wf->tenant)) {
      Reply(out, 404,
            ErrorBody(wf.ok() ? Status::NotFound("no workflow with id " +
                                                 std::to_string(id))
                              : wf.status()));
      return;
    }
    Status st = repo_.RemoveWorkflow(id);
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    search_.RemoveWorkflow(id);
    admission_.OnWorkflowsChanged(std::string(RowTenant(wf->tenant)), -1);
    Reply(out, 200, Value::MakeObject());
    return;
  }

  if (path == "/registry/list") {
    Value resp = Value::MakeObject();
    Value pes = Value::MakeArray();
    for (const registry::PeRecord& pe : repo_.AllPes()) {
      if (!TenantCanSee(tenant, pe.tenant)) continue;
      pes.push_back(PeToJson(pe, /*with_code=*/false));
    }
    Value wfs = Value::MakeArray();
    for (const registry::WorkflowRecord& wf : repo_.AllWorkflows()) {
      if (!TenantCanSee(tenant, wf.tenant)) continue;
      wfs.push_back(WorkflowToJson(wf, /*with_code=*/false));
    }
    resp["pes"] = std::move(pes);
    resp["workflows"] = std::move(wfs);
    Reply(out, 200, resp);
    return;
  }

  if (path == "/registry/remove_all") {
    (void)repo_.RemoveAll();
    search_.Clear();
    ResetTenantRowCounts();  // everything gone -> all row quotas reset
    Reply(out, 200, Value::MakeObject());
    return;
  }

  if (path == "/search/literal" || path == "/search/semantic") {
    std::vector<search::SearchHit> hits;
    const search::SearchTarget target = ParseTarget(body);
    size_t limit = static_cast<size_t>(body.GetInt("limit", 0));
    if (path == "/search/literal") {
      hits = search_.LiteralSearch(body.GetString("term"), target, limit);
    } else {
      hits = search_.SemanticSearch(body.GetString("query"), target, limit);
    }
    // Post-filter hits to rows this tenant may see (the shared lock held
    // here keeps the repo lookups consistent with the index results).
    auto visible = [&](int64_t id) {
      if (tenant == kDefaultTenant) return true;
      if (target == search::SearchTarget::kWorkflow) {
        Result<registry::WorkflowRecord> wf = repo_.GetWorkflow(id);
        return wf.ok() && TenantCanSee(tenant, wf->tenant);
      }
      Result<registry::PeRecord> pe = repo_.GetPe(id);
      return pe.ok() && TenantCanSee(tenant, pe->tenant);
    };
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    for (const search::SearchHit& hit : hits) {
      if (!visible(hit.id)) continue;
      Value h = Value::MakeObject();
      h["id"] = hit.id;
      h["name"] = hit.name;
      h["description"] = hit.description;
      h["score"] = hit.score;
      arr.push_back(std::move(h));
    }
    resp["hits"] = std::move(arr);
    Reply(out, 200, resp);
    return;
  }

  if (path == "/search/complete") {
    Result<std::vector<spt::Completion>> completions = search_.CodeCompletion(
        body.GetString("code"),
        static_cast<size_t>(body.GetInt("limit", 3)));
    if (!completions.ok()) {
      Reply(out, StatusToHttp(completions.status()),
            ErrorBody(completions.status()));
      return;
    }
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    for (const spt::Completion& c : completions.value()) {
      Value h = Value::MakeObject();
      h["id"] = c.snippet_id;
      Result<registry::PeRecord> pe = repo_.GetPe(c.snippet_id);
      if (pe.ok() && !TenantCanSee(tenant, pe->tenant)) continue;
      if (pe.ok()) h["name"] = pe->name;
      h["score"] = c.score;
      h["continuation"] = c.continuation;
      arr.push_back(std::move(h));
    }
    resp["completions"] = std::move(arr);
    Reply(out, 200, resp);
    return;
  }

  if (path == "/registry/load") {
    std::string file = body.GetString("path");
    Status st = db_.LoadFromFile(file);
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    st = search_.ReindexAll(ingest_pool_.get());
    if (!st.ok()) {
      Reply(out, StatusToHttp(st), ErrorBody(st));
      return;
    }
    ResetTenantRowCounts();  // loaded rows replace all per-tenant counts
    Value resp = Value::MakeObject();
    resp["pes"] = static_cast<int64_t>(repo_.AllPes().size());
    resp["workflows"] = static_cast<int64_t>(repo_.AllWorkflows().size());
    Reply(out, 200, resp);
    return;
  }

  if (path == "/stats") {
    Value resp = Value::MakeObject();
    resp["pes"] = static_cast<int64_t>(repo_.AllPes().size());
    resp["workflows"] = static_cast<int64_t>(repo_.AllWorkflows().size());
    auto cache = engine_.resource_cache().stats();
    resp["cache"]["hits"] = static_cast<int64_t>(cache.hits);
    resp["cache"]["misses"] = static_cast<int64_t>(cache.misses);
    resp["cache"]["bytesStored"] = static_cast<int64_t>(cache.bytes_stored);
    auto broker_stats = engine_.broker().stats();
    resp["broker"]["pushes"] = static_cast<int64_t>(broker_stats.pushes);
    resp["broker"]["pops"] = static_cast<int64_t>(broker_stats.pops);
    resp["engine"]["warmInstances"] = engine_.warm_instances();
    auto query_cache = search_.query_cache_stats();
    resp["queryCache"]["hits"] = static_cast<int64_t>(query_cache.hits);
    resp["queryCache"]["misses"] = static_cast<int64_t>(query_cache.misses);
    resp["queryCache"]["entries"] =
        static_cast<int64_t>(query_cache.entries);
    // Vector-index tier (ISSUE 6): the configured scan/ANN knobs plus a
    // per-index footprint snapshot, so operators can see which indexes have
    // switched onto the ANN graph path and what it costs in memory.
    const auto& vopts = search_.config().vector_index;
    Value vi = Value::MakeObject();
    vi["parallelThreshold"] =
        static_cast<int64_t>(vopts.parallel_threshold);
    vi["maxThreads"] = static_cast<int64_t>(vopts.max_threads);
    vi["strategy"] = std::string(search::ToString(vopts.strategy));
    vi["annThreshold"] = static_cast<int64_t>(vopts.ann_threshold);
    vi["hnswM"] = static_cast<int64_t>(vopts.hnsw.M);
    vi["hnswEfConstruction"] =
        static_cast<int64_t>(vopts.hnsw.ef_construction);
    vi["hnswEfSearch"] = static_cast<int64_t>(vopts.hnsw.ef_search);
    vi["recallProbeInterval"] =
        static_cast<int64_t>(vopts.recall_probe_interval);
    vi["quantize"] = vopts.quantize;
    vi["rerankOverfetch"] = vopts.rerank_overfetch;
    resp["search"]["vectorIndex"] = std::move(vi);
    // Which kernel tier the dispatched dot products run on (ISSUE 10).
    resp["search"]["simd"]["tier"] =
        std::string(simd::TierName(simd::ActiveTier()));
    Value indexes = Value::MakeObject();
    for (const auto& [name, istats] : search_.IndexStats()) {
      Value one = Value::MakeObject();
      one["rows"] = static_cast<int64_t>(istats.rows);
      one["nodes"] = static_cast<int64_t>(istats.nodes);
      one["dims"] = static_cast<int64_t>(istats.dims);
      one["bytes"] = static_cast<int64_t>(istats.bytes);
      one["graphBytes"] = static_cast<int64_t>(istats.graph_bytes);
      one["quantBytes"] = static_cast<int64_t>(istats.quant_bytes);
      one["ann"] = istats.ann;
      one["quantized"] = istats.quantized;
      one["compactions"] = static_cast<int64_t>(istats.compactions);
      one["graphBuilds"] = static_cast<int64_t>(istats.graph_builds);
      indexes[name] = std::move(one);
    }
    resp["search"]["indexes"] = std::move(indexes);
    // Telemetry view: the same registry the /execute ##END## chunk reads,
    // so streamed totals and /stats totals cannot disagree.
    auto& reg = telemetry::MetricsRegistry::Global();
    Value totals = engine::ExecutionTotalsJson();
    // Ingest totals (ISSUE 5): per-phase op counts and mean latency, plus
    // the duration of the last bulk index build.
    const auto encode = IngestHistogram("encode").snapshot();
    const auto commit = IngestHistogram("commit").snapshot();
    totals["ingest"]["encodeOps"] =
        static_cast<int64_t>(IngestCounter("encode").Value());
    totals["ingest"]["commitOps"] =
        static_cast<int64_t>(IngestCounter("commit").Value());
    totals["ingest"]["encodeMsMean"] = encode.Mean();
    totals["ingest"]["commitMsMean"] = commit.Mean();
    totals["ingest"]["bulkBuildMs"] =
        reg.GetGauge("laminar_search_bulk_build_ms").Value();
    resp["totals"] = std::move(totals);
    // Transport tier (ISSUE 7): connection and byte counters from the TCP
    // listener/stream instrumentation. All zero when every client is on the
    // in-memory pipe transport.
    Value netv = Value::MakeObject();
    netv["openConnections"] =
        reg.GetGauge("laminar_net_connections", "state=\"open\"").Value();
    netv["accepted"] = static_cast<int64_t>(
        reg.GetCounter("laminar_net_connections_total", "state=\"accepted\"")
            .Value());
    netv["rejected"] = static_cast<int64_t>(
        reg.GetCounter("laminar_net_connections_total", "state=\"rejected\"")
            .Value());
    netv["bytesRead"] = static_cast<int64_t>(
        reg.GetCounter("laminar_net_bytes_read_total").Value());
    netv["bytesWritten"] = static_cast<int64_t>(
        reg.GetCounter("laminar_net_bytes_written_total").Value());
    netv["protocolErrors"] = static_cast<int64_t>(
        reg.GetCounter("laminar_net_protocol_errors_total").Value());
    resp["net"] = std::move(netv);
    // Per-tenant slice (ROADMAP item 3): boundary-admission counters merged
    // with the run queue's scheduling snapshot, keyed by tenant name. The
    // runsSucceeded/runsFailed counters reconcile with the ##END## totals
    // each tenant's /execute streams observed.
    Value tenants = admission_.StatsJson();
    for (const auto& [name, qs] : run_queue_.Snapshot()) {
      Value& t = tenants[name];
      t["runsAdmitted"] = static_cast<int64_t>(qs.admitted);
      t["runsRejected"] = static_cast<int64_t>(qs.rejected);
      t["runsDeadlineExpired"] = static_cast<int64_t>(qs.deadline_expired);
      t["running"] = qs.running;
      t["queued"] = qs.queued;
      t["vtime"] = qs.vtime;
    }
    resp["tenants"] = std::move(tenants);
    resp["runQueue"]["slots"] = run_queue_.slots();
    resp["runQueue"]["queued"] = static_cast<int64_t>(run_queue_.queued());
    {
      // Durability visibility (ISSUE 9 satellite): how far the log has been
      // appended vs how far it is known durable on disk.
      registry::WalStatus ws = db_.wal_status();
      Value wal = Value::MakeObject();
      wal["enabled"] = ws.enabled;
      wal["fsyncMode"] = ws.fsync_mode;
      wal["appendedSeq"] = static_cast<int64_t>(ws.appended_seq);
      wal["durableSeq"] = static_cast<int64_t>(ws.durable_seq);
      wal["records"] = static_cast<int64_t>(ws.records);
      wal["bytes"] = static_cast<int64_t>(ws.bytes);
      resp["wal"] = std::move(wal);
    }
    resp["replication"] = ReplicationStatusJson();
    resp["metrics"] = reg.RenderJson();
    resp["trace"] = reg.trace().ToJson();
    Reply(out, 200, resp);
    return;
  }

  if (path == "/search/code") {
    std::string embedding_type = body.GetString("embedding_type", "spt");
    const search::SearchTarget target = ParseTarget(body);
    size_t limit = static_cast<size_t>(body.GetInt("limit", 0));
    auto visible = [&](int64_t id) {
      if (tenant == kDefaultTenant) return true;
      if (target == search::SearchTarget::kWorkflow) {
        Result<registry::WorkflowRecord> wf = repo_.GetWorkflow(id);
        return wf.ok() && TenantCanSee(tenant, wf->tenant);
      }
      Result<registry::PeRecord> pe = repo_.GetPe(id);
      return pe.ok() && TenantCanSee(tenant, pe->tenant);
    };
    Value resp = Value::MakeObject();
    Value arr = Value::MakeArray();
    if (embedding_type == "llm") {
      for (const search::SearchHit& hit :
           search_.CodeSearchLlm(body.GetString("code"), target, limit)) {
        if (!visible(hit.id)) continue;
        Value h = Value::MakeObject();
        h["id"] = hit.id;
        h["name"] = hit.name;
        h["description"] = hit.description;
        h["score"] = hit.score;
        arr.push_back(std::move(h));
      }
    } else {
      Result<std::vector<search::RecommendationHit>> recs =
          search_.CodeRecommendation(body.GetString("code"), target, limit);
      if (!recs.ok()) {
        Reply(out, StatusToHttp(recs.status()), ErrorBody(recs.status()));
        return;
      }
      for (const search::RecommendationHit& hit : recs.value()) {
        if (!visible(hit.id)) continue;
        Value h = Value::MakeObject();
        h["id"] = hit.id;
        h["name"] = hit.name;
        h["description"] = hit.description;
        h["score"] = hit.score;
        h["similarCode"] = hit.similar_code;
        h["occurrences"] = static_cast<int64_t>(hit.occurrences);
        arr.push_back(std::move(h));
      }
    }
    resp["hits"] = std::move(arr);
    Reply(out, 200, resp);
    return;
  }

  Reply(out, 404,
        ErrorBody(Status::NotFound("unknown endpoint '" + path + "'")));
}

}  // namespace laminar::server
