// Built-in demo workflows: the paper's running examples packaged as
// ready-to-register bundles (workflow spec + the Python source of each PE +
// the workflow module source). The CLI's `register_workflow isprime_wf.py`
// resolves here, and the examples/tests reuse the same bundles.
#pragma once

#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/value.hpp"

namespace laminar::client {

struct DemoWorkflow {
  std::string name;          ///< e.g. "isprime_wf"
  std::string file_name;     ///< e.g. "isprime_wf.py" (CLI argument)
  Value spec;                ///< executable workflow spec
  std::vector<PeSource> pes; ///< Python sources to register
  std::string code;          ///< the workflow module's Python source
};

/// The catalogue: isprime_wf (paper Fig. 5), wordcount_wf, anomaly_wf
/// (paper Fig. 8 pipeline).
const std::vector<DemoWorkflow>& DemoWorkflows();

/// Lookup by name or file name; nullptr if unknown.
const DemoWorkflow* FindDemoWorkflow(const std::string& name_or_file);

}  // namespace laminar::client
