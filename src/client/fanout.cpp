#include "client/fanout.hpp"

#include <chrono>
#include <thread>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace laminar::client {

Result<std::unique_ptr<ReplicaSetClient>> ReplicaSetClient::Connect(
    const std::string& leader_spec,
    const std::vector<std::string>& follower_specs,
    ReplicaSetOptions options) {
  auto set =
      std::unique_ptr<ReplicaSetClient>(new ReplicaSetClient(options));
  Result<TcpClient> leader = ConnectTcp(leader_spec, options.connect);
  if (!leader.ok()) {
    return Status(leader.status().code(),
                  "leader '" + leader_spec +
                      "' unreachable: " + leader.status().ToString());
  }
  auto leader_ep = std::make_unique<Endpoint>();
  leader_ep->spec = leader_spec;
  leader_ep->is_leader = true;
  leader_ep->tcp = std::move(leader.value());
  set->endpoints_.push_back(std::move(leader_ep));
  for (const std::string& spec : follower_specs) {
    Result<TcpClient> follower = ConnectTcp(spec, options.connect);
    if (!follower.ok()) {
      log::Warn("fanout", "follower '" + spec + "' unreachable, skipping: " +
                              follower.status().ToString());
      continue;
    }
    auto ep = std::make_unique<Endpoint>();
    ep->spec = spec;
    ep->tcp = std::move(follower.value());
    set->endpoints_.push_back(std::move(ep));
  }
  return set;
}

ReplicaSetClient::Endpoint* ReplicaSetClient::PickRead() {
  const int64_t now_ms = NowWallMillis();
  Endpoint* best = nullptr;
  int best_inflight = 0;
  for (auto& ep : endpoints_) {
    if (ep->is_leader && !options_.read_from_leader) continue;
    if (ep->unhealthy_until_ms.load(std::memory_order_relaxed) > now_ms) {
      continue;
    }
    const int inflight = ep->inflight.load(std::memory_order_relaxed);
    if (best == nullptr || inflight < best_inflight) {
      best = ep.get();
      best_inflight = inflight;
    }
  }
  return best;
}

void ReplicaSetClient::MarkUnhealthy(Endpoint& endpoint) {
  if (endpoint.is_leader) return;  // the leader is never benched
  endpoint.unhealthy_until_ms.store(
      NowWallMillis() + options_.unhealthy_cooldown_ms,
      std::memory_order_relaxed);
}

Status ReplicaSetClient::WaitForCatchUp(int timeout_ms) {
  Result<Value> leader_status = leader().ReplicationStatus();
  if (!leader_status.ok()) return leader_status.status();
  const int64_t head = leader_status->GetInt("headSeq", 0);
  const int64_t deadline = NowWallMillis() + timeout_ms;
  for (size_t i = 1; i < endpoints_.size(); ++i) {
    Endpoint& ep = *endpoints_[i];
    while (true) {
      Result<Value> status = ep.tcp.client->ReplicationStatus();
      if (status.ok() && status->GetInt("appliedSeq", 0) >= head) break;
      if (NowWallMillis() >= deadline) {
        return Status::DeadlineExceeded(
            "follower '" + ep.spec + "' still behind (appliedSeq " +
            std::to_string(status.ok() ? status->GetInt("appliedSeq", 0)
                                       : -1) +
            " < leader headSeq " + std::to_string(head) + ") after " +
            std::to_string(timeout_ms) + " ms");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return Status::Ok();
}

std::vector<std::string> ReplicaSetClient::endpoint_specs() const {
  std::vector<std::string> specs;
  specs.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) specs.push_back(ep->spec);
  return specs;
}

}  // namespace laminar::client
