// Client-side search fan-out over a replica set (ISSUE 9's read-scaling
// half): one leader connection for writes plus any number of follower
// connections for reads.
//
// Routing policy:
//  * Writes (and /execute) always go to the leader — followers answer them
//    with HTTP 421, which the client maps to kUnavailable.
//  * Reads pick the endpoint with the fewest in-flight requests (followers
//    and, when `read_from_leader` is set, the leader too). Least-inflight
//    beats round-robin here because follower latencies diverge under load —
//    a slow replica accumulates in-flight requests and automatically stops
//    being picked.
//  * A read failing with kUnavailable (replica refused: stale beyond the
//    staleness contract, mid-bootstrap, or connection lost) marks that
//    endpoint unhealthy for a cooldown and retries once on the leader, so
//    callers see follower failover as latency, not errors.
//
// Thread-safe for concurrent Read() calls: each endpoint's LaminarClient
// serializes on its own HttpConnection, and the picker state is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/connect.hpp"

namespace laminar::client {

struct ReplicaSetOptions {
  /// Also serve reads from the leader (it is a valid read endpoint; turning
  /// this off dedicates the leader to writes + failover retries only).
  bool read_from_leader = false;
  /// How long a failed endpoint is skipped by the read picker.
  int unhealthy_cooldown_ms = 1000;
  /// Connect retry budget while dialing endpoints (spawn races).
  net::TcpConnectOptions connect;
};

class ReplicaSetClient {
 public:
  /// Dials the leader and every follower. Fails if the LEADER is
  /// unreachable; unreachable followers are skipped with a warning (the set
  /// degrades to fewer read endpoints, never to an error).
  static Result<std::unique_ptr<ReplicaSetClient>> Connect(
      const std::string& leader_spec,
      const std::vector<std::string>& follower_specs,
      ReplicaSetOptions options = {});

  /// The leader's client — use for every mutation and /execute.
  LaminarClient& leader() { return *endpoints_[0]->tcp.client; }

  /// Runs `op` against the least-inflight healthy read endpoint. If it
  /// fails with kUnavailable (stale/bootstrapping/refusing replica, dead
  /// connection), the endpoint is put on cooldown and the op is retried
  /// once on the leader.
  template <typename T>
  Result<T> Read(const std::function<Result<T>(LaminarClient&)>& op) {
    Endpoint* picked = PickRead();
    if (picked != nullptr) {
      picked->inflight.fetch_add(1, std::memory_order_relaxed);
      Result<T> result = op(*picked->tcp.client);
      picked->inflight.fetch_sub(1, std::memory_order_relaxed);
      if (result.ok() ||
          result.status().code() != StatusCode::kUnavailable) {
        return result;
      }
      MarkUnhealthy(*picked);
    }
    // Failover (or no healthy follower at all): the leader always has the
    // freshest data and never refuses a read.
    Endpoint& leader_ep = *endpoints_[0];
    leader_ep.inflight.fetch_add(1, std::memory_order_relaxed);
    Result<T> result = op(*leader_ep.tcp.client);
    leader_ep.inflight.fetch_sub(1, std::memory_order_relaxed);
    return result;
  }

  /// Polls every follower's /replication/status until each reports
  /// appliedSeq >= the leader's current head (or the deadline passes).
  /// Benches and tests use it to quiesce before a parity check.
  Status WaitForCatchUp(int timeout_ms);

  size_t follower_count() const { return endpoints_.size() - 1; }
  /// Endpoint spec strings, leader first (for logs/reports).
  std::vector<std::string> endpoint_specs() const;

 private:
  struct Endpoint {
    std::string spec;
    bool is_leader = false;
    TcpClient tcp;
    std::atomic<int> inflight{0};
    /// Wall-clock ms until which the read picker skips this endpoint.
    std::atomic<int64_t> unhealthy_until_ms{0};
  };

  explicit ReplicaSetClient(ReplicaSetOptions options)
      : options_(options) {}

  /// Least-inflight healthy read endpoint; null when none qualifies.
  Endpoint* PickRead();
  void MarkUnhealthy(Endpoint& endpoint);

  ReplicaSetOptions options_;
  /// endpoints_[0] is always the leader; the rest are followers.
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace laminar::client
