#include "client/client.hpp"

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "engine/resource_cache.hpp"

namespace laminar::client {
namespace {

constexpr std::string_view kEndMarker = "##END## ";

PeInfo PeFromJson(const Value& v) {
  PeInfo pe;
  pe.id = v.GetInt("peId");
  pe.name = v.GetString("peName");
  pe.description = v.GetString("description");
  pe.code = v.GetString("code");
  return pe;
}

WorkflowInfo WorkflowFromJson(const Value& v) {
  WorkflowInfo wf;
  wf.id = v.GetInt("workflowId");
  wf.name = v.GetString("workflowName");
  wf.description = v.GetString("description");
  wf.code = v.GetString("code");
  return wf;
}

std::vector<SearchHit> HitsFromJson(const Value& v) {
  std::vector<SearchHit> hits;
  for (const Value& h : v.at("hits").as_array()) {
    SearchHit hit;
    hit.id = h.GetInt("id");
    hit.name = h.GetString("name");
    hit.description = h.GetString("description");
    hit.score = h.GetDouble("score");
    hit.similar_code = h.GetString("similarCode");
    hit.occurrences = h.GetInt("occurrences");
    hits.push_back(std::move(hit));
  }
  return hits;
}

Status HttpError(int status, const Value& body) {
  std::string msg = body.GetString("error", "HTTP " + std::to_string(status));
  switch (status) {
    case 400: return Status::InvalidArgument(msg);
    case 401: return Status::PermissionDenied(msg);
    case 404: return Status::NotFound(msg);
    case 409: return Status::AlreadyExists(msg);
    case 428: return Status::FailedPrecondition(msg);
    case 408: return Status::DeadlineExceeded(msg);
    case 429: return Status::ResourceExhausted(msg);
    // 421 (misdirected: a read replica refusing a mutation) maps to the
    // same retriable code as 503 so fan-out callers handle "wrong node"
    // and "stale node" identically: fail over to the leader.
    case 421: return Status::Unavailable(msg);
    case 503: return Status::Unavailable(msg);
    default: return Status::Internal(msg);
  }
}

}  // namespace

LaminarClient::LaminarClient(std::shared_ptr<net::HttpConnection> connection)
    : conn_(std::move(connection)) {}

Result<Value> LaminarClient::CallJson(const std::string& path,
                                      const Value& body, int* http_status) {
  net::HttpRequest req;
  req.path = path;
  req.body = body.ToJson();
  if (!token_.empty()) req.headers["authorization"] = token_;
  if (!tenant_.empty()) req.headers["x-laminar-tenant"] = tenant_;
  Result<std::pair<int, std::string>> resp = conn_->Call(req);
  if (!resp.ok()) return resp.status();
  if (http_status != nullptr) *http_status = resp->first;
  Result<Value> parsed = resp->second.empty()
                             ? Result<Value>(Value::MakeObject())
                             : json::Parse(resp->second);
  if (!parsed.ok()) return parsed.status();
  if (resp->first != 200) return HttpError(resp->first, parsed.value());
  return parsed;
}

Result<int64_t> LaminarClient::Register(const std::string& user_name,
                                        const std::string& password) {
  Value body = Value::MakeObject();
  body["userName"] = user_name;
  body["password"] = password;
  Result<Value> resp = CallJson("/users/register", body);
  if (!resp.ok()) return resp.status();
  return resp->GetInt("userId");
}

Status LaminarClient::Login(const std::string& user_name,
                            const std::string& password) {
  Value body = Value::MakeObject();
  body["userName"] = user_name;
  body["password"] = password;
  Result<Value> resp = CallJson("/users/login", body);
  if (!resp.ok()) return resp.status();
  token_ = resp->GetString("token");
  return Status::Ok();
}

Result<PeInfo> LaminarClient::RegisterPe(const std::string& code,
                                         const std::string& name,
                                         const std::string& description) {
  Value body = Value::MakeObject();
  body["code"] = code;
  if (!name.empty()) body["name"] = name;
  if (!description.empty()) body["description"] = description;
  Result<Value> resp = CallJson("/pes/register", body);
  if (!resp.ok()) return resp.status();
  return PeFromJson(resp.value());
}

Result<WorkflowInfo> LaminarClient::RegisterWorkflow(
    const std::string& name, const Value& spec,
    const std::vector<PeSource>& pes, const std::string& code,
    const std::string& description) {
  Value body = Value::MakeObject();
  body["name"] = name;
  body["spec"] = spec;
  if (!code.empty()) body["code"] = code;
  if (!description.empty()) body["description"] = description;
  Value pe_arr = Value::MakeArray();
  for (const PeSource& pe : pes) {
    Value p = Value::MakeObject();
    p["code"] = pe.code;
    if (!pe.name.empty()) p["name"] = pe.name;
    if (!pe.description.empty()) p["description"] = pe.description;
    pe_arr.push_back(std::move(p));
  }
  body["pes"] = std::move(pe_arr);
  Result<Value> resp = CallJson("/workflows/register", body);
  if (!resp.ok()) return resp.status();
  WorkflowInfo wf;
  wf.id = resp->GetInt("workflowId");
  wf.name = name;
  for (const Value& id : resp->at("peIds").as_array()) {
    wf.pe_ids.push_back(id.as_int());
  }
  return wf;
}

Result<std::vector<int64_t>> LaminarClient::BulkRegisterPes(
    const std::vector<PeSource>& pes) {
  Value body = Value::MakeObject();
  Value pe_arr = Value::MakeArray();
  for (const PeSource& pe : pes) {
    Value p = Value::MakeObject();
    p["code"] = pe.code;
    if (!pe.name.empty()) p["name"] = pe.name;
    if (!pe.description.empty()) p["description"] = pe.description;
    pe_arr.push_back(std::move(p));
  }
  body["pes"] = std::move(pe_arr);
  Result<Value> resp = CallJson("/registry/bulk_register", body);
  if (!resp.ok()) return resp.status();
  std::vector<int64_t> ids;
  for (const Value& id : resp->at("peIds").as_array()) {
    ids.push_back(id.as_int());
  }
  if (ids.empty() && !pes.empty()) {
    return Status::InvalidArgument("bulk registration rejected every PE");
  }
  return ids;
}

Result<PeInfo> LaminarClient::GetPe(int64_t id) {
  Value body = Value::MakeObject();
  body["id"] = id;
  Result<Value> resp = CallJson("/pes/get", body);
  if (!resp.ok()) return resp.status();
  return PeFromJson(resp.value());
}

Result<PeInfo> LaminarClient::GetPeByName(const std::string& name) {
  Value body = Value::MakeObject();
  body["name"] = name;
  Result<Value> resp = CallJson("/pes/get", body);
  if (!resp.ok()) return resp.status();
  return PeFromJson(resp.value());
}

Result<WorkflowInfo> LaminarClient::GetWorkflow(int64_t id) {
  Value body = Value::MakeObject();
  body["id"] = id;
  Result<Value> resp = CallJson("/workflows/get", body);
  if (!resp.ok()) return resp.status();
  return WorkflowFromJson(resp.value());
}

Result<WorkflowInfo> LaminarClient::GetWorkflowByName(const std::string& name) {
  Value body = Value::MakeObject();
  body["name"] = name;
  Result<Value> resp = CallJson("/workflows/get", body);
  if (!resp.ok()) return resp.status();
  return WorkflowFromJson(resp.value());
}

Result<std::vector<PeInfo>> LaminarClient::GetPesByWorkflow(
    int64_t workflow_id) {
  Value body = Value::MakeObject();
  body["id"] = workflow_id;
  Result<Value> resp = CallJson("/workflows/pes", body);
  if (!resp.ok()) return resp.status();
  std::vector<PeInfo> pes;
  for (const Value& p : resp->at("pes").as_array()) {
    pes.push_back(PeFromJson(p));
  }
  return pes;
}

Result<Value> LaminarClient::GetExecutions(int64_t workflow_id) {
  Value body = Value::MakeObject();
  body["id"] = workflow_id;
  return CallJson("/workflows/executions", body);
}

Result<std::pair<std::vector<PeInfo>, std::vector<WorkflowInfo>>>
LaminarClient::GetRegistry() {
  Result<Value> resp = CallJson("/registry/list", Value::MakeObject());
  if (!resp.ok()) return resp.status();
  std::vector<PeInfo> pes;
  for (const Value& p : resp->at("pes").as_array()) pes.push_back(PeFromJson(p));
  std::vector<WorkflowInfo> wfs;
  for (const Value& w : resp->at("workflows").as_array()) {
    wfs.push_back(WorkflowFromJson(w));
  }
  return std::make_pair(std::move(pes), std::move(wfs));
}

Status LaminarClient::UpdatePeDescription(int64_t id,
                                          const std::string& description) {
  Value body = Value::MakeObject();
  body["id"] = id;
  body["description"] = description;
  return CallJson("/pes/update_description", body).status();
}

Status LaminarClient::UpdateWorkflowDescription(
    int64_t id, const std::string& description) {
  Value body = Value::MakeObject();
  body["id"] = id;
  body["description"] = description;
  return CallJson("/workflows/update_description", body).status();
}

Status LaminarClient::RemovePe(int64_t id) {
  Value body = Value::MakeObject();
  body["id"] = id;
  return CallJson("/pes/remove", body).status();
}

Status LaminarClient::RemoveWorkflow(int64_t id) {
  Value body = Value::MakeObject();
  body["id"] = id;
  return CallJson("/workflows/remove", body).status();
}

Status LaminarClient::RemoveAll() {
  return CallJson("/registry/remove_all", Value::MakeObject()).status();
}

Result<std::vector<SearchHit>> LaminarClient::SearchRegistryLiteral(
    const std::string& term, const std::string& target, size_t limit) {
  Value body = Value::MakeObject();
  body["term"] = term;
  body["target"] = target;
  if (limit != 0) body["limit"] = static_cast<int64_t>(limit);
  Result<Value> resp = CallJson("/search/literal", body);
  if (!resp.ok()) return resp.status();
  return HitsFromJson(resp.value());
}

Result<std::vector<SearchHit>> LaminarClient::SearchRegistrySemantic(
    const std::string& query, const std::string& target, size_t limit) {
  Value body = Value::MakeObject();
  body["query"] = query;
  body["target"] = target;
  if (limit != 0) body["limit"] = static_cast<int64_t>(limit);
  Result<Value> resp = CallJson("/search/semantic", body);
  if (!resp.ok()) return resp.status();
  return HitsFromJson(resp.value());
}

Result<std::vector<SearchHit>> LaminarClient::CodeRecommendation(
    const std::string& code, const std::string& target,
    const std::string& embedding_type, size_t limit) {
  Value body = Value::MakeObject();
  body["code"] = code;
  body["target"] = target;
  body["embedding_type"] = embedding_type;
  if (limit != 0) body["limit"] = static_cast<int64_t>(limit);
  Result<Value> resp = CallJson("/search/code", body);
  if (!resp.ok()) return resp.status();
  return HitsFromJson(resp.value());
}

Result<std::vector<SearchHit>> LaminarClient::CompleteCode(
    const std::string& partial_code, size_t limit) {
  Value body = Value::MakeObject();
  body["code"] = partial_code;
  body["limit"] = static_cast<int64_t>(limit);
  Result<Value> resp = CallJson("/search/complete", body);
  if (!resp.ok()) return resp.status();
  std::vector<SearchHit> hits;
  for (const Value& c : resp->at("completions").as_array()) {
    SearchHit hit;
    hit.id = c.GetInt("id");
    hit.name = c.GetString("name");
    hit.score = c.GetDouble("score");
    hit.similar_code = c.GetString("continuation");
    hits.push_back(std::move(hit));
  }
  return hits;
}

Status LaminarClient::SaveRegistry(const std::string& path) {
  Value body = Value::MakeObject();
  body["path"] = path;
  return CallJson("/registry/save", body).status();
}

Status LaminarClient::LoadRegistry(const std::string& path) {
  Value body = Value::MakeObject();
  body["path"] = path;
  return CallJson("/registry/load", body).status();
}

Result<Value> LaminarClient::GetStats() {
  return CallJson("/stats", Value::MakeObject());
}

Result<Value> LaminarClient::ReplicationStatus() {
  return CallJson("/replication/status", Value::MakeObject());
}

Result<std::string> LaminarClient::GetMetrics() {
  net::HttpRequest req;
  req.path = "/metrics";
  if (!token_.empty()) req.headers["authorization"] = token_;
  if (!tenant_.empty()) req.headers["x-laminar-tenant"] = tenant_;
  Result<std::pair<int, std::string>> resp = conn_->Call(req);
  if (!resp.ok()) return resp.status();
  if (resp->first != 200) {
    return Status::Internal("metrics scrape failed: HTTP " +
                            std::to_string(resp->first));
  }
  return resp->second;
}

Status LaminarClient::UploadResources(const std::vector<Resource>& resources) {
  std::vector<net::FilePart> parts;
  parts.reserve(resources.size());
  for (const Resource& r : resources) {
    parts.push_back(net::FilePart{r.name, r.content});
  }
  net::HttpRequest req;
  req.path = "/resources/upload";
  req.body = net::EncodeMultipart(parts);
  if (!tenant_.empty()) req.headers["x-laminar-tenant"] = tenant_;
  Result<std::pair<int, std::string>> resp = conn_->Call(req);
  if (!resp.ok()) return resp.status();
  if (resp->first != 200) {
    return Status::Internal("resource upload failed: HTTP " +
                            std::to_string(resp->first));
  }
  return Status::Ok();
}

RunOutcome LaminarClient::RunInternal(Value request_body,
                                      const LineCallback& on_line,
                                      const std::vector<Resource>& resources) {
  RunOutcome outcome;
  // §IV-F: attach content-hash refs so the engine can answer from cache.
  Value refs = Value::MakeArray();
  for (const Resource& r : resources) {
    Value ref = Value::MakeObject();
    ref["name"] = r.name;
    ref["hash"] =
        static_cast<int64_t>(engine::HashResourceContent(r.content));
    refs.push_back(std::move(ref));
  }
  request_body["resources"] = std::move(refs);

  for (int attempt = 0; attempt < 2; ++attempt) {
    Stopwatch watch;
    net::HttpRequest req;
    req.path = "/execute";
    req.body = request_body.ToJson();
    if (!token_.empty()) req.headers["authorization"] = token_;
    if (!tenant_.empty()) req.headers["x-laminar-tenant"] = tenant_;
    std::shared_ptr<net::ResponseStream> stream = conn_->Send(req);

    outcome.lines.clear();
    outcome.first_line_ms = -1.0;
    std::string carry;
    std::string end_record;
    while (auto chunk = stream->NextChunk()) {
      carry += *chunk;
      size_t pos;
      while ((pos = carry.find('\n')) != std::string::npos) {
        std::string line = carry.substr(0, pos);
        carry.erase(0, pos + 1);
        if (strings::StartsWith(line, kEndMarker)) {
          end_record = line.substr(kEndMarker.size());
          continue;
        }
        if (outcome.first_line_ms < 0) {
          outcome.first_line_ms = watch.ElapsedMillis();
        }
        if (on_line) on_line(line);
        outcome.lines.push_back(std::move(line));
      }
    }
    if (!carry.empty()) {
      if (strings::StartsWith(carry, kEndMarker)) {
        end_record = carry.substr(kEndMarker.size());
      } else {
        if (outcome.first_line_ms < 0) {
          outcome.first_line_ms = watch.ElapsedMillis();
        }
        if (on_line) on_line(carry);
        outcome.lines.push_back(carry);
      }
    }
    outcome.total_ms = watch.ElapsedMillis();
    int status = stream->status();

    if (status == 428 && attempt == 0) {
      // Engine wants resources: upload exactly what it asked for, retry.
      Result<Value> missing = json::Parse(
          outcome.lines.empty() ? end_record
                                : strings::Join(outcome.lines, ""));
      std::vector<Resource> to_upload;
      if (missing.ok()) {
        for (const Value& m : missing->at("missing").as_array()) {
          std::string name = m.GetString("name");
          for (const Resource& r : resources) {
            if (r.name == name) to_upload.push_back(r);
          }
        }
      }
      if (to_upload.empty()) to_upload = resources;
      Status up = UploadResources(to_upload);
      if (!up.ok()) {
        outcome.status = up;
        return outcome;
      }
      continue;  // retry the run
    }

    if (!end_record.empty()) {
      Result<Value> stats = json::Parse(end_record);
      if (stats.ok()) outcome.stats = std::move(stats.value());
    }
    if (status == 200) {
      outcome.status = Status::Ok();
    } else {
      // Error bodies for pre-run refusals (400 validation, 429 admission,
      // 408 queue deadline) arrive as a single unterminated JSON chunk, so
      // they land in `lines` rather than the ##END## record. Parse them so
      // the Status carries the server's message (e.g. the offending run
      // option's field name, or the retryAfterMs hint).
      Value err_body = outcome.stats.is_object() ? outcome.stats
                                                 : Value::MakeObject();
      if (!err_body.contains("error") && !outcome.lines.empty()) {
        Result<Value> parsed = json::Parse(strings::Join(outcome.lines, ""));
        if (parsed.ok() && parsed->is_object()) {
          err_body = std::move(parsed.value());
          outcome.stats = err_body;
        }
      }
      outcome.status = HttpError(status, err_body);
    }
    return outcome;
  }
  outcome.status = Status::Internal("resource negotiation did not converge");
  return outcome;
}

RunOutcome LaminarClient::Run(int64_t workflow_id, const Value& input,
                              const LineCallback& on_line,
                              const std::vector<Resource>& resources,
                              bool verbose) {
  Value body = Value::MakeObject();
  body["workflowId"] = workflow_id;
  body["mapping"] = "simple";
  body["input"] = input;
  body["verbose"] = verbose;
  return RunInternal(std::move(body), on_line, resources);
}

RunOutcome LaminarClient::RunMultiprocess(
    int64_t workflow_id, const Value& input, int processes,
    const LineCallback& on_line, const std::vector<Resource>& resources,
    bool verbose) {
  Value body = Value::MakeObject();
  body["workflowId"] = workflow_id;
  body["mapping"] = "multi";
  body["input"] = input;
  body["processes"] = processes;
  body["verbose"] = verbose;
  return RunInternal(std::move(body), on_line, resources);
}

RunOutcome LaminarClient::RunDynamic(int64_t workflow_id, const Value& input,
                                     const LineCallback& on_line,
                                     const std::vector<Resource>& resources,
                                     bool verbose) {
  // Listing 3 of the paper: all broker/process parameters are defaulted by
  // the engine configuration; the call needs only the workflow and input.
  Value body = Value::MakeObject();
  body["workflowId"] = workflow_id;
  body["mapping"] = "dynamic";
  body["input"] = input;
  body["verbose"] = verbose;
  return RunInternal(std::move(body), on_line, resources);
}

RunOutcome LaminarClient::RunSpec(const Value& spec, const std::string& mapping,
                                  const Value& input, int processes,
                                  const LineCallback& on_line,
                                  const std::vector<Resource>& resources,
                                  bool verbose) {
  Value body = Value::MakeObject();
  body["spec"] = spec;
  body["mapping"] = mapping;
  body["input"] = input;
  body["processes"] = processes;
  body["verbose"] = verbose;
  return RunInternal(std::move(body), on_line, resources);
}

RunOutcome LaminarClient::RunRaw(Value request_body,
                                 const LineCallback& on_line,
                                 const std::vector<Resource>& resources) {
  return RunInternal(std::move(request_body), on_line, resources);
}

}  // namespace laminar::client
