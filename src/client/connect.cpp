#include "client/connect.hpp"

namespace laminar::client {

InProcessLaminar ConnectInProcess(server::ServerConfig config,
                                  net::HttpConnection::Mode mode) {
  InProcessLaminar out;
  out.server = std::make_unique<server::LaminarServer>(std::move(config));
  net::DuplexPipe pipe = net::CreatePipe();
  out.server_side = std::make_unique<net::HttpConnection>(
      std::move(pipe.first), mode, out.server->HandlerFn());
  out.client_side = std::make_shared<net::HttpConnection>(
      std::move(pipe.second), mode);
  out.client = std::make_unique<LaminarClient>(out.client_side);
  return out;
}

ExtraClient AttachClient(server::LaminarServer& server,
                         net::HttpConnection::Mode mode) {
  ExtraClient out;
  net::DuplexPipe pipe = net::CreatePipe();
  out.server_side = std::make_unique<net::HttpConnection>(
      std::move(pipe.first), mode, server.HandlerFn());
  out.client_side = std::make_shared<net::HttpConnection>(
      std::move(pipe.second), mode);
  out.client = std::make_unique<LaminarClient>(out.client_side);
  return out;
}

}  // namespace laminar::client
