#include "client/connect.hpp"

namespace laminar::client {

InProcessLaminar ConnectInProcess(server::ServerConfig config,
                                  net::HttpConnection::Mode mode) {
  InProcessLaminar out;
  out.server = std::make_unique<server::LaminarServer>(std::move(config));
  net::DuplexPipe pipe = net::CreatePipe();
  out.server_side = std::make_unique<net::HttpConnection>(
      std::move(pipe.first), mode, out.server->HandlerFn());
  out.client_side = std::make_shared<net::HttpConnection>(
      std::move(pipe.second), mode);
  out.client = std::make_unique<LaminarClient>(out.client_side);
  return out;
}

ExtraClient AttachClient(server::LaminarServer& server,
                         net::HttpConnection::Mode mode) {
  ExtraClient out;
  net::DuplexPipe pipe = net::CreatePipe();
  out.server_side = std::make_unique<net::HttpConnection>(
      std::move(pipe.first), mode, server.HandlerFn());
  out.client_side = std::make_shared<net::HttpConnection>(
      std::move(pipe.second), mode);
  out.client = std::make_unique<LaminarClient>(out.client_side);
  return out;
}

Result<TcpLaminarServer> ServeTcp(server::ServerConfig config,
                                  net::TcpListenerConfig listener) {
  TcpLaminarServer out;
  out.server = std::make_unique<server::LaminarServer>(std::move(config));
  out.listener = std::make_unique<net::TcpListener>(std::move(listener),
                                                    out.server->HandlerFn());
  Status st = out.listener->Start();
  if (!st.ok()) return st;
  return out;
}

Result<TcpClient> ConnectTcp(const std::string& host, uint16_t port,
                             net::HttpConnection::Mode mode) {
  Result<std::unique_ptr<net::ByteStream>> stream =
      net::TcpConnect(host, port);
  if (!stream.ok()) return stream.status();
  TcpClient out;
  out.connection = std::make_shared<net::HttpConnection>(
      std::move(stream.value()), mode);
  out.client = std::make_unique<LaminarClient>(out.connection);
  return out;
}

Result<TcpClient> ConnectTcp(const std::string& host_port,
                             net::HttpConnection::Mode mode) {
  Result<std::pair<std::string, uint16_t>> parsed =
      net::ParseHostPort(host_port);
  if (!parsed.ok()) return parsed.status();
  return ConnectTcp(parsed->first, parsed->second, mode);
}

Result<TcpClient> ConnectTcp(const std::string& host_port,
                             const net::TcpConnectOptions& options,
                             net::HttpConnection::Mode mode) {
  Result<std::pair<std::string, uint16_t>> parsed =
      net::ParseHostPort(host_port);
  if (!parsed.ok()) return parsed.status();
  Result<std::unique_ptr<net::ByteStream>> stream =
      net::TcpConnect(parsed->first, parsed->second, options);
  if (!stream.ok()) return stream.status();
  TcpClient out;
  out.connection = std::make_shared<net::HttpConnection>(
      std::move(stream.value()), mode);
  out.client = std::make_unique<LaminarClient>(out.connection);
  return out;
}

}  // namespace laminar::client
