#include "client/demo_workflows.hpp"

namespace laminar::client {
namespace {

Value MakePe(const char* name, const char* type, Value params) {
  Value pe = Value::MakeObject();
  pe["name"] = name;
  pe["type"] = type;
  pe["params"] = std::move(params);
  return pe;
}

Value MakeEdge(const char* from, const char* to,
               const char* grouping = "shuffle", const char* key = "") {
  Value edge = Value::MakeObject();
  edge["from"] = from;
  edge["to"] = to;
  edge["grouping"] = grouping;
  if (key[0] != '\0') edge["key"] = key;
  return edge;
}

DemoWorkflow MakeIsPrime() {
  DemoWorkflow wf;
  wf.name = "isprime_wf";
  wf.file_name = "isprime_wf.py";
  Value spec = Value::MakeObject();
  spec["name"] = "isprime_wf";
  Value pes = Value::MakeArray();
  Value producer_params = Value::MakeObject();
  producer_params["seed"] = 42;
  producer_params["lo"] = 1;
  producer_params["hi"] = 1000;
  pes.push_back(MakePe("NumberProducer", "NumberProducer",
                       std::move(producer_params)));
  pes.push_back(MakePe("IsPrime", "IsPrime", Value::MakeObject()));
  pes.push_back(MakePe("PrintPrime", "PrintPrime", Value::MakeObject()));
  spec["pes"] = std::move(pes);
  Value edges = Value::MakeArray();
  edges.push_back(MakeEdge("NumberProducer", "IsPrime"));
  edges.push_back(MakeEdge("IsPrime", "PrintPrime"));
  spec["edges"] = std::move(edges);
  wf.spec = std::move(spec);

  // Listing 1 of the paper, verbatim PE sources.
  wf.pes.push_back(PeSource{
      "class NumberProducer(ProducerPE):\n"
      "    \"\"\"The number producer class. Generates random numbers.\"\"\"\n"
      "    def __init__(self):\n"
      "        ProducerPE.__init__(self)\n"
      "    def _process(self, inputs):\n"
      "        return random.randint(1, 1000)\n",
      "NumberProducer", ""});
  wf.pes.push_back(PeSource{
      "class IsPrime(IterativePE):\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "    def _process(self, num):\n"
      "        # this PE consumes one input and produces one output\n"
      "        if all(num % i != 0 for i in range(2, num)):\n"
      "            return num\n",
      "IsPrime", ""});
  wf.pes.push_back(PeSource{
      "class PrintPrime(ConsumerPE):\n"
      "    def __init__(self):\n"
      "        ConsumerPE.__init__(self)\n"
      "    def _process(self, num):\n"
      "        print('the num %s is prime' % num)\n",
      "PrintPrime", ""});
  wf.code =
      "import random\n"
      "from dispel4py.workflow_graph import WorkflowGraph\n"
      "\n"
      "producer = NumberProducer()\n"
      "isprime = IsPrime()\n"
      "printer = PrintPrime()\n"
      "graph = WorkflowGraph()\n"
      "graph.connect(producer, 'output', isprime, 'input')\n"
      "graph.connect(isprime, 'output', printer, 'input')\n";
  return wf;
}

DemoWorkflow MakeWordCount() {
  DemoWorkflow wf;
  wf.name = "wordcount_wf";
  wf.file_name = "wordcount_wf.py";
  Value spec = Value::MakeObject();
  spec["name"] = "wordcount_wf";
  Value pes = Value::MakeArray();
  Value lines = Value::MakeObject();
  Value line_arr = Value::MakeArray();
  line_arr.push_back("the quick brown fox jumps over the lazy dog");
  line_arr.push_back("the fox and the dog became friends");
  line_arr.push_back("streams of words flow through the workflow");
  lines["lines"] = std::move(line_arr);
  pes.push_back(MakePe("LineProducer", "LineProducer", std::move(lines)));
  pes.push_back(MakePe("Tokenizer", "Tokenizer", Value::MakeObject()));
  pes.push_back(MakePe("WordCounter", "WordCounter", Value::MakeObject()));
  pes.push_back(MakePe("CountPrinter", "CountPrinter", Value::MakeObject()));
  spec["pes"] = std::move(pes);
  Value edges = Value::MakeArray();
  edges.push_back(MakeEdge("LineProducer", "Tokenizer"));
  edges.push_back(MakeEdge("Tokenizer", "WordCounter", "group_by", "word"));
  edges.push_back(MakeEdge("WordCounter", "CountPrinter", "all_to_one"));
  spec["edges"] = std::move(edges);
  wf.spec = std::move(spec);

  wf.pes.push_back(PeSource{
      "class Tokenizer(IterativePE):\n"
      "    \"\"\"Splits text lines into lowercase word tuples.\"\"\"\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "    def _process(self, line):\n"
      "        for word in line.lower().split():\n"
      "            self.write('output', {'word': word})\n",
      "Tokenizer", ""});
  wf.pes.push_back(PeSource{
      "class WordCounter(IterativePE):\n"
      "    \"\"\"Counts word frequencies in a stream of word tuples.\"\"\"\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "        self.counts = {}\n"
      "    def _process(self, item):\n"
      "        word = item['word']\n"
      "        self.counts[word] = self.counts.get(word, 0) + 1\n",
      "WordCounter", ""});
  wf.code =
      "from dispel4py.workflow_graph import WorkflowGraph\n"
      "graph = WorkflowGraph()\n";
  return wf;
}

DemoWorkflow MakeAnomaly() {
  DemoWorkflow wf;
  wf.name = "anomaly_wf";
  wf.file_name = "anomaly_wf.py";
  Value spec = Value::MakeObject();
  spec["name"] = "anomaly_wf";
  Value pes = Value::MakeArray();
  Value sensor = Value::MakeObject();
  sensor["seed"] = 7;
  sensor["anomaly_rate"] = 0.05;
  pes.push_back(MakePe("SensorProducer", "SensorProducer", std::move(sensor)));
  Value norm = Value::MakeObject();
  norm["min"] = -20.0;
  norm["max"] = 60.0;
  pes.push_back(MakePe("NormalizeData", "NormalizeData", std::move(norm)));
  Value det = Value::MakeObject();
  det["threshold"] = 3.0;
  det["window"] = 64;
  pes.push_back(MakePe("AnomalyDetector", "AnomalyDetector", std::move(det)));
  pes.push_back(MakePe("Alerter", "Alerter", Value::MakeObject()));
  spec["pes"] = std::move(pes);
  Value edges = Value::MakeArray();
  edges.push_back(MakeEdge("SensorProducer", "NormalizeData"));
  edges.push_back(MakeEdge("NormalizeData", "AnomalyDetector", "all_to_one"));
  edges.push_back(MakeEdge("AnomalyDetector", "Alerter"));
  spec["edges"] = std::move(edges);
  wf.spec = std::move(spec);

  wf.pes.push_back(PeSource{
      "class AnomalyDetectionPE(IterativePE):\n"
      "    \"\"\"Anomaly detection PE. Flags readings whose z score exceeds a "
      "threshold.\"\"\"\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "        self.window = []\n"
      "    def _process(self, reading):\n"
      "        value = reading['temperature']\n"
      "        if len(self.window) >= 8:\n"
      "            mean = sum(self.window) / len(self.window)\n"
      "            var = sum((x - mean) ** 2 for x in self.window) / "
      "len(self.window)\n"
      "            z = (value - mean) / (var ** 0.5 + 1e-9)\n"
      "            if abs(z) > 3.0:\n"
      "                return reading\n"
      "        self.window.append(value)\n",
      "AnomalyDetectionPE", ""});
  wf.pes.push_back(PeSource{
      "class AlertingPE(ConsumerPE):\n"
      "    \"\"\"AlertingPE class. Prints alerts for anomalous readings.\"\"\"\n"
      "    def __init__(self):\n"
      "        ConsumerPE.__init__(self)\n"
      "    def _process(self, reading):\n"
      "        print('ALERT %s' % reading)\n",
      "AlertingPE", ""});
  wf.pes.push_back(PeSource{
      "class NormalizeDataPE(IterativePE):\n"
      "    \"\"\"This pe normalizes the temperature of a record to the unit "
      "range.\"\"\"\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "    def _process(self, reading):\n"
      "        t = reading['temperature']\n"
      "        reading['normalized'] = (t - (-20.0)) / (60.0 - (-20.0))\n"
      "        return reading\n",
      "NormalizeDataPE", ""});
  wf.pes.push_back(PeSource{
      "class AggregateDataPE(IterativePE):\n"
      "    \"\"\"AggregateDataPE - Aggregate data from a sequence of readings "
      "into summary statistics.\"\"\"\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "        self.count = 0\n"
      "        self.total = 0.0\n"
      "    def _process(self, reading):\n"
      "        self.count = self.count + 1\n"
      "        self.total = self.total + reading['temperature']\n",
      "AggregateDataPE", ""});
  wf.code =
      "from dispel4py.workflow_graph import WorkflowGraph\n"
      "graph = WorkflowGraph()\n";
  return wf;
}

}  // namespace

const std::vector<DemoWorkflow>& DemoWorkflows() {
  static const std::vector<DemoWorkflow> kDemos = {
      MakeIsPrime(), MakeWordCount(), MakeAnomaly()};
  return kDemos;
}

const DemoWorkflow* FindDemoWorkflow(const std::string& name_or_file) {
  for (const DemoWorkflow& wf : DemoWorkflows()) {
    if (wf.name == name_or_file || wf.file_name == name_or_file) return &wf;
  }
  return nullptr;
}

}  // namespace laminar::client
