// Wiring helpers: stand up a LaminarServer and a LaminarClient over an
// in-memory duplex pipe in one call — the standard harness for examples,
// tests and benches — plus the TCP equivalents (ServeTcp / ConnectTcp) that
// run the same protocol over real sockets and across processes.
#pragma once

#include <memory>
#include <string>

#include "client/client.hpp"
#include "net/tcp.hpp"
#include "server/server.hpp"

namespace laminar::client {

struct InProcessLaminar {
  std::unique_ptr<server::LaminarServer> server;
  /// Server-side connection endpoint (owns the handler binding).
  std::unique_ptr<net::HttpConnection> server_side;
  /// Client-side connection endpoint, shared with `client`.
  std::shared_ptr<net::HttpConnection> client_side;
  std::unique_ptr<LaminarClient> client;
};

/// Creates server + pipe + client. `mode` selects the transport behaviour on
/// BOTH ends: kStreaming = Laminar 2.0, kBatch = the 1.0 baseline.
InProcessLaminar ConnectInProcess(
    server::ServerConfig config = {},
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

/// Attaches one more client connection to an existing server (multi-client
/// scenarios). The returned connection pair must outlive the client.
struct ExtraClient {
  std::unique_ptr<net::HttpConnection> server_side;
  std::shared_ptr<net::HttpConnection> client_side;
  std::unique_ptr<LaminarClient> client;
};
ExtraClient AttachClient(
    server::LaminarServer& server,
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

/// A LaminarServer listening on a real TCP port (the laminar_serve harness
/// and the TCP side of the transport-parity tests).
struct TcpLaminarServer {
  std::unique_ptr<server::LaminarServer> server;
  std::unique_ptr<net::TcpListener> listener;
  uint16_t port() const { return listener->port(); }
};

/// Stands the server up behind an epoll TCP listener. `listener.port = 0`
/// binds an ephemeral port (read it back from the result).
Result<TcpLaminarServer> ServeTcp(server::ServerConfig config = {},
                                  net::TcpListenerConfig listener = {});

/// A client connected to a (possibly remote) server over TCP.
struct TcpClient {
  std::shared_ptr<net::HttpConnection> connection;
  std::unique_ptr<LaminarClient> client;
};

/// Dials host:port and wraps the socket in a client connection. `mode`
/// selects the client-side transport behaviour exactly as ConnectInProcess.
Result<TcpClient> ConnectTcp(
    const std::string& host, uint16_t port,
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

/// Convenience overload for "host:port" connection strings.
Result<TcpClient> ConnectTcp(
    const std::string& host_port,
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

/// ConnectTcp with a retry policy — the standard way to dial a server this
/// process (or a test harness) just spawned: ECONNREFUSED during the
/// fork-to-listen(2) window is retried with capped exponential backoff plus
/// jitter instead of a guessed sleep.
Result<TcpClient> ConnectTcp(
    const std::string& host_port, const net::TcpConnectOptions& options,
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

}  // namespace laminar::client
