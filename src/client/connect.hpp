// Wiring helpers: stand up a LaminarServer and a LaminarClient over an
// in-memory duplex pipe in one call — the standard harness for examples,
// tests and benches.
#pragma once

#include <memory>

#include "client/client.hpp"
#include "server/server.hpp"

namespace laminar::client {

struct InProcessLaminar {
  std::unique_ptr<server::LaminarServer> server;
  /// Server-side connection endpoint (owns the handler binding).
  std::unique_ptr<net::HttpConnection> server_side;
  /// Client-side connection endpoint, shared with `client`.
  std::shared_ptr<net::HttpConnection> client_side;
  std::unique_ptr<LaminarClient> client;
};

/// Creates server + pipe + client. `mode` selects the transport behaviour on
/// BOTH ends: kStreaming = Laminar 2.0, kBatch = the 1.0 baseline.
InProcessLaminar ConnectInProcess(
    server::ServerConfig config = {},
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

/// Attaches one more client connection to an existing server (multi-client
/// scenarios). The returned connection pair must outlive the client.
struct ExtraClient {
  std::unique_ptr<net::HttpConnection> server_side;
  std::shared_ptr<net::HttpConnection> client_side;
  std::unique_ptr<LaminarClient> client;
};
ExtraClient AttachClient(
    server::LaminarServer& server,
    net::HttpConnection::Mode mode = net::HttpConnection::Mode::kStreaming);

}  // namespace laminar::client
