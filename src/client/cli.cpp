#include "client/cli.hpp"

#include <istream>
#include <ostream>

#include "client/demo_workflows.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace laminar::client {
namespace {

/// Splits a command line into tokens, honouring double/single quotes so
/// `code_recommendation pe "random.randint(1, 1000)"` works as in Fig. 9.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  char quote = '\0';
  for (char c : line) {
    if (quote != '\0') {
      if (c == quote) {
        quote = '\0';
      } else {
        current += c;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current += c;
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string JoinFrom(const std::vector<std::string>& tokens, size_t start) {
  std::string out;
  for (size_t i = start; i < tokens.size(); ++i) {
    if (i > start) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace

void LaminarCli::RunLoop(std::istream& in, std::ostream& out) {
  out << "Welcome to the Laminar CLI\n";
  std::string line;
  while (true) {
    out << "(laminar) ";
    out.flush();
    if (!std::getline(in, line)) break;
    if (!ExecuteLine(line, out)) break;
  }
}

bool LaminarCli::ExecuteLine(const std::string& line, std::ostream& out) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return true;
  const std::string& cmd = tokens[0];
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());

  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    CmdHelp(args, out);
  } else if (cmd == "register_workflow") {
    CmdRegisterWorkflow(args, out);
  } else if (cmd == "register_pe") {
    CmdRegisterPe(args, out);
  } else if (cmd == "list") {
    CmdList(out);
  } else if (cmd == "describe") {
    CmdDescribe(args, out);
  } else if (cmd == "literal_search") {
    CmdSearch(args, out, /*semantic=*/false);
  } else if (cmd == "semantic_search") {
    CmdSearch(args, out, /*semantic=*/true);
  } else if (cmd == "code_recommendation") {
    CmdRecommend(args, out);
  } else if (cmd == "code_completion") {
    if (args.empty()) {
      out << "usage: code_completion <partial_snippet>\n";
    } else {
      auto completions = client_->CompleteCode(JoinFrom(args, 0));
      if (!completions.ok()) {
        out << completions.status().ToString() << "\n";
      } else if (completions->empty()) {
        out << "No completion found above the score threshold.\n";
      } else {
        for (const SearchHit& hit : completions.value()) {
          out << "from [" << hit.id << "] " << hit.name << " (score "
              << hit.score << "):\n" << hit.similar_code;
        }
      }
    }
  } else if (cmd == "history") {
    if (args.empty()) {
      out << "usage: history <workflow_id>\n";
    } else {
      auto hist = client_->GetExecutions(std::stoll(args[0]));
      if (!hist.ok()) {
        out << hist.status().ToString() << "\n";
      } else {
        out << "execId\tmapping\tstatus\tduration_ms\n";
        for (const Value& e : hist->at("executions").as_array()) {
          out << e.GetInt("executionId") << "\t" << e.GetString("mapping")
              << "\t" << e.GetString("status") << "\t"
              << (e.GetInt("finishedAtMs") - e.GetInt("startedAtMs")) << "\n";
        }
      }
    }
  } else if (cmd == "stats") {
    auto stats = client_->GetStats();
    if (!stats.ok()) {
      out << stats.status().ToString() << "\n";
    } else {
      out << stats->ToJsonPretty() << "\n";
    }
  } else if (cmd == "metrics") {
    auto metrics = client_->GetMetrics();
    if (!metrics.ok()) {
      out << metrics.status().ToString() << "\n";
    } else {
      out << metrics.value();
    }
  } else if (cmd == "tenant") {
    if (args.empty()) {
      const std::string& current = client_->tenant();
      out << "Current tenant: " << (current.empty() ? "default" : current)
          << "\n";
    } else if (args[0] == "default" || args[0] == "-") {
      client_->SetTenant("");
      out << "Tenant reset to default.\n";
    } else {
      client_->SetTenant(args[0]);
      out << "Subsequent requests run as tenant '" << args[0] << "'.\n";
    }
  } else if (cmd == "save_registry") {
    if (args.empty()) {
      out << "usage: save_registry <file>\n";
    } else {
      Status st = client_->SaveRegistry(args[0]);
      out << (st.ok() ? "Registry saved.\n" : st.ToString() + "\n");
    }
  } else if (cmd == "load_registry") {
    if (args.empty()) {
      out << "usage: load_registry <file>\n";
    } else {
      Status st = client_->LoadRegistry(args[0]);
      out << (st.ok() ? "Registry loaded.\n" : st.ToString() + "\n");
    }
  } else if (cmd == "run") {
    CmdRun(args, out);
  } else if (cmd == "update_pe_description") {
    if (args.size() < 2) {
      out << "usage: update_pe_description <id> <text...>\n";
    } else {
      Status st = client_->UpdatePeDescription(std::stoll(args[0]),
                                               JoinFrom(args, 1));
      out << (st.ok() ? "Description updated.\n" : st.ToString() + "\n");
    }
  } else if (cmd == "remove_pe") {
    if (args.empty()) {
      out << "usage: remove_pe <id>\n";
    } else {
      Status st = client_->RemovePe(std::stoll(args[0]));
      out << (st.ok() ? "Removed.\n" : st.ToString() + "\n");
    }
  } else if (cmd == "remove_workflow") {
    if (args.empty()) {
      out << "usage: remove_workflow <id>\n";
    } else {
      Status st = client_->RemoveWorkflow(std::stoll(args[0]));
      out << (st.ok() ? "Removed.\n" : st.ToString() + "\n");
    }
  } else if (cmd == "remove_all") {
    Status st = client_->RemoveAll();
    out << (st.ok() ? "Registry cleared.\n" : st.ToString() + "\n");
  } else {
    out << "Unknown command '" << cmd << "'. Type help for commands.\n";
  }
  return true;
}

void LaminarCli::CmdHelp(const std::vector<std::string>& args,
                         std::ostream& out) {
  if (args.empty()) {
    out << "Documented commands (type help <topic>):\n"
        << "========================================\n"
        << "code_recommendation  quit               semantic_search\n"
        << "describe             register_pe        update_pe_description\n"
        << "help                 register_workflow  remove_workflow\n"
        << "list                 remove_all         run\n"
        << "literal_search       remove_pe          stats\n"
        << "code_completion      save_registry      load_registry\n"
        << "history              metrics            tenant\n";
    return;
  }
  const std::string& topic = args[0];
  if (topic == "run") {
    out << "Runs a workflow in the registry based on the provided name or "
           "ID.\n\nUsage:\n  run identifier [options]\n\nOptions:\n"
        << "  identifier           Name or ID of the workflow to run\n"
        << "  --rawinput           Treat input as raw string\n"
        << "  -v, --verbose        Enable verbose output\n"
        << "  -i, --input <data>   Input data for the workflow\n"
        << "  --multi [P]          Run in parallel using multiprocessing\n"
        << "  --dynamic            Run in parallel using Redis\n";
  } else if (topic == "semantic_search") {
    out << "Searches the registry for workflows and processing elements "
           "matching semantically the search term.\n\nUsage:\n"
        << "  semantic_search [workflow|pe] [search_term]\n";
  } else if (topic == "code_recommendation") {
    out << "Provides code recommendations from registered workflows and "
           "processing elements matching the code snippet.\n\nUsage:\n"
        << "  code_recommendation [workflow|pe] [code_snippet] "
           "[--embedding_type spt|llm]\n"
        << "Note: code recommendations for workflows only possible with "
           "'spt' embedding_type\n";
  } else {
    out << "No extended help for '" << topic << "'.\n";
  }
}

void LaminarCli::CmdRegisterWorkflow(const std::vector<std::string>& args,
                                     std::ostream& out) {
  if (args.empty()) {
    out << "usage: register_workflow <workflow_file>\n";
    return;
  }
  const DemoWorkflow* demo = FindDemoWorkflow(args[0]);
  if (demo == nullptr) {
    out << "Unknown workflow '" << args[0] << "'. Available:";
    for (const DemoWorkflow& wf : DemoWorkflows()) out << ' ' << wf.file_name;
    out << "\n";
    return;
  }
  Result<WorkflowInfo> wf = client_->RegisterWorkflow(
      demo->name, demo->spec, demo->pes, demo->code);
  if (!wf.ok()) {
    out << wf.status().ToString() << "\n";
    return;
  }
  out << "Found PEs...\n";
  for (int64_t pe_id : wf->pe_ids) {
    Result<PeInfo> pe = client_->GetPe(pe_id);
    if (pe.ok()) {
      out << "* " << pe->name << " - type (ID " << pe->id << ")\n";
    }
  }
  out << "Found workflows...\n";
  out << "* " << demo->name << " - Workflow (ID " << wf->id << ")\n";
}

void LaminarCli::CmdRegisterPe(const std::vector<std::string>& args,
                               std::ostream& out) {
  if (args.empty()) {
    out << "usage: register_pe <pe_name>  (a PE from a demo workflow)\n";
    return;
  }
  for (const DemoWorkflow& wf : DemoWorkflows()) {
    for (const PeSource& pe : wf.pes) {
      if (pe.name == args[0]) {
        Result<PeInfo> info = client_->RegisterPe(pe.code, pe.name);
        if (!info.ok()) {
          out << info.status().ToString() << "\n";
        } else {
          out << "* " << info->name << " - type (ID " << info->id << ")\n";
        }
        return;
      }
    }
  }
  out << "Unknown PE '" << args[0] << "'.\n";
}

void LaminarCli::CmdList(std::ostream& out) {
  auto registry = client_->GetRegistry();
  if (!registry.ok()) {
    out << registry.status().ToString() << "\n";
    return;
  }
  out << "Processing Elements:\n";
  for (const PeInfo& pe : registry->first) {
    out << "  [" << pe.id << "] " << pe.name << " - " << pe.description
        << "\n";
  }
  out << "Workflows:\n";
  for (const WorkflowInfo& wf : registry->second) {
    out << "  [" << wf.id << "] " << wf.name << " - " << wf.description
        << "\n";
  }
}

void LaminarCli::CmdDescribe(const std::vector<std::string>& args,
                             std::ostream& out) {
  if (args.empty()) {
    out << "usage: describe <id> [pe|workflow]\n";
    return;
  }
  int64_t id = std::stoll(args[0]);
  bool workflow = args.size() > 1 && args[1] == "workflow";
  if (workflow) {
    Result<WorkflowInfo> wf = client_->DescribeWorkflow(id);
    if (!wf.ok()) {
      out << wf.status().ToString() << "\n";
      return;
    }
    out << wf->name << ": " << wf->description << "\n" << wf->code;
  } else {
    Result<PeInfo> pe = client_->DescribePe(id);
    if (!pe.ok()) {
      out << pe.status().ToString() << "\n";
      return;
    }
    out << pe->name << ": " << pe->description << "\n" << pe->code;
  }
}

void LaminarCli::CmdSearch(const std::vector<std::string>& args,
                           std::ostream& out, bool semantic) {
  if (args.size() < 2 || (args[0] != "pe" && args[0] != "workflow")) {
    out << "usage: " << (semantic ? "semantic_search" : "literal_search")
        << " [workflow|pe] [search_term]\n";
    return;
  }
  std::string term = JoinFrom(args, 1);
  auto hits = semantic ? client_->SearchRegistrySemantic(term, args[0])
                       : client_->SearchRegistryLiteral(term, args[0]);
  if (!hits.ok()) {
    out << hits.status().ToString() << "\n";
    return;
  }
  if (semantic) {
    out << "Performing semantic search on " << args[0]
        << ", with query type: text\nEncoded query as text\n";
  }
  out << "id\tname\tdescription\t"
      << (semantic ? "cosine_similarity" : "match") << "\n";
  for (const SearchHit& hit : hits.value()) {
    std::string desc = hit.description.substr(0, 48);
    out << hit.id << "\t" << hit.name << "\t" << desc << "\t"
        << strings::Format("%.6f", hit.score) << "\n";
  }
}

void LaminarCli::CmdRecommend(const std::vector<std::string>& args,
                              std::ostream& out) {
  if (args.size() < 2 || (args[0] != "pe" && args[0] != "workflow")) {
    out << "usage: code_recommendation [workflow|pe] [code_snippet] "
           "[--embedding_type spt|llm]\n";
    return;
  }
  std::string embedding_type = "spt";
  std::vector<std::string> rest;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--embedding_type" && i + 1 < args.size()) {
      embedding_type = args[++i];
    } else {
      rest.push_back(args[i]);
    }
  }
  std::string snippet = strings::Join(rest, " ");
  auto hits = client_->CodeRecommendation(snippet, args[0], embedding_type);
  if (!hits.ok()) {
    out << hits.status().ToString() << "\n";
    return;
  }
  if (args[0] == "pe") {
    out << "id\tpeName\tdescription\tscore\tsimilarFunc\n";
    for (const SearchHit& hit : hits.value()) {
      std::string code_head = hit.similar_code.substr(
          0, std::min<size_t>(hit.similar_code.size(), 40));
      for (char& c : code_head) {
        if (c == '\n') c = ' ';
      }
      out << hit.id << "\t" << hit.name << "\t"
          << hit.description.substr(0, 40) << "\t"
          << strings::Format("%.1f", hit.score) << "\t" << code_head << "\n";
    }
  } else {
    out << "id\tworkflowName\tdescription\toccurrences\n";
    for (const SearchHit& hit : hits.value()) {
      out << hit.id << "\t" << hit.name << "\t"
          << hit.description.substr(0, 40) << "\t" << hit.occurrences << "\n";
    }
  }
}

void LaminarCli::CmdRun(const std::vector<std::string>& args,
                        std::ostream& out) {
  if (args.empty()) {
    out << "usage: run <id|name> [-i N] [-v] [--multi [P]] [--dynamic]\n";
    return;
  }
  std::string identifier = args[0];
  Value input(10);
  bool verbose = false;
  bool rawinput = false;
  std::string mapping = "simple";
  int processes = 9;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if ((a == "-i" || a == "--input") && i + 1 < args.size()) {
      const std::string& raw = args[++i];
      if (rawinput) {
        input = Value(raw);
      } else {
        Result<Value> parsed = json::Parse(raw);
        input = parsed.ok() ? parsed.value() : Value(raw);
      }
    } else if (a == "-v" || a == "--verbose") {
      verbose = true;
    } else if (a == "--rawinput") {
      rawinput = true;
    } else if (a == "--multi") {
      mapping = "multi";
      if (i + 1 < args.size() && !args[i + 1].empty() &&
          std::isdigit(static_cast<unsigned char>(args[i + 1][0]))) {
        processes = std::stoi(args[++i]);
      }
    } else if (a == "--dynamic" || a == "--redis") {
      mapping = "dynamic";
    }
  }

  int64_t id;
  if (!identifier.empty() &&
      std::isdigit(static_cast<unsigned char>(identifier[0]))) {
    id = std::stoll(identifier);
  } else {
    Result<WorkflowInfo> wf = client_->GetWorkflowByName(identifier);
    if (!wf.ok()) {
      out << wf.status().ToString() << "\n";
      return;
    }
    id = wf->id;
  }

  // Re-fetch for the spec-driven run; we reuse RunSpec to pass verbose and
  // process count uniformly.
  auto on_line = [&out](const std::string& line) { out << line << "\n"; };
  RunOutcome outcome;
  if (mapping == "simple") {
    outcome = client_->Run(id, input, on_line, {}, verbose);
  } else if (mapping == "multi") {
    outcome =
        client_->RunMultiprocess(id, input, processes, on_line, {}, verbose);
  } else {
    outcome = client_->RunDynamic(id, input, on_line, {}, verbose);
  }
  if (!outcome.status.ok()) {
    out << outcome.status.ToString() << "\n";
    return;
  }
  out << "Run complete: " << outcome.stats.GetInt("tuples")
      << " tuples processed, " << outcome.lines.size() << " output lines.\n";
}

}  // namespace laminar::client
