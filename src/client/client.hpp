// The Laminar client (paper §IV-A, Table I): the full client-function
// surface — user registration/login, PE/workflow registration and
// management, literal/semantic search, code recommendation, and the three
// run modes (run, run_multiprocess, run_dynamic) with true streaming of
// workflow stdout.
//
// The client speaks the wire protocol over any HttpConnection; pair it with
// Mode::kStreaming for Laminar 2.0 behaviour or Mode::kBatch for the 1.0
// baseline the streaming bench compares against.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "net/http.hpp"
#include "net/multipart.hpp"

namespace laminar::client {

struct PeInfo {
  int64_t id = 0;
  std::string name;
  std::string description;
  std::string code;
};

struct WorkflowInfo {
  int64_t id = 0;
  std::string name;
  std::string description;
  std::vector<int64_t> pe_ids;
  std::string code;
};

struct SearchHit {
  int64_t id = 0;
  std::string name;
  std::string description;
  double score = 0.0;
  std::string similar_code;  ///< code recommendations only
  int64_t occurrences = 0;   ///< workflow recommendations only
};

/// Source of one PE inside a workflow registration.
struct PeSource {
  std::string code;
  std::string name;         ///< optional; derived from the class otherwise
  std::string description;  ///< optional; CodeT5 generates it otherwise
};

/// Outcome of a run; `lines` is the complete stdout, `stats` the engine's
/// ##END## record (tuples, runMs, coldStart, peakWorkers, executionId).
struct RunOutcome {
  Status status;
  std::vector<std::string> lines;
  Value stats;
  /// Milliseconds from request to the *first* stdout line (the §IV-E
  /// true-streaming metric).
  double first_line_ms = -1.0;
  double total_ms = 0.0;
};

/// Per-line streaming callback (optional on all run functions).
using LineCallback = std::function<void(const std::string&)>;

/// A named local resource attached to a run (§IV-F): the client sends
/// (name, content-hash) refs; content is uploaded only if the engine asks.
struct Resource {
  std::string name;
  std::string content;
};

class LaminarClient {
 public:
  /// Takes shared ownership of an established connection.
  explicit LaminarClient(std::shared_ptr<net::HttpConnection> connection);

  /// Attaches an `x-laminar-tenant` header to every subsequent request, so
  /// the server attributes quota/rate/run-queue usage to that tenant. Empty
  /// (the default) runs as the server's default tenant — the pre-tenancy
  /// behavior. A `"tenant"` field in a RunRaw body overrides the header.
  void SetTenant(std::string tenant) { tenant_ = std::move(tenant); }
  const std::string& tenant() const { return tenant_; }

  // ---- users ----
  Result<int64_t> Register(const std::string& user_name,
                           const std::string& password);
  /// On success the session token is attached to subsequent requests.
  Status Login(const std::string& user_name, const std::string& password);

  // ---- registration ----
  Result<PeInfo> RegisterPe(const std::string& code,
                            const std::string& name = "",
                            const std::string& description = "");
  Result<WorkflowInfo> RegisterWorkflow(const std::string& name,
                                        const Value& spec,
                                        const std::vector<PeSource>& pes,
                                        const std::string& code = "",
                                        const std::string& description = "");
  /// One-call batch registration (/registry/bulk_register): the server
  /// prepares all PEs in parallel and commits them in a single exclusive
  /// section. Returns the new PE ids in input order; items the server
  /// rejected are skipped (their errors are reported in the response body,
  /// and the call fails only if *no* PE registered).
  Result<std::vector<int64_t>> BulkRegisterPes(
      const std::vector<PeSource>& pes);

  // ---- retrieval ----
  Result<PeInfo> GetPe(int64_t id);
  Result<PeInfo> GetPeByName(const std::string& name);
  Result<WorkflowInfo> GetWorkflow(int64_t id);
  Result<WorkflowInfo> GetWorkflowByName(const std::string& name);
  Result<std::vector<PeInfo>> GetPesByWorkflow(int64_t workflow_id);
  /// Execution history of a workflow (id, mapping, status, timestamps).
  Result<Value> GetExecutions(int64_t workflow_id);
  /// All PEs and workflows in the registry.
  Result<std::pair<std::vector<PeInfo>, std::vector<WorkflowInfo>>>
  GetRegistry();
  Result<PeInfo> DescribePe(int64_t id) { return GetPe(id); }
  Result<WorkflowInfo> DescribeWorkflow(int64_t id) { return GetWorkflow(id); }

  // ---- updates / removal ----
  Status UpdatePeDescription(int64_t id, const std::string& description);
  Status UpdateWorkflowDescription(int64_t id, const std::string& description);
  Status RemovePe(int64_t id);
  Status RemoveWorkflow(int64_t id);
  Status RemoveAll();

  // ---- search (Table I: search_Registry_*) ----
  Result<std::vector<SearchHit>> SearchRegistryLiteral(
      const std::string& term, const std::string& target = "pe",
      size_t limit = 0);
  Result<std::vector<SearchHit>> SearchRegistrySemantic(
      const std::string& query, const std::string& target = "pe",
      size_t limit = 0);
  Result<std::vector<SearchHit>> CodeRecommendation(
      const std::string& code, const std::string& target = "pe",
      const std::string& embedding_type = "spt", size_t limit = 0);
  /// Code completion: suggested continuations for a partial PE snippet.
  /// Each hit's `similar_code` holds the continuation lines.
  Result<std::vector<SearchHit>> CompleteCode(const std::string& partial_code,
                                              size_t limit = 3);

  // ---- registry persistence & server stats ----
  /// Persists the server-side registry database to a file on the server.
  Status SaveRegistry(const std::string& path);
  /// Restores the registry from a server-side file and reindexes search.
  Status LoadRegistry(const std::string& path);
  /// Engine/cache/broker statistics (the /stats endpoint), including the
  /// telemetry view ("totals", "metrics", "trace").
  Result<Value> GetStats();
  /// Prometheus text exposition (the GET /metrics endpoint).
  Result<std::string> GetMetrics();
  /// The node's /replication/status: role ("leader"/"follower"/"none") and,
  /// on a follower, appliedSeq/leaderSeq/lag. Admission-exempt server-side,
  /// so it works even when the tenant's rate budget is exhausted.
  Result<Value> ReplicationStatus();
  /// Raw JSON endpoint call (tenant/auth headers attached). Escape hatch
  /// for endpoints without a typed wrapper; ReplicaSetClient uses it to
  /// probe nodes uniformly.
  Result<Value> CallEndpoint(const std::string& path, const Value& body,
                             int* http_status = nullptr) {
    return CallJson(path, body, http_status);
  }

  // ---- execution (Table I: run / run_multiprocess / run_dynamic) ----
  RunOutcome Run(int64_t workflow_id, const Value& input,
                 const LineCallback& on_line = nullptr,
                 const std::vector<Resource>& resources = {},
                 bool verbose = false);
  RunOutcome RunMultiprocess(int64_t workflow_id, const Value& input,
                             int processes = 4,
                             const LineCallback& on_line = nullptr,
                             const std::vector<Resource>& resources = {},
                             bool verbose = false);
  RunOutcome RunDynamic(int64_t workflow_id, const Value& input,
                        const LineCallback& on_line = nullptr,
                        const std::vector<Resource>& resources = {},
                        bool verbose = false);
  /// Runs an unregistered spec directly (used by benches).
  RunOutcome RunSpec(const Value& spec, const std::string& mapping,
                     const Value& input, int processes = 4,
                     const LineCallback& on_line = nullptr,
                     const std::vector<Resource>& resources = {},
                     bool verbose = false);
  /// Runs with a caller-built /execute request body ("spec"/"workflowId",
  /// "mapping", "input", and any run option the wire format accepts — e.g.
  /// "max_retries"/"retry_backoff_ms" for the fault-containment policy).
  RunOutcome RunRaw(Value request_body, const LineCallback& on_line = nullptr,
                    const std::vector<Resource>& resources = {});

  /// Uploads resources explicitly (normally automatic inside Run*).
  Status UploadResources(const std::vector<Resource>& resources);

 private:
  Result<Value> CallJson(const std::string& path, const Value& body,
                         int* http_status = nullptr);
  RunOutcome RunInternal(Value request_body, const LineCallback& on_line,
                         const std::vector<Resource>& resources);

  std::shared_ptr<net::HttpConnection> conn_;
  std::string token_;
  std::string tenant_;
};

}  // namespace laminar::client
