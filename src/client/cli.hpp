// The Laminar CLI (paper §IV-B, Fig. 5): an interactive command interpreter
// over the client API. Commands mirror the paper's screenshots:
//
//   help [command]           list commands / usage of one command
//   register_pe <name>       register a demo PE by name
//   register_workflow <file> register a demo workflow (e.g. isprime_wf.py)
//   list                     show the registry contents
//   describe <id> [pe|workflow]
//   literal_search [workflow|pe] <term...>
//   semantic_search [workflow|pe] <term...>
//   code_recommendation [workflow|pe] <snippet> [--embedding_type spt|llm]
//   run <id|name> [-i N] [-v] [--multi [P]] [--dynamic] [--rawinput]
//   update_pe_description <id> <text...>
//   remove_pe <id> | remove_workflow <id> | remove_all
//   stats                    server statistics incl. telemetry JSON
//   metrics                  Prometheus text scrape of GET /metrics
//   tenant [name|default]    show or switch the tenant namespace
//   quit
//
// The interpreter is a library class (no stdin coupling) so tests can drive
// it line by line.
#pragma once

#include <iosfwd>
#include <string>

#include "client/client.hpp"

namespace laminar::client {

class LaminarCli {
 public:
  explicit LaminarCli(LaminarClient& client) : client_(&client) {}

  /// Executes one command line, writing human output to `out`. Returns
  /// false when the command asks to quit.
  bool ExecuteLine(const std::string& line, std::ostream& out);

  /// Reads lines ("(laminar) " prompt) until EOF or quit.
  void RunLoop(std::istream& in, std::ostream& out);

 private:
  void CmdHelp(const std::vector<std::string>& args, std::ostream& out);
  void CmdRegisterWorkflow(const std::vector<std::string>& args,
                           std::ostream& out);
  void CmdRegisterPe(const std::vector<std::string>& args, std::ostream& out);
  void CmdList(std::ostream& out);
  void CmdDescribe(const std::vector<std::string>& args, std::ostream& out);
  void CmdSearch(const std::vector<std::string>& args, std::ostream& out,
                 bool semantic);
  void CmdRecommend(const std::vector<std::string>& args, std::ostream& out);
  void CmdRun(const std::vector<std::string>& args, std::ostream& out);

  LaminarClient* client_;
};

}  // namespace laminar::client
