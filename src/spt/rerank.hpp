// Prune-and-rerank (Aroma stage 3).
//
// The featurization search over-retrieves; Aroma then *prunes* each
// candidate against the query — greedily keeping only the candidate lines
// whose features overlap the query's — and reranks candidates by how much of
// the query the pruned snippet still covers. This is what lets a partial
// query match the relevant half of a larger method.
#pragma once

#include <vector>

#include "spt/features.hpp"

namespace laminar::spt {

struct PruneResult {
  /// Retained candidate source lines (1-based, ascending).
  std::vector<int> lines;
  /// Overlap between the pruned snippet's features and the query.
  double overlap = 0.0;
  /// overlap / |query features| — the rerank key.
  double containment = 0.0;
};

/// Prunes a candidate against a query. `candidate` must have been extracted
/// with FeatureOptions::with_occurrences so features carry line tags.
/// Greedy set-cover: repeatedly add the line with the largest marginal
/// feature overlap until no line adds anything.
PruneResult PruneAgainstQuery(const FeatureBag& query,
                              const FeatureBag& candidate);

}  // namespace laminar::spt
