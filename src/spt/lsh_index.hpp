// MinHash-LSH index over SPT feature sets — the paper's stated future work
// ("refining deep learning models, including LSH for structural code"),
// modelled on Senatus / DeSkew-LSH (Silavong et al. 2021), which the
// related-work section cites as the scalability upgrade to Aroma.
//
// Instead of scoring a query against every snippet (exact SptIndex), each
// snippet's feature set is summarized by a MinHash signature; signatures are
// cut into bands and hashed into buckets, so lookup only scores snippets
// that collide with the query in at least one band. Jaccard-similar
// snippets collide with high probability; dissimilar ones almost never do —
// turning O(corpus) scoring into O(candidates).
//
// Retrieval quality is traded against speed via (num_hashes, bands): more
// bands → higher recall, more candidates. Candidates are re-scored exactly
// (overlap or cosine) so ranking quality equals the exact index on the
// candidate set; only recall can be lost.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spt/index.hpp"

namespace laminar::spt {

struct LshConfig {
  /// Signature length. Must be divisible by `bands`.
  size_t num_hashes = 64;
  /// Bands of rows = num_hashes / bands each; a candidate must match the
  /// query in all rows of at least one band.
  size_t bands = 16;
  uint64_t seed = 0x5e7a7e5ULL;
};

class LshIndex {
 public:
  explicit LshIndex(LshConfig config = {});

  /// Adds (or replaces) a document.
  void Add(int64_t doc_id, FeatureBag bag);
  bool Remove(int64_t doc_id);
  size_t size() const { return docs_.size(); }

  /// Top-k by exact metric over LSH candidates only.
  std::vector<SptIndex::Hit> TopK(const FeatureBag& query, size_t k,
                                  Metric metric = Metric::kOverlap) const;

  /// Candidate ids for a query (diagnostics / recall measurement).
  std::vector<int64_t> Candidates(const FeatureBag& query) const;

  /// Estimated Jaccard similarity from signatures alone (no feature access).
  double EstimateJaccard(int64_t doc_a, int64_t doc_b) const;

  const LshConfig& config() const { return config_; }

 private:
  using Signature = std::vector<uint64_t>;

  Signature Sign(const FeatureBag& bag) const;
  /// Bucket key of one band of a signature.
  uint64_t BandKey(const Signature& sig, size_t band) const;

  LshConfig config_;
  std::vector<uint64_t> hash_seeds_;
  struct Doc {
    FeatureBag bag;
    Signature signature;
  };
  std::unordered_map<int64_t, Doc> docs_;
  /// band index -> bucket key -> doc ids.
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> buckets_;
};

}  // namespace laminar::spt
