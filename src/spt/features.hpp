// Aroma feature extraction over SPTs.
//
// For every *non-keyword* token (identifier or literal) the extractor emits:
//   1. a token feature          — the (possibly generalized) token itself;
//   2. parent features          — (token, child-index, ancestor-label) for up
//                                 to `parent_levels` enclosing SPT nodes;
//   3. sibling features         — (token, next non-keyword token) in leaf
//                                 order;
//   4. variable-usage features  — for consecutive uses of the same local
//                                 variable, (label of first use's parent,
//                                 label of second use's parent).
// Local variable names (assignment targets, parameters, loop/with/except
// bindings, self/cls) are generalized to "#VAR" and string literals to
// "#STR", which is what makes Aroma robust to renames — the property the
// paper's Fig. 12 vs Fig. 13 comparison turns on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spt/spt.hpp"

namespace laminar::spt {

/// Multiset of hashed features, with optional per-occurrence line tags
/// (needed by prune-and-rerank) and debug strings (tests).
struct FeatureBag {
  std::unordered_map<uint64_t, uint32_t> counts;
  /// (feature hash, source line) per occurrence; filled only when
  /// FeatureOptions::with_occurrences is set.
  std::vector<std::pair<uint64_t, int>> occurrences;
  /// Human-readable feature spellings; filled only when
  /// FeatureOptions::record_strings is set.
  std::vector<std::string> strings;
  size_t total = 0;

  void Add(uint64_t hash) {
    ++counts[hash];
    ++total;
  }
  bool Contains(uint64_t hash) const { return counts.contains(hash); }
  double Norm() const;
};

struct FeatureOptions {
  /// How many enclosing nodes contribute parent features (Aroma uses 3).
  int parent_levels = 3;
  /// Replace local-variable identifiers with "#VAR". Disabling this is the
  /// ablation knob that makes structural search identifier-sensitive.
  bool generalize_variables = true;
  /// Tag each feature occurrence with its source line.
  bool with_occurrences = false;
  /// Keep human-readable feature strings for debugging.
  bool record_strings = false;
};

/// Extracts the Aroma feature multiset of an SPT.
FeatureBag ExtractFeatures(const SptNode& root, const FeatureOptions& opts = {});

/// Identifiers bound locally in the snippet (assignment/loop/param/etc.).
std::unordered_set<std::string> CollectLocalVariables(const SptNode& root);

/// Σ_h min(a[h], b[h]) — Aroma's overlap score (the paper's default
/// recommendation threshold of 6.0 applies to this score).
double OverlapScore(const FeatureBag& a, const FeatureBag& b);

/// Standard cosine over feature-count vectors — Laminar 2.0's simplified
/// scoring path.
double CosineSimilarity(const FeatureBag& a, const FeatureBag& b);

/// |query ∩ candidate| / |query| in multiset terms; used for reranking
/// (how much of the query the candidate covers).
double ContainmentScore(const FeatureBag& query, const FeatureBag& candidate);

/// Jaccard over feature sets (clustering).
double JaccardSimilarity(const FeatureBag& a, const FeatureBag& b);

}  // namespace laminar::spt
