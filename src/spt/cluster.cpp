#include "spt/cluster.hpp"

namespace laminar::spt {

std::vector<std::vector<size_t>> ClusterCandidates(
    const std::vector<ClusterInput>& inputs, double jaccard_threshold) {
  std::vector<std::vector<size_t>> clusters;
  for (size_t i = 0; i < inputs.size(); ++i) {
    bool placed = false;
    for (auto& cluster : clusters) {
      const ClusterInput& leader = inputs[cluster.front()];
      if (leader.features != nullptr && inputs[i].features != nullptr &&
          JaccardSimilarity(*leader.features, *inputs[i].features) >=
              jaccard_threshold) {
        cluster.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) clusters.push_back({i});
  }
  return clusters;
}

}  // namespace laminar::spt
