#include "spt/lsh_index.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/hashing.hpp"

namespace laminar::spt {

LshIndex::LshIndex(LshConfig config) : config_(config) {
  if (config_.bands == 0 || config_.num_hashes % config_.bands != 0) {
    // Fall back to a safe shape rather than failing construction: one row
    // per band.
    config_.bands = config_.num_hashes;
  }
  hash_seeds_.reserve(config_.num_hashes);
  uint64_t s = config_.seed;
  for (size_t i = 0; i < config_.num_hashes; ++i) {
    s = hashing::SplitMix64(s);
    hash_seeds_.push_back(s);
  }
  buckets_.resize(config_.bands);
}

LshIndex::Signature LshIndex::Sign(const FeatureBag& bag) const {
  Signature sig(config_.num_hashes, std::numeric_limits<uint64_t>::max());
  for (const auto& [feature, count] : bag.counts) {
    for (size_t i = 0; i < config_.num_hashes; ++i) {
      uint64_t h = hashing::SplitMix64(feature ^ hash_seeds_[i]);
      if (h < sig[i]) sig[i] = h;
    }
  }
  return sig;
}

uint64_t LshIndex::BandKey(const Signature& sig, size_t band) const {
  size_t rows = config_.num_hashes / config_.bands;
  uint64_t key = hashing::SplitMix64(band + 0x9e37ULL);
  for (size_t r = 0; r < rows; ++r) {
    key = hashing::Combine(key, sig[band * rows + r]);
  }
  return key;
}

void LshIndex::Add(int64_t doc_id, FeatureBag bag) {
  Remove(doc_id);
  Doc doc;
  doc.signature = Sign(bag);
  doc.bag = std::move(bag);
  for (size_t b = 0; b < config_.bands; ++b) {
    buckets_[b][BandKey(doc.signature, b)].push_back(doc_id);
  }
  docs_.emplace(doc_id, std::move(doc));
}

bool LshIndex::Remove(int64_t doc_id) {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return false;
  for (size_t b = 0; b < config_.bands; ++b) {
    uint64_t key = BandKey(it->second.signature, b);
    auto bit = buckets_[b].find(key);
    if (bit == buckets_[b].end()) continue;
    std::erase(bit->second, doc_id);
    if (bit->second.empty()) buckets_[b].erase(bit);
  }
  docs_.erase(it);
  return true;
}

std::vector<int64_t> LshIndex::Candidates(const FeatureBag& query) const {
  Signature sig = Sign(query);
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  for (size_t b = 0; b < config_.bands; ++b) {
    auto it = buckets_[b].find(BandKey(sig, b));
    if (it == buckets_[b].end()) continue;
    for (int64_t id : it->second) {
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return out;
}

std::vector<SptIndex::Hit> LshIndex::TopK(const FeatureBag& query, size_t k,
                                          Metric metric) const {
  std::vector<SptIndex::Hit> hits;
  for (int64_t id : Candidates(query)) {
    const FeatureBag& bag = docs_.at(id).bag;
    double score = 0.0;
    switch (metric) {
      case Metric::kOverlap: score = OverlapScore(query, bag); break;
      case Metric::kCosine: score = CosineSimilarity(query, bag); break;
      case Metric::kContainment: score = ContainmentScore(query, bag); break;
    }
    if (score > 0.0) hits.push_back(SptIndex::Hit{id, score});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SptIndex::Hit& a, const SptIndex::Hit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_id < b.doc_id;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double LshIndex::EstimateJaccard(int64_t doc_a, int64_t doc_b) const {
  auto a = docs_.find(doc_a);
  auto b = docs_.find(doc_b);
  if (a == docs_.end() || b == docs_.end()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < config_.num_hashes; ++i) {
    if (a->second.signature[i] == b->second.signature[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(config_.num_hashes);
}

}  // namespace laminar::spt
