#include "spt/spt.hpp"

#include "pycode/parser.hpp"

namespace laminar::spt {
namespace {

using pycode::Node;
using pycode::Token;
using pycode::TokenType;

bool IsStructureToken(const Token& t) {
  return t.type == TokenType::kNewline || t.type == TokenType::kIndent ||
         t.type == TokenType::kDedent || t.type == TokenType::kEnd;
}

bool IsKeywordClass(const Token& t) {
  return t.type == TokenType::kKeyword || t.type == TokenType::kOp;
}

SptNodePtr Build(const Node& node);

void AppendChild(SptNode& parent, const Node& child) {
  if (child.leaf) {
    if (IsStructureToken(child.token)) return;
    SptElem elem;
    elem.is_token = true;
    elem.text = child.token.text;
    elem.is_keyword = IsKeywordClass(child.token);
    elem.line = child.token.line;
    parent.elems.push_back(std::move(elem));
    return;
  }
  SptNodePtr sub = Build(child);
  if (!sub) return;  // empty subtree (e.g. blank suite)
  // Collapse single-element subtrees directly into the parent: grammar
  // scaffolding like paren-less one-element lists adds no structure. Two
  // exceptions: a lone *keyword* element (e.g. a suite holding only `pass`)
  // would corrupt the parent's label if hoisted, and `param` nodes must
  // survive for local-variable detection.
  if (sub->elems.size() == 1 && sub->rule != "param") {
    const SptElem& only = sub->elems[0];
    if (!(only.is_token && only.is_keyword)) {
      parent.elems.push_back(std::move(sub->elems[0]));
      return;
    }
  }
  SptElem elem;
  elem.child = std::move(sub);
  parent.elems.push_back(std::move(elem));
}

SptNodePtr Build(const Node& node) {
  if (node.leaf) {
    if (IsStructureToken(node.token)) return nullptr;
    auto spt = std::make_unique<SptNode>();
    spt->rule = "token";
    SptElem elem;
    elem.is_token = true;
    elem.text = node.token.text;
    elem.is_keyword = IsKeywordClass(node.token);
    elem.line = node.token.line;
    spt->elems.push_back(std::move(elem));
    return spt;
  }
  auto spt = std::make_unique<SptNode>();
  spt->rule = node.kind;
  for (const auto& c : node.children) AppendChild(*spt, *c);
  if (spt->elems.empty()) return nullptr;
  return spt;
}

}  // namespace

std::string SptNode::Label() const {
  // Container nodes get a constant label: encoding their statement count
  // would make every feature inside a block depend on the block's length,
  // destroying robustness to partial snippets (the paper's 50/75/90% drop
  // experiments rely on local features surviving truncation).
  if (rule == "suite" || rule == "module") return "#";
  std::string label;
  for (const SptElem& e : elems) {
    if (e.is_token && e.is_keyword) {
      label += e.text;
    } else {
      label += '#';
    }
  }
  return label;
}

size_t SptNode::TreeSize() const {
  size_t n = 1;
  for (const SptElem& e : elems) {
    if (e.child) n += e.child->TreeSize();
  }
  return n;
}

void SptNode::CollectLines(std::vector<int>& lines) const {
  for (const SptElem& e : elems) {
    if (e.is_token) {
      if (e.line > 0) lines.push_back(e.line);
    } else if (e.child) {
      e.child->CollectLines(lines);
    }
  }
}

SptNodePtr BuildSpt(const pycode::Node& parse_tree) {
  SptNodePtr spt = Build(parse_tree);
  if (!spt) {
    spt = std::make_unique<SptNode>();
    spt->rule = "module";
  }
  return spt;
}

Result<SptNodePtr> SptFromSource(std::string_view source) {
  Result<pycode::NodePtr> tree = pycode::ParseLenient(source);
  if (!tree.ok()) return tree.status();
  return BuildSpt(*tree.value());
}

std::string ToDebugString(const SptNode& node) {
  std::string out = "(" + node.Label();
  for (const SptElem& e : node.elems) {
    out += ' ';
    if (e.is_token) {
      out += e.text;
    } else if (e.child) {
      out += ToDebugString(*e.child);
    }
  }
  out += ')';
  return out;
}

}  // namespace laminar::spt
