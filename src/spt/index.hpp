// Featurization search index (Aroma "Feature Extraction and Search" stage).
//
// Aroma scores a query against every indexed snippet with a sparse
// matrix-vector product over binary feature vectors. We implement the same
// computation with an inverted index (feature -> posting list), which gives
// identical scores without materializing the matrix.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spt/features.hpp"

namespace laminar::spt {

enum class Metric {
  kOverlap,      ///< Σ min(count) — Aroma's score; threshold 6.0 by default
  kCosine,       ///< normalized dot — Laminar 2.0's simplified path
  kContainment,  ///< fraction of the query covered
};

class SptIndex {
 public:
  struct Hit {
    int64_t doc_id = 0;
    double score = 0.0;
  };

  /// Adds (or replaces) a document's feature bag.
  void Add(int64_t doc_id, FeatureBag bag);
  bool Remove(int64_t doc_id);
  void Clear();

  const FeatureBag* Get(int64_t doc_id) const;
  size_t size() const { return docs_.size(); }

  /// Top-k most similar documents, ties broken by ascending doc id so
  /// results are deterministic.
  std::vector<Hit> TopK(const FeatureBag& query, size_t k,
                        Metric metric = Metric::kOverlap) const;

 private:
  std::unordered_map<int64_t, FeatureBag> docs_;
  /// feature hash -> doc ids containing it (deduplicated lazily on search).
  std::unordered_map<uint64_t, std::vector<int64_t>> postings_;
};

}  // namespace laminar::spt
