// AromaEngine — the end-to-end structural code-search / recommendation
// pipeline: SPT generation -> featurization search -> prune & rerank ->
// clustering -> recommendation creation.
//
// Two operating modes, matching the paper:
//  * full Aroma pipeline (use_full_pipeline = true): all five stages;
//  * Laminar 2.0 simplified path (false): featurization + cosine similarity
//    only, "for efficiency, simplicity, and scalability" (paper §VI-A).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "spt/cluster.hpp"
#include "spt/index.hpp"
#include "spt/rerank.hpp"

namespace laminar::spt {

struct AromaConfig {
  FeatureOptions features;          ///< occurrences forced on internally
  size_t retrieve_top = 100;        ///< stage-2 over-retrieval width
  double cluster_jaccard = 0.45;    ///< stage-4 cluster admission
  size_t max_recommendations = 5;   ///< paper default: top five
  double min_overlap_score = 6.0;   ///< paper default score threshold
  bool use_full_pipeline = true;
  Metric simplified_metric = Metric::kCosine;  ///< used when !use_full_pipeline
};

struct Recommendation {
  int64_t snippet_id = 0;       ///< representative snippet of the cluster
  double score = 0.0;           ///< overlap (full pipeline) or cosine
  double containment = 0.0;     ///< query coverage after pruning (full only)
  size_t cluster_size = 1;
  std::vector<int> pruned_lines;   ///< retained lines of the representative
  std::string recommended_code;    ///< pruned snippet text
};

/// A code-completion suggestion: the continuation lines of an indexed
/// snippet whose prefix structurally matches the partial query.
struct Completion {
  int64_t snippet_id = 0;
  double score = 0.0;           ///< overlap of the query with the snippet
  std::vector<int> matched_lines;  ///< snippet lines covering the query
  std::string continuation;        ///< snippet lines after the match
};

class AromaEngine {
 public:
  explicit AromaEngine(AromaConfig config = {});

  /// Parses, featurizes and indexes a snippet. Fails only if the snippet
  /// yields no tokens at all.
  Status AddSnippet(int64_t id, std::string_view code);
  /// Indexes a snippet whose features were already extracted (via
  /// Featurize) — the two-phase registration path runs the parse off-lock
  /// and hands the bag here, so committing never reparses. The bag must
  /// come from Featurize on *this* engine's options: FeatureBagToJson drops
  /// the per-feature line occurrences that prune/rerank need, so the
  /// in-memory bag (not a JSON round-trip) is required.
  Status AddSnippetWithFeatures(int64_t id, std::string_view code,
                                FeatureBag features);
  bool RemoveSnippet(int64_t id);
  size_t size() const { return index_.size(); }

  /// Raw structural similarity search (no pruning/clustering); this is the
  /// 'spt' embedding search the Laminar CLI exposes.
  Result<std::vector<SptIndex::Hit>> Search(std::string_view query_code,
                                            size_t k,
                                            Metric metric = Metric::kCosine) const;

  /// Full code recommendation per the configured mode.
  Result<std::vector<Recommendation>> Recommend(std::string_view query_code) const;

  /// Code completion (paper §I: "code completion capabilities"): finds the
  /// snippets that structurally contain the partial query, locates the
  /// matched region with prune-against-query, and returns what follows it.
  Result<std::vector<Completion>> Complete(std::string_view partial_code,
                                           size_t k = 3) const;

  /// Featurizes a snippet with this engine's options (for external storage,
  /// e.g. the registry's sptEmbedding column).
  Result<FeatureBag> Featurize(std::string_view code) const;

  const AromaConfig& config() const { return config_; }

 private:
  AromaConfig config_;
  SptIndex index_;
  std::unordered_map<int64_t, std::string> sources_;
};

/// Serializes a feature bag as the JSON object Laminar stores in the
/// registry's 'sptEmbedding' column: {"<hash>": count, ...}.
std::string FeatureBagToJson(const FeatureBag& bag);
/// Parses the JSON produced by FeatureBagToJson.
Result<FeatureBag> FeatureBagFromJson(std::string_view json_text);

}  // namespace laminar::spt
