// Simplified Parse Trees (SPTs), after Luan et al., "Aroma: Code
// Recommendation via Structural Code Search" (OOPSLA 2019), adapted to
// Python exactly as Laminar 2.0 did.
//
// An SPT node is an ordered list of elements, each either a *keyword token*
// (Python keywords and operators/punctuation — tokens that define structure),
// a *non-keyword token* (identifiers and literals), or a nested SPT. The
// node's label is the concatenation of its keyword tokens with '#'
// placeholders for everything else: `if x > 1:` labels as "if#:#".
// Labels are what make structural matching robust to renamed identifiers.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "pycode/ast.hpp"

namespace laminar::spt {

struct SptNode;
using SptNodePtr = std::unique_ptr<SptNode>;

/// One element of an SPT node's list.
struct SptElem {
  bool is_token = false;
  /// For tokens: source spelling. Unused for subtrees.
  std::string text;
  /// Token class: true for keywords/operators (structure), false for
  /// identifiers/literals (content).
  bool is_keyword = false;
  /// Source line of the token (0 for subtrees).
  int line = 0;
  /// Set iff !is_token.
  SptNodePtr child;
};

struct SptNode {
  /// Grammar-rule name this node came from (diagnostic only).
  std::string rule;
  std::vector<SptElem> elems;

  /// Aroma node label: keyword tokens verbatim, '#' per other element.
  std::string Label() const;

  size_t TreeSize() const;
  /// Collects every token element in order with its parent chain available
  /// via the traversal in features.cpp.
  void CollectLines(std::vector<int>& lines) const;
};

/// Builds an SPT from a parse tree. Structure tokens (NEWLINE etc.) are
/// dropped; single-child chains are collapsed so that expression-precedence
/// scaffolding does not dilute labels.
SptNodePtr BuildSpt(const pycode::Node& parse_tree);

/// Convenience: source → SPT via the lenient parser (never fails on partial
/// snippets unless no tokens at all survive).
Result<SptNodePtr> SptFromSource(std::string_view source);

/// Debug rendering: node as (label elem elem ...).
std::string ToDebugString(const SptNode& node);

}  // namespace laminar::spt
