#include "spt/recommend.hpp"

#include <algorithm>
#include <charconv>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace laminar::spt {
namespace {

std::string ExtractLines(const std::string& source,
                         const std::vector<int>& lines) {
  if (lines.empty()) return {};
  std::vector<std::string> all = strings::SplitLines(source);
  std::string out;
  for (int line : lines) {
    if (line < 1 || static_cast<size_t>(line) > all.size()) continue;
    out += all[static_cast<size_t>(line - 1)];
    out += '\n';
  }
  return out;
}

}  // namespace

AromaEngine::AromaEngine(AromaConfig config) : config_(std::move(config)) {
  config_.features.with_occurrences = true;
}

Status AromaEngine::AddSnippet(int64_t id, std::string_view code) {
  Result<SptNodePtr> spt = SptFromSource(code);
  if (!spt.ok()) return spt.status();
  FeatureBag bag = ExtractFeatures(*spt.value(), config_.features);
  if (bag.total == 0) {
    return Status::InvalidArgument("snippet produced no features");
  }
  index_.Add(id, std::move(bag));
  sources_[id] = std::string(code);
  return Status::Ok();
}

Status AromaEngine::AddSnippetWithFeatures(int64_t id, std::string_view code,
                                           FeatureBag features) {
  if (features.total == 0) {
    return Status::InvalidArgument("snippet produced no features");
  }
  index_.Add(id, std::move(features));
  sources_[id] = std::string(code);
  return Status::Ok();
}

bool AromaEngine::RemoveSnippet(int64_t id) {
  sources_.erase(id);
  return index_.Remove(id);
}

Result<FeatureBag> AromaEngine::Featurize(std::string_view code) const {
  Result<SptNodePtr> spt = SptFromSource(code);
  if (!spt.ok()) return spt.status();
  return ExtractFeatures(*spt.value(), config_.features);
}

Result<std::vector<SptIndex::Hit>> AromaEngine::Search(
    std::string_view query_code, size_t k, Metric metric) const {
  Result<FeatureBag> query = Featurize(query_code);
  if (!query.ok()) return query.status();
  return index_.TopK(query.value(), k, metric);
}

Result<std::vector<Recommendation>> AromaEngine::Recommend(
    std::string_view query_code) const {
  Result<FeatureBag> query_result = Featurize(query_code);
  if (!query_result.ok()) return query_result.status();
  const FeatureBag& query = query_result.value();

  if (!config_.use_full_pipeline) {
    // Laminar 2.0 simplified path: similarity search only.
    std::vector<SptIndex::Hit> hits =
        index_.TopK(query, config_.max_recommendations,
                    config_.simplified_metric);
    std::vector<Recommendation> out;
    for (const auto& hit : hits) {
      // The paper's threshold (default 6.0) is an *overlap* score even when
      // ranking is cosine; recompute it for the gate.
      double overlap = OverlapScore(query, *index_.Get(hit.doc_id));
      if (overlap < config_.min_overlap_score) continue;
      Recommendation rec;
      rec.snippet_id = hit.doc_id;
      rec.score = hit.score;
      auto src = sources_.find(hit.doc_id);
      if (src != sources_.end()) rec.recommended_code = src->second;
      out.push_back(std::move(rec));
    }
    return out;
  }

  // Stage 2: over-retrieve by overlap.
  std::vector<SptIndex::Hit> hits =
      index_.TopK(query, config_.retrieve_top, Metric::kOverlap);

  // Stage 3: prune each candidate against the query and rerank.
  struct Reranked {
    int64_t doc_id;
    PruneResult prune;
  };
  std::vector<Reranked> reranked;
  reranked.reserve(hits.size());
  for (const auto& hit : hits) {
    if (hit.score < config_.min_overlap_score) continue;
    const FeatureBag* bag = index_.Get(hit.doc_id);
    if (bag == nullptr) continue;
    PruneResult prune = PruneAgainstQuery(query, *bag);
    if (prune.overlap <= 0.0) continue;
    reranked.push_back(Reranked{hit.doc_id, std::move(prune)});
  }
  std::sort(reranked.begin(), reranked.end(),
            [](const Reranked& a, const Reranked& b) {
              if (a.prune.containment != b.prune.containment) {
                return a.prune.containment > b.prune.containment;
              }
              return a.doc_id < b.doc_id;
            });

  // Stage 4: cluster structurally similar candidates.
  std::vector<ClusterInput> inputs;
  inputs.reserve(reranked.size());
  for (const auto& r : reranked) {
    inputs.push_back(ClusterInput{r.doc_id, index_.Get(r.doc_id)});
  }
  std::vector<std::vector<size_t>> clusters =
      ClusterCandidates(inputs, config_.cluster_jaccard);

  // Stage 5: one recommendation per cluster, from its best-ranked member.
  std::vector<Recommendation> out;
  for (const auto& cluster : clusters) {
    if (out.size() >= config_.max_recommendations) break;
    const Reranked& rep = reranked[cluster.front()];
    Recommendation rec;
    rec.snippet_id = rep.doc_id;
    rec.score = rep.prune.overlap;
    rec.containment = rep.prune.containment;
    rec.cluster_size = cluster.size();
    rec.pruned_lines = rep.prune.lines;
    auto src = sources_.find(rep.doc_id);
    if (src != sources_.end()) {
      rec.recommended_code = ExtractLines(src->second, rep.prune.lines);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<Completion>> AromaEngine::Complete(
    std::string_view partial_code, size_t k) const {
  Result<FeatureBag> query_result = Featurize(partial_code);
  if (!query_result.ok()) return query_result.status();
  const FeatureBag& query = query_result.value();

  std::vector<SptIndex::Hit> hits =
      index_.TopK(query, std::max<size_t>(4 * k, 8), Metric::kOverlap);
  std::vector<Completion> out;
  for (const SptIndex::Hit& hit : hits) {
    if (out.size() >= k) break;
    if (hit.score < config_.min_overlap_score) continue;
    const FeatureBag* bag = index_.Get(hit.doc_id);
    auto src = sources_.find(hit.doc_id);
    if (bag == nullptr || src == sources_.end()) continue;
    PruneResult prune = PruneAgainstQuery(query, *bag);
    if (prune.lines.empty()) continue;
    // Continuation = everything in the snippet after the matched region.
    int last_matched = prune.lines.back();
    std::vector<std::string> lines = strings::SplitLines(src->second);
    std::string continuation;
    for (size_t i = static_cast<size_t>(last_matched);
         i < lines.size(); ++i) {
      continuation += lines[i];
      continuation += '\n';
    }
    if (strings::Trim(continuation).empty()) continue;  // match at the end
    Completion completion;
    completion.snippet_id = hit.doc_id;
    completion.score = hit.score;
    completion.matched_lines = std::move(prune.lines);
    completion.continuation = std::move(continuation);
    out.push_back(std::move(completion));
  }
  return out;
}

std::string FeatureBagToJson(const FeatureBag& bag) {
  // Deterministic order: sort hashes.
  std::vector<std::pair<uint64_t, uint32_t>> entries(bag.counts.begin(),
                                                     bag.counts.end());
  std::sort(entries.begin(), entries.end());
  Value obj = Value::MakeObject();
  for (const auto& [h, c] : entries) {
    obj[std::to_string(h)] = static_cast<int64_t>(c);
  }
  return obj.ToJson();
}

Result<FeatureBag> FeatureBagFromJson(std::string_view json_text) {
  Result<Value> parsed = json::Parse(json_text);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::ParseError("sptEmbedding must be a JSON object");
  }
  FeatureBag bag;
  for (const auto& [key, value] : parsed->as_object()) {
    uint64_t h = 0;
    auto [ptr, ec] = std::from_chars(key.data(), key.data() + key.size(), h);
    if (ec != std::errc() || ptr != key.data() + key.size()) {
      return Status::ParseError("bad feature hash key: " + key);
    }
    uint32_t count = static_cast<uint32_t>(value.as_int(0));
    if (count == 0) return Status::ParseError("bad feature count for " + key);
    bag.counts[h] = count;
    bag.total += count;
  }
  return bag;
}

}  // namespace laminar::spt
