#include "spt/index.hpp"

#include <algorithm>
#include <unordered_set>

namespace laminar::spt {

void SptIndex::Add(int64_t doc_id, FeatureBag bag) {
  Remove(doc_id);
  for (const auto& [h, c] : bag.counts) {
    postings_[h].push_back(doc_id);
  }
  docs_[doc_id] = std::move(bag);
}

bool SptIndex::Remove(int64_t doc_id) {
  auto it = docs_.find(doc_id);
  if (it == docs_.end()) return false;
  for (const auto& [h, c] : it->second.counts) {
    auto pit = postings_.find(h);
    if (pit == postings_.end()) continue;
    std::erase(pit->second, doc_id);
    if (pit->second.empty()) postings_.erase(pit);
  }
  docs_.erase(it);
  return true;
}

void SptIndex::Clear() {
  docs_.clear();
  postings_.clear();
}

const FeatureBag* SptIndex::Get(int64_t doc_id) const {
  auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

std::vector<SptIndex::Hit> SptIndex::TopK(const FeatureBag& query, size_t k,
                                          Metric metric) const {
  // Gather candidate docs sharing at least one feature with the query.
  std::unordered_set<int64_t> candidates;
  for (const auto& [h, c] : query.counts) {
    auto pit = postings_.find(h);
    if (pit == postings_.end()) continue;
    candidates.insert(pit->second.begin(), pit->second.end());
  }
  std::vector<Hit> hits;
  hits.reserve(candidates.size());
  for (int64_t doc_id : candidates) {
    const FeatureBag& bag = docs_.at(doc_id);
    double score = 0.0;
    switch (metric) {
      case Metric::kOverlap: score = OverlapScore(query, bag); break;
      case Metric::kCosine: score = CosineSimilarity(query, bag); break;
      case Metric::kContainment: score = ContainmentScore(query, bag); break;
    }
    if (score > 0.0) hits.push_back(Hit{doc_id, score});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace laminar::spt
