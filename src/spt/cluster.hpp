// Iterative clustering (Aroma stage 4): groups reranked candidates whose
// pruned snippets are structurally similar, so that the final list shows one
// recommendation per coding idiom instead of five near-duplicates.
#pragma once

#include <cstdint>
#include <vector>

#include "spt/features.hpp"

namespace laminar::spt {

struct ClusterInput {
  int64_t doc_id = 0;
  const FeatureBag* features = nullptr;  ///< non-owning; outlives the call
};

/// Greedy leader clustering over Jaccard similarity: candidates are visited
/// in the given (rerank) order; each joins the first cluster whose leader is
/// at least `jaccard_threshold` similar, else starts a new cluster.
/// Returns clusters as index lists into `inputs`, preserving order.
std::vector<std::vector<size_t>> ClusterCandidates(
    const std::vector<ClusterInput>& inputs, double jaccard_threshold);

}  // namespace laminar::spt
