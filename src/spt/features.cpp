#include "spt/features.hpp"

#include <cmath>

#include "common/hashing.hpp"

namespace laminar::spt {
namespace {

bool IsStringLiteral(const std::string& text) {
  if (text.empty()) return false;
  char c = text[0];
  if (c == '"' || c == '\'') return true;
  // prefixed strings: r"...", f'...'
  size_t i = 0;
  while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i]))) ++i;
  return i > 0 && i < text.size() && (text[i] == '"' || text[i] == '\'');
}

bool LooksLikeIdentifier(const std::string& text) {
  if (text.empty()) return false;
  unsigned char c = static_cast<unsigned char>(text[0]);
  return std::isalpha(c) || c == '_';
}

/// Collects identifier tokens from the leading elements of `node` up to (but
/// not including) the first keyword token matching `stop`.
void CollectIdentifiersUntil(const SptNode& node, const char* stop,
                             std::unordered_set<std::string>& out) {
  for (const SptElem& e : node.elems) {
    if (e.is_token) {
      if (e.is_keyword) {
        if (e.text == stop) return;
        continue;  // ignore commas/parens within target lists
      }
      if (LooksLikeIdentifier(e.text)) out.insert(e.text);
    } else if (e.child) {
      // Nested target (tuple target, subscript...). Only plain names bind
      // new variables; attribute/subscript targets reference existing ones,
      // but for generalization purposes treating them as locals is harmless
      // and matches Aroma's conservative behaviour.
      CollectIdentifiersUntil(*e.child, stop, out);
    }
  }
}

void CollectLocalsWalk(const SptNode& node,
                       std::unordered_set<std::string>& out) {
  const std::string& rule = node.rule;
  if (rule == "ann_assign") {
    // Node shape: target ':' type ['=' value]; only elems[0] binds.
    if (!node.elems.empty()) {
      const SptElem& e = node.elems[0];
      if (e.is_token && !e.is_keyword && LooksLikeIdentifier(e.text)) {
        out.insert(e.text);
      }
    }
  } else if (rule == "assign" || rule == "aug_assign") {
    // Node shape: target ('=' value)+ / target op value. Everything before
    // the last '='-like keyword element is a binding target.
    size_t last_assign_op = 0;
    for (size_t i = 0; i < node.elems.size(); ++i) {
      const SptElem& e = node.elems[i];
      if (e.is_token && e.is_keyword &&
          (e.text == "=" || (e.text.size() >= 2 && e.text.back() == '='))) {
        last_assign_op = i;
      }
    }
    for (size_t i = 0; i < last_assign_op; ++i) {
      const SptElem& e = node.elems[i];
      if (e.is_token && !e.is_keyword && LooksLikeIdentifier(e.text)) {
        out.insert(e.text);
      } else if (e.child &&
                 (e.child->rule == "tuple" || e.child->rule == "target_list")) {
        CollectIdentifiersUntil(*e.child, "\0", out);
      }
    }
  } else if (rule == "for_stmt" || rule == "comp_for") {
    bool in_target = false;
    for (const SptElem& e : node.elems) {
      if (e.is_token && e.is_keyword) {
        if (e.text == "for") {
          in_target = true;
          continue;
        }
        if (e.text == "in") break;
        continue;
      }
      if (!in_target) continue;
      if (e.is_token && LooksLikeIdentifier(e.text)) {
        out.insert(e.text);
      } else if (e.child) {
        CollectIdentifiersUntil(*e.child, "in", out);
      }
    }
  } else if (rule == "param") {
    for (const SptElem& e : node.elems) {
      if (e.is_token && !e.is_keyword && LooksLikeIdentifier(e.text)) {
        out.insert(e.text);
        break;  // only the parameter name, not default/annotation names
      }
    }
  } else if (rule == "with_item" || rule == "except_clause") {
    bool after_as = false;
    for (const SptElem& e : node.elems) {
      if (e.is_token && e.is_keyword && e.text == "as") {
        after_as = true;
        continue;
      }
      if (after_as && e.is_token && !e.is_keyword &&
          LooksLikeIdentifier(e.text)) {
        out.insert(e.text);
        break;
      }
    }
  }
  for (const SptElem& e : node.elems) {
    if (e.child) CollectLocalsWalk(*e.child, out);
  }
}

struct Ancestor {
  const SptNode* node;
  size_t child_index;  // index of the element we descended through
};

class Extractor {
 public:
  Extractor(const FeatureOptions& opts,
            std::unordered_set<std::string> locals)
      : opts_(opts), locals_(std::move(locals)) {}

  FeatureBag Run(const SptNode& root) {
    Walk(root);
    EmitSiblingAndUsageFeatures();
    return std::move(bag_);
  }

 private:
  struct TokenSite {
    std::string generalized;
    std::string original;
    int line;
    std::string parent_label;
  };

  std::string Generalize(const std::string& text) const {
    if (IsStringLiteral(text)) return "#STR";
    if (opts_.generalize_variables && locals_.contains(text)) return "#VAR";
    return text;
  }

  void Emit(const std::string& feature, int line) {
    uint64_t h = hashing::Fnv1a64(feature);
    bag_.Add(h);
    if (opts_.with_occurrences) bag_.occurrences.emplace_back(h, line);
    if (opts_.record_strings) bag_.strings.push_back(feature);
  }

  void Walk(const SptNode& node) {
    ancestors_.push_back({&node, 0});
    std::string label = node.Label();
    for (size_t i = 0; i < node.elems.size(); ++i) {
      const SptElem& e = node.elems[i];
      ancestors_.back().child_index = i;
      if (e.is_token) {
        if (!e.is_keyword) HandleToken(e, label);
      } else if (e.child) {
        Walk(*e.child);
      }
    }
    ancestors_.pop_back();
  }

  void HandleToken(const SptElem& token, const std::string& parent_label) {
    std::string gen = Generalize(token.text);
    // 1. Token feature.
    Emit("T:" + gen, token.line);
    // 2. Parent features for up to parent_levels ancestors.
    int levels = 0;
    for (auto it = ancestors_.rbegin();
         it != ancestors_.rend() && levels < opts_.parent_levels;
         ++it, ++levels) {
      Emit("P" + std::to_string(levels + 1) + ":" + gen + "|" +
               std::to_string(it->child_index) + "|" + it->node->Label(),
           token.line);
    }
    // Defer sibling + usage features until all tokens are known.
    sites_.push_back(TokenSite{gen, token.text, token.line, parent_label});
  }

  void EmitSiblingAndUsageFeatures() {
    // 3. Sibling features over consecutive non-keyword tokens.
    for (size_t i = 0; i + 1 < sites_.size(); ++i) {
      Emit("S:" + sites_[i].generalized + ">" + sites_[i + 1].generalized,
           sites_[i].line);
    }
    // 4. Variable-usage features: consecutive usages of the same local.
    std::unordered_map<std::string, const TokenSite*> last_use;
    for (const TokenSite& site : sites_) {
      if (!locals_.contains(site.original)) continue;
      auto [it, inserted] = last_use.try_emplace(site.original, &site);
      if (!inserted) {
        Emit("V:" + it->second->parent_label + ">" + site.parent_label,
             site.line);
        it->second = &site;
      }
    }
  }

  FeatureOptions opts_;
  std::unordered_set<std::string> locals_;
  std::vector<Ancestor> ancestors_;
  std::vector<TokenSite> sites_;
  FeatureBag bag_;
};

}  // namespace

double FeatureBag::Norm() const {
  double sum = 0;
  for (const auto& [h, c] : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return std::sqrt(sum);
}

std::unordered_set<std::string> CollectLocalVariables(const SptNode& root) {
  std::unordered_set<std::string> out;
  out.insert("self");
  out.insert("cls");
  CollectLocalsWalk(root, out);
  return out;
}

FeatureBag ExtractFeatures(const SptNode& root, const FeatureOptions& opts) {
  std::unordered_set<std::string> locals;
  if (opts.generalize_variables) locals = CollectLocalVariables(root);
  Extractor extractor(opts, std::move(locals));
  return extractor.Run(root);
}

double OverlapScore(const FeatureBag& a, const FeatureBag& b) {
  const FeatureBag& small = a.counts.size() <= b.counts.size() ? a : b;
  const FeatureBag& large = a.counts.size() <= b.counts.size() ? b : a;
  double score = 0;
  for (const auto& [h, c] : small.counts) {
    auto it = large.counts.find(h);
    if (it != large.counts.end()) {
      score += static_cast<double>(std::min(c, it->second));
    }
  }
  return score;
}

double CosineSimilarity(const FeatureBag& a, const FeatureBag& b) {
  if (a.counts.empty() || b.counts.empty()) return 0.0;
  const FeatureBag& small = a.counts.size() <= b.counts.size() ? a : b;
  const FeatureBag& large = a.counts.size() <= b.counts.size() ? b : a;
  double dot = 0;
  for (const auto& [h, c] : small.counts) {
    auto it = large.counts.find(h);
    if (it != large.counts.end()) {
      dot += static_cast<double>(c) * static_cast<double>(it->second);
    }
  }
  double denom = a.Norm() * b.Norm();
  return denom > 0 ? dot / denom : 0.0;
}

double ContainmentScore(const FeatureBag& query, const FeatureBag& candidate) {
  if (query.total == 0) return 0.0;
  return OverlapScore(query, candidate) / static_cast<double>(query.total);
}

double JaccardSimilarity(const FeatureBag& a, const FeatureBag& b) {
  double inter = OverlapScore(a, b);
  double uni = static_cast<double>(a.total + b.total) - inter;
  return uni > 0 ? inter / uni : 0.0;
}

}  // namespace laminar::spt
