#include "spt/rerank.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace laminar::spt {

PruneResult PruneAgainstQuery(const FeatureBag& query,
                              const FeatureBag& candidate) {
  PruneResult result;
  if (query.total == 0 || candidate.occurrences.empty()) return result;

  // Per-line feature multisets of the candidate.
  std::map<int, std::unordered_map<uint64_t, uint32_t>> by_line;
  for (const auto& [hash, line] : candidate.occurrences) {
    ++by_line[line][hash];
  }

  // Remaining query budget per feature.
  std::unordered_map<uint64_t, uint32_t> remaining = query.counts;
  std::vector<int> selected;
  std::vector<int> pool;
  pool.reserve(by_line.size());
  for (const auto& [line, feats] : by_line) pool.push_back(line);

  double total_overlap = 0.0;
  while (!pool.empty()) {
    int best_line = 0;
    double best_gain = 0.0;
    size_t best_pos = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      const auto& feats = by_line[pool[i]];
      double gain = 0.0;
      for (const auto& [h, c] : feats) {
        auto it = remaining.find(h);
        if (it != remaining.end()) {
          gain += std::min(c, it->second);
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_line = pool[i];
        best_pos = i;
      }
    }
    if (best_gain <= 0.0) break;
    // Commit the line: consume its matched features from the budget.
    for (const auto& [h, c] : by_line[best_line]) {
      auto it = remaining.find(h);
      if (it == remaining.end()) continue;
      uint32_t used = std::min(c, it->second);
      it->second -= used;
      if (it->second == 0) remaining.erase(it);
    }
    total_overlap += best_gain;
    selected.push_back(best_line);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }

  std::sort(selected.begin(), selected.end());
  result.lines = std::move(selected);
  result.overlap = total_overlap;
  result.containment = total_overlap / static_cast<double>(query.total);
  return result;
}

}  // namespace laminar::spt
