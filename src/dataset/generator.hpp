// Synthetic CodeSearchNet-PE dataset generator (paper §VII-A).
//
// Renders each semantic family V times with independently chosen identifier
// names, constants and structure noise (optional docstring, optional debug
// counter, optional type-free guard), producing PEs that are semantically
// equivalent within a family but textually distinct — the controllable
// analogue of CodeSearchNet's grouped functions. Every PE gets a unique id
// (the paper: "to avoid ambiguity ... where functions might have duplicate
// names").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dataset/families.hpp"

namespace laminar::dataset {

struct DatasetConfig {
  /// How many families to use (clamped to the table size; 0 = all).
  size_t families = 0;
  size_t variants_per_family = 8;
  uint64_t seed = 0x1a3f5c7e9b2d4f60ULL;
  /// Probability that a rendered PE carries a docstring.
  double docstring_probability = 0.5;
  /// Probability of an extra noise statement in the body.
  double noise_probability = 0.35;
};

struct PeExample {
  int64_t id = 0;
  int group = 0;                ///< family index (the relevance ground truth)
  std::string family_key;
  std::string name;             ///< unique PE class name
  std::string description;      ///< ground-truth description
  std::string query;            ///< natural-language query paraphrase
  std::string pe_code;          ///< full PE class source
};

/// Streaming variant renderer: yields the exact example sequence
/// CodeSearchNetPeDataset::Generate materializes (same seed derivation,
/// same ids), one PeExample at a time in O(1) memory. This is how the
/// million-PE corpus sweeps (bench_search) generate 1M+ PEs without ever
/// holding the corpus: families iterate outermost, each forking its own rng
/// stream, so the f-th family's variants are identical whether or not the
/// earlier families were consumed.
class PeStream {
 public:
  explicit PeStream(const DatasetConfig& config = {});

  /// Renders the next example into `*out`; false when exhausted.
  bool Next(PeExample* out);

  /// Total examples the stream will yield (families * variants_per_family).
  size_t total() const { return families_ * config_.variants_per_family; }
  size_t family_count() const { return families_; }

 private:
  DatasetConfig config_;
  size_t families_ = 0;
  Rng rng_;
  Rng family_rng_;
  size_t family_ = 0;   ///< current family index
  size_t variant_ = 0;  ///< next variant within the current family
  int64_t next_id_ = 1;
};

class CodeSearchNetPeDataset {
 public:
  static CodeSearchNetPeDataset Generate(const DatasetConfig& config = {});

  const std::vector<PeExample>& examples() const { return examples_; }
  const PeExample& example(size_t i) const { return examples_[i]; }
  size_t size() const { return examples_.size(); }
  size_t family_count() const { return family_count_; }

  /// Ids of all examples in a group (the relevant set for any member).
  const std::vector<int64_t>& GroupMembers(int group) const;

 private:
  std::vector<PeExample> examples_;
  std::unordered_map<int, std::vector<int64_t>> groups_;
  size_t family_count_ = 0;
};

/// How DropCode removes content.
enum class DropMode {
  kTail,    ///< drop the trailing fraction of body lines (paper protocol)
  kRandom,  ///< drop a random fraction of body lines (extension)
};

/// Removes `fraction` (0..1) of a PE's *body* lines, keeping the class/def
/// header so the snippet still reads as partial code. fraction 0 returns the
/// input unchanged.
std::string DropCode(const std::string& pe_code, double fraction,
                     DropMode mode = DropMode::kTail, uint64_t seed = 99);

}  // namespace laminar::dataset
