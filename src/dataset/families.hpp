// Semantic family templates for the synthetic CodeSearchNet-PE corpus
// (paper §VII-A).
//
// The real evaluation used ~450k CodeSearchNet Python functions converted to
// PEs and grouped by semantic similarity of their descriptions. We cannot
// ship that dataset, so the generator synthesizes an equivalent: each
// *family* is one semantic group — a code template with placeholder
// identifiers/constants plus a ground-truth description and paraphrases used
// as queries. Rendering a family V times with different identifier choices
// and optional structure noise yields V semantically-equivalent,
// textually-different PEs: exactly the regime that separates structural
// (Aroma) from token-sequence (ReACC) retrieval.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace laminar::dataset {

struct FamilySpec {
  std::string_view key;         ///< stable family id, e.g. "is_prime"
  std::string_view class_base;  ///< PascalCase PE name stem, e.g. "IsPrime"
  /// Ground-truth description (stored in the registry as if CodeT5 wrote it).
  std::string_view description;
  /// Query paraphrases (what a user would type); share vocabulary with the
  /// description but not its exact wording.
  std::string_view paraphrase_a;
  std::string_view paraphrase_b;
  /// _process body template. Placeholders: $IN input param, $A/$B/$C local
  /// variables, $N1/$N2 integer constants, $F float constant. Lines are
  /// indented relative to the method body (8 spaces added by the renderer).
  std::string_view body;
};

/// The full family table (24+ families).
const std::vector<FamilySpec>& Families();

/// Identifier pools the renderer draws from, per placeholder role.
const std::vector<std::string_view>& InputNamePool();
const std::vector<std::string_view>& LocalNamePoolA();
const std::vector<std::string_view>& LocalNamePoolB();
const std::vector<std::string_view>& LocalNamePoolC();
/// Class-name suffixes that keep rendered names unique and human-plausible.
const std::vector<std::string_view>& ClassSuffixPool();

}  // namespace laminar::dataset
